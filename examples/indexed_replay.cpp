// Production-scale offline debugging: dump the .wvx waveform index
// straight from the simulator (no VCD text round-trip), then debug the
// *index* with the same hgdb runtime — identical breakpoints and time
// travel as examples/trace_replay, but the trace never materializes in
// RAM: residency is bounded by the LRU block cache regardless of dump
// size, and reads go through an mmap'd region when the platform allows.
//
// Run: build/examples/indexed_replay
#include <cstdio>
#include <iostream>

#include "frontend/compile.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"
#include "sim/vcd_writer.h"
#include "symbols/symbol_table.h"
#include "trace/replay.h"
#include "vpi/replay_backend.h"
#include "waveform/index_writer.h"
#include "waveform/indexed_waveform.h"
#include "workloads/workloads.h"

using namespace hgdb;
using Command = runtime::Runtime::Command;

int main() {
  const std::string wvx_path = "/tmp/hgdb_indexed_replay.wvx";

  // -- 1. "Overnight regression": simulate and dump; no debugger attached.
  //       A .wvx path makes the VcdWriter stream the v3 index directly
  //       (varint/delta blocks, alias dedup) — the only pass over the
  //       trace; every later debug session opens in O(header + directory).
  frontend::CompileOptions options;
  options.debug_mode = true;
  auto compiled = frontend::compile(workloads::workload("towers").build(),
                                    options);
  {
    sim::Simulator simulator(compiled.netlist);
    sim::VcdWriter writer(simulator, wvx_path);
    writer.attach();
    simulator.run(400);
    writer.finish();
  }

  // -- 2. Attach hgdb to the index through a small LRU cache (8 blocks).
  auto source = std::make_shared<waveform::IndexedWaveform>(
      wvx_path, waveform::WaveformOpenOptions{/*cache_blocks=*/8});
  std::cout << "index: format v" << source->version() << " ("
            << source->codec_name() << " codec, " << source->io_kind()
            << " reads), " << source->signal_count() << " signals, "
            << source->total_blocks() << " blocks on disk, cache capacity "
            << source->cache_capacity() << " blocks\n";

  vpi::ReplayBackend backend{trace::ReplayEngine(source)};
  symbols::MemorySymbolTable table(compiled.symbols);
  runtime::Runtime runtime(backend, table);
  runtime.attach();

  // -- 4. Same conditional-breakpoint session as the in-memory example.
  const auto first_bp = table.all_breakpoints().front();
  auto ids = runtime.add_breakpoint(first_bp.filename, first_bp.line_num,
                                    "moves > 50");
  std::cout << "conditional breakpoint 'moves > 50' at " << first_bp.filename
            << ":" << first_bp.line_num << " (" << ids.size()
            << " inserted)\n";

  int stops = 0;
  uint64_t first_hit_time = 0;
  runtime.set_stop_handler([&](const rpc::StopEvent& event) {
    if (++stops == 1) first_hit_time = event.time;
    return Command::Continue;
  });
  backend.run_forward();
  std::cout << "hits across the trace: " << stops << " (first @ time "
            << first_hit_time << ")\n";

  // -- 5. Random time travel stays cheap: each jump is a directory binary
  //       search plus at most one block load.
  backend.set_time(first_hit_time);
  std::cout << "jumped back to time " << first_hit_time << ": moves = "
            << runtime.evaluate("moves", std::nullopt)->to_string() << "\n";

  const auto stats = source->cache_stats();
  std::cout << "cache after the whole session: " << stats.hits << " hits, "
            << stats.misses << " misses, peak resident " << stats.peak_resident
            << "/" << source->cache_capacity() << " blocks\n";

  std::remove(wvx_path.c_str());
  return 0;
}
