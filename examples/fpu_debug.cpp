// The paper's Sec. 4.2 case study, replayed as a scripted debug session:
// the FPU's output mismatches a functional model; a tentative breakpoint
// inside `when (wflags)` plus generator-variable inspection reveals that
// dcmp.io.signaling is permanently asserted.
//
// Run: build/examples/fpu_debug
#include <iostream>

#include "frontend/compile.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"
#include "symbols/symbol_table.h"
#include "vpi/native_backend.h"
#include "workloads/workloads.h"

using namespace hgdb;

namespace {

struct Session {
  explicit Session(bool with_bug) {
    frontend::CompileOptions options;
    options.debug_mode = true;
    auto compiled = frontend::compile(workloads::build_fpu_compare(with_bug),
                                      options);
    table = std::make_unique<symbols::MemorySymbolTable>(compiled.symbols);
    simulator = std::make_unique<sim::Simulator>(std::move(compiled.netlist));
    backend = std::make_unique<vpi::NativeBackend>(*simulator);
    runtime = std::make_unique<runtime::Runtime>(*backend, *table);
    runtime->attach();
  }
  std::unique_ptr<symbols::MemorySymbolTable> table;
  std::unique_ptr<sim::Simulator> simulator;
  std::unique_ptr<vpi::NativeBackend> backend;
  std::unique_ptr<runtime::Runtime> runtime;
};

}  // namespace

int main() {
  // Step 0 — the bug report: the DUT's exception flags diverge from the
  // functional model (here: the fixed design run in lockstep).
  Session buggy(true);
  Session golden(false);
  uint64_t first_divergence = 0;
  for (uint64_t cycle = 1; cycle <= 512; ++cycle) {
    buggy.simulator->tick();
    golden.simulator->tick();
    if (buggy.simulator->value("FpuCtrl.exc_flags") !=
        golden.simulator->value("FpuCtrl.exc_flags")) {
      first_divergence = cycle;
      break;
    }
  }
  std::cout << "FPU exception flags diverge from the functional model at "
               "cycle " << first_divergence << "\n\n";

  // Step 1 — set a tentative breakpoint inside `when (wflags)`, "since this
  // is the condition where floating-point comparison is enabled".
  const auto source = workloads::fpu_source_info();
  Session debug(true);
  auto ids = debug.runtime->add_breakpoint(source.filename, source.toint_line);
  std::cout << "breakpoint at " << source.filename << ":" << source.toint_line
            << " (inside when(wflags)) -> " << ids.size()
            << " emulated breakpoint(s)\n";

  // Step 2 — when it hits, examine the frame: toint looks fine, but exc is
  // set. Then drill into the dcmp child instance.
  bool inspected = false;
  debug.runtime->set_stop_handler([&](const rpc::StopEvent& event) {
    if (inspected) return runtime::Runtime::Command::Detach;
    inspected = true;
    const auto& frame = event.frames[0];
    std::cout << "\nbreakpoint hit @ time " << event.time << " in "
              << frame.instance_name << "\n";
    std::cout << "  locals:    toint = " << frame.locals.get_string("toint")
              << ", exc = " << frame.locals.get_string("exc") << "\n";
    std::cout << "  generator: rm = " << frame.generator.get_string("rm")
              << ", wflags = " << frame.generator.get_string("wflags") << "\n";

    auto eval_dcmp = [&](const std::string& expr) {
      return debug.runtime->evaluate(expr, std::nullopt, "FpuCtrl.dcmp")
          ->to_string();
    };
    std::cout << "\n  inspecting instance FpuCtrl.dcmp (reconstructed "
                 "bundle):\n";
    std::cout << "    io.a            = " << eval_dcmp("a") << "\n";
    std::cout << "    io.b            = " << eval_dcmp("b") << "\n";
    std::cout << "    io.signaling    = " << eval_dcmp("signaling") << "\n";
    std::cout << "    io.lt / io.eq   = " << eval_dcmp("lt") << " / "
              << eval_dcmp("eq") << "\n";
    std::cout << "    exceptionFlags  = " << eval_dcmp("exceptionFlags")
              << "\n";
    return runtime::Runtime::Command::Continue;
  });
  while (debug.simulator->cycle() < 512 && !inspected) debug.simulator->tick();

  // Step 3 — "With a quick glance, we can see that dcmp.io.signaling is not
  // set properly since it is permanently asserted." Confirm over time.
  int asserted = 0;
  constexpr int kSamples = 50;
  for (int i = 0; i < kSamples; ++i) {
    debug.simulator->tick();
    asserted += debug.runtime
                    ->evaluate("signaling", std::nullopt, "FpuCtrl.dcmp")
                    ->to_uint64() != 0;
  }
  std::cout << "\nio.signaling asserted in " << asserted << "/" << kSamples
            << " sampled cycles -- permanently stuck high\n";
  std::cout << "\ndiagnosis: dcmp.io.signaling := Bool(true)  (Listing 3's "
               "bug)\nfix:       drive signaling from the decoded rounding "
               "mode\n";

  // Step 4 — verify the fix: the corrected design never diverges.
  Session fixed_a(false);
  Session fixed_b(false);
  bool diverged = false;
  for (uint64_t cycle = 0; cycle < 512; ++cycle) {
    fixed_a.simulator->tick();
    fixed_b.simulator->tick();
    diverged |= fixed_a.simulator->value("FpuCtrl.exc_flags") !=
                fixed_b.simulator->value("FpuCtrl.exc_flags");
  }
  std::cout << "after the fix: "
            << (diverged ? "still diverging!" : "no divergence in 512 cycles")
            << "\n";
  return 0;
}
