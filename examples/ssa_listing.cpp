// The paper's Listings 1-4 in one runnable tour: a procedural accumulation
// loop (Listing 1) is unrolled and SSA-transformed (Listing 2, with enable
// conditions), and the generated Verilog shows why source-level debugging
// beats reading the RTL (Listings 3/4's point).
//
// Run: build/examples/ssa_listing
#include <iostream>

#include "frontend/compile.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "netlist/verilog.h"
#include "symbols/symbol_table.h"

using namespace hgdb;

// Listing 1, written in the IR text format with explicit source locators
// (listing.cc line numbers match the paper's listing):
//
//   1  int sum = 0;
//   2  for (int i = 0; i < 2; i++) {
//   3    if (data[i] % 2)
//   4      sum += data[i];
//   5  }
constexpr const char* kListing1 = R"(circuit Listing
  module Listing
    input data : UInt<8>[2]
    output out : UInt<8>
    wire sum : UInt<8> @[listing.cc 1 1]
    connect sum = UInt<8>(0) @[listing.cc 1 5]
    for i = 0 to 2 @[listing.cc 2 1]
      when neq(rem(data[i], UInt<8>(2)), UInt<8>(0)) @[listing.cc 3 3]
        connect sum = add(sum, data[i]) @[listing.cc 4 5]
      end
    end
    connect out = sum @[listing.cc 6 1]
  end
end
)";

int main() {
  std::cout << "==== Listing 1 (High IR, procedural loop) ====\n";
  auto high = ir::parse_circuit(kListing1);
  std::cout << ir::print_circuit(*high);

  frontend::CompileOptions options;
  options.debug_mode = true;
  auto compiled = frontend::compile(ir::parse_circuit(kListing1), options);

  std::cout << "\n==== Listing 2 (Low IR after unrolling + SSA) ====\n";
  std::cout << ir::print_circuit(*compiled.circuit);

  std::cout << "\n==== Emulated breakpoints for source line 4 ====\n";
  symbols::MemorySymbolTable table(compiled.symbols);
  for (const auto& bp : table.breakpoints_at("listing.cc", 4)) {
    std::cout << "breakpoint " << bp.id << " @ listing.cc:" << bp.line_num
              << "   enable: " << bp.enable << "\n";
    for (const auto& variable : table.scope_variables(bp.id)) {
      std::cout << "    scope " << variable.name << " -> "
                << (variable.is_rtl ? "RTL signal " : "constant ")
                << variable.value << "\n";
    }
  }
  std::cout << "(one source line, two breakpoints, two enable conditions --\n"
               " the paper's \"Multiple line-mapping after SSA transform\")\n";

  std::cout << "\n==== Listing 4's point: the generated Verilog ====\n";
  std::cout << netlist::emit_verilog(*compiled.circuit);
  std::cout << "\nWould you rather debug that, or set a breakpoint on "
               "listing.cc:4?\n";
  return 0;
}
