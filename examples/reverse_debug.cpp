// Reverse debugging (paper Sec. 3.2): intra-cycle reverse stepping works on
// any backend by replaying the breakpoint schedule in reverse order; with a
// time-travel-capable backend (checkpointing simulator here), stepping
// crosses cycle boundaries backwards.
//
// Run: build/examples/reverse_debug
#include <iostream>

#include "frontend/compile.h"
#include "ir/parser.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"
#include "symbols/symbol_table.h"
#include "vpi/native_backend.h"

using namespace hgdb;
using Command = runtime::Runtime::Command;

// A deliberately readable design with one statement per line of "pipe.cc".
constexpr const char* kDesign = R"(circuit Pipe
  module Pipe
    input clock : Clock
    output out : UInt<16>
    reg stage0 : UInt<16> clock clock
    connect stage0 = add(stage0, UInt<16>(3)) @[pipe.cc 3 1]
    reg stage1 : UInt<16> clock clock
    connect stage1 = stage0 @[pipe.cc 5 1]
    wire blended : UInt<16> @[pipe.cc 6 1]
    connect blended = add(stage0, stage1) @[pipe.cc 7 1]
    connect out = blended @[pipe.cc 8 1]
  end
end
)";

int main() {
  frontend::CompileOptions options;
  options.debug_mode = true;
  auto compiled = frontend::compile(ir::parse_circuit(kDesign), options);
  symbols::MemorySymbolTable table(compiled.symbols);
  sim::Simulator simulator(std::move(compiled.netlist));
  simulator.enable_checkpoints(true);  // enables native time travel
  vpi::NativeBackend backend(simulator);
  runtime::Runtime runtime(backend, table);
  runtime.attach();

  // Stop when the blend on line 7 sees stage0 == 15 (cycle 5), then walk
  // BACKWARDS through the program: line 5, line 3, then across the cycle
  // boundary into cycle 4's line 8, ...
  runtime.add_breakpoint("pipe.cc", 7, "stage0 == 15");
  int steps = 0;
  runtime.set_stop_handler([&](const rpc::StopEvent& event) {
    if (event.frames.empty()) {
      std::cout << "(reverse execution reached the beginning of history)\n";
      return Command::Continue;
    }
    const auto& frame = event.frames[0];
    auto reg0 = runtime.evaluate("stage0", frame.breakpoint_id);
    auto reg1 = runtime.evaluate("stage1", frame.breakpoint_id);
    std::cout << (steps == 0 ? "hit     " : "rstep   ") << "pipe.cc:"
              << frame.line << "  @ time " << event.time
              << "  stage0=" << reg0->to_string()
              << " stage1=" << reg1->to_string() << "\n";
    return steps++ < 6 ? Command::StepBack : Command::Continue;
  });
  while (simulator.cycle() < 12) simulator.tick();

  std::cout << "\nforward state after the session: out = "
            << simulator.value("Pipe.out").to_string() << " at cycle "
            << simulator.cycle()
            << " (re-execution after reverse debugging is deterministic)\n";
  return 0;
}
