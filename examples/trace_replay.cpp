// Offline trace debugging (paper Fig. 1's "Replay tool" + Sec. 3.3): run a
// simulation once while dumping a VCD, then debug the *trace* with the very
// same hgdb runtime — same breakpoints, same frames, free time travel.
// This is how hgdb debugs wave dumps from simulators it cannot hook.
//
// Run: build/examples/trace_replay
#include <cstdio>
#include <iostream>

#include "frontend/compile.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"
#include "sim/vcd_writer.h"
#include "symbols/symbol_table.h"
#include "trace/vcd_reader.h"
#include "vpi/replay_backend.h"
#include "workloads/workloads.h"

using namespace hgdb;
using Command = runtime::Runtime::Command;

int main() {
  const std::string vcd_path = "/tmp/hgdb_trace_replay_example.vcd";

  // -- 1. "Overnight regression": simulate the towers workload and dump a
  //       VCD; no debugger anywhere near the simulation.
  frontend::CompileOptions options;
  options.debug_mode = true;
  auto compiled = frontend::compile(workloads::workload("towers").build(),
                                    options);
  {
    sim::Simulator simulator(compiled.netlist);
    sim::VcdWriter writer(simulator, vcd_path);
    writer.attach();
    simulator.run(200);
  }
  std::cout << "dumped 200 cycles of 'towers' to " << vcd_path << "\n";

  // -- 2. Next morning: attach hgdb to the trace. The replay backend
  //       implements the same unified simulator interface.
  auto trace = trace::parse_vcd_file(vcd_path);
  std::cout << "trace: " << trace.vars().size() << " signals, max time "
            << trace.max_time() << "\n";
  vpi::ReplayBackend backend{trace::ReplayEngine(std::move(trace))};
  symbols::MemorySymbolTable table(compiled.symbols);
  runtime::Runtime runtime(backend, table);
  runtime.attach();

  // -- 3. Source breakpoint with a condition, evaluated against history.
  //       Any breakpointable line of the Towers generator works; the
  //       condition reads the FSM state through the symbol table.
  const auto first_bp = table.all_breakpoints().front();
  const std::string file = first_bp.filename;
  const uint32_t line = first_bp.line_num;
  auto ids = runtime.add_breakpoint(file, line, "moves > 50");
  std::cout << "conditional breakpoint 'moves > 50' at " << file << ":"
            << line << " (" << ids.size() << " inserted)\n";

  int stops = 0;
  uint64_t first_hit_time = 0;
  runtime.set_stop_handler([&](const rpc::StopEvent& event) {
    ++stops;
    if (stops == 1 && !event.frames.empty()) {
      first_hit_time = event.time;
      const auto& frame = event.frames[0];
      std::cout << "first hit @ time " << event.time << ": pegs = ("
                << runtime.evaluate("peg0", frame.breakpoint_id)->to_string()
                << ", "
                << runtime.evaluate("peg1", frame.breakpoint_id)->to_string()
                << ", "
                << runtime.evaluate("peg2", frame.breakpoint_id)->to_string()
                << ") moves = "
                << runtime.evaluate("moves", frame.breakpoint_id)->to_string()
                << "\n";
    }
    return Command::Continue;
  });
  backend.run_forward();
  std::cout << "total hits across the trace: " << stops << "\n";

  // -- 4. Time travel is free on a trace: jump back to the first hit and
  //       read values again — identical history, no re-simulation.
  backend.set_time(first_hit_time);
  std::cout << "after jumping back to time " << first_hit_time
            << ": moves = "
            << runtime.evaluate("moves", std::nullopt)->to_string() << "\n";

  std::remove(vcd_path.c_str());
  return 0;
}
