// Quickstart: write a small generator, compile it with symbol extraction,
// simulate, and debug it at the *source* level — the end-to-end flow the
// paper's Fig. 1 shows.
//
// Run: build/examples/quickstart
#include <iostream>

#include "frontend/compile.h"
#include "frontend/components.h"
#include "frontend/dsl.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"
#include "symbols/symbol_table.h"
#include "vpi/native_backend.h"

using namespace hgdb;
using frontend::Value;

int main() {
  // -- 1. Write a generator. Every statement records this file's line
  //       numbers (HGDB_LOC), like Chisel records Scala locations.
  auto circuit = std::make_unique<ir::Circuit>("Quickstart");
  frontend::ModuleBuilder b(*circuit, "Quickstart");
  Value clk = b.clock();
  Value out = b.output("out", 16, HGDB_LOC);

  Value data = frontend::lfsr(b, "data", 16, clk);
  Value sum = b.wire("sum", 16, HGDB_LOC);
  b.assign(sum, b.lit(16, 0), HGDB_LOC);
  // The paper's Listing 1: accumulate odd values inside an unrolled loop.
  b.for_("i", 0, 4, HGDB_LOC, [&](Value i) {
    Value nibble = b.node("nibble", data.shr(i * b.lit(4, 4)) & b.lit(16, 0xf),
                          HGDB_LOC);
    const uint32_t kAccumulateLine = __LINE__ + 1;
    b.when_((nibble % b.lit(16, 2)) == b.lit(16, 1), HGDB_LOC,
            [&] { b.assign(sum, sum + nibble, HGDB_LOC); });
    (void)kAccumulateLine;
  });
  Value acc = b.reg("acc", 16, clk, HGDB_LOC);
  b.assign(acc, acc + sum, HGDB_LOC);
  b.assign(out, acc, HGDB_LOC);
  b.finish();

  // -- 2. Compile: unroll -> lower -> SSA (+ enable conditions) -> optimize
  //       -> symbol table (Algorithm 1) -> netlist.
  frontend::CompileOptions options;
  options.debug_mode = true;  // -O0-style: keep everything debuggable
  auto compiled = frontend::compile(std::move(circuit), options);
  std::cout << "compiled: " << compiled.netlist.instrs().size()
            << " netlist instructions, " << compiled.symbols.breakpoints.size()
            << " breakpoints in the symbol table\n";

  // -- 3. Attach the hgdb runtime to a live simulation.
  symbols::MemorySymbolTable table(compiled.symbols);
  sim::Simulator simulator(std::move(compiled.netlist));
  vpi::NativeBackend backend(simulator);
  runtime::Runtime runtime(backend, table);
  runtime.attach();

  // -- 4. Breakpoint on the accumulation line: ONE source line, FOUR
  //       emulated breakpoints (the unrolled iterations), each with its
  //       own enable condition.
  const auto files = table.files();
  uint32_t accumulate_line = 0;
  std::map<uint32_t, int> per_line;
  for (const auto& bp : table.data().breakpoints) {
    if (bp.filename == __FILE__) per_line[bp.line_num]++;
  }
  for (const auto& [line, count] : per_line) {
    if (count == 4) accumulate_line = line;
  }
  auto ids = runtime.add_breakpoint(__FILE__, accumulate_line);
  std::cout << "inserted " << ids.size() << " emulated breakpoints at "
            << "quickstart.cpp:" << accumulate_line << "\n";

  int shown = 0;
  runtime.set_stop_handler([&](const rpc::StopEvent& event) {
    if (shown++ < 2) {
      std::cout << "stop @ time " << event.time << ": " << event.frames.size()
                << " loop iteration(s) active\n";
      for (const auto& frame : event.frames) {
        // Locals come from the SSA scope map; named intermediates like the
        // nibble node are generator variables, readable via evaluate().
        std::cout << "   i=" << frame.locals.get_string("i")
                  << "  sum=" << frame.locals.get_string("sum")
                  << "  data="
                  << runtime.evaluate("data", frame.breakpoint_id)->to_string()
                  << "\n";
      }
    }
    return runtime::Runtime::Command::Continue;
  });
  simulator.run(16);

  // -- 5. Evaluate expressions against the design, source-level.
  auto value = runtime.evaluate("acc + 1", std::nullopt);
  std::cout << "acc + 1 = " << value->to_string() << " after "
            << simulator.cycle() << " cycles\n";
  std::cout << "scheduler stats: " << runtime.stats().stops << " stops, "
            << runtime.stats().conditions_evaluated
            << " conditions evaluated\n";
  return 0;
}
