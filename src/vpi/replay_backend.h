#ifndef HGDB_VPI_REPLAY_BACKEND_H
#define HGDB_VPI_REPLAY_BACKEND_H

#include <memory>

#include "trace/replay.h"
#include "vpi/sim_interface.h"

namespace hgdb::vpi {

/// Trace backend: adapts a waveform replay engine to the unified interface
/// (the "Replay tool" box in the paper's Fig. 1). The engine's store may be
/// an in-memory trace::VcdTrace or an on-disk waveform::IndexedWaveform —
/// the debugger runtime above cannot tell the difference.
///
/// Unlike a live simulator, nothing drives time forward by itself; the
/// owner calls run_forward()/run_backward()/step(), and the backend fires
/// rising-edge callbacks at every visited clock edge — identical to what
/// the debugger runtime sees from a live simulation, which is the whole
/// point of the unified interface. set_value is unsupported (you cannot
/// change history); set_time is fully supported in both directions.
class ReplayBackend final : public SimulatorInterface {
 public:
  explicit ReplayBackend(trace::ReplayEngine engine)
      : engine_(std::move(engine)) {}

  [[nodiscard]] std::optional<common::BitVector> get_value(
      const std::string& hier_name) override {
    return engine_.value(hier_name);
  }
  [[nodiscard]] std::vector<std::string> signal_names() const override;
  [[nodiscard]] std::vector<std::string> clock_names() const override;
  uint64_t add_clock_callback(ClockCallback callback) override;
  void remove_clock_callback(uint64_t handle) override;

  [[nodiscard]] const char* backend_kind() const override { return "replay"; }
  [[nodiscard]] uint64_t get_time() const override { return engine_.time(); }
  [[nodiscard]] bool supports_time_travel() const override { return true; }
  bool set_time(uint64_t time) override;
  [[nodiscard]] bool supports_set_value() const override { return false; }

  /// Batched reads resolve the waveform signal index once per armed name;
  /// the per-edge fetch then seeks by index, skipping the name lookup the
  /// scalar get_value() pays on every call.
  [[nodiscard]] std::optional<uint64_t> lookup_signal(
      const std::string& hier_name) override {
    auto index = engine_.signal_index(hier_name);
    if (!index) return std::nullopt;
    return static_cast<uint64_t>(*index);
  }
  void get_values(const uint64_t* handles, size_t count,
                  common::BitVector* out, uint8_t* present) override {
    for (size_t i = 0; i < count; ++i) {
      out[i] = engine_.value_at(static_cast<size_t>(handles[i]));
      present[i] = 1;
    }
  }

  // -- replay driving -----------------------------------------------------------
  /// Advances one clock edge and fires callbacks; false at trace end.
  bool step_forward();
  /// Rewinds one clock edge and fires callbacks; false at trace start.
  bool step_backward();
  /// Runs forward to the end of the trace (callbacks at every edge).
  void run_forward();

  [[nodiscard]] trace::ReplayEngine& engine() { return engine_; }

 private:
  void fire();

  trace::ReplayEngine engine_;
  std::vector<std::pair<uint64_t, ClockCallback>> callbacks_;
  uint64_t next_handle_ = 1;
};

}  // namespace hgdb::vpi

#endif  // HGDB_VPI_REPLAY_BACKEND_H
