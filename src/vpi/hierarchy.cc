#include "vpi/hierarchy.h"

#include <algorithm>
#include <map>

#include "common/strings.h"

namespace hgdb::vpi {

HierarchyMapper::HierarchyMapper(const std::vector<std::string>& design_names,
                                 const std::vector<std::string>& symbol_names,
                                 std::string symbol_root)
    : symbol_root_(std::move(symbol_root)) {
  if (symbol_names.empty()) return;

  // Suffixes of symbol names with the root stripped: "Top.a.b" -> "a.b".
  std::vector<std::string> suffixes;
  suffixes.reserve(symbol_names.size());
  for (const auto& name : symbol_names) {
    if (name == symbol_root_) continue;
    if (name.size() > symbol_root_.size() + 1 &&
        name.compare(0, symbol_root_.size(), symbol_root_) == 0 &&
        name[symbol_root_.size()] == '.') {
      suffixes.push_back(name.substr(symbol_root_.size() + 1));
    }
  }
  if (suffixes.empty()) return;

  // Vote: every design name that ends with some suffix proposes the prefix
  // obtained by removing that suffix.
  std::map<std::string, size_t> votes;
  for (const auto& design_name : design_names) {
    for (const auto& suffix : suffixes) {
      if (!common::ends_with_path(design_name, suffix)) continue;
      if (design_name.size() == suffix.size()) continue;  // no prefix at all
      votes[design_name.substr(0, design_name.size() - suffix.size() - 1)]++;
    }
  }
  if (votes.empty()) return;

  // Pick the most-voted prefix; break ties with the longest common
  // substring against the symbol root (Sec. 3.3's matching heuristic:
  // "tb.dut_top" beats "tb.other" for root "Top").
  size_t best_votes = 0;
  size_t best_affinity = 0;
  for (const auto& [prefix, count] : votes) {
    const size_t affinity = common::longest_common_substring(prefix, symbol_root_);
    if (count > best_votes ||
        (count == best_votes && affinity > best_affinity)) {
      best_votes = count;
      best_affinity = affinity;
      design_prefix_ = prefix;
    }
  }
  valid_ = true;
}

std::string HierarchyMapper::to_design(const std::string& symbol_name) const {
  if (!valid_) return symbol_name;
  if (symbol_name == symbol_root_) return design_prefix_;
  if (symbol_name.size() > symbol_root_.size() + 1 &&
      symbol_name.compare(0, symbol_root_.size(), symbol_root_) == 0 &&
      symbol_name[symbol_root_.size()] == '.') {
    return design_prefix_ + symbol_name.substr(symbol_root_.size());
  }
  return symbol_name;
}

std::optional<std::string> HierarchyMapper::to_symbol(
    const std::string& design_name) const {
  if (!valid_) return std::nullopt;
  if (design_name == design_prefix_) return symbol_root_;
  if (design_name.size() > design_prefix_.size() + 1 &&
      design_name.compare(0, design_prefix_.size(), design_prefix_) == 0 &&
      design_name[design_prefix_.size()] == '.') {
    return symbol_root_ + design_name.substr(design_prefix_.size());
  }
  return std::nullopt;
}

}  // namespace hgdb::vpi
