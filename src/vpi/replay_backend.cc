#include "vpi/replay_backend.h"

#include <algorithm>

namespace hgdb::vpi {

std::vector<std::string> ReplayBackend::signal_names() const {
  const auto& source = engine_.source();
  std::vector<std::string> out;
  out.reserve(source.signal_count());
  for (size_t i = 0; i < source.signal_count(); ++i) {
    out.push_back(source.signal(i).hier_name);
  }
  return out;
}

std::vector<std::string> ReplayBackend::clock_names() const {
  return waveform::clock_signal_names(engine_.source());
}

uint64_t ReplayBackend::add_clock_callback(ClockCallback callback) {
  const uint64_t handle = next_handle_++;
  callbacks_.emplace_back(handle, std::move(callback));
  return handle;
}

void ReplayBackend::remove_clock_callback(uint64_t handle) {
  std::erase_if(callbacks_,
                [handle](const auto& entry) { return entry.first == handle; });
}

bool ReplayBackend::set_time(uint64_t time) {
  if (time > engine_.source().max_time()) return false;
  engine_.set_time(time);
  return true;
}

void ReplayBackend::fire() {
  for (const auto& [handle, callback] : callbacks_) {
    callback(ClockEdge::Rising, engine_.time());
  }
}

bool ReplayBackend::step_forward() {
  if (!engine_.step_forward()) return false;
  fire();
  return true;
}

bool ReplayBackend::step_backward() {
  if (!engine_.step_backward()) return false;
  fire();
  return true;
}

void ReplayBackend::run_forward() {
  while (step_forward()) {
  }
}

}  // namespace hgdb::vpi
