#ifndef HGDB_VPI_SIM_INTERFACE_H
#define HGDB_VPI_SIM_INTERFACE_H

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bitvector.h"

namespace hgdb::vpi {

enum class ClockEdge : uint8_t { Rising, Falling };

/// The paper's *unified simulator interface* (Sec. 3.3): the minimum set of
/// primitives hgdb needs from any simulation environment. Commercial
/// simulators implement these through a small VPI subset; this repo
/// provides a native backend (our RTL simulator) and a trace backend (VCD
/// replay). The debugger runtime is written only against this class.
///
/// Required primitives:
///   - get signal value            -> get_value()
///   - get design hierarchy/clocks -> signal_names(), clock_names()
///   - callbacks on clock changes  -> add/remove_clock_callback()
/// Optional primitives:
///   - get and set simulation time -> get_time()/set_time() (reverse debug)
///   - set signal value            -> set_value() (not possible on traces)
class SimulatorInterface {
 public:
  virtual ~SimulatorInterface() = default;

  // -- required ---------------------------------------------------------------
  /// Value of a full hierarchical signal name; nullopt if unknown.
  [[nodiscard]] virtual std::optional<common::BitVector> get_value(
      const std::string& hier_name) = 0;
  /// Every hierarchical signal name in the design (the "design hierarchy"
  /// query; used to locate the generated IP inside the test environment).
  [[nodiscard]] virtual std::vector<std::string> signal_names() const = 0;
  /// Hierarchical names of clock signals.
  [[nodiscard]] virtual std::vector<std::string> clock_names() const = 0;

  using ClockCallback = std::function<void(ClockEdge, uint64_t /*time*/)>;
  /// Fires after the design reaches equilibrium at each clock edge — the
  /// zero-delay property the breakpoint emulation relies on. The simulator
  /// blocks while the callback runs, which is how hgdb pauses simulation.
  virtual uint64_t add_clock_callback(ClockCallback callback) = 0;
  virtual void remove_clock_callback(uint64_t handle) = 0;

  // -- optional ---------------------------------------------------------------
  /// What kind of environment backs this interface: "live" for a running
  /// simulator, "replay" for recorded traces. Advertised to debuggers via
  /// the protocol-v2 capability handshake so clients stop guessing which
  /// command families (set-value, time travel) can work.
  [[nodiscard]] virtual const char* backend_kind() const { return "live"; }

  [[nodiscard]] virtual uint64_t get_time() const = 0;
  [[nodiscard]] virtual bool supports_time_travel() const { return false; }
  /// Rewinds (or advances) simulation time; returns false if unsupported
  /// or out of range.
  virtual bool set_time(uint64_t /*time*/) { return false; }

  [[nodiscard]] virtual bool supports_set_value() const { return false; }
  /// Forces a signal value; returns false if unsupported (e.g. traces).
  virtual bool set_value(const std::string& /*hier_name*/,
                         const common::BitVector& /*value*/) {
    return false;
  }

  // -- batched reads (the compiled-breakpoint fast path) -----------------------
  /// Resolves a hierarchical name to a stable opaque handle for batched
  /// reads; nullopt when the signal is unknown. The debugger runtime calls
  /// this once when a breakpoint or watchpoint is armed, so the per-edge
  /// path never resolves strings. Handles stay valid for the lifetime of
  /// the backend. The default implementation registers the name in an
  /// internal table and serves get_values() through get_value(), so
  /// backends that cannot batch need no changes.
  [[nodiscard]] virtual std::optional<uint64_t> lookup_signal(
      const std::string& hier_name);
  /// Reads `count` signals in one call: out[i]/present[i] receive the
  /// value and availability of handles[i]. Implementations should write
  /// out[i] with copy-assignment (the caller reuses the buffers across
  /// edges, which keeps the fetch allocation-free for small values).
  virtual void get_values(const uint64_t* handles, size_t count,
                          common::BitVector* out, uint8_t* present);
  /// Zero-copy variant: out[i] receives a pointer into the backend's own
  /// value store for handles[i] (nullptr when unavailable) instead of a
  /// copy. Pointers stay valid — and their pointees stable — until the
  /// simulation next advances, which under the zero-delay callback
  /// contract means for the duration of the current clock-edge callback.
  /// Returns false when the backend cannot expose stable storage (replay
  /// recomputes values per seek; RPC backends marshal) — callers then fall
  /// back to the copying get_values(). The native backend returns direct
  /// pointers into the simulator's value array, so a fetch round over N
  /// unchanged signals copies nothing.
  [[nodiscard]] virtual bool get_value_views(
      const uint64_t* /*handles*/, size_t /*count*/,
      const common::BitVector** /*out*/) {
    return false;
  }

 private:
  /// Names registered by the default lookup_signal(), indexed by handle,
  /// with the inverse map for handle-stable deduplication.
  std::vector<std::string> batch_names_;
  std::map<std::string, uint64_t> batch_handles_;
};

}  // namespace hgdb::vpi

#endif  // HGDB_VPI_SIM_INTERFACE_H
