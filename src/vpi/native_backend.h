#ifndef HGDB_VPI_NATIVE_BACKEND_H
#define HGDB_VPI_NATIVE_BACKEND_H

#include "sim/simulator.h"
#include "vpi/sim_interface.h"

namespace hgdb::vpi {

/// Native backend: adapts the in-process RTL simulator to the unified
/// interface. This is the "loaded into simulator tools natively" path in
/// the paper's Fig. 1 — calls are direct function calls, so per-cycle
/// overhead is just the callback dispatch (measured in EXP-3).
class NativeBackend final : public SimulatorInterface {
 public:
  explicit NativeBackend(sim::Simulator& simulator) : simulator_(&simulator) {}

  [[nodiscard]] std::optional<common::BitVector> get_value(
      const std::string& hier_name) override;
  [[nodiscard]] std::vector<std::string> signal_names() const override;
  [[nodiscard]] std::vector<std::string> clock_names() const override;
  uint64_t add_clock_callback(ClockCallback callback) override;
  void remove_clock_callback(uint64_t handle) override;

  [[nodiscard]] uint64_t get_time() const override {
    return simulator_->time();
  }
  [[nodiscard]] bool supports_time_travel() const override {
    return simulator_->checkpoints_enabled();
  }
  bool set_time(uint64_t time) override;
  [[nodiscard]] bool supports_set_value() const override { return true; }
  bool set_value(const std::string& hier_name,
                 const common::BitVector& value) override;

  /// Batched reads bypass the name table entirely: a handle is the
  /// simulator's signal id, and get_values() copies straight out of the
  /// value array — or, via get_value_views(), hands back stable pointers
  /// into it so the caller copies nothing at all.
  [[nodiscard]] std::optional<uint64_t> lookup_signal(
      const std::string& hier_name) override;
  void get_values(const uint64_t* handles, size_t count,
                  common::BitVector* out, uint8_t* present) override;
  [[nodiscard]] bool get_value_views(const uint64_t* handles, size_t count,
                                     const common::BitVector** out) override;

  [[nodiscard]] sim::Simulator& simulator() { return *simulator_; }

 private:
  sim::Simulator* simulator_;
};

}  // namespace hgdb::vpi

#endif  // HGDB_VPI_NATIVE_BACKEND_H
