#include "vpi/native_backend.h"

namespace hgdb::vpi {

std::optional<common::BitVector> NativeBackend::get_value(
    const std::string& hier_name) {
  auto id = simulator_->signal_id(hier_name);
  if (!id) return std::nullopt;
  return simulator_->value(*id);
}

std::optional<uint64_t> NativeBackend::lookup_signal(
    const std::string& hier_name) {
  auto id = simulator_->signal_id(hier_name);
  if (!id) return std::nullopt;
  return static_cast<uint64_t>(*id);
}

void NativeBackend::get_values(const uint64_t* handles, size_t count,
                               common::BitVector* out, uint8_t* present) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = simulator_->value(static_cast<uint32_t>(handles[i]));
    present[i] = 1;
  }
}

bool NativeBackend::get_value_views(const uint64_t* handles, size_t count,
                                    const common::BitVector** out) {
  // Handles are simulator signal ids (validated at lookup_signal time);
  // the value array is stable while the simulator sits in a callback, so
  // pointers into it are safe for the whole edge.
  for (size_t i = 0; i < count; ++i) {
    out[i] = &simulator_->value(static_cast<uint32_t>(handles[i]));
  }
  return true;
}

std::vector<std::string> NativeBackend::signal_names() const {
  std::vector<std::string> out;
  for (const auto& signal : simulator_->netlist().signals()) {
    if (!signal.name.empty()) out.push_back(signal.name);
  }
  return out;
}

std::vector<std::string> NativeBackend::clock_names() const {
  std::vector<std::string> out;
  for (uint32_t slot : simulator_->netlist().clocks()) {
    out.push_back(simulator_->netlist().signal(slot).name);
  }
  return out;
}

uint64_t NativeBackend::add_clock_callback(ClockCallback callback) {
  return simulator_->add_clock_callback(
      [callback = std::move(callback)](sim::Edge edge, uint64_t time) {
        callback(edge == sim::Edge::Rising ? ClockEdge::Rising
                                           : ClockEdge::Falling,
                 time);
      });
}

void NativeBackend::remove_clock_callback(uint64_t handle) {
  simulator_->remove_clock_callback(handle);
}

bool NativeBackend::set_time(uint64_t time) {
  if (!simulator_->checkpoints_enabled()) return false;
  // tick() advances time by 2 (one unit per edge); the checkpoint grid is
  // one per cycle.
  const uint64_t cycle = time / 2;
  if (cycle >= simulator_->cycle() ||
      cycle < simulator_->earliest_cycle()) {
    return false;
  }
  simulator_->restore_cycle(cycle);
  return true;
}

bool NativeBackend::set_value(const std::string& hier_name,
                              const common::BitVector& value) {
  auto id = simulator_->signal_id(hier_name);
  if (!id) return false;
  const auto kind = simulator_->netlist().signal(*id).kind;
  if (kind != netlist::SignalKind::Input &&
      kind != netlist::SignalKind::Register) {
    return false;
  }
  simulator_->set_value(*id, value);
  simulator_->eval();
  return true;
}

}  // namespace hgdb::vpi
