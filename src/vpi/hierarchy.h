#ifndef HGDB_VPI_HIERARCHY_H
#define HGDB_VPI_HIERARCHY_H

#include <optional>
#include <string>
#include <vector>

namespace hgdb::vpi {

/// Locates the generated IP inside the complete simulated design
/// (paper Sec. 3 and 3.4): the symbol table only knows the generator's own
/// hierarchy (rooted at, say, "Top"), while the test environment may
/// instantiate it under "testbench.dut". Since the *relative* hierarchy
/// never changes, the mapper searches the simulator's signal names for a
/// subtree matching the symbol table's names and derives the prefix
/// substitution; candidate ties are broken by common-substring affinity
/// with the symbol root, per Sec. 3.3's VCD strategy.
class HierarchyMapper {
 public:
  /// `design_names`: all hierarchical signal names from the simulator.
  /// `symbol_names`: representative full names from the symbol table
  /// (instance-relative variables resolved against instance names).
  /// `symbol_root`: the symbol table's root instance name (e.g. "Top").
  HierarchyMapper(const std::vector<std::string>& design_names,
                  const std::vector<std::string>& symbol_names,
                  std::string symbol_root);

  /// True if a mapping was found.
  [[nodiscard]] bool valid() const { return valid_; }
  /// The design-side prefix substituted for the symbol root (may equal the
  /// symbol root when the design is simulated standalone).
  [[nodiscard]] const std::string& design_prefix() const {
    return design_prefix_;
  }

  /// Maps a symbol-table full name ("Top.child.sum0") into the design
  /// hierarchy ("tb.dut.child.sum0").
  [[nodiscard]] std::string to_design(const std::string& symbol_name) const;
  /// Inverse mapping; nullopt when the name is outside the subtree.
  [[nodiscard]] std::optional<std::string> to_symbol(
      const std::string& design_name) const;

 private:
  std::string symbol_root_;
  std::string design_prefix_;
  bool valid_ = false;
};

}  // namespace hgdb::vpi

#endif  // HGDB_VPI_HIERARCHY_H
