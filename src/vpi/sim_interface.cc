#include "vpi/sim_interface.h"

namespace hgdb::vpi {

// Default batched-read fallback: handles index an internal name table and
// every get_values() entry goes through the scalar get_value(). Backends
// with a cheaper by-handle path (native simulator ids, waveform signal
// indexes) override both methods.

std::optional<uint64_t> SimulatorInterface::lookup_signal(
    const std::string& hier_name) {
  // Handles are stable for the backend's lifetime, so the same name must
  // map to the same handle on re-arm (plan rebuilds re-resolve every
  // symbol; without dedup the table would grow without bound).
  auto it = batch_handles_.find(hier_name);
  if (it != batch_handles_.end()) return it->second;
  if (!get_value(hier_name).has_value()) return std::nullopt;
  batch_names_.push_back(hier_name);
  const uint64_t handle = batch_names_.size() - 1;
  batch_handles_.emplace(hier_name, handle);
  return handle;
}

void SimulatorInterface::get_values(const uint64_t* handles, size_t count,
                                    common::BitVector* out, uint8_t* present) {
  for (size_t i = 0; i < count; ++i) {
    const uint64_t handle = handles[i];
    if (handle >= batch_names_.size()) {
      present[i] = 0;
      continue;
    }
    auto value = get_value(batch_names_[handle]);
    present[i] = value.has_value() ? 1 : 0;
    if (value) out[i] = std::move(*value);
  }
}

}  // namespace hgdb::vpi
