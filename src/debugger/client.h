#ifndef HGDB_DEBUGGER_CLIENT_H
#define HGDB_DEBUGGER_CLIENT_H

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rpc/channel.h"
#include "rpc/event_frame.h"
#include "rpc/protocol.h"
#include "rpc/protocol_v2.h"

namespace hgdb::debugger {

/// Which wire dialect the client speaks.
enum class Protocol : uint8_t {
  V1,  ///< legacy closed-enum messages (served through the compat shim)
  V2,  ///< versioned command envelopes with typed errors + capabilities
};

/// One expression's result from evaluate_batch().
struct EvalResult {
  std::string expression;
  bool ok = false;
  std::string value;
  uint32_t width = 0;
  std::string reason;
};

/// One pushed value-change event from a `subscribe` stream.
struct ValueEvent {
  int64_t subscription = 0;
  uint64_t time = 0;
  struct Change {
    std::string signal;
    std::string value;
    uint32_t width = 0;
  };
  std::vector<Change> changes;
};

/// Synchronous debugger client speaking the JSON debug protocol over any
/// rpc::Channel (in-process pair, or TCP to a remote runtime). This is the
/// programmatic equivalent of the paper's gdb-like debugger; the VSCode
/// extension in the paper speaks the same protocol.
///
/// The client is v2-native by default: connect() performs the handshake
/// and records the runtime's negotiated capabilities, failed requests
/// carry typed error codes (last_error_code()), and the v2-only request
/// families (watchpoints, batched evaluation, hierarchy browsing, stats)
/// are available. Protocol::V1 preserves the legacy wire format
/// byte-for-byte for old runtimes — v2-only methods then fail cleanly.
///
/// Stop events arriving while a request is in flight are queued and
/// surfaced through wait_stop().
class DebugClient {
 public:
  explicit DebugClient(std::unique_ptr<rpc::Channel> channel,
                       Protocol protocol = Protocol::V2);

  [[nodiscard]] Protocol protocol() const { return protocol_; }

  // -- handshake (v2) ------------------------------------------------------------
  /// Negotiates capabilities with the runtime. Optional but recommended:
  /// afterwards capabilities() says whether jump/reverse/set-value can work.
  /// With `binary_events` the client asks for the binary event framing:
  /// pushed events then arrive as length-prefixed frames (decoded
  /// transparently — wait_stop()/wait_values() behave identically) while
  /// requests and responses stay JSON v2.
  bool connect(const std::string& client_name = "hgdb-client",
               bool binary_events = false);
  [[nodiscard]] const std::optional<rpc::Capabilities>& capabilities() const {
    return capabilities_;
  }
  /// True once the runtime confirmed the binary-events opt-in.
  [[nodiscard]] bool binary_events() const { return binary_events_; }

  // -- breakpoints --------------------------------------------------------------
  /// Returns the inserted breakpoint ids (empty + error reason on failure).
  std::vector<int64_t> set_breakpoint(const std::string& filename, uint32_t line,
                                      const std::string& condition = "");
  size_t remove_breakpoint(const std::string& filename, uint32_t line);
  /// Lists symbol breakpoints at a location (line 0 = whole file).
  common::Json list_locations(const std::string& filename, uint32_t line = 0);

  // -- execution control ---------------------------------------------------------
  bool resume();            ///< continue
  bool step_over();
  bool step_back();
  bool reverse_resume();    ///< reverse-continue
  bool pause();
  bool jump(uint64_t time);
  bool detach();
  /// Detaches and asks the runtime to close this session (v2; in V1 mode
  /// identical to detach()).
  bool disconnect();

  // -- inspection ------------------------------------------------------------------
  /// Blocks until the next stop event (or timeout).
  std::optional<rpc::StopEvent> wait_stop(
      std::optional<std::chrono::milliseconds> timeout = std::nullopt);
  /// Evaluates an expression in a breakpoint frame or instance scope.
  std::optional<std::string> evaluate(const std::string& expression,
                                      std::optional<int64_t> breakpoint_id,
                                      const std::string& instance = "");
  common::Json info();

  // -- v2 request families -------------------------------------------------------
  /// One round trip, many expressions (IDE variable panes).
  std::vector<EvalResult> evaluate_batch(
      const std::vector<std::string>& expressions,
      std::optional<int64_t> breakpoint_id = std::nullopt,
      const std::string& instance = "");
  /// Arms a watchpoint; returns its id.
  std::optional<int64_t> watch(const std::string& expression,
                               const std::string& instance = "");
  bool unwatch(int64_t id);
  /// Subscribes to pushed value-change events for `signals` at the given
  /// decimation (receive every Nth event); returns the subscription id.
  /// Events arrive asynchronously and queue like stop events; drain them
  /// with wait_values().
  std::optional<int64_t> subscribe(const std::vector<std::string>& signals,
                                   uint32_t decimation = 1,
                                   const std::string& instance = "",
                                   uint64_t min_interval = 0);
  bool unsubscribe(int64_t id);
  /// Blocks until the next value-change event (or timeout).
  std::optional<ValueEvent> wait_values(
      std::optional<std::chrono::milliseconds> timeout = std::nullopt);
  /// Blocks until another attached session arms or disarms a breakpoint
  /// on a shared location (pushed "breakpoint-changed" events; v2 only).
  std::optional<rpc::BreakpointChangeEvent> wait_breakpoint_change(
      std::optional<std::chrono::milliseconds> timeout = std::nullopt);
  /// The most recent lifecycle notice ("shutdown", ...) pushed on a
  /// binary-events session; empty when none arrived.
  [[nodiscard]] const std::string& last_lifecycle() const {
    return last_lifecycle_;
  }
  common::Json list_instances();
  common::Json list_variables(const std::string& instance);
  common::Json stats();
  /// Prometheus text exposition of the server's metrics registry (empty
  /// string on failure).
  std::string metrics();
  /// Structured metrics snapshot ({"counters", "gauges", "histograms"}).
  common::Json metrics_json();
  /// Trace-recorder control: action is start|stop|clear|status; returns
  /// the status payload (enabled/recorded/dropped/capacity).
  common::Json trace_control(const std::string& action);
  /// Fetches the buffered spans as chrome://tracing / Perfetto JSON text.
  std::string trace_dump();
  bool set_value(const std::string& name, const std::string& value);

  /// Reason of the last failed request.
  [[nodiscard]] const std::string& last_error() const { return last_error_; }
  /// Typed code of the last failed request (v2; None after success).
  [[nodiscard]] rpc::ErrorCode last_error_code() const {
    return last_error_code_;
  }

 private:
  rpc::GenericResponse transact_v1(rpc::Request request);
  rpc::ResponseV2 transact(const std::string& command, common::Json payload);
  bool send_command(rpc::CommandRequest::Command command, uint64_t time = 0);
  /// Decodes a stop event in either wire format; nullopt if `text` is not
  /// a stop message.
  std::optional<rpc::StopEvent> decode_stop(const std::string& text);
  /// Decodes a v2 "values" event; nullopt if `text` is something else.
  std::optional<ValueEvent> decode_values(const std::string& text);
  /// Decodes a v2 "breakpoint-changed" event; nullopt otherwise.
  std::optional<rpc::BreakpointChangeEvent> decode_breakpoint_change(
      const std::string& text);
  /// Queues `message` if it is a pushed event (binary frame or JSON);
  /// returns false when it is something else (e.g. a response).
  bool absorb_event(const std::string& message);
  /// Marks a v2-only call failed in V1 mode.
  bool require_v2(const char* what);

  std::unique_ptr<rpc::Channel> channel_;
  Protocol protocol_;
  std::deque<rpc::StopEvent> stops_;
  std::deque<ValueEvent> values_;
  std::deque<rpc::BreakpointChangeEvent> breakpoint_changes_;
  std::string last_lifecycle_;
  int64_t next_token_ = 1;
  std::string last_error_;
  rpc::ErrorCode last_error_code_ = rpc::ErrorCode::None;
  std::optional<rpc::Capabilities> capabilities_;
  bool binary_events_ = false;
};

}  // namespace hgdb::debugger

#endif  // HGDB_DEBUGGER_CLIENT_H
