#ifndef HGDB_DEBUGGER_CLIENT_H
#define HGDB_DEBUGGER_CLIENT_H

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rpc/channel.h"
#include "rpc/protocol.h"

namespace hgdb::debugger {

/// Synchronous debugger client speaking the JSON debug protocol over any
/// rpc::Channel (in-process pair, or TCP to a remote runtime). This is the
/// programmatic equivalent of the paper's gdb-like debugger; the VSCode
/// extension in the paper speaks the same protocol.
///
/// Stop events arriving while a request is in flight are queued and
/// surfaced through wait_stop().
class DebugClient {
 public:
  explicit DebugClient(std::unique_ptr<rpc::Channel> channel);

  // -- breakpoints --------------------------------------------------------------
  /// Returns the inserted breakpoint ids (empty + error reason on failure).
  std::vector<int64_t> set_breakpoint(const std::string& filename, uint32_t line,
                                      const std::string& condition = "");
  size_t remove_breakpoint(const std::string& filename, uint32_t line);
  /// Lists symbol breakpoints at a location (line 0 = whole file).
  common::Json list_locations(const std::string& filename, uint32_t line = 0);

  // -- execution control ---------------------------------------------------------
  bool resume();            ///< continue
  bool step_over();
  bool step_back();
  bool reverse_resume();    ///< reverse-continue
  bool pause();
  bool jump(uint64_t time);
  bool detach();

  // -- inspection ------------------------------------------------------------------
  /// Blocks until the next stop event (or timeout).
  std::optional<rpc::StopEvent> wait_stop(
      std::optional<std::chrono::milliseconds> timeout = std::nullopt);
  /// Evaluates an expression in a breakpoint frame or instance scope.
  std::optional<std::string> evaluate(const std::string& expression,
                                      std::optional<int64_t> breakpoint_id,
                                      const std::string& instance = "");
  common::Json info();

  /// Reason of the last failed request.
  [[nodiscard]] const std::string& last_error() const { return last_error_; }

 private:
  rpc::GenericResponse transact(rpc::Request request);
  bool send_command(rpc::CommandRequest::Command command, uint64_t time = 0);

  std::unique_ptr<rpc::Channel> channel_;
  std::deque<rpc::StopEvent> stops_;
  int64_t next_token_ = 1;
  std::string last_error_;
};

}  // namespace hgdb::debugger

#endif  // HGDB_DEBUGGER_CLIENT_H
