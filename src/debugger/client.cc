#include "debugger/client.h"

#include <stdexcept>

namespace hgdb::debugger {

using common::Json;
using rpc::CommandRequest;
using rpc::ErrorCode;
using rpc::Request;
using rpc::RequestV2;
using rpc::ResponseV2;

DebugClient::DebugClient(std::unique_ptr<rpc::Channel> channel,
                         Protocol protocol)
    : channel_(std::move(channel)), protocol_(protocol) {}

// ---------------------------------------------------------------------------
// transport loops
// ---------------------------------------------------------------------------

std::optional<rpc::StopEvent> DebugClient::decode_stop(const std::string& text) {
  try {
    const Json json = Json::parse(text);
    if (!json.is_object()) return std::nullopt;
    if (rpc::is_v2_envelope(json)) {
      if (json.get_string("type") != "event" ||
          json.get_string("event") != "stop") {
        return std::nullopt;
      }
      auto payload = json.get("payload");
      if (!payload || !payload->get().is_object()) return std::nullopt;
      return rpc::stop_event_fields(payload->get());
    }
    // A v1 stop can reach a v2 client when the runtime had not yet seen a
    // v2 envelope on this session; accept both formats unconditionally.
    if (json.get_string("type") != "stop") return std::nullopt;
    return rpc::stop_event_fields(json);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

rpc::GenericResponse DebugClient::transact_v1(Request request) {
  request.token = next_token_++;
  channel_->send(rpc::serialize_request(request));
  while (true) {
    auto message = channel_->receive();
    if (!message) {
      throw std::runtime_error("debug channel closed");
    }
    auto server_message = rpc::parse_server_message(*message);
    if (server_message.kind == rpc::ServerMessage::Kind::Stop) {
      stops_.push_back(std::move(server_message.stop));
      continue;
    }
    if (server_message.generic.token == request.token) {
      if (!server_message.generic.success) {
        last_error_ = server_message.generic.reason;
        last_error_code_ = ErrorCode::InternalError;
      } else {
        last_error_code_ = ErrorCode::None;
      }
      return std::move(server_message.generic);
    }
    // Response to an older request: drop.
  }
}

std::optional<rpc::BreakpointChangeEvent> DebugClient::decode_breakpoint_change(
    const std::string& text) {
  try {
    const Json json = Json::parse(text);
    if (!json.is_object() || !rpc::is_v2_envelope(json)) return std::nullopt;
    if (json.get_string("type") != "event" ||
        json.get_string("event") != "breakpoint-changed") {
      return std::nullopt;
    }
    auto payload = json.get("payload");
    if (!payload || !payload->get().is_object()) return std::nullopt;
    const Json& body = payload->get();
    rpc::BreakpointChangeEvent event;
    event.action = body.get_string("action");
    event.filename = body.get_string("filename");
    event.line = static_cast<uint32_t>(body.get_int("line"));
    event.condition = body.get_string("condition");
    event.client = static_cast<uint64_t>(body.get_int("client"));
    return event;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

bool DebugClient::absorb_event(const std::string& message) {
  if (rpc::is_event_frame(message)) {
    try {
      auto decoded = rpc::decode_event_frame(message);
      switch (decoded.kind) {
        case rpc::FrameKind::Stop:
          stops_.push_back(std::move(decoded.stop));
          break;
        case rpc::FrameKind::ValueChange: {
          ValueEvent event;
          event.subscription =
              static_cast<int64_t>(decoded.value_change.subscription);
          event.time = decoded.value_change.time;
          for (auto& change : decoded.value_change.changes) {
            event.changes.push_back(ValueEvent::Change{
                std::move(change.signal), std::move(change.value),
                change.width});
          }
          values_.push_back(std::move(event));
          break;
        }
        case rpc::FrameKind::Lifecycle:
          last_lifecycle_ = std::move(decoded.lifecycle);
          break;
        case rpc::FrameKind::BreakpointChanged:
          breakpoint_changes_.push_back(std::move(decoded.breakpoint_change));
          break;
      }
    } catch (const std::exception&) {
      // Malformed frame: swallow — a response can never start with the
      // frame magic, so this was a pushed event beyond repair.
    }
    return true;
  }
  if (auto stop = decode_stop(message)) {
    stops_.push_back(std::move(*stop));
    return true;
  }
  if (auto values = decode_values(message)) {
    values_.push_back(std::move(*values));
    return true;
  }
  if (auto change = decode_breakpoint_change(message)) {
    breakpoint_changes_.push_back(std::move(*change));
    return true;
  }
  return false;
}

std::optional<ValueEvent> DebugClient::decode_values(const std::string& text) {
  try {
    const Json json = Json::parse(text);
    if (!json.is_object() || !rpc::is_v2_envelope(json)) return std::nullopt;
    if (json.get_string("type") != "event" ||
        json.get_string("event") != "values") {
      return std::nullopt;
    }
    auto payload = json.get("payload");
    if (!payload || !payload->get().is_object()) return std::nullopt;
    const Json& body = payload->get();
    ValueEvent event;
    event.subscription = body.get_int("subscription");
    event.time = static_cast<uint64_t>(body.get_int("time"));
    if (auto changes = body.get("changes")) {
      for (const auto& entry : changes->get().as_array()) {
        ValueEvent::Change change;
        change.signal = entry.get_string("signal");
        change.value = entry.get_string("value");
        change.width = static_cast<uint32_t>(entry.get_int("width"));
        event.changes.push_back(std::move(change));
      }
    }
    return event;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

ResponseV2 DebugClient::transact(const std::string& command, Json payload) {
  RequestV2 request;
  request.command = command;
  request.token = next_token_++;
  request.payload = std::move(payload);
  channel_->send(rpc::serialize_request_v2(request));
  while (true) {
    auto message = channel_->receive();
    if (!message) {
      throw std::runtime_error("debug channel closed");
    }
    if (absorb_event(*message)) continue;
    ResponseV2 response;
    try {
      auto server_message = rpc::parse_server_message_v2(*message);
      if (server_message.kind != rpc::ServerMessageV2::Kind::Response) {
        continue;  // unrelated event
      }
      response = std::move(server_message.response);
    } catch (const std::exception&) {
      continue;  // stray/unparseable message
    }
    if (response.token != request.token) continue;  // older request
    if (!response.ok()) {
      last_error_ = response.reason;
      last_error_code_ = response.error;
    } else {
      last_error_code_ = ErrorCode::None;
    }
    return response;
  }
}

bool DebugClient::require_v2(const char* what) {
  last_error_ = std::string(what) + " requires protocol v2";
  last_error_code_ = ErrorCode::UnsupportedCapability;
  return false;
}

// ---------------------------------------------------------------------------
// handshake
// ---------------------------------------------------------------------------

bool DebugClient::connect(const std::string& client_name, bool binary_events) {
  if (protocol_ == Protocol::V1) return require_v2("connect");
  Json payload = Json::object();
  payload["client"] = Json(client_name);
  if (binary_events) payload["binary_events"] = Json(true);
  auto response = transact("connect", std::move(payload));
  if (!response.ok()) return false;
  if (auto caps = response.payload.get("capabilities")) {
    capabilities_ = rpc::Capabilities::from_json(caps->get());
  }
  binary_events_ = response.payload.get_bool("binary_events");
  return true;
}

// ---------------------------------------------------------------------------
// breakpoints
// ---------------------------------------------------------------------------

std::vector<int64_t> DebugClient::set_breakpoint(const std::string& filename,
                                                 uint32_t line,
                                                 const std::string& condition) {
  Json ids_json = Json::array();
  if (protocol_ == Protocol::V1) {
    Request request;
    request.kind = Request::Kind::Breakpoint;
    request.breakpoint.action = rpc::BreakpointRequest::Action::Add;
    request.breakpoint.filename = filename;
    request.breakpoint.line = line;
    request.breakpoint.condition = condition;
    auto response = transact_v1(std::move(request));
    if (response.success && response.payload.contains("ids")) {
      ids_json = response.payload["ids"];
    }
  } else {
    Json payload = Json::object();
    payload["filename"] = Json(filename);
    payload["line"] = Json(static_cast<int64_t>(line));
    if (!condition.empty()) payload["condition"] = Json(condition);
    auto response = transact("breakpoint-add", std::move(payload));
    if (response.ok() && response.payload.contains("ids")) {
      ids_json = response.payload["ids"];
    }
  }
  std::vector<int64_t> ids;
  if (ids_json.is_array()) {
    for (const auto& id : ids_json.as_array()) ids.push_back(id.as_int());
  }
  return ids;
}

size_t DebugClient::remove_breakpoint(const std::string& filename,
                                      uint32_t line) {
  if (protocol_ == Protocol::V1) {
    Request request;
    request.kind = Request::Kind::Breakpoint;
    request.breakpoint.action = rpc::BreakpointRequest::Action::Remove;
    request.breakpoint.filename = filename;
    request.breakpoint.line = line;
    auto response = transact_v1(std::move(request));
    return static_cast<size_t>(response.payload.get_int("removed"));
  }
  Json payload = Json::object();
  payload["filename"] = Json(filename);
  payload["line"] = Json(static_cast<int64_t>(line));
  auto response = transact("breakpoint-remove", std::move(payload));
  return static_cast<size_t>(response.payload.get_int("removed"));
}

Json DebugClient::list_locations(const std::string& filename, uint32_t line) {
  if (protocol_ == Protocol::V1) {
    Request request;
    request.kind = Request::Kind::BpLocation;
    request.bp_location.filename = filename;
    request.bp_location.line = line;
    auto response = transact_v1(std::move(request));
    if (auto list = response.payload.get("breakpoints")) return list->get();
    return Json::array();
  }
  Json payload = Json::object();
  payload["filename"] = Json(filename);
  payload["line"] = Json(static_cast<int64_t>(line));
  auto response = transact("bp-location", std::move(payload));
  if (auto list = response.payload.get("breakpoints")) return list->get();
  return Json::array();
}

// ---------------------------------------------------------------------------
// execution control
// ---------------------------------------------------------------------------

bool DebugClient::send_command(CommandRequest::Command command, uint64_t time) {
  if (protocol_ == Protocol::V1) {
    Request request;
    request.kind = Request::Kind::Command;
    request.command.command = command;
    request.command.time = time;
    return transact_v1(std::move(request)).success;
  }
  Json payload = Json::object();
  if (command == CommandRequest::Command::Jump) {
    payload["time"] = Json(static_cast<int64_t>(time));
  }
  return transact(rpc::v2_command_name(command), std::move(payload)).ok();
}

bool DebugClient::resume() { return send_command(CommandRequest::Command::Continue); }
bool DebugClient::step_over() { return send_command(CommandRequest::Command::StepOver); }
bool DebugClient::step_back() { return send_command(CommandRequest::Command::StepBack); }
bool DebugClient::reverse_resume() {
  return send_command(CommandRequest::Command::ReverseContinue);
}
bool DebugClient::pause() { return send_command(CommandRequest::Command::Pause); }
bool DebugClient::jump(uint64_t time) {
  return send_command(CommandRequest::Command::Jump, time);
}
bool DebugClient::detach() { return send_command(CommandRequest::Command::Detach); }

bool DebugClient::disconnect() {
  if (protocol_ == Protocol::V1) return detach();
  return transact("disconnect", Json::object()).ok();
}

// ---------------------------------------------------------------------------
// inspection
// ---------------------------------------------------------------------------

std::optional<rpc::StopEvent> DebugClient::wait_stop(
    std::optional<std::chrono::milliseconds> timeout) {
  while (true) {
    if (!stops_.empty()) {
      auto stop = std::move(stops_.front());
      stops_.pop_front();
      return stop;
    }
    auto message = channel_->receive(timeout);
    if (!message) return std::nullopt;
    // Other event kinds queue for their own waiters; stray responses
    // (e.g. after a timeout race) are ignored.
    absorb_event(*message);
  }
}

std::optional<ValueEvent> DebugClient::wait_values(
    std::optional<std::chrono::milliseconds> timeout) {
  while (true) {
    if (!values_.empty()) {
      auto event = std::move(values_.front());
      values_.pop_front();
      return event;
    }
    auto message = channel_->receive(timeout);
    if (!message) return std::nullopt;
    absorb_event(*message);
  }
}

std::optional<rpc::BreakpointChangeEvent> DebugClient::wait_breakpoint_change(
    std::optional<std::chrono::milliseconds> timeout) {
  while (true) {
    if (!breakpoint_changes_.empty()) {
      auto event = std::move(breakpoint_changes_.front());
      breakpoint_changes_.pop_front();
      return event;
    }
    auto message = channel_->receive(timeout);
    if (!message) return std::nullopt;
    absorb_event(*message);
  }
}

std::optional<std::string> DebugClient::evaluate(
    const std::string& expression, std::optional<int64_t> breakpoint_id,
    const std::string& instance) {
  if (protocol_ == Protocol::V1) {
    Request request;
    request.kind = Request::Kind::Evaluation;
    request.evaluation.expression = expression;
    request.evaluation.breakpoint_id = breakpoint_id;
    request.evaluation.instance_name = instance;
    auto response = transact_v1(std::move(request));
    if (!response.success) return std::nullopt;
    return response.payload.get_string("result");
  }
  Json payload = Json::object();
  payload["expression"] = Json(expression);
  if (breakpoint_id) payload["breakpoint_id"] = Json(*breakpoint_id);
  if (!instance.empty()) payload["instance_name"] = Json(instance);
  auto response = transact("evaluate", std::move(payload));
  if (!response.ok()) return std::nullopt;
  return response.payload.get_string("result");
}

Json DebugClient::info() {
  if (protocol_ == Protocol::V1) {
    Request request;
    request.kind = Request::Kind::DebuggerInfo;
    return transact_v1(std::move(request)).payload;
  }
  return transact("info", Json::object()).payload;
}

// ---------------------------------------------------------------------------
// v2 request families
// ---------------------------------------------------------------------------

std::vector<EvalResult> DebugClient::evaluate_batch(
    const std::vector<std::string>& expressions,
    std::optional<int64_t> breakpoint_id, const std::string& instance) {
  std::vector<EvalResult> results;
  if (protocol_ == Protocol::V1) {
    // Degraded path: one round trip per expression.
    for (const auto& expression : expressions) {
      EvalResult result;
      result.expression = expression;
      if (auto value = evaluate(expression, breakpoint_id, instance)) {
        result.ok = true;
        result.value = *value;
      } else {
        result.reason = last_error_;
      }
      results.push_back(std::move(result));
    }
    return results;
  }
  Json payload = Json::object();
  Json list = Json::array();
  for (const auto& expression : expressions) list.push_back(Json(expression));
  payload["expressions"] = std::move(list);
  if (breakpoint_id) payload["breakpoint_id"] = Json(*breakpoint_id);
  if (!instance.empty()) payload["instance_name"] = Json(instance);
  auto response = transact("evaluate-batch", std::move(payload));
  if (!response.ok()) return results;
  if (auto entries = response.payload.get("results")) {
    for (const auto& entry : entries->get().as_array()) {
      EvalResult result;
      result.expression = entry.get_string("expression");
      result.ok = entry.get_string("status") == "success";
      result.value = entry.get_string("value");
      result.width = static_cast<uint32_t>(entry.get_int("width"));
      result.reason = entry.get_string("reason");
      results.push_back(std::move(result));
    }
  }
  return results;
}

std::optional<int64_t> DebugClient::watch(const std::string& expression,
                                          const std::string& instance) {
  if (protocol_ == Protocol::V1) {
    require_v2("watch");
    return std::nullopt;
  }
  Json payload = Json::object();
  payload["expression"] = Json(expression);
  if (!instance.empty()) payload["instance_name"] = Json(instance);
  auto response = transact("watch", std::move(payload));
  if (!response.ok()) return std::nullopt;
  return response.payload.get_int("id");
}

bool DebugClient::unwatch(int64_t id) {
  if (protocol_ == Protocol::V1) return require_v2("unwatch");
  Json payload = Json::object();
  payload["id"] = Json(id);
  return transact("unwatch", std::move(payload)).ok();
}

std::optional<int64_t> DebugClient::subscribe(
    const std::vector<std::string>& signals, uint32_t decimation,
    const std::string& instance, uint64_t min_interval) {
  if (protocol_ == Protocol::V1) {
    require_v2("subscribe");
    return std::nullopt;
  }
  Json payload = Json::object();
  Json list = Json::array();
  for (const auto& signal : signals) list.push_back(Json(signal));
  payload["signals"] = std::move(list);
  if (decimation != 1) {
    payload["decimation"] = Json(static_cast<int64_t>(decimation));
  }
  if (min_interval != 0) {
    payload["min_interval"] = Json(min_interval);
  }
  if (!instance.empty()) payload["instance_name"] = Json(instance);
  auto response = transact("subscribe", std::move(payload));
  if (!response.ok()) return std::nullopt;
  return response.payload.get_int("id");
}

bool DebugClient::unsubscribe(int64_t id) {
  if (protocol_ == Protocol::V1) return require_v2("unsubscribe");
  Json payload = Json::object();
  payload["id"] = Json(id);
  return transact("unsubscribe", std::move(payload)).ok();
}

Json DebugClient::list_instances() {
  if (protocol_ == Protocol::V1) {
    require_v2("list-instances");
    return Json::array();
  }
  auto response = transact("list-instances", Json::object());
  if (auto list = response.payload.get("instances")) return list->get();
  return Json::array();
}

Json DebugClient::list_variables(const std::string& instance) {
  if (protocol_ == Protocol::V1) {
    require_v2("list-variables");
    return Json::array();
  }
  Json payload = Json::object();
  payload["instance_name"] = Json(instance);
  auto response = transact("list-variables", std::move(payload));
  if (auto list = response.payload.get("variables")) return list->get();
  return Json::array();
}

Json DebugClient::stats() {
  if (protocol_ == Protocol::V1) {
    require_v2("stats");
    return Json::object();
  }
  return transact("stats", Json::object()).payload;
}

std::string DebugClient::metrics() {
  if (protocol_ == Protocol::V1) {
    require_v2("metrics");
    return "";
  }
  auto response = transact("metrics", Json::object());
  if (!response.ok()) return "";
  return response.payload.get_string("text");
}

Json DebugClient::metrics_json() {
  if (protocol_ == Protocol::V1) {
    require_v2("metrics");
    return Json::object();
  }
  Json payload = Json::object();
  payload["format"] = Json("json");
  auto response = transact("metrics", std::move(payload));
  if (auto metrics = response.payload.get("metrics")) return metrics->get();
  return Json::object();
}

Json DebugClient::trace_control(const std::string& action) {
  if (protocol_ == Protocol::V1) {
    require_v2("trace");
    return Json::object();
  }
  Json payload = Json::object();
  payload["action"] = Json(action);
  return transact("trace", std::move(payload)).payload;
}

std::string DebugClient::trace_dump() {
  if (protocol_ == Protocol::V1) {
    require_v2("trace");
    return "";
  }
  Json payload = Json::object();
  payload["action"] = Json("dump");
  auto response = transact("trace", std::move(payload));
  if (!response.ok()) return "";
  return response.payload.get_string("json");
}

bool DebugClient::set_value(const std::string& name, const std::string& value) {
  if (protocol_ == Protocol::V1) return require_v2("set-value");
  Json payload = Json::object();
  payload["name"] = Json(name);
  payload["value"] = Json(value);
  return transact("set-value", std::move(payload)).ok();
}

}  // namespace hgdb::debugger
