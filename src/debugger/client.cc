#include "debugger/client.h"

#include <stdexcept>

namespace hgdb::debugger {

using common::Json;
using rpc::CommandRequest;
using rpc::Request;

DebugClient::DebugClient(std::unique_ptr<rpc::Channel> channel)
    : channel_(std::move(channel)) {}

rpc::GenericResponse DebugClient::transact(Request request) {
  request.token = next_token_++;
  channel_->send(rpc::serialize_request(request));
  while (true) {
    auto message = channel_->receive();
    if (!message) {
      throw std::runtime_error("debug channel closed");
    }
    auto server_message = rpc::parse_server_message(*message);
    if (server_message.kind == rpc::ServerMessage::Kind::Stop) {
      stops_.push_back(std::move(server_message.stop));
      continue;
    }
    if (server_message.generic.token == request.token) {
      if (!server_message.generic.success) {
        last_error_ = server_message.generic.reason;
      }
      return std::move(server_message.generic);
    }
    // Response to an older request: drop.
  }
}

std::vector<int64_t> DebugClient::set_breakpoint(const std::string& filename,
                                                 uint32_t line,
                                                 const std::string& condition) {
  Request request;
  request.kind = Request::Kind::Breakpoint;
  request.breakpoint.action = rpc::BreakpointRequest::Action::Add;
  request.breakpoint.filename = filename;
  request.breakpoint.line = line;
  request.breakpoint.condition = condition;
  auto response = transact(std::move(request));
  std::vector<int64_t> ids;
  if (response.success && response.payload.contains("ids")) {
    for (const auto& id : response.payload["ids"].as_array()) {
      ids.push_back(id.as_int());
    }
  }
  return ids;
}

size_t DebugClient::remove_breakpoint(const std::string& filename,
                                      uint32_t line) {
  Request request;
  request.kind = Request::Kind::Breakpoint;
  request.breakpoint.action = rpc::BreakpointRequest::Action::Remove;
  request.breakpoint.filename = filename;
  request.breakpoint.line = line;
  auto response = transact(std::move(request));
  return static_cast<size_t>(response.payload.get_int("removed"));
}

Json DebugClient::list_locations(const std::string& filename, uint32_t line) {
  Request request;
  request.kind = Request::Kind::BpLocation;
  request.bp_location.filename = filename;
  request.bp_location.line = line;
  auto response = transact(std::move(request));
  if (auto list = response.payload.get("breakpoints")) return list->get();
  return Json::array();
}

bool DebugClient::send_command(CommandRequest::Command command, uint64_t time) {
  Request request;
  request.kind = Request::Kind::Command;
  request.command.command = command;
  request.command.time = time;
  return transact(std::move(request)).success;
}

bool DebugClient::resume() { return send_command(CommandRequest::Command::Continue); }
bool DebugClient::step_over() { return send_command(CommandRequest::Command::StepOver); }
bool DebugClient::step_back() { return send_command(CommandRequest::Command::StepBack); }
bool DebugClient::reverse_resume() {
  return send_command(CommandRequest::Command::ReverseContinue);
}
bool DebugClient::pause() { return send_command(CommandRequest::Command::Pause); }
bool DebugClient::jump(uint64_t time) {
  return send_command(CommandRequest::Command::Jump, time);
}
bool DebugClient::detach() { return send_command(CommandRequest::Command::Detach); }

std::optional<rpc::StopEvent> DebugClient::wait_stop(
    std::optional<std::chrono::milliseconds> timeout) {
  if (!stops_.empty()) {
    auto stop = std::move(stops_.front());
    stops_.pop_front();
    return stop;
  }
  while (true) {
    auto message = channel_->receive(timeout);
    if (!message) return std::nullopt;
    auto server_message = rpc::parse_server_message(*message);
    if (server_message.kind == rpc::ServerMessage::Kind::Stop) {
      return std::move(server_message.stop);
    }
    // Stray response (e.g. after a timeout race): ignore.
  }
}

std::optional<std::string> DebugClient::evaluate(
    const std::string& expression, std::optional<int64_t> breakpoint_id,
    const std::string& instance) {
  Request request;
  request.kind = Request::Kind::Evaluation;
  request.evaluation.expression = expression;
  request.evaluation.breakpoint_id = breakpoint_id;
  request.evaluation.instance_name = instance;
  auto response = transact(std::move(request));
  if (!response.success) return std::nullopt;
  return response.payload.get_string("result");
}

Json DebugClient::info() {
  Request request;
  request.kind = Request::Kind::DebuggerInfo;
  return transact(std::move(request)).payload;
}

}  // namespace hgdb::debugger
