// hgdb-cli: the gdb-inspired interactive debugger from the paper's
// Sec. 3.5, driving one of the Fig. 5 workloads under the native RTL
// simulator. The debugger talks to the runtime over the same RPC protocol
// an IDE would use; the simulation runs on a background thread like a
// live simulator process.
//
// Usage: hgdb-cli <workload> [--optimized] [--cycles N]
//                 [--replay vcd|wvx|<dump-path>] [--io auto|mmap|buffered]
//                 [--dap [port]]
//        hgdb-cli wvx-verify <file.wvx>
//        hgdb-cli wvx-convert <in.vcd> <out.wvx> [--v2] [--v3]
//                 [--fixed-codec] [--no-dedup] [--no-checksums]
//                 [--block-cap N] [--jobs N] [--shard-by scope|none]
//   workload: multiply | mm | mt-matmul | vvadd | qsort | dhrystone |
//             median | towers | spmv | mt-vvadd | fpu
//
// --dap additionally serves the Debug Adapter Protocol on loopback TCP
// (0/omitted = ephemeral; the bound port is printed), so VSCode can
// attach to the same simulation the REPL is debugging.
//
// The REPL speaks debug protocol v2 natively: it negotiates capabilities
// at connect time (so reverse/jump availability is known up front) and
// exposes the v2 request families (watchpoints, hierarchy browsing,
// batched evaluation, stats).
//
// `wvx-verify` checks a waveform index (any format version), reporting
// the version, block codec and alias table, verifying per-block checksums
// and naming the first corrupt block with a typed fault class.
// `wvx-convert` converts a VCD dump to the index offline; the flags pick
// the on-disk version (v4 per-signal codec auto-selection by default,
// --v3 / --v2 / --fixed-codec / --no-dedup for the older layouts).
// --shard-by scope splits the output into per-scope shard files behind a
// manifest; --jobs N (default: hardware concurrency) runs the conversion
// pipeline with N writer workers — shard content is byte-identical for
// every jobs value.
//
// With --replay the workload is first simulated to a trace dump, then the
// same REPL attaches to the *trace* through the replay backend (paper
// Sec. 3.3): identical commands, free time travel, no live simulator.
// "vcd" debugs the dump through the in-memory trace::VcdTrace; "wvx"
// dumps the waveform index *directly* from the simulator (no VCD text
// round-trip) and debugs through waveform::IndexedWaveform with
// LRU-bounded residency; --io picks its storage backend (default: mmap
// where available). An existing .vcd/.wvx path (single-file or shard
// manifest — they are opened the same way) skips the simulation and
// replays that dump directly.
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "debugger/client.h"
#include "frontend/compile.h"
#include "obs/metrics.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"
#include "sim/vcd_writer.h"
#include "symbols/symbol_table.h"
#include "trace/vcd_reader.h"
#include "vpi/native_backend.h"
#include "vpi/replay_backend.h"
#include "waveform/index_writer.h"
#include "waveform/indexed_waveform.h"
#include "waveform/sharded_writer.h"
#include "waveform/wvx_verify.h"
#include "workloads/workloads.h"

namespace {

using namespace hgdb;

void print_json(const common::Json& value, int indent) {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  if (value.is_object()) {
    for (const auto& [key, child] : value.as_object()) {
      if (child.is_object()) {
        std::cout << pad << key << ":\n";
        print_json(child, indent + 1);
      } else {
        std::cout << pad << key << " = " << (child.is_string()
                                                 ? child.as_string()
                                                 : child.dump())
                  << "\n";
      }
    }
  } else {
    std::cout << pad << value.dump() << "\n";
  }
}

void print_stop(const rpc::StopEvent& stop) {
  std::cout << "stopped at time " << stop.time << ", " << stop.frames.size()
            << " thread(s)\n";
  for (size_t i = 0; i < stop.frames.size(); ++i) {
    const auto& frame = stop.frames[i];
    std::cout << "  [" << i << "] " << frame.instance_name << " at "
              << frame.filename << ":" << frame.line << " (bp "
              << frame.breakpoint_id << ")\n";
    if (!frame.locals.as_object().empty()) {
      std::cout << "    locals:\n";
      print_json(frame.locals, 3);
    }
  }
  for (const auto& hit : stop.watch_hits) {
    std::cout << "  watch " << hit.id << ": " << hit.expression << " changed "
              << hit.old_value << " -> " << hit.new_value << "\n";
  }
}

void print_capabilities(const debugger::DebugClient& client) {
  if (!client.capabilities()) return;
  const auto& caps = *client.capabilities();
  std::cout << "connected (protocol v" << caps.protocol_version << ", "
            << caps.backend << " backend; time travel "
            << (caps.time_travel ? "yes" : "no") << ", set-value "
            << (caps.set_value ? "yes" : "no") << ")\n";
}

/// The gdb-style command loop, shared by live and replay sessions.
/// `on_first_run`, when set, fires before the first c/s/rs/rc/wait command —
/// replay sessions use it to hold the trace until breakpoints are in place.
void run_repl(debugger::DebugClient& client, const std::atomic<bool>& done,
              const std::string& finished_message,
              std::function<void()> on_first_run = {}) {
  std::optional<rpc::StopEvent> current_stop;
  std::string line;
  while (std::cout << "(hgdb) " << std::flush, std::getline(std::cin, line)) {
    std::istringstream input(line);
    std::string command;
    input >> command;
    if (command.empty()) continue;
    try {
      if (command == "help") {
        std::cout << "b <file>:<line> [cond]  set breakpoint\n"
                     "d <file>:<line>         delete breakpoint\n"
                     "l <file>                list breakpoint lines\n"
                     "c / s / rs / rc         continue / step / reverse-step /"
                     " reverse-continue\n"
                     "j <time>                jump to absolute time"
                     " (needs time travel)\n"
                     "wait                    wait for the next stop\n"
                     "p <expr>                evaluate in current frame\n"
                     "pp <e1> ; <e2> ; ...    batched evaluation\n"
                     "watch <expr>            stop when the value changes\n"
                     "unwatch <id>            remove a watchpoint\n"
                     "sub [N] [@T] <sig>...   stream value changes (every Nth"
                     " event; @T = min sim-time between events)\n"
                     "unsub <id>              cancel a subscription\n"
                     "vwait                   wait for the next value event\n"
                     "instances               list design instances\n"
                     "vars <instance>         list an instance's variables\n"
                     "frames                  show last stop\n"
                     "info / files / stats    runtime info / source files /"
                     " counters\n"
                     "metrics                 Prometheus exposition of the"
                     " runtime's registry\n"
                     "trace start|stop|dump <file>  control the span recorder"
                     " / write Perfetto JSON\n"
                     "caps                    negotiated capabilities\n"
                     "q                       quit\n";
      } else if (command == "b" || command == "d") {
        std::string location;
        input >> location;
        const size_t colon = location.rfind(':');
        if (colon == std::string::npos) {
          std::cout << "expected <file>:<line>\n";
          continue;
        }
        const std::string file = location.substr(0, colon);
        const uint32_t line_number =
            static_cast<uint32_t>(std::stoul(location.substr(colon + 1)));
        if (command == "b") {
          std::string condition;
          std::getline(input, condition);
          auto ids = client.set_breakpoint(file, line_number, condition);
          if (ids.empty()) {
            std::cout << "error: " << client.last_error() << "\n";
          } else {
            std::cout << "inserted " << ids.size() << " breakpoint(s)\n";
          }
        } else {
          std::cout << "removed " << client.remove_breakpoint(file, line_number)
                    << " breakpoint(s)\n";
        }
      } else if (command == "l") {
        std::string file;
        input >> file;
        auto list = client.list_locations(file);
        for (const auto& entry : list.as_array()) {
          std::cout << "  " << entry.get_string("filename") << ":"
                    << entry.get_int("line") << " [" << entry.get_string("instance")
                    << "]\n";
        }
      } else if (command == "c" || command == "s" || command == "rs" ||
                 command == "rc" || command == "wait") {
        if (on_first_run) {
          on_first_run();
          on_first_run = nullptr;
        }
        bool ok = true;
        if (command == "c") ok = client.resume();
        if (command == "s") ok = client.step_over();
        if (command == "rs") ok = client.step_back();
        if (command == "rc") ok = client.reverse_resume();
        if (!ok && command != "wait") {
          // Not stopped yet (e.g. first 'c' after setting breakpoints).
          std::cout << "(simulation running)\n";
        }
        current_stop = client.wait_stop(std::chrono::milliseconds(2000));
        if (current_stop) {
          print_stop(*current_stop);
        } else if (done.load()) {
          std::cout << finished_message << "\n";
        } else {
          std::cout << "(no stop within 2s; still running)\n";
        }
      } else if (command == "p") {
        std::string expression;
        std::getline(input, expression);
        std::optional<int64_t> scope;
        if (current_stop && !current_stop->frames.empty()) {
          scope = current_stop->frames[0].breakpoint_id;
        }
        auto result = client.evaluate(expression, scope);
        if (result) {
          std::cout << "= " << *result << "\n";
        } else {
          std::cout << "error: " << client.last_error() << "\n";
        }
      } else if (command == "pp") {
        std::string rest;
        std::getline(input, rest);
        std::vector<std::string> expressions;
        std::istringstream splitter(rest);
        std::string expression;
        while (std::getline(splitter, expression, ';')) {
          const auto begin = expression.find_first_not_of(" \t");
          if (begin == std::string::npos) continue;
          const auto end = expression.find_last_not_of(" \t");
          expressions.push_back(expression.substr(begin, end - begin + 1));
        }
        std::optional<int64_t> scope;
        if (current_stop && !current_stop->frames.empty()) {
          scope = current_stop->frames[0].breakpoint_id;
        }
        for (const auto& result : client.evaluate_batch(expressions, scope)) {
          std::cout << "  " << result.expression << " = "
                    << (result.ok ? result.value : "<" + result.reason + ">")
                    << "\n";
        }
      } else if (command == "watch") {
        std::string expression;
        std::getline(input, expression);
        if (auto id = client.watch(expression)) {
          std::cout << "watchpoint " << *id << " armed\n";
        } else {
          std::cout << "error: " << client.last_error() << "\n";
        }
      } else if (command == "unwatch") {
        int64_t id = 0;
        input >> id;
        if (client.unwatch(id)) {
          std::cout << "watchpoint " << id << " removed\n";
        } else {
          std::cout << "error: " << client.last_error() << "\n";
        }
      } else if (command == "sub") {
        uint32_t decimation = 1;
        uint64_t min_interval = 0;
        std::vector<std::string> signals;
        std::string word;
        bool first = true;
        while (input >> word) {
          if (first && !word.empty() && word.size() <= 9 &&
              word.find_first_not_of("0123456789") == std::string::npos) {
            decimation = static_cast<uint32_t>(std::stoul(word));
          } else if (signals.empty() && word.size() > 1 && word[0] == '@' &&
                     word.find_first_not_of("0123456789", 1) ==
                         std::string::npos) {
            min_interval = std::stoull(word.substr(1));
          } else {
            signals.push_back(word);
          }
          first = false;
        }
        if (signals.empty()) {
          std::cout << "usage: sub [N] [@T] <signal> [signal...]\n";
        } else if (auto id =
                       client.subscribe(signals, decimation, "", min_interval)) {
          std::cout << "subscription " << *id << " armed (1 of every "
                    << decimation << " events";
          if (min_interval != 0) {
            std::cout << ", >= " << min_interval << " sim-time apart";
          }
          std::cout << ")\n";
        } else {
          std::cout << "error: " << client.last_error() << "\n";
        }
      } else if (command == "unsub") {
        int64_t id = 0;
        input >> id;
        if (client.unsubscribe(id)) {
          std::cout << "subscription " << id << " removed\n";
        } else {
          std::cout << "error: " << client.last_error() << "\n";
        }
      } else if (command == "vwait") {
        auto event = client.wait_values(std::chrono::milliseconds(2000));
        if (event) {
          std::cout << "values @" << event->time << " (sub "
                    << event->subscription << "):\n";
          for (const auto& change : event->changes) {
            std::cout << "  " << change.signal << " = " << change.value
                      << " (" << change.width << "b)\n";
          }
        } else if (done.load()) {
          std::cout << finished_message << "\n";
        } else {
          std::cout << "(no value event within 2s)\n";
        }
      } else if (command == "j") {
        uint64_t time = 0;
        input >> time;
        if (client.jump(time)) {
          std::cout << "jumped to time " << time << "\n";
        } else {
          std::cout << "error: " << client.last_error() << "\n";
        }
      } else if (command == "instances") {
        // Keep the Json alive for the loop (as_array() returns a member
        // reference; iterating a temporary's member dangles).
        const auto instances = client.list_instances();
        for (const auto& entry : instances.as_array()) {
          std::cout << "  [" << entry.get_int("id") << "] "
                    << entry.get_string("name") << "\n";
        }
      } else if (command == "vars") {
        std::string instance;
        input >> instance;
        const auto variables = client.list_variables(instance);
        if (client.last_error_code() != rpc::ErrorCode::None) {
          std::cout << "error: " << client.last_error() << "\n";
        } else if (variables.size() == 0) {
          std::cout << "(no variables)\n";
        } else {
          for (const auto& entry : variables.as_array()) {
            std::cout << "  " << entry.get_string("name") << " = "
                      << entry.get_string("value") << "\n";
          }
        }
      } else if (command == "stats") {
        print_json(client.stats(), 1);
      } else if (command == "metrics") {
        const std::string text = client.metrics();
        if (text.empty()) {
          std::cout << "error: " << client.last_error() << "\n";
        } else {
          std::cout << text;
        }
      } else if (command == "trace") {
        std::string action;
        input >> action;
        if (action == "start" || action == "stop" || action == "clear" ||
            action == "status") {
          const auto status = client.trace_control(action);
          if (client.last_error_code() != rpc::ErrorCode::None) {
            std::cout << "error: " << client.last_error() << "\n";
          } else {
            print_json(status, 1);
          }
        } else if (action == "dump") {
          std::string path;
          input >> path;
          if (path.empty()) {
            std::cout << "usage: trace dump <file>\n";
            continue;
          }
          const std::string json = client.trace_dump();
          if (json.empty()) {
            std::cout << "error: " << client.last_error() << "\n";
            continue;
          }
          std::ofstream out(path, std::ios::binary | std::ios::trunc);
          if (!out) {
            std::cout << "cannot open " << path << "\n";
            continue;
          }
          out << json;
          std::cout << "wrote " << json.size() << " bytes to " << path
                    << " (load in ui.perfetto.dev or chrome://tracing)\n";
        } else {
          std::cout << "usage: trace start|stop|clear|status|dump <file>\n";
        }
      } else if (command == "caps") {
        print_capabilities(client);
      } else if (command == "frames") {
        if (current_stop) print_stop(*current_stop);
      } else if (command == "info") {
        print_json(client.info(), 1);
      } else if (command == "files") {
        auto info = client.info();
        for (const auto& file : info["files"].as_array()) {
          std::cout << "  " << file.as_string() << "\n";
        }
      } else if (command == "q" || command == "quit") {
        break;
      } else {
        std::cout << "unknown command '" << command << "' (try 'help')\n";
      }
    } catch (const std::exception& error) {
      std::cout << "error: " << error.what() << "\n";
    }
  }
}

/// Builds and compiles the named workload (shared by live and replay).
frontend::CompileResult compile_workload(const std::string& name,
                                         bool debug_mode) {
  std::unique_ptr<ir::Circuit> circuit;
  if (name == "fpu") {
    circuit = workloads::build_fpu_compare(/*with_bug=*/true);
  } else {
    circuit = workloads::workload(name).build();
  }
  frontend::CompileOptions options;
  options.debug_mode = debug_mode;
  return frontend::compile(std::move(circuit), options);
}

/// Deletes the replay dump files however the session ends.
struct TempFileRemover {
  std::vector<std::string> paths;
  ~TempFileRemover() {
    for (const auto& path : paths) std::remove(path.c_str());
  }
};

/// Starts the DAP listener when requested and announces the port.
void maybe_serve_dap(runtime::Runtime& runtime,
                     std::optional<uint16_t> dap_port) {
  if (!dap_port) return;
  const uint16_t port = runtime.serve_dap(*dap_port);
  std::cout << "DAP listener on 127.0.0.1:" << port
            << " (VSCode: attach with \"debugServer\": " << port << ")\n";
}

/// Offline session: simulate once while dumping a trace, then debug the
/// trace with the unified interface — the paper's replay flow end to end.
/// "wvx" dumps the waveform index directly from the simulator (no VCD
/// text is ever written); "vcd" keeps the text dump + in-memory parse. An
/// existing dump path (.vcd, .wvx single file or .wvx shard manifest)
/// skips the simulation and replays that dump as-is.
int run_replay_cli(const std::string& name, bool debug_mode, uint64_t cycles,
                   const std::string& format, waveform::IoMode io_mode,
                   std::optional<uint16_t> dap_port, bool binary_events) {
  auto compiled = compile_workload(name, debug_mode);

  const bool existing_dump = format != "vcd" && format != "wvx";
  const bool wvx =
      existing_dump ? waveform::is_wvx_path(format) : format == "wvx";
  std::string dump_path;
  TempFileRemover remover;
  if (existing_dump) {
    dump_path = format;  // the user's file; never simulated, never removed
  } else {
    // Per-process paths: concurrent sessions must not clobber each other.
    dump_path = "/tmp/hgdb_cli_replay." + std::to_string(::getpid()) +
                (wvx ? ".wvx" : ".vcd");
    remover.paths.push_back(dump_path);
    sim::Simulator simulator(compiled.netlist);
    sim::VcdWriter writer(simulator, dump_path);
    writer.attach();
    simulator.run(cycles);
    writer.finish();
  }

  std::shared_ptr<waveform::WaveformSource> source;
  if (wvx) {
    auto indexed = std::make_shared<waveform::IndexedWaveform>(
        dump_path,
        waveform::WaveformOpenOptions{waveform::kDefaultCacheBlocks, io_mode});
    std::cout << (existing_dump ? "opened" : "dumped") << " "
              << indexed->signal_count() << " signals into "
              << indexed->total_blocks() << " blocks (" << dump_path
              << ", format v" << indexed->version() << ", "
              << indexed->codec_name() << " codec";
    if (indexed->sharded()) {
      std::cout << ", " << indexed->shard_count() << " shards";
    }
    std::cout << "); " << indexed->io_kind() << " reads, cache capacity "
              << indexed->cache_capacity() << " blocks\n";
    source = std::move(indexed);
  } else {
    source = std::make_shared<trace::VcdTrace>(trace::parse_vcd_file(dump_path));
  }
  if (existing_dump) {
    std::cout << "replaying dump '" << dump_path << "' through the "
              << (wvx ? "indexed" : "in-memory") << " waveform store\n";
  } else {
    std::cout << "replaying " << cycles << " dumped cycles of '" << name
              << "' through the " << (wvx ? "indexed" : "in-memory")
              << " waveform store\n";
  }

  vpi::ReplayBackend backend{trace::ReplayEngine(std::move(source))};
  symbols::MemorySymbolTable table(compiled.symbols);
  runtime::RuntimeOptions runtime_options;
  runtime_options.metrics = &obs::MetricsRegistry::global();
  runtime::Runtime runtime(backend, table, runtime_options);
  runtime.attach();
  maybe_serve_dap(runtime, dap_port);

  auto [client_channel, server_channel] = rpc::make_channel_pair();
  runtime.serve(std::move(server_channel));
  debugger::DebugClient client(std::move(client_channel));
  client.connect("hgdb-cli", binary_events);
  print_capabilities(client);

  std::atomic<bool> done{false};
  std::thread replay_thread;
  // Replay is deterministic and fast: hold it until breakpoints are set,
  // otherwise the whole dump replays before the first command lands.
  auto start_replay = [&] {
    replay_thread = std::thread([&] {
      backend.run_forward();
      done.store(true);
    });
  };

  std::cout << "type 'help' for commands; set breakpoints, then 'c' starts "
               "the replay\n";
  run_repl(client, done, "trace replay reached the end of the dump",
           start_replay);

  client.detach();
  if (replay_thread.joinable()) replay_thread.join();
  runtime.stop_service();
  return 0;
}

int run_cli(const std::string& name, bool debug_mode, uint64_t cycles,
            std::optional<uint16_t> dap_port, bool binary_events) {
  auto compiled = compile_workload(name, debug_mode);
  symbols::MemorySymbolTable table(compiled.symbols);
  std::cout << "compiled '" << name << "' (" << (debug_mode ? "debug" : "optimized")
            << "): " << compiled.netlist.signals().size() << " signals, "
            << table.data().breakpoints.size() << " breakpoints\n";

  sim::Simulator simulator(compiled.netlist);
  simulator.enable_checkpoints(true);
  vpi::NativeBackend backend(simulator);
  runtime::RuntimeOptions runtime_options;
  runtime_options.metrics = &obs::MetricsRegistry::global();
  runtime::Runtime runtime(backend, table, runtime_options);
  runtime.attach();
  maybe_serve_dap(runtime, dap_port);

  auto [client_channel, server_channel] = rpc::make_channel_pair();
  runtime.serve(std::move(server_channel));
  debugger::DebugClient client(std::move(client_channel));
  client.connect("hgdb-cli", binary_events);
  print_capabilities(client);

  std::atomic<bool> done{false};
  std::thread sim_thread([&] {
    while (simulator.cycle() < cycles) simulator.tick();
    done.store(true);
  });

  std::cout << "type 'help' for commands; simulation is running\n";
  run_repl(client, done,
           "simulation finished (" + std::to_string(cycles) + " cycles)");

  client.detach();
  sim_thread.join();
  runtime.stop_service();
  return 0;
}

}  // namespace

int run_wvx_convert(int argc, char** argv) {
  if (argc < 4) {
    std::cerr << "usage: hgdb-cli wvx-convert <in.vcd> <out.wvx> [--v2] "
                 "[--v3] [--fixed-codec] [--no-dedup] [--no-checksums] "
                 "[--block-cap N] [--jobs N] [--shard-by scope|none]\n";
    return 2;
  }
  const std::string vcd_path = argv[2];
  const std::string wvx_path = argv[3];
  waveform::ShardedConvertOptions options;
  options.shard_by_scope = false;  // single file unless --shard-by scope
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--v2") {
      options.index.version = 2;
    } else if (arg == "--v3") {
      options.index.version = 3;
    } else if (arg == "--fixed-codec") {
      // Pin every stream: the file default *and* per-signal selection.
      options.index.delta_codec = false;
      options.index.auto_codec = false;
    } else if (arg == "--no-dedup") {
      options.index.dedup_aliases = false;
    } else if (arg == "--no-checksums") {
      options.index.block_checksums = false;
    } else if (arg == "--block-cap" && i + 1 < argc) {
      options.index.block_capacity =
          static_cast<uint32_t>(std::stoul(argv[++i]));
    } else if (arg == "--jobs" && i + 1 < argc) {
      options.jobs = static_cast<uint32_t>(std::stoul(argv[++i]));
    } else if (arg == "--shard-by" && i + 1 < argc) {
      const std::string mode = argv[++i];
      if (mode == "scope") {
        options.shard_by_scope = true;
      } else if (mode == "none") {
        options.shard_by_scope = false;
      } else {
        std::cerr << "fatal: --shard-by expects 'scope' or 'none'\n";
        return 2;
      }
    } else {
      std::cerr << "fatal: unknown wvx-convert flag '" << arg << "'\n";
      return 2;
    }
  }
  const auto convert =
      waveform::convert_vcd_to_sharded_index(vcd_path, wvx_path, options);
  // verify_index opens the manifest transparently, so this one call
  // checks every shard.
  const auto result = waveform::verify_index(wvx_path);
  if (!result.ok) {
    std::cerr << "conversion produced a corrupt index:\n"
              << waveform::describe(result, wvx_path) << "\n";
    return 1;
  }
  std::cout << wvx_path << ": " << convert.signals << " signal(s), "
            << result.blocks << " block(s), format v" << result.version << ", "
            << result.codec << " codec";
  if (convert.shards != 0) {
    std::cout << ", " << convert.shards << " shard(s) via " << convert.jobs
              << " job(s)";
  }
  if (result.aliases != 0) {
    std::cout << ", " << result.aliases << " alias(es) deduped";
  }
  std::cout << (result.checksummed ? ", checksummed" : "") << "\n";
  return 0;
}

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "wvx-verify") {
    if (argc < 3) {
      std::cerr << "usage: hgdb-cli wvx-verify <file.wvx>\n";
      return 2;
    }
    const auto result = waveform::verify_index(argv[2]);
    std::cout << waveform::describe(result, argv[2]) << "\n";
    return result.ok ? 0 : 1;
  }
  if (argc >= 2 && std::string(argv[1]) == "wvx-convert") {
    try {
      return run_wvx_convert(argc, argv);
    } catch (const std::exception& error) {
      std::cerr << "fatal: " << error.what() << "\n";
      return 1;
    }
  }
  std::string name = "vvadd";
  bool debug_mode = true;
  std::optional<uint64_t> cycles;
  std::optional<uint16_t> dap_port;
  std::string replay_format;  // "", "vcd", or "wvx"
  waveform::IoMode io_mode = waveform::IoMode::kAuto;
  bool io_mode_set = false;
  bool binary_events = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--optimized") {
      debug_mode = false;
    } else if (arg == "--cycles" && i + 1 < argc) {
      cycles = std::stoull(argv[++i]);
    } else if (arg == "--io" && i + 1 < argc) {
      const std::string mode = argv[++i];
      io_mode_set = true;
      if (mode == "auto") {
        io_mode = waveform::IoMode::kAuto;
      } else if (mode == "mmap") {
        io_mode = waveform::IoMode::kMmap;
      } else if (mode == "buffered") {
        io_mode = waveform::IoMode::kBuffered;
      } else {
        std::cerr << "fatal: --io expects auto, mmap or buffered\n";
        return 1;
      }
    } else if (arg == "--dap") {
      // Optional port operand; omitted or 0 = ephemeral.
      dap_port = 0;
      if (i + 1 < argc && std::isdigit(static_cast<unsigned char>(
                              argv[i + 1][0]))) {
        const unsigned long port = std::stoul(argv[++i]);
        if (port > 65535) {
          std::cerr << "fatal: --dap port " << port << " out of range\n";
          return 1;
        }
        dap_port = static_cast<uint16_t>(port);
      }
    } else if (arg == "--binary-events") {
      // Opt in to binary event framing: pushed stop/value events arrive
      // as length-prefixed frames instead of JSON.
      binary_events = true;
    } else if (arg == "--replay" && i + 1 < argc) {
      replay_format = argv[++i];
      const bool is_dump_path =
          waveform::is_wvx_path(replay_format) ||
          (replay_format.size() > 4 &&
           replay_format.compare(replay_format.size() - 4, 4, ".vcd") == 0);
      if (replay_format != "vcd" && replay_format != "wvx" && !is_dump_path) {
        std::cerr << "fatal: --replay expects 'vcd', 'wvx', or an existing "
                     ".vcd/.wvx dump path\n";
        return 1;
      }
    } else {
      name = arg;
    }
  }
  // --io picks the IndexedWaveform storage backend; only the indexed
  // replay mode opens one, so anywhere else the flag would be a silent
  // no-op the user believes took effect.
  const bool replay_wvx =
      replay_format == "wvx" || waveform::is_wvx_path(replay_format);
  if (io_mode_set && !replay_wvx) {
    std::cerr << "fatal: --io only applies to --replay wvx\n";
    return 1;
  }
  try {
    if (!replay_format.empty()) {
      // Replay dumps the whole run up front, so default to a modest trace.
      return run_replay_cli(name, debug_mode, cycles.value_or(4096),
                            replay_format, io_mode, dap_port, binary_events);
    }
    return run_cli(name, debug_mode, cycles.value_or(uint64_t{1} << 20),
                   dap_port, binary_events);
  } catch (const std::exception& error) {
    std::cerr << "fatal: " << error.what() << "\n";
    return 1;
  }
}
