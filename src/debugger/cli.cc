// hgdb-cli: the gdb-inspired interactive debugger from the paper's
// Sec. 3.5, driving one of the Fig. 5 workloads under the native RTL
// simulator. The debugger talks to the runtime over the same RPC protocol
// an IDE would use; the simulation runs on a background thread like a
// live simulator process.
//
// Usage: hgdb-cli <workload> [--optimized] [--cycles N]
//   workload: multiply | mm | mt-matmul | vvadd | qsort | dhrystone |
//             median | towers | spmv | mt-vvadd | fpu
#include <atomic>
#include <iostream>
#include <sstream>
#include <thread>

#include "debugger/client.h"
#include "frontend/compile.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"
#include "symbols/symbol_table.h"
#include "vpi/native_backend.h"
#include "workloads/workloads.h"

namespace {

using namespace hgdb;

void print_json(const common::Json& value, int indent) {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  if (value.is_object()) {
    for (const auto& [key, child] : value.as_object()) {
      if (child.is_object()) {
        std::cout << pad << key << ":\n";
        print_json(child, indent + 1);
      } else {
        std::cout << pad << key << " = " << (child.is_string()
                                                 ? child.as_string()
                                                 : child.dump())
                  << "\n";
      }
    }
  } else {
    std::cout << pad << value.dump() << "\n";
  }
}

void print_stop(const rpc::StopEvent& stop) {
  std::cout << "stopped at time " << stop.time << ", " << stop.frames.size()
            << " thread(s)\n";
  for (size_t i = 0; i < stop.frames.size(); ++i) {
    const auto& frame = stop.frames[i];
    std::cout << "  [" << i << "] " << frame.instance_name << " at "
              << frame.filename << ":" << frame.line << " (bp "
              << frame.breakpoint_id << ")\n";
    if (!frame.locals.as_object().empty()) {
      std::cout << "    locals:\n";
      print_json(frame.locals, 3);
    }
  }
}

int run_cli(const std::string& name, bool debug_mode, uint64_t cycles) {
  // Build + compile the requested design.
  std::unique_ptr<ir::Circuit> circuit;
  if (name == "fpu") {
    circuit = workloads::build_fpu_compare(/*with_bug=*/true);
  } else {
    circuit = workloads::workload(name).build();
  }
  frontend::CompileOptions options;
  options.debug_mode = debug_mode;
  auto compiled = frontend::compile(std::move(circuit), options);
  symbols::MemorySymbolTable table(compiled.symbols);
  std::cout << "compiled '" << name << "' (" << (debug_mode ? "debug" : "optimized")
            << "): " << compiled.netlist.signals().size() << " signals, "
            << table.data().breakpoints.size() << " breakpoints\n";

  sim::Simulator simulator(compiled.netlist);
  simulator.enable_checkpoints(true);
  vpi::NativeBackend backend(simulator);
  runtime::Runtime runtime(backend, table);
  runtime.attach();

  auto [client_channel, server_channel] = rpc::make_channel_pair();
  runtime.serve(std::move(server_channel));
  debugger::DebugClient client(std::move(client_channel));

  std::atomic<bool> done{false};
  std::thread sim_thread([&] {
    while (simulator.cycle() < cycles) simulator.tick();
    done.store(true);
  });

  std::cout << "type 'help' for commands; simulation is running\n";
  std::optional<rpc::StopEvent> current_stop;
  std::string line;
  while (std::cout << "(hgdb) " << std::flush, std::getline(std::cin, line)) {
    std::istringstream input(line);
    std::string command;
    input >> command;
    if (command.empty()) continue;
    try {
      if (command == "help") {
        std::cout << "b <file>:<line> [cond]  set breakpoint\n"
                     "d <file>:<line>         delete breakpoint\n"
                     "l <file>                list breakpoint lines\n"
                     "c / s / rs / rc         continue / step / reverse-step /"
                     " reverse-continue\n"
                     "wait                    wait for the next stop\n"
                     "p <expr>                evaluate in current frame\n"
                     "frames                  show last stop\n"
                     "info / files            runtime info / source files\n"
                     "q                       quit\n";
      } else if (command == "b" || command == "d") {
        std::string location;
        input >> location;
        const size_t colon = location.rfind(':');
        if (colon == std::string::npos) {
          std::cout << "expected <file>:<line>\n";
          continue;
        }
        const std::string file = location.substr(0, colon);
        const uint32_t line_number =
            static_cast<uint32_t>(std::stoul(location.substr(colon + 1)));
        if (command == "b") {
          std::string condition;
          std::getline(input, condition);
          auto ids = client.set_breakpoint(file, line_number, condition);
          if (ids.empty()) {
            std::cout << "error: " << client.last_error() << "\n";
          } else {
            std::cout << "inserted " << ids.size() << " breakpoint(s)\n";
          }
        } else {
          std::cout << "removed " << client.remove_breakpoint(file, line_number)
                    << " breakpoint(s)\n";
        }
      } else if (command == "l") {
        std::string file;
        input >> file;
        auto list = client.list_locations(file);
        for (const auto& entry : list.as_array()) {
          std::cout << "  " << entry.get_string("filename") << ":"
                    << entry.get_int("line") << " [" << entry.get_string("instance")
                    << "]\n";
        }
      } else if (command == "c" || command == "s" || command == "rs" ||
                 command == "rc" || command == "wait") {
        bool ok = true;
        if (command == "c") ok = client.resume();
        if (command == "s") ok = client.step_over();
        if (command == "rs") ok = client.step_back();
        if (command == "rc") ok = client.reverse_resume();
        if (!ok && command != "wait") {
          // Not stopped yet (e.g. first 'c' after setting breakpoints).
          std::cout << "(simulation running)\n";
        }
        current_stop = client.wait_stop(std::chrono::milliseconds(2000));
        if (current_stop) {
          print_stop(*current_stop);
        } else if (done.load()) {
          std::cout << "simulation finished (" << cycles << " cycles)\n";
        } else {
          std::cout << "(no stop within 2s; still running)\n";
        }
      } else if (command == "p") {
        std::string expression;
        std::getline(input, expression);
        std::optional<int64_t> scope;
        if (current_stop && !current_stop->frames.empty()) {
          scope = current_stop->frames[0].breakpoint_id;
        }
        auto result = client.evaluate(expression, scope);
        if (result) {
          std::cout << "= " << *result << "\n";
        } else {
          std::cout << "error: " << client.last_error() << "\n";
        }
      } else if (command == "frames") {
        if (current_stop) print_stop(*current_stop);
      } else if (command == "info") {
        print_json(client.info(), 1);
      } else if (command == "files") {
        for (const auto& file : client.info()["files"].as_array()) {
          std::cout << "  " << file.as_string() << "\n";
        }
      } else if (command == "q" || command == "quit") {
        break;
      } else {
        std::cout << "unknown command '" << command << "' (try 'help')\n";
      }
    } catch (const std::exception& error) {
      std::cout << "error: " << error.what() << "\n";
    }
  }

  client.detach();
  sim_thread.join();
  runtime.stop_service();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string name = "vvadd";
  bool debug_mode = true;
  uint64_t cycles = 1u << 20;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--optimized") {
      debug_mode = false;
    } else if (arg == "--cycles" && i + 1 < argc) {
      cycles = std::stoull(argv[++i]);
    } else {
      name = arg;
    }
  }
  try {
    return run_cli(name, debug_mode, cycles);
  } catch (const std::exception& error) {
    std::cerr << "fatal: " << error.what() << "\n";
    return 1;
  }
}
