#include "ir/eval.h"

#include <stdexcept>

namespace hgdb::ir {

using common::BitVector;

BitVector eval_prim(PrimOp op, const std::vector<BitVector>& operands,
                    const std::vector<bool>& signs,
                    const std::vector<uint32_t>& int_params,
                    uint32_t result_width) {
  // Binary arithmetic/comparison operands are extended to a common width
  // first (sign-extended when signed), matching Verilog self-determined
  // expression evaluation.
  auto extend2 = [&](uint32_t width) {
    return std::pair<BitVector, BitVector>{
        operands[0].resize(width, signs[0]),
        operands[1].resize(width, signs[1])};
  };
  const bool is_signed = !signs.empty() && signs[0];

  switch (op) {
    case PrimOp::Add: {
      auto [a, b] = extend2(result_width);
      return a.add(b);
    }
    case PrimOp::Sub: {
      auto [a, b] = extend2(result_width);
      return a.sub(b);
    }
    case PrimOp::Mul: {
      auto [a, b] = extend2(result_width);
      return a.mul(b);
    }
    case PrimOp::Div: {
      auto [a, b] = extend2(result_width);
      return is_signed ? a.sdiv(b) : a.udiv(b);
    }
    case PrimOp::Rem: {
      auto [a, b] = extend2(result_width);
      return is_signed ? a.srem(b) : a.urem(b);
    }
    case PrimOp::Lt: {
      auto [a, b] = extend2(std::max(operands[0].width(), operands[1].width()));
      return BitVector(1, (is_signed ? a.slt(b) : a.ult(b)) ? 1 : 0);
    }
    case PrimOp::Leq: {
      auto [a, b] = extend2(std::max(operands[0].width(), operands[1].width()));
      return BitVector(1, (is_signed ? a.sle(b) : a.ule(b)) ? 1 : 0);
    }
    case PrimOp::Gt: {
      auto [a, b] = extend2(std::max(operands[0].width(), operands[1].width()));
      return BitVector(1, (is_signed ? b.slt(a) : b.ult(a)) ? 1 : 0);
    }
    case PrimOp::Geq: {
      auto [a, b] = extend2(std::max(operands[0].width(), operands[1].width()));
      return BitVector(1, (is_signed ? b.sle(a) : b.ule(a)) ? 1 : 0);
    }
    case PrimOp::Eq: {
      auto [a, b] = extend2(std::max(operands[0].width(), operands[1].width()));
      return BitVector(1, a.eq(b) ? 1 : 0);
    }
    case PrimOp::Neq: {
      auto [a, b] = extend2(std::max(operands[0].width(), operands[1].width()));
      return BitVector(1, a.eq(b) ? 0 : 1);
    }
    case PrimOp::And: {
      auto [a, b] = extend2(result_width);
      return a.bit_and(b);
    }
    case PrimOp::Or: {
      auto [a, b] = extend2(result_width);
      return a.bit_or(b);
    }
    case PrimOp::Xor: {
      auto [a, b] = extend2(result_width);
      return a.bit_xor(b);
    }
    case PrimOp::Not:
      return operands[0].bit_not();
    case PrimOp::Neg:
      return operands[0].negate();
    case PrimOp::AndR:
      return operands[0].reduce_and();
    case PrimOp::OrR:
      return operands[0].reduce_or();
    case PrimOp::XorR:
      return operands[0].reduce_xor();
    case PrimOp::Cat:
      return operands[0].concat(operands[1]);
    case PrimOp::Bits:
      return operands[0].slice(int_params[0], int_params[1]);
    case PrimOp::Shl:
      return operands[0].shl(int_params[0]);
    case PrimOp::Shr:
      return is_signed ? operands[0].ashr(int_params[0])
                       : operands[0].lshr(int_params[0]);
    case PrimOp::Dshl:
      return operands[0].shl(operands[1]);
    case PrimOp::Dshr:
      return is_signed ? operands[0].ashr(operands[1])
                       : operands[0].lshr(operands[1]);
    case PrimOp::Pad:
      return operands[0].resize(int_params[0], is_signed);
    case PrimOp::AsUInt:
    case PrimOp::AsSInt:
    case PrimOp::AsClock:
      return operands[0];
    case PrimOp::Mux:
      return operands[0].to_bool() ? operands[1] : operands[2];
  }
  throw std::logic_error("eval_prim: unhandled op");
}

}  // namespace hgdb::ir
