#include "ir/parser.h"

#include <cctype>
#include <map>
#include <stdexcept>

#include "common/strings.h"

namespace hgdb::ir {

namespace {

// ---------------------------------------------------------------------------
// Lexing: the format is line-oriented. Each line is tokenized independently;
// a trailing `@[file line col]` locator is split off before tokenizing.
// ---------------------------------------------------------------------------

struct Line {
  size_t number = 0;
  std::vector<std::string> tokens;
  common::SourceLoc loc;  // from the @[...] suffix, if any
};

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

std::vector<Line> lex(std::string_view text) {
  std::vector<Line> lines;
  size_t line_number = 0;
  for (const auto& raw : common::split(text, '\n')) {
    ++line_number;
    std::string_view body = raw;
    // Strip comments.
    if (const size_t comment = body.find(';'); comment != std::string_view::npos) {
      body = body.substr(0, comment);
    }
    Line line;
    line.number = line_number;
    // Split off the source locator suffix.
    if (const size_t at = body.find("@["); at != std::string_view::npos) {
      std::string_view loc_text = body.substr(at + 2);
      const size_t close = loc_text.find(']');
      if (close == std::string_view::npos) {
        throw std::runtime_error("line " + std::to_string(line_number) +
                                 ": unterminated @[ locator");
      }
      loc_text = loc_text.substr(0, close);
      // file line [col]
      std::vector<std::string> parts;
      for (auto& part : common::split(loc_text, ' ')) {
        if (!part.empty()) parts.push_back(part);
      }
      if (parts.size() < 2) {
        throw std::runtime_error("line " + std::to_string(line_number) +
                                 ": bad locator");
      }
      line.loc.filename = parts[0];
      line.loc.line = static_cast<uint32_t>(std::stoul(parts[1]));
      if (parts.size() > 2) {
        line.loc.column = static_cast<uint32_t>(std::stoul(parts[2]));
      }
      body = body.substr(0, at);
    }
    body = common::trim(body);
    // Tokenize.
    size_t i = 0;
    while (i < body.size()) {
      const char c = body[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (is_ident_start(c)) {
        size_t j = i + 1;
        while (j < body.size() && is_ident_char(body[j])) ++j;
        line.tokens.emplace_back(body.substr(i, j - i));
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < body.size() &&
           std::isdigit(static_cast<unsigned char>(body[i + 1])))) {
        size_t j = i + 1;
        while (j < body.size() && std::isdigit(static_cast<unsigned char>(body[j]))) {
          ++j;
        }
        line.tokens.emplace_back(body.substr(i, j - i));
        i = j;
        continue;
      }
      // Single-character punctuation.
      static const std::string kPunct = ":=.,()[]{}<>";
      if (kPunct.find(c) != std::string::npos) {
        line.tokens.emplace_back(1, c);
        ++i;
        continue;
      }
      throw std::runtime_error("line " + std::to_string(line_number) +
                               ": unexpected character '" + std::string(1, c) + "'");
    }
    if (!line.tokens.empty() || line.loc.valid()) lines.push_back(std::move(line));
  }
  return lines;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Cursor over one line's tokens.
class TokenCursor {
 public:
  explicit TokenCursor(const Line& line) : line_(line) {}

  [[nodiscard]] bool done() const { return pos_ >= line_.tokens.size(); }
  [[nodiscard]] const std::string& peek() const {
    static const std::string kEnd;
    return done() ? kEnd : line_.tokens[pos_];
  }
  const std::string& next() {
    if (done()) fail("unexpected end of line");
    return line_.tokens[pos_++];
  }
  void expect(const std::string& token) {
    if (peek() != token) fail("expected '" + token + "', got '" + peek() + "'");
    ++pos_;
  }
  bool accept(const std::string& token) {
    if (peek() != token) return false;
    ++pos_;
    return true;
  }
  int64_t expect_int() {
    const std::string& token = next();
    try {
      return std::stoll(token);
    } catch (const std::exception&) {
      fail("expected integer, got '" + token + "'");
    }
  }
  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error("line " + std::to_string(line_.number) + ": " +
                             message);
  }

 private:
  const Line& line_;
  size_t pos_ = 0;
};

uint32_t width_for_count(int64_t max_value) {
  uint32_t width = 1;
  while ((int64_t{1} << width) <= max_value && width < 63) ++width;
  return width;
}

class CircuitParser {
 public:
  explicit CircuitParser(std::string_view text) : lines_(lex(text)) {}

  std::unique_ptr<Circuit> parse() {
    TokenCursor header(current());
    header.expect("circuit");
    auto circuit = std::make_unique<Circuit>(header.next());
    advance();
    // Pre-scan: collect module port signatures so `inst` references resolve
    // regardless of declaration order.
    prescan_module_ports();
    while (!done()) {
      TokenCursor cursor(current());
      if (cursor.accept("end")) {
        advance();
        break;
      }
      parse_module(*circuit);
    }
    return circuit;
  }

 private:
  [[nodiscard]] bool done() const { return index_ >= lines_.size(); }
  [[nodiscard]] const Line& current() const {
    if (done()) throw std::runtime_error("unexpected end of input");
    return lines_[index_];
  }
  void advance() { ++index_; }

  void prescan_module_ports() {
    std::string module_name;
    for (const auto& line : lines_) {
      if (line.tokens.empty()) continue;
      TokenCursor cursor(line);
      if (cursor.accept("module")) {
        module_name = cursor.next();
        module_ports_[module_name] = {};
      } else if (!module_name.empty() &&
                 (line.tokens[0] == "input" || line.tokens[0] == "output")) {
        TokenCursor port_cursor(line);
        const bool is_input = port_cursor.next() == "input";
        Port port;
        port.name = port_cursor.next();
        port_cursor.expect(":");
        port.type = parse_type(port_cursor);
        port.direction = is_input ? Direction::Input : Direction::Output;
        port.loc = line.loc;
        module_ports_[module_name].push_back(std::move(port));
      }
    }
  }

  TypePtr parse_type(TokenCursor& cursor) {
    TypePtr type;
    const std::string& head = cursor.next();
    if (head == "UInt" || head == "SInt") {
      cursor.expect("<");
      const int64_t width = cursor.expect_int();
      cursor.expect(">");
      if (width <= 0) cursor.fail("type width must be positive");
      type = head == "UInt" ? uint_type(static_cast<uint32_t>(width))
                            : sint_type(static_cast<uint32_t>(width));
    } else if (head == "Clock") {
      type = clock_type();
    } else if (head == "Reset") {
      type = reset_type();
    } else if (head == "{") {
      std::vector<BundleField> fields;
      if (!cursor.accept("}")) {
        while (true) {
          BundleField field;
          field.flip = cursor.accept("flip");
          field.name = cursor.next();
          cursor.expect(":");
          field.type = parse_type(cursor);
          fields.push_back(std::move(field));
          if (cursor.accept("}")) break;
          cursor.expect(",");
        }
      }
      type = bundle_type(std::move(fields));
    } else {
      cursor.fail("unknown type '" + head + "'");
    }
    // Vector suffixes: T[4][2] — only with a constant size.
    while (cursor.peek() == "[") {
      cursor.expect("[");
      const int64_t size = cursor.expect_int();
      cursor.expect("]");
      if (size <= 0) cursor.fail("vector size must be positive");
      type = vector_type(type, static_cast<uint32_t>(size));
    }
    return type;
  }

  TypePtr lookup(TokenCursor& cursor, const std::string& name) {
    auto it = scope_.find(name);
    if (it == scope_.end()) cursor.fail("unknown identifier '" + name + "'");
    return it->second;
  }

  ExprPtr parse_expr(TokenCursor& cursor) {
    const std::string head = cursor.next();
    ExprPtr expr;
    // Literal: UInt<8>(42)
    if ((head == "UInt" || head == "SInt") && cursor.peek() == "<") {
      cursor.expect("<");
      const int64_t width = cursor.expect_int();
      cursor.expect(">");
      cursor.expect("(");
      const int64_t value = cursor.expect_int();
      cursor.expect(")");
      common::BitVector bits(static_cast<uint32_t>(width),
                             static_cast<uint64_t>(value));
      return make_literal(std::move(bits), head == "SInt");
    }
    PrimOp op;
    if (cursor.peek() == "(" && prim_op_from_name(head, &op)) {
      cursor.expect("(");
      std::vector<ExprPtr> operands;
      std::vector<uint32_t> int_params;
      if (!cursor.accept(")")) {
        while (true) {
          // Integer parameters (bits/pad/shl/shr) are bare integers.
          const std::string& token = cursor.peek();
          if (!token.empty() &&
              (std::isdigit(static_cast<unsigned char>(token[0])) ||
               token[0] == '-')) {
            int_params.push_back(static_cast<uint32_t>(cursor.expect_int()));
          } else {
            operands.push_back(parse_expr(cursor));
          }
          if (cursor.accept(")")) break;
          cursor.expect(",");
        }
      }
      expr = make_prim(op, std::move(operands), std::move(int_params));
    } else {
      expr = make_ref(head, lookup(cursor, head));
    }
    // Postfix: .field, [const], [expr]
    while (true) {
      if (cursor.accept(".")) {
        expr = make_subfield(std::move(expr), cursor.next());
        continue;
      }
      if (cursor.peek() == "[") {
        cursor.expect("[");
        const std::string& token = cursor.peek();
        if (!token.empty() && std::isdigit(static_cast<unsigned char>(token[0]))) {
          const int64_t index = cursor.expect_int();
          expr = make_subindex(std::move(expr), static_cast<uint32_t>(index));
        } else {
          ExprPtr index = parse_expr(cursor);
          expr = make_subaccess(std::move(expr), std::move(index));
        }
        cursor.expect("]");
        continue;
      }
      break;
    }
    return expr;
  }

  /// Parses optional `source <ident>` / `enable <expr>` suffixes.
  void parse_stmt_suffixes(TokenCursor& cursor, std::string* source_name,
                           ExprPtr* enable) {
    while (!cursor.done()) {
      if (source_name != nullptr && cursor.accept("source")) {
        *source_name = cursor.next();
        continue;
      }
      if (enable != nullptr && cursor.accept("enable")) {
        *enable = parse_expr(cursor);
        continue;
      }
      cursor.fail("unexpected trailing token '" + cursor.peek() + "'");
    }
  }

  void parse_module(Circuit& circuit) {
    TokenCursor header(current());
    header.expect("module");
    auto module = std::make_unique<Module>(header.next());
    advance();
    scope_.clear();
    // Ports.
    while (!done()) {
      TokenCursor cursor(current());
      if (cursor.peek() != "input" && cursor.peek() != "output") break;
      const bool is_input = cursor.next() == "input";
      Port port;
      port.name = cursor.next();
      cursor.expect(":");
      port.type = parse_type(cursor);
      port.direction = is_input ? Direction::Input : Direction::Output;
      port.loc = current().loc;
      scope_[port.name] = port.type;
      module->add_port(std::move(port));
      advance();
    }
    // Body.
    module->set_body(parse_block(/*allow_else=*/false));
    TokenCursor footer(current());
    footer.expect("end");
    advance();
    circuit.add_module(std::move(module));
  }

  /// Parses statements until `end` (or `else` when allow_else). Does not
  /// consume the terminator.
  std::unique_ptr<BlockStmt> parse_block(bool allow_else) {
    auto block = std::make_unique<BlockStmt>();
    while (!done()) {
      const Line& line = current();
      TokenCursor cursor(line);
      const std::string& head = cursor.peek();
      if (head == "end" || (allow_else && head == "else")) return block;

      if (head == "wire") {
        cursor.next();
        const std::string name = cursor.next();
        cursor.expect(":");
        TypePtr type = parse_type(cursor);
        auto wire = std::make_unique<WireStmt>(name, type);
        parse_stmt_suffixes(cursor, &wire->source_name, nullptr);
        if (wire->source_name.empty()) wire->source_name = name;
        wire->loc = line.loc;
        scope_[name] = type;
        block->push(std::move(wire));
        advance();
      } else if (head == "reg") {
        cursor.next();
        const std::string name = cursor.next();
        cursor.expect(":");
        TypePtr type = parse_type(cursor);
        cursor.expect("clock");
        const std::string clock_name = cursor.next();
        auto reg = std::make_unique<RegStmt>(name, type, clock_name);
        if (cursor.accept("reset")) {
          // Register the name before parsing reset/init so self-references
          // are impossible but forward shapes stay simple.
          reg->reset = parse_expr(cursor);
          cursor.expect("init");
          reg->init = parse_expr(cursor);
        }
        parse_stmt_suffixes(cursor, &reg->source_name, nullptr);
        if (reg->source_name.empty()) reg->source_name = name;
        reg->loc = line.loc;
        scope_[name] = type;
        block->push(std::move(reg));
        advance();
      } else if (head == "node") {
        cursor.next();
        const std::string name = cursor.next();
        cursor.expect("=");
        ExprPtr value = parse_expr(cursor);
        auto node = std::make_unique<NodeStmt>(name, value);
        parse_stmt_suffixes(cursor, &node->source_name, &node->enable);
        if (node->source_name.empty()) node->source_name = name;
        node->loc = line.loc;
        scope_[name] = value->type();
        block->push(std::move(node));
        advance();
      } else if (head == "connect") {
        cursor.next();
        ExprPtr lhs = parse_expr(cursor);
        cursor.expect("=");
        ExprPtr rhs = parse_expr(cursor);
        auto connect = std::make_unique<ConnectStmt>(std::move(lhs), std::move(rhs));
        parse_stmt_suffixes(cursor, nullptr, &connect->enable);
        connect->loc = line.loc;
        block->push(std::move(connect));
        advance();
      } else if (head == "when") {
        cursor.next();
        ExprPtr cond = parse_expr(cursor);
        auto when = std::make_unique<WhenStmt>(std::move(cond));
        when->loc = line.loc;
        advance();
        when->then_body = parse_block(/*allow_else=*/true);
        TokenCursor tail(current());
        if (tail.accept("else")) {
          advance();
          when->else_body = parse_block(/*allow_else=*/false);
        }
        TokenCursor end_cursor(current());
        end_cursor.expect("end");
        advance();
        block->push(std::move(when));
      } else if (head == "for") {
        cursor.next();
        const std::string var = cursor.next();
        cursor.expect("=");
        const int64_t start = cursor.expect_int();
        cursor.expect("to");
        const int64_t end = cursor.expect_int();
        if (end < start) cursor.fail("for loop end < start");
        auto loop = std::make_unique<ForStmt>(var, start, end);
        loop->loc = line.loc;
        advance();
        // The loop variable is in scope inside the body with the minimal
        // width holding end-1.
        const TypePtr var_type =
            uint_type(width_for_count(std::max<int64_t>(end - 1, 1)));
        std::optional<TypePtr> saved;
        if (auto it = scope_.find(var); it != scope_.end()) saved = it->second;
        scope_[var] = var_type;
        loop->body = parse_block(/*allow_else=*/false);
        if (saved) {
          scope_[var] = *saved;
        } else {
          scope_.erase(var);
        }
        TokenCursor end_cursor(current());
        end_cursor.expect("end");
        advance();
        block->push(std::move(loop));
      } else if (head == "inst") {
        cursor.next();
        const std::string name = cursor.next();
        cursor.expect("of");
        const std::string module_name = cursor.next();
        auto it = module_ports_.find(module_name);
        if (it == module_ports_.end()) {
          cursor.fail("instance of unknown module '" + module_name + "'");
        }
        std::vector<BundleField> fields;
        fields.reserve(it->second.size());
        for (const auto& port : it->second) {
          fields.push_back(BundleField{
              port.name, port.type, port.direction == Direction::Output});
        }
        scope_[name] = bundle_type(std::move(fields));
        auto inst = std::make_unique<InstanceStmt>(name, module_name);
        inst->loc = line.loc;
        block->push(std::move(inst));
        advance();
      } else {
        cursor.fail("unexpected statement '" + head + "'");
      }
    }
    throw std::runtime_error("unexpected end of input inside a block");
  }

  std::vector<Line> lines_;
  size_t index_ = 0;
  std::map<std::string, TypePtr> scope_;
  std::map<std::string, std::vector<Port>> module_ports_;
};

}  // namespace

std::unique_ptr<Circuit> parse_circuit(std::string_view text) {
  return CircuitParser(text).parse();
}

}  // namespace hgdb::ir
