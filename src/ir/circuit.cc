#include "ir/circuit.h"

#include <stdexcept>

namespace hgdb::ir {

const Port* Module::port(const std::string& name) const {
  for (const auto& p : ports_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

void Module::add_port(Port port) {
  if (this->port(port.name) != nullptr) {
    throw std::invalid_argument("duplicate port '" + port.name + "' in module " +
                                name_);
  }
  ports_.push_back(std::move(port));
}

TypePtr Module::lookup_type(const std::string& name) const {
  if (const Port* p = port(name)) return p->type;
  TypePtr found;
  visit_stmts(*body_, [&](const Stmt& stmt) {
    if (found) return;
    switch (stmt.kind()) {
      case StmtKind::Wire: {
        const auto& wire = static_cast<const WireStmt&>(stmt);
        if (wire.name == name) found = wire.type;
        break;
      }
      case StmtKind::Reg: {
        const auto& reg = static_cast<const RegStmt&>(stmt);
        if (reg.name == name) found = reg.type;
        break;
      }
      case StmtKind::Node: {
        const auto& node = static_cast<const NodeStmt&>(stmt);
        if (node.name == name) found = node.value->type();
        break;
      }
      default:
        break;
    }
  });
  return found;
}

std::unique_ptr<Module> Module::clone() const {
  auto out = std::make_unique<Module>(name_);
  out->ports_ = ports_;
  out->body_ = body_->clone_block();
  return out;
}

Module& Circuit::add_module(std::unique_ptr<Module> module) {
  if (by_name_.count(module->name()) != 0) {
    throw std::invalid_argument("duplicate module '" + module->name() + "'");
  }
  by_name_[module->name()] = module.get();
  modules_.push_back(std::move(module));
  return *modules_.back();
}

Module* Circuit::module(const std::string& name) {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

const Module* Circuit::module(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

std::vector<const Annotation*> Circuit::annotations_of(
    std::string_view kind) const {
  std::vector<const Annotation*> out;
  for (const auto& annotation : annotations_) {
    if (annotation.kind == kind) out.push_back(&annotation);
  }
  return out;
}

bool Circuit::has_annotation(std::string_view kind, const std::string& module,
                             const std::string& target) const {
  for (const auto& annotation : annotations_) {
    if (annotation.kind == kind && annotation.module == module &&
        annotation.target == target) {
      return true;
    }
  }
  return false;
}

void Circuit::remove_annotations(
    const std::function<bool(const Annotation&)>& predicate) {
  std::erase_if(annotations_, predicate);
}

std::unique_ptr<Circuit> Circuit::clone() const {
  auto out = std::make_unique<Circuit>(top_name_);
  out->form_ = form_;
  for (const auto& module : modules_) out->add_module(module->clone());
  out->annotations_ = annotations_;
  return out;
}

}  // namespace hgdb::ir
