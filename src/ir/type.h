#ifndef HGDB_IR_TYPE_H
#define HGDB_IR_TYPE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace hgdb::ir {

class Type;
using TypePtr = std::shared_ptr<const Type>;

/// IR type system, modelled after FIRRTL's (paper Sec. 4.1).
///
/// Ground types (UInt/SInt/Clock/Reset) survive to the Low form; aggregate
/// types (Bundle/Vector) only exist in the High form and are flattened by
/// the LowerAggregates pass — this flattening is exactly why the debugger
/// runtime must *re-aggregate* bundles when reconstructing frames
/// (paper Sec. 4.2: "reconstruct structured variables from a list of
/// flattened RTL signals").
enum class TypeKind : uint8_t { UInt, SInt, Clock, Reset, Bundle, Vector };

/// One member of a Bundle. `flip` reverses connection direction relative to
/// the enclosing bundle (FIRRTL's `flip`), used for ready/valid interfaces.
struct BundleField {
  std::string name;
  TypePtr type;
  bool flip = false;
};

class Type {
 public:
  explicit Type(TypeKind kind) : kind_(kind) {}
  virtual ~Type() = default;

  [[nodiscard]] TypeKind kind() const { return kind_; }
  [[nodiscard]] bool is_ground() const {
    return kind_ == TypeKind::UInt || kind_ == TypeKind::SInt ||
           kind_ == TypeKind::Clock || kind_ == TypeKind::Reset;
  }
  [[nodiscard]] bool is_aggregate() const { return !is_ground(); }
  [[nodiscard]] bool is_signed() const { return kind_ == TypeKind::SInt; }

  /// Bit width of a ground type; total bit count of an aggregate.
  [[nodiscard]] virtual uint32_t bit_width() const = 0;
  /// Human- and parser-facing spelling, e.g. "UInt<8>".
  [[nodiscard]] virtual std::string str() const = 0;
  /// Structural equality.
  [[nodiscard]] virtual bool equals(const Type& rhs) const = 0;

 private:
  TypeKind kind_;
};

class GroundType final : public Type {
 public:
  GroundType(TypeKind kind, uint32_t width) : Type(kind), width_(width) {}

  [[nodiscard]] uint32_t bit_width() const override { return width_; }
  [[nodiscard]] std::string str() const override;
  [[nodiscard]] bool equals(const Type& rhs) const override;

 private:
  uint32_t width_;
};

class BundleType final : public Type {
 public:
  explicit BundleType(std::vector<BundleField> fields)
      : Type(TypeKind::Bundle), fields_(std::move(fields)) {}

  [[nodiscard]] const std::vector<BundleField>& fields() const { return fields_; }
  [[nodiscard]] const BundleField* field(const std::string& name) const;
  [[nodiscard]] uint32_t bit_width() const override;
  [[nodiscard]] std::string str() const override;
  [[nodiscard]] bool equals(const Type& rhs) const override;

 private:
  std::vector<BundleField> fields_;
};

class VectorType final : public Type {
 public:
  VectorType(TypePtr element, uint32_t size)
      : Type(TypeKind::Vector), element_(std::move(element)), size_(size) {}

  [[nodiscard]] const TypePtr& element() const { return element_; }
  [[nodiscard]] uint32_t size() const { return size_; }
  [[nodiscard]] uint32_t bit_width() const override {
    return element_->bit_width() * size_;
  }
  [[nodiscard]] std::string str() const override;
  [[nodiscard]] bool equals(const Type& rhs) const override;

 private:
  TypePtr element_;
  uint32_t size_;
};

// -- Factories ---------------------------------------------------------------
TypePtr uint_type(uint32_t width);
TypePtr sint_type(uint32_t width);
TypePtr bool_type();
TypePtr clock_type();
TypePtr reset_type();
TypePtr bundle_type(std::vector<BundleField> fields);
TypePtr vector_type(TypePtr element, uint32_t size);

}  // namespace hgdb::ir

#endif  // HGDB_IR_TYPE_H
