#ifndef HGDB_IR_EVAL_H
#define HGDB_IR_EVAL_H

#include <vector>

#include "common/bitvector.h"
#include "ir/expr.h"

namespace hgdb::ir {

/// Evaluates a primitive over constant operand values. This single routine
/// defines the arithmetic semantics of the whole system: the constant
/// folder, the RTL simulator and the debugger's expression evaluator all
/// call it, so a value computed at compile time, simulation time, or
/// debug time can never disagree.
///
/// Semantics are two-state and Verilog-flavoured: operands of binary ops
/// are extended to the result width (sign-extended when signed) and the
/// operation wraps modulo 2^width. Division by zero yields all-ones;
/// remainder by zero yields the dividend.
common::BitVector eval_prim(PrimOp op,
                            const std::vector<common::BitVector>& operands,
                            const std::vector<bool>& signs,
                            const std::vector<uint32_t>& int_params,
                            uint32_t result_width);

}  // namespace hgdb::ir

#endif  // HGDB_IR_EVAL_H
