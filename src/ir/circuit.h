#ifndef HGDB_IR_CIRCUIT_H
#define HGDB_IR_CIRCUIT_H

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/source_loc.h"
#include "ir/stmt.h"
#include "ir/type.h"

namespace hgdb::ir {

enum class Direction : uint8_t { Input, Output };

struct Port {
  std::string name;
  TypePtr type;
  Direction direction = Direction::Input;
  common::SourceLoc loc;
};

/// IR form discipline (paper Sec. 4.1: FIRRTL's High/Mid/Low split).
///
///  - High: aggregates, `when`, `for`, multiple (procedural) connects.
///  - Mid : after UnrollLoops + LowerAggregates — ground types only, no
///          `for`, no dynamic indexing; `when` and multi-connect remain.
///  - Low : after SSA — additionally no `when`, every name defined once,
///          every connect target connected exactly once. Netlist-ready.
///
/// `passes::check_form` verifies the constraints; passes declare the forms
/// they consume/produce.
enum class Form : uint8_t { High, Mid, Low };

/// A free-form annotation attached to a circuit, addressed by
/// (module, target-name). This is the mechanism Algorithm 1 uses: the first
/// pass annotates IR nodes of interest on the High form; optimization
/// passes drop annotations whose targets they delete; the second pass
/// collects survivors on the Low form.
struct Annotation {
  std::string kind;    ///< e.g. "dont_touch", "hgdb.bp", "hgdb.var"
  std::string module;  ///< owning module name
  std::string target;  ///< statement/signal name within the module; "" = module
  common::Json payload = common::Json::object();
};

/// Reserved annotation kinds.
inline constexpr const char* kDontTouchAnnotation = "dont_touch";

class Module {
 public:
  explicit Module(std::string name)
      : name_(std::move(name)), body_(std::make_unique<BlockStmt>()) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Port>& ports() const { return ports_; }
  [[nodiscard]] const Port* port(const std::string& name) const;
  void add_port(Port port);
  /// Replaces the whole port list (used by LowerAggregates).
  void set_ports(std::vector<Port> ports) { ports_ = std::move(ports); }

  [[nodiscard]] BlockStmt& body() { return *body_; }
  [[nodiscard]] const BlockStmt& body() const { return *body_; }
  void set_body(std::unique_ptr<BlockStmt> body) { body_ = std::move(body); }

  /// Type of a named declaration (port, wire, reg, or node) if visible at
  /// module top level. Used by the parser and by passes that rebuild refs.
  [[nodiscard]] TypePtr lookup_type(const std::string& name) const;

  [[nodiscard]] std::unique_ptr<Module> clone() const;

 private:
  std::string name_;
  std::vector<Port> ports_;
  std::unique_ptr<BlockStmt> body_;
};

class Circuit {
 public:
  explicit Circuit(std::string top_name) : top_name_(std::move(top_name)) {}

  [[nodiscard]] const std::string& top_name() const { return top_name_; }
  [[nodiscard]] Form form() const { return form_; }
  void set_form(Form form) { form_ = form; }

  Module& add_module(std::unique_ptr<Module> module);
  [[nodiscard]] Module* module(const std::string& name);
  [[nodiscard]] const Module* module(const std::string& name) const;
  [[nodiscard]] Module* top() { return module(top_name_); }
  [[nodiscard]] const Module* top() const { return module(top_name_); }
  [[nodiscard]] const std::vector<std::unique_ptr<Module>>& modules() const {
    return modules_;
  }

  // -- annotations -----------------------------------------------------------
  void annotate(Annotation annotation) {
    annotations_.push_back(std::move(annotation));
  }
  [[nodiscard]] const std::vector<Annotation>& annotations() const {
    return annotations_;
  }
  [[nodiscard]] std::vector<const Annotation*> annotations_of(
      std::string_view kind) const;
  [[nodiscard]] bool has_annotation(std::string_view kind,
                                    const std::string& module,
                                    const std::string& target) const;
  /// Removes annotations for which `predicate` returns true.
  void remove_annotations(
      const std::function<bool(const Annotation&)>& predicate);

  [[nodiscard]] std::unique_ptr<Circuit> clone() const;

 private:
  std::string top_name_;
  Form form_ = Form::High;
  std::vector<std::unique_ptr<Module>> modules_;
  std::map<std::string, Module*> by_name_;
  std::vector<Annotation> annotations_;
};

}  // namespace hgdb::ir

#endif  // HGDB_IR_CIRCUIT_H
