#include "ir/printer.h"

namespace hgdb::ir {

namespace {

std::string indent_of(int indent) { return std::string(indent * 2, ' '); }

std::string loc_suffix(const common::SourceLoc& loc) {
  if (!loc.valid()) return "";
  return " @[" + loc.filename + " " + std::to_string(loc.line) + " " +
         std::to_string(loc.column) + "]";
}

std::string source_suffix(const std::string& source_name,
                          const std::string& rtl_name) {
  if (source_name.empty() || source_name == rtl_name) return "";
  return " source " + source_name;
}

std::string enable_suffix(const ExprPtr& enable) {
  if (!enable) return "";
  return " enable " + enable->str();
}

void print_stmt_to(const Stmt& stmt, int indent, std::string& out) {
  const std::string pad = indent_of(indent);
  switch (stmt.kind()) {
    case StmtKind::Block:
      for (const auto& child : static_cast<const BlockStmt&>(stmt).stmts) {
        print_stmt_to(*child, indent, out);
      }
      break;
    case StmtKind::Wire: {
      const auto& wire = static_cast<const WireStmt&>(stmt);
      out += pad + "wire " + wire.name + " : " + wire.type->str() +
             source_suffix(wire.source_name, wire.name) + loc_suffix(wire.loc) +
             "\n";
      break;
    }
    case StmtKind::Reg: {
      const auto& reg = static_cast<const RegStmt&>(stmt);
      out += pad + "reg " + reg.name + " : " + reg.type->str() + " clock " +
             reg.clock_name;
      if (reg.reset) {
        out += " reset " + reg.reset->str() + " init " + reg.init->str();
      }
      out += source_suffix(reg.source_name, reg.name) + loc_suffix(reg.loc) + "\n";
      break;
    }
    case StmtKind::Node: {
      const auto& node = static_cast<const NodeStmt&>(stmt);
      out += pad + "node " + node.name + " = " + node.value->str() +
             source_suffix(node.source_name, node.name) +
             enable_suffix(node.enable) + loc_suffix(node.loc) + "\n";
      break;
    }
    case StmtKind::Connect: {
      const auto& connect = static_cast<const ConnectStmt&>(stmt);
      out += pad + "connect " + connect.lhs->str() + " = " + connect.rhs->str() +
             enable_suffix(connect.enable) + loc_suffix(connect.loc) + "\n";
      break;
    }
    case StmtKind::When: {
      const auto& when = static_cast<const WhenStmt&>(stmt);
      out += pad + "when " + when.cond->str() + loc_suffix(when.loc) + "\n";
      print_stmt_to(*when.then_body, indent + 1, out);
      if (when.else_body && !when.else_body->stmts.empty()) {
        out += pad + "else\n";
        print_stmt_to(*when.else_body, indent + 1, out);
      }
      out += pad + "end\n";
      break;
    }
    case StmtKind::For: {
      const auto& loop = static_cast<const ForStmt&>(stmt);
      out += pad + "for " + loop.var + " = " + std::to_string(loop.start) +
             " to " + std::to_string(loop.end) + loc_suffix(loop.loc) + "\n";
      print_stmt_to(*loop.body, indent + 1, out);
      out += pad + "end\n";
      break;
    }
    case StmtKind::Instance: {
      const auto& inst = static_cast<const InstanceStmt&>(stmt);
      out += pad + "inst " + inst.name + " of " + inst.module_name +
             loc_suffix(inst.loc) + "\n";
      break;
    }
  }
}

}  // namespace

std::string print_stmt(const Stmt& stmt, int indent) {
  std::string out;
  print_stmt_to(stmt, indent, out);
  return out;
}

std::string print_module(const Module& module) {
  std::string out = "  module " + module.name() + "\n";
  for (const auto& port : module.ports()) {
    out += "    ";
    out += port.direction == Direction::Input ? "input " : "output ";
    out += port.name + " : " + port.type->str() + loc_suffix(port.loc) + "\n";
  }
  out += print_stmt(module.body(), 2);
  out += "  end\n";
  return out;
}

std::string print_circuit(const Circuit& circuit) {
  std::string out = "circuit " + circuit.top_name() + "\n";
  for (const auto& module : circuit.modules()) {
    out += print_module(*module);
  }
  out += "end\n";
  return out;
}

}  // namespace hgdb::ir
