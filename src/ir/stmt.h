#ifndef HGDB_IR_STMT_H
#define HGDB_IR_STMT_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/source_loc.h"
#include "ir/expr.h"
#include "ir/type.h"

namespace hgdb::ir {

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind : uint8_t {
  Wire,      ///< mutable named signal; High form allows multiple connects
  Reg,       ///< clocked state element (optional synchronous reset)
  Node,      ///< immutable named intermediate (SSA output; FIRRTL `node`)
  Connect,   ///< lhs <= rhs
  When,      ///< conditional block (High form only; removed by SSA)
  For,       ///< static-bound loop (High form only; removed by UnrollLoops)
  Instance,  ///< child module instantiation
  Block,     ///< statement sequence
};

/// Base statement. Every statement carries the generator SourceLoc that
/// produced it — this is the raw material for breakpoints (paper Sec. 4.1:
/// "Chisel stores original Scala filenames and line numbers in FIRRTL ...
/// which can be used to compute breakpoints").
class Stmt {
 public:
  explicit Stmt(StmtKind kind) : kind_(kind) {}
  virtual ~Stmt() = default;

  [[nodiscard]] StmtKind kind() const { return kind_; }
  [[nodiscard]] virtual StmtPtr clone() const = 0;

  common::SourceLoc loc;

  /// Constant bindings introduced by UnrollLoops for the unrolled iterations
  /// enclosing this statement, e.g. {"i", 1}. SSA copies these into each
  /// breakpoint's scope, so the debugger can display the loop index that a
  /// particular emulated breakpoint corresponds to (paper Sec. 3.1).
  std::vector<std::pair<std::string, int64_t>> loop_bindings;

 private:
  StmtKind kind_;
};

class BlockStmt final : public Stmt {
 public:
  BlockStmt() : Stmt(StmtKind::Block) {}

  std::vector<StmtPtr> stmts;

  void push(StmtPtr stmt) { stmts.push_back(std::move(stmt)); }
  [[nodiscard]] StmtPtr clone() const override;
  /// Clone returning the concrete type (used by When/For cloning).
  [[nodiscard]] std::unique_ptr<BlockStmt> clone_block() const;
};

class WireStmt final : public Stmt {
 public:
  WireStmt(std::string name, TypePtr type)
      : Stmt(StmtKind::Wire), name(std::move(name)), type(std::move(type)) {}

  std::string name;
  TypePtr type;
  /// Generator-level variable name this wire represents ("sum" in the
  /// paper's Listing 1). Defaults to `name`; SSA keeps it stable while
  /// renaming the RTL-side name.
  std::string source_name;

  [[nodiscard]] StmtPtr clone() const override;
};

class RegStmt final : public Stmt {
 public:
  RegStmt(std::string name, TypePtr type, std::string clock_name)
      : Stmt(StmtKind::Reg),
        name(std::move(name)),
        type(std::move(type)),
        clock_name(std::move(clock_name)) {}

  std::string name;
  TypePtr type;
  std::string clock_name;
  /// Optional synchronous reset: when `reset` is true at a clock edge the
  /// register loads `init` instead of its connected next-value.
  ExprPtr reset;  // 1-bit, may be null
  ExprPtr init;   // same type as the register, null iff reset is null
  std::string source_name;

  [[nodiscard]] StmtPtr clone() const override;
};

class NodeStmt final : public Stmt {
 public:
  NodeStmt(std::string name, ExprPtr value)
      : Stmt(StmtKind::Node), name(std::move(name)), value(std::move(value)) {}

  std::string name;
  ExprPtr value;
  std::string source_name;
  /// SSA enable condition (paper Sec. 3.1): the AND-reduction of the
  /// condition stack under which this statement is "live". Null means
  /// unconditional. Stored on the node so Algorithm 1's second pass can
  /// collect it after optimization.
  ExprPtr enable;
  /// True for compiler-created nodes (SSA phi joins) that do not correspond
  /// to an executable source statement; no breakpoint is emitted for them.
  bool synthetic = false;

  [[nodiscard]] StmtPtr clone() const override;
};

class ConnectStmt final : public Stmt {
 public:
  ConnectStmt(ExprPtr lhs, ExprPtr rhs)
      : Stmt(StmtKind::Connect), lhs(std::move(lhs)), rhs(std::move(rhs)) {}

  ExprPtr lhs;  ///< Ref / SubField / SubIndex path
  ExprPtr rhs;
  ExprPtr enable;  ///< see NodeStmt::enable

  [[nodiscard]] StmtPtr clone() const override;
};

class WhenStmt final : public Stmt {
 public:
  explicit WhenStmt(ExprPtr cond)
      : Stmt(StmtKind::When),
        cond(std::move(cond)),
        then_body(std::make_unique<BlockStmt>()) {}

  ExprPtr cond;  ///< 1-bit
  std::unique_ptr<BlockStmt> then_body;
  std::unique_ptr<BlockStmt> else_body;  ///< may be null

  [[nodiscard]] StmtPtr clone() const override;
};

class ForStmt final : public Stmt {
 public:
  ForStmt(std::string var, int64_t start, int64_t end)
      : Stmt(StmtKind::For),
        var(std::move(var)),
        start(start),
        end(end),
        body(std::make_unique<BlockStmt>()) {}

  std::string var;  ///< loop variable, substituted as a constant when unrolled
  int64_t start;    ///< inclusive
  int64_t end;      ///< exclusive
  std::unique_ptr<BlockStmt> body;

  [[nodiscard]] StmtPtr clone() const override;
};

class InstanceStmt final : public Stmt {
 public:
  InstanceStmt(std::string name, std::string module_name)
      : Stmt(StmtKind::Instance),
        name(std::move(name)),
        module_name(std::move(module_name)) {}

  std::string name;
  std::string module_name;

  [[nodiscard]] StmtPtr clone() const override;
};

/// Pre-order traversal over a statement tree.
void visit_stmts(const Stmt& root, const std::function<void(const Stmt&)>& fn);
void visit_stmts(Stmt& root, const std::function<void(Stmt&)>& fn);

}  // namespace hgdb::ir

#endif  // HGDB_IR_STMT_H
