#ifndef HGDB_IR_PRINTER_H
#define HGDB_IR_PRINTER_H

#include <string>

#include "ir/circuit.h"

namespace hgdb::ir {

/// Prints a circuit in the canonical text format (see docs/ir_format.md).
/// The output round-trips through `parse_circuit`.
std::string print_circuit(const Circuit& circuit);
std::string print_module(const Module& module);
std::string print_stmt(const Stmt& stmt, int indent = 0);

}  // namespace hgdb::ir

#endif  // HGDB_IR_PRINTER_H
