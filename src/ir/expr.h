#ifndef HGDB_IR_EXPR_H
#define HGDB_IR_EXPR_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/bitvector.h"
#include "ir/type.h"

namespace hgdb::ir {

class Expr;
/// Expressions are immutable trees; passes rewrite by rebuilding nodes, so
/// subtrees are freely shared across statements and across unrolled loop
/// iterations (cheap clones during UnrollLoops).
using ExprPtr = std::shared_ptr<const Expr>;

enum class ExprKind : uint8_t {
  Ref,        ///< named wire/reg/node/port/instance
  SubField,   ///< bundle field access `a.b`
  SubIndex,   ///< vector element with constant index `a[3]`
  SubAccess,  ///< vector element with dynamic index `a[i]` (rvalue only)
  Literal,    ///< constant, e.g. UInt<8>(42)
  Prim,       ///< primitive operation
};

/// Primitive operations. Signedness comes from operand types. Width rules
/// are Verilog-flavoured (documented per factory in expr.cc); the frontend
/// inserts explicit `pad` nodes when a carry/grow is wanted.
enum class PrimOp : uint8_t {
  // binary arithmetic: result width = max(widths)
  Add, Sub, Mul, Div, Rem,
  // comparisons: result UInt<1>
  Lt, Leq, Gt, Geq, Eq, Neq,
  // binary bitwise: result UInt, width = max(widths)
  And, Or, Xor,
  // unary
  Not, Neg,
  // reductions: result UInt<1>
  AndR, OrR, XorR,
  // concatenation: result UInt, width = w0 + w1
  Cat,
  // bits(x, hi, lo): result UInt<hi-lo+1>
  Bits,
  // constant shifts, width preserving (shifted-out bits drop)
  Shl, Shr,
  // dynamic shifts, width of first operand preserved
  Dshl, Dshr,
  // pad(x, n): zero/sign-extend (or truncate) to exactly n bits
  Pad,
  // reinterpret casts, width preserving
  AsUInt, AsSInt, AsClock,
  // mux(sel, then, else): operands 1 and 2 same type
  Mux,
};

const char* prim_op_name(PrimOp op);
/// Parses the spelling used by the text format ("add", "mux", ...).
/// Returns false if `name` is not a primitive.
bool prim_op_from_name(const std::string& name, PrimOp* out);

class Expr {
 public:
  Expr(ExprKind kind, TypePtr type) : kind_(kind), type_(std::move(type)) {}
  virtual ~Expr() = default;

  [[nodiscard]] ExprKind kind() const { return kind_; }
  /// Every expression is typed at construction; see factories below.
  [[nodiscard]] const TypePtr& type() const { return type_; }
  [[nodiscard]] uint32_t width() const { return type_->bit_width(); }

  /// Text-format spelling, e.g. "add(a, UInt<8>(1))".
  [[nodiscard]] virtual std::string str() const = 0;
  /// Structural equality (used by CSE).
  [[nodiscard]] virtual bool equals(const Expr& rhs) const = 0;
  /// Structural hash (used by CSE).
  [[nodiscard]] virtual size_t hash() const = 0;

 private:
  ExprKind kind_;
  TypePtr type_;
};

class RefExpr final : public Expr {
 public:
  RefExpr(std::string name, TypePtr type)
      : Expr(ExprKind::Ref, std::move(type)), name_(std::move(name)) {}
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::string str() const override { return name_; }
  [[nodiscard]] bool equals(const Expr& rhs) const override;
  [[nodiscard]] size_t hash() const override;

 private:
  std::string name_;
};

class SubFieldExpr final : public Expr {
 public:
  SubFieldExpr(ExprPtr base, std::string field, TypePtr type)
      : Expr(ExprKind::SubField, std::move(type)),
        base_(std::move(base)),
        field_(std::move(field)) {}
  [[nodiscard]] const ExprPtr& base() const { return base_; }
  [[nodiscard]] const std::string& field() const { return field_; }
  [[nodiscard]] std::string str() const override {
    return base_->str() + "." + field_;
  }
  [[nodiscard]] bool equals(const Expr& rhs) const override;
  [[nodiscard]] size_t hash() const override;

 private:
  ExprPtr base_;
  std::string field_;
};

class SubIndexExpr final : public Expr {
 public:
  SubIndexExpr(ExprPtr base, uint32_t index, TypePtr type)
      : Expr(ExprKind::SubIndex, std::move(type)),
        base_(std::move(base)),
        index_(index) {}
  [[nodiscard]] const ExprPtr& base() const { return base_; }
  [[nodiscard]] uint32_t index() const { return index_; }
  [[nodiscard]] std::string str() const override {
    return base_->str() + "[" + std::to_string(index_) + "]";
  }
  [[nodiscard]] bool equals(const Expr& rhs) const override;
  [[nodiscard]] size_t hash() const override;

 private:
  ExprPtr base_;
  uint32_t index_;
};

class SubAccessExpr final : public Expr {
 public:
  SubAccessExpr(ExprPtr base, ExprPtr index, TypePtr type)
      : Expr(ExprKind::SubAccess, std::move(type)),
        base_(std::move(base)),
        index_(std::move(index)) {}
  [[nodiscard]] const ExprPtr& base() const { return base_; }
  [[nodiscard]] const ExprPtr& index() const { return index_; }
  [[nodiscard]] std::string str() const override {
    return base_->str() + "[" + index_->str() + "]";
  }
  [[nodiscard]] bool equals(const Expr& rhs) const override;
  [[nodiscard]] size_t hash() const override;

 private:
  ExprPtr base_;
  ExprPtr index_;
};

class LiteralExpr final : public Expr {
 public:
  LiteralExpr(common::BitVector value, bool is_signed)
      : Expr(ExprKind::Literal,
             is_signed ? sint_type(value.width()) : uint_type(value.width())),
        value_(std::move(value)) {}
  [[nodiscard]] const common::BitVector& value() const { return value_; }
  [[nodiscard]] std::string str() const override;
  [[nodiscard]] bool equals(const Expr& rhs) const override;
  [[nodiscard]] size_t hash() const override;

 private:
  common::BitVector value_;
};

class PrimExpr final : public Expr {
 public:
  PrimExpr(PrimOp op, std::vector<ExprPtr> operands,
           std::vector<uint32_t> int_params, TypePtr type)
      : Expr(ExprKind::Prim, std::move(type)),
        op_(op),
        operands_(std::move(operands)),
        int_params_(std::move(int_params)) {}
  [[nodiscard]] PrimOp op() const { return op_; }
  [[nodiscard]] const std::vector<ExprPtr>& operands() const { return operands_; }
  [[nodiscard]] const std::vector<uint32_t>& int_params() const { return int_params_; }
  [[nodiscard]] std::string str() const override;
  [[nodiscard]] bool equals(const Expr& rhs) const override;
  [[nodiscard]] size_t hash() const override;

 private:
  PrimOp op_;
  std::vector<ExprPtr> operands_;
  std::vector<uint32_t> int_params_;
};

// -- Typed factories (validate operands, compute result type; throw
//    std::invalid_argument on misuse) ----------------------------------------
ExprPtr make_ref(std::string name, TypePtr type);
ExprPtr make_subfield(ExprPtr base, const std::string& field);
ExprPtr make_subindex(ExprPtr base, uint32_t index);
ExprPtr make_subaccess(ExprPtr base, ExprPtr index);
ExprPtr make_literal(common::BitVector value, bool is_signed = false);
ExprPtr make_uint_literal(uint32_t width, uint64_t value);
ExprPtr make_bool_literal(bool value);
ExprPtr make_prim(PrimOp op, std::vector<ExprPtr> operands,
                  std::vector<uint32_t> int_params = {});

// Convenience builders used heavily by passes and the frontend.
ExprPtr make_mux(ExprPtr sel, ExprPtr then_value, ExprPtr else_value);
ExprPtr make_eq(ExprPtr lhs, ExprPtr rhs);
ExprPtr make_and(ExprPtr lhs, ExprPtr rhs);
ExprPtr make_not(ExprPtr operand);
ExprPtr make_pad(ExprPtr operand, uint32_t width);

/// Rewrites an expression bottom-up: `fn` is applied to every rebuilt node
/// and may return a replacement (or its argument unchanged). Shared
/// subtrees are rebuilt once per occurrence; the tree is small in practice.
ExprPtr rewrite_expr(const ExprPtr& expr,
                     const std::function<ExprPtr(const ExprPtr&)>& fn);

/// Calls `fn` on every node of the tree (pre-order).
void visit_expr(const ExprPtr& expr,
                const std::function<void(const Expr&)>& fn);

}  // namespace hgdb::ir

#endif  // HGDB_IR_EXPR_H
