#ifndef HGDB_IR_PARSER_H
#define HGDB_IR_PARSER_H

#include <memory>
#include <string_view>

#include "ir/circuit.h"

namespace hgdb::ir {

/// Parses the canonical text format emitted by `print_circuit`.
/// Throws std::runtime_error with a line number on malformed input.
///
/// The parsed circuit's form is not checked here; run passes::check_form.
std::unique_ptr<Circuit> parse_circuit(std::string_view text);

}  // namespace hgdb::ir

#endif  // HGDB_IR_PARSER_H
