#include "ir/type.h"

namespace hgdb::ir {

std::string GroundType::str() const {
  switch (kind()) {
    case TypeKind::UInt: return "UInt<" + std::to_string(width_) + ">";
    case TypeKind::SInt: return "SInt<" + std::to_string(width_) + ">";
    case TypeKind::Clock: return "Clock";
    case TypeKind::Reset: return "Reset";
    default: return "<bad-ground>";
  }
}

bool GroundType::equals(const Type& rhs) const {
  if (rhs.kind() != kind()) return false;
  return static_cast<const GroundType&>(rhs).width_ == width_;
}

const BundleField* BundleType::field(const std::string& name) const {
  for (const auto& f : fields_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

uint32_t BundleType::bit_width() const {
  uint32_t total = 0;
  for (const auto& f : fields_) total += f.type->bit_width();
  return total;
}

std::string BundleType::str() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i != 0) out += ", ";
    if (fields_[i].flip) out += "flip ";
    out += fields_[i].name + " : " + fields_[i].type->str();
  }
  return out + "}";
}

bool BundleType::equals(const Type& rhs) const {
  if (rhs.kind() != TypeKind::Bundle) return false;
  const auto& other = static_cast<const BundleType&>(rhs);
  if (other.fields_.size() != fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name != other.fields_[i].name) return false;
    if (fields_[i].flip != other.fields_[i].flip) return false;
    if (!fields_[i].type->equals(*other.fields_[i].type)) return false;
  }
  return true;
}

std::string VectorType::str() const {
  return element_->str() + "[" + std::to_string(size_) + "]";
}

bool VectorType::equals(const Type& rhs) const {
  if (rhs.kind() != TypeKind::Vector) return false;
  const auto& other = static_cast<const VectorType&>(rhs);
  return size_ == other.size_ && element_->equals(*other.element_);
}

TypePtr uint_type(uint32_t width) {
  return std::make_shared<GroundType>(TypeKind::UInt, width);
}

TypePtr sint_type(uint32_t width) {
  return std::make_shared<GroundType>(TypeKind::SInt, width);
}

TypePtr bool_type() { return uint_type(1); }

TypePtr clock_type() {
  return std::make_shared<GroundType>(TypeKind::Clock, 1);
}

TypePtr reset_type() {
  return std::make_shared<GroundType>(TypeKind::Reset, 1);
}

TypePtr bundle_type(std::vector<BundleField> fields) {
  return std::make_shared<BundleType>(std::move(fields));
}

TypePtr vector_type(TypePtr element, uint32_t size) {
  return std::make_shared<VectorType>(std::move(element), size);
}

}  // namespace hgdb::ir
