#include "ir/expr.h"

#include <array>
#include <functional>
#include <stdexcept>
#include <unordered_map>

namespace hgdb::ir {

namespace {

struct PrimOpInfo {
  PrimOp op;
  const char* name;
};

constexpr std::array<PrimOpInfo, 27> kPrimOps = {{
    {PrimOp::Add, "add"},       {PrimOp::Sub, "sub"},
    {PrimOp::Mul, "mul"},       {PrimOp::Div, "div"},
    {PrimOp::Rem, "rem"},       {PrimOp::Lt, "lt"},
    {PrimOp::Leq, "leq"},       {PrimOp::Gt, "gt"},
    {PrimOp::Geq, "geq"},       {PrimOp::Eq, "eq"},
    {PrimOp::Neq, "neq"},       {PrimOp::And, "and"},
    {PrimOp::Or, "or"},         {PrimOp::Xor, "xor"},
    {PrimOp::Not, "not"},       {PrimOp::Neg, "neg"},
    {PrimOp::AndR, "andr"},     {PrimOp::OrR, "orr"},
    {PrimOp::XorR, "xorr"},     {PrimOp::Cat, "cat"},
    {PrimOp::Bits, "bits"},     {PrimOp::Shl, "shl"},
    {PrimOp::Shr, "shr"},       {PrimOp::Dshl, "dshl"},
    {PrimOp::Dshr, "dshr"},     {PrimOp::Pad, "pad"},
    {PrimOp::Mux, "mux"},
}};

size_t hash_combine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

[[noreturn]] void bad_expr(const std::string& message) {
  throw std::invalid_argument("IR expression error: " + message);
}

void require_ground(const ExprPtr& e, const char* what) {
  if (!e->type()->is_ground()) {
    bad_expr(std::string(what) + " requires a ground-typed operand, got " +
             e->type()->str());
  }
}

}  // namespace

const char* prim_op_name(PrimOp op) {
  switch (op) {
    case PrimOp::AsUInt: return "asUInt";
    case PrimOp::AsSInt: return "asSInt";
    case PrimOp::AsClock: return "asClock";
    default:
      for (const auto& info : kPrimOps) {
        if (info.op == op) return info.name;
      }
      return "<bad-op>";
  }
}

bool prim_op_from_name(const std::string& name, PrimOp* out) {
  if (name == "asUInt") { *out = PrimOp::AsUInt; return true; }
  if (name == "asSInt") { *out = PrimOp::AsSInt; return true; }
  if (name == "asClock") { *out = PrimOp::AsClock; return true; }
  for (const auto& info : kPrimOps) {
    if (name == info.name) {
      *out = info.op;
      return true;
    }
  }
  return false;
}

// -- equality / hashing -------------------------------------------------------

bool RefExpr::equals(const Expr& rhs) const {
  if (rhs.kind() != ExprKind::Ref) return false;
  return static_cast<const RefExpr&>(rhs).name_ == name_;
}

size_t RefExpr::hash() const {
  return hash_combine(1, std::hash<std::string>{}(name_));
}

bool SubFieldExpr::equals(const Expr& rhs) const {
  if (rhs.kind() != ExprKind::SubField) return false;
  const auto& other = static_cast<const SubFieldExpr&>(rhs);
  return field_ == other.field_ && base_->equals(*other.base_);
}

size_t SubFieldExpr::hash() const {
  return hash_combine(hash_combine(2, base_->hash()),
                      std::hash<std::string>{}(field_));
}

bool SubIndexExpr::equals(const Expr& rhs) const {
  if (rhs.kind() != ExprKind::SubIndex) return false;
  const auto& other = static_cast<const SubIndexExpr&>(rhs);
  return index_ == other.index_ && base_->equals(*other.base_);
}

size_t SubIndexExpr::hash() const {
  return hash_combine(hash_combine(3, base_->hash()), index_);
}

bool SubAccessExpr::equals(const Expr& rhs) const {
  if (rhs.kind() != ExprKind::SubAccess) return false;
  const auto& other = static_cast<const SubAccessExpr&>(rhs);
  return base_->equals(*other.base_) && index_->equals(*other.index_);
}

size_t SubAccessExpr::hash() const {
  return hash_combine(hash_combine(4, base_->hash()), index_->hash());
}

std::string LiteralExpr::str() const {
  return type()->str() + "(" + value_.to_string(10) + ")";
}

bool LiteralExpr::equals(const Expr& rhs) const {
  if (rhs.kind() != ExprKind::Literal) return false;
  const auto& other = static_cast<const LiteralExpr&>(rhs);
  return value_ == other.value_ &&
         type()->is_signed() == other.type()->is_signed();
}

size_t LiteralExpr::hash() const { return hash_combine(5, value_.hash()); }

std::string PrimExpr::str() const {
  std::string out = prim_op_name(op_);
  out.push_back('(');
  bool first = true;
  for (const auto& operand : operands_) {
    if (!first) out += ", ";
    first = false;
    out += operand->str();
  }
  for (uint32_t p : int_params_) {
    if (!first) out += ", ";
    first = false;
    out += std::to_string(p);
  }
  out.push_back(')');
  return out;
}

bool PrimExpr::equals(const Expr& rhs) const {
  if (rhs.kind() != ExprKind::Prim) return false;
  const auto& other = static_cast<const PrimExpr&>(rhs);
  if (op_ != other.op_ || int_params_ != other.int_params_ ||
      operands_.size() != other.operands_.size()) {
    return false;
  }
  for (size_t i = 0; i < operands_.size(); ++i) {
    if (!operands_[i]->equals(*other.operands_[i])) return false;
  }
  return true;
}

size_t PrimExpr::hash() const {
  size_t h = hash_combine(6, static_cast<size_t>(op_));
  for (const auto& operand : operands_) h = hash_combine(h, operand->hash());
  for (uint32_t p : int_params_) h = hash_combine(h, p);
  return h;
}

// -- factories ----------------------------------------------------------------

ExprPtr make_ref(std::string name, TypePtr type) {
  if (!type) bad_expr("ref '" + name + "' has no type");
  return std::make_shared<RefExpr>(std::move(name), std::move(type));
}

ExprPtr make_subfield(ExprPtr base, const std::string& field) {
  if (base->type()->kind() != TypeKind::Bundle) {
    bad_expr("subfield ." + field + " on non-bundle " + base->type()->str());
  }
  const auto& bundle = static_cast<const BundleType&>(*base->type());
  const BundleField* f = bundle.field(field);
  if (f == nullptr) {
    bad_expr("bundle " + bundle.str() + " has no field '" + field + "'");
  }
  return std::make_shared<SubFieldExpr>(std::move(base), field, f->type);
}

ExprPtr make_subindex(ExprPtr base, uint32_t index) {
  if (base->type()->kind() != TypeKind::Vector) {
    bad_expr("subindex on non-vector " + base->type()->str());
  }
  const auto& vec = static_cast<const VectorType&>(*base->type());
  if (index >= vec.size()) {
    bad_expr("index " + std::to_string(index) + " out of range for " + vec.str());
  }
  return std::make_shared<SubIndexExpr>(std::move(base), index, vec.element());
}

ExprPtr make_subaccess(ExprPtr base, ExprPtr index) {
  if (base->type()->kind() != TypeKind::Vector) {
    bad_expr("subaccess on non-vector " + base->type()->str());
  }
  require_ground(index, "subaccess index");
  const auto& vec = static_cast<const VectorType&>(*base->type());
  return std::make_shared<SubAccessExpr>(std::move(base), std::move(index),
                                         vec.element());
}

ExprPtr make_literal(common::BitVector value, bool is_signed) {
  return std::make_shared<LiteralExpr>(std::move(value), is_signed);
}

ExprPtr make_uint_literal(uint32_t width, uint64_t value) {
  return make_literal(common::BitVector(width, value), /*is_signed=*/false);
}

ExprPtr make_bool_literal(bool value) {
  return make_uint_literal(1, value ? 1 : 0);
}

ExprPtr make_prim(PrimOp op, std::vector<ExprPtr> operands,
                  std::vector<uint32_t> int_params) {
  auto expect_operands = [&](size_t n) {
    if (operands.size() != n) {
      bad_expr(std::string(prim_op_name(op)) + " expects " + std::to_string(n) +
               " operands, got " + std::to_string(operands.size()));
    }
  };
  auto expect_params = [&](size_t n) {
    if (int_params.size() != n) {
      bad_expr(std::string(prim_op_name(op)) + " expects " + std::to_string(n) +
               " integer parameters, got " + std::to_string(int_params.size()));
    }
  };
  auto max_width = [&] {
    return std::max(operands[0]->width(), operands[1]->width());
  };
  auto same_signedness = [&] {
    const bool s = operands[0]->type()->is_signed();
    if (operands[1]->type()->is_signed() != s) {
      bad_expr(std::string(prim_op_name(op)) + " operand signedness mismatch");
    }
    return s;
  };

  TypePtr type;
  switch (op) {
    case PrimOp::Add: case PrimOp::Sub: case PrimOp::Mul:
    case PrimOp::Div: case PrimOp::Rem: {
      expect_operands(2); expect_params(0);
      require_ground(operands[0], "arith"); require_ground(operands[1], "arith");
      const bool s = same_signedness();
      type = s ? sint_type(max_width()) : uint_type(max_width());
      break;
    }
    case PrimOp::Lt: case PrimOp::Leq: case PrimOp::Gt:
    case PrimOp::Geq: case PrimOp::Eq: case PrimOp::Neq: {
      expect_operands(2); expect_params(0);
      require_ground(operands[0], "cmp"); require_ground(operands[1], "cmp");
      same_signedness();
      type = bool_type();
      break;
    }
    case PrimOp::And: case PrimOp::Or: case PrimOp::Xor: {
      expect_operands(2); expect_params(0);
      require_ground(operands[0], "bitwise"); require_ground(operands[1], "bitwise");
      type = uint_type(max_width());
      break;
    }
    case PrimOp::Not: {
      expect_operands(1); expect_params(0);
      require_ground(operands[0], "not");
      type = uint_type(operands[0]->width());
      break;
    }
    case PrimOp::Neg: {
      expect_operands(1); expect_params(0);
      require_ground(operands[0], "neg");
      type = operands[0]->type()->is_signed()
                 ? sint_type(operands[0]->width())
                 : uint_type(operands[0]->width());
      break;
    }
    case PrimOp::AndR: case PrimOp::OrR: case PrimOp::XorR: {
      expect_operands(1); expect_params(0);
      require_ground(operands[0], "reduction");
      type = bool_type();
      break;
    }
    case PrimOp::Cat: {
      expect_operands(2); expect_params(0);
      require_ground(operands[0], "cat"); require_ground(operands[1], "cat");
      type = uint_type(operands[0]->width() + operands[1]->width());
      break;
    }
    case PrimOp::Bits: {
      expect_operands(1); expect_params(2);
      require_ground(operands[0], "bits");
      const uint32_t hi = int_params[0];
      const uint32_t lo = int_params[1];
      if (lo > hi || hi >= operands[0]->width()) {
        bad_expr("bits(" + std::to_string(hi) + ", " + std::to_string(lo) +
                 ") out of range for width " + std::to_string(operands[0]->width()));
      }
      type = uint_type(hi - lo + 1);
      break;
    }
    case PrimOp::Shl: case PrimOp::Shr: {
      expect_operands(1); expect_params(1);
      require_ground(operands[0], "shift");
      type = operands[0]->type()->is_signed()
                 ? sint_type(operands[0]->width())
                 : uint_type(operands[0]->width());
      break;
    }
    case PrimOp::Dshl: case PrimOp::Dshr: {
      expect_operands(2); expect_params(0);
      require_ground(operands[0], "dshift"); require_ground(operands[1], "dshift");
      type = operands[0]->type()->is_signed()
                 ? sint_type(operands[0]->width())
                 : uint_type(operands[0]->width());
      break;
    }
    case PrimOp::Pad: {
      expect_operands(1); expect_params(1);
      require_ground(operands[0], "pad");
      if (int_params[0] == 0) bad_expr("pad to width 0");
      type = operands[0]->type()->is_signed() ? sint_type(int_params[0])
                                              : uint_type(int_params[0]);
      break;
    }
    case PrimOp::AsUInt: {
      expect_operands(1); expect_params(0);
      require_ground(operands[0], "asUInt");
      type = uint_type(operands[0]->width());
      break;
    }
    case PrimOp::AsSInt: {
      expect_operands(1); expect_params(0);
      require_ground(operands[0], "asSInt");
      type = sint_type(operands[0]->width());
      break;
    }
    case PrimOp::AsClock: {
      expect_operands(1); expect_params(0);
      if (operands[0]->width() != 1) bad_expr("asClock requires a 1-bit operand");
      type = clock_type();
      break;
    }
    case PrimOp::Mux: {
      expect_operands(3); expect_params(0);
      if (operands[0]->width() != 1 || !operands[0]->type()->is_ground()) {
        bad_expr("mux selector must be a 1-bit ground value");
      }
      if (!operands[1]->type()->equals(*operands[2]->type())) {
        bad_expr("mux arm type mismatch: " + operands[1]->type()->str() +
                 " vs " + operands[2]->type()->str());
      }
      type = operands[1]->type();
      break;
    }
  }
  return std::make_shared<PrimExpr>(op, std::move(operands),
                                    std::move(int_params), std::move(type));
}

ExprPtr make_mux(ExprPtr sel, ExprPtr then_value, ExprPtr else_value) {
  return make_prim(PrimOp::Mux,
                   {std::move(sel), std::move(then_value), std::move(else_value)});
}

ExprPtr make_eq(ExprPtr lhs, ExprPtr rhs) {
  return make_prim(PrimOp::Eq, {std::move(lhs), std::move(rhs)});
}

ExprPtr make_and(ExprPtr lhs, ExprPtr rhs) {
  return make_prim(PrimOp::And, {std::move(lhs), std::move(rhs)});
}

ExprPtr make_not(ExprPtr operand) {
  return make_prim(PrimOp::Not, {std::move(operand)});
}

ExprPtr make_pad(ExprPtr operand, uint32_t width) {
  if (operand->width() == width) return operand;
  return make_prim(PrimOp::Pad, {std::move(operand)}, {width});
}

ExprPtr rewrite_expr(const ExprPtr& expr,
                     const std::function<ExprPtr(const ExprPtr&)>& fn) {
  switch (expr->kind()) {
    case ExprKind::Ref:
    case ExprKind::Literal:
      return fn(expr);
    case ExprKind::SubField: {
      const auto& node = static_cast<const SubFieldExpr&>(*expr);
      ExprPtr base = rewrite_expr(node.base(), fn);
      if (base == node.base()) return fn(expr);
      return fn(make_subfield(std::move(base), node.field()));
    }
    case ExprKind::SubIndex: {
      const auto& node = static_cast<const SubIndexExpr&>(*expr);
      ExprPtr base = rewrite_expr(node.base(), fn);
      if (base == node.base()) return fn(expr);
      return fn(make_subindex(std::move(base), node.index()));
    }
    case ExprKind::SubAccess: {
      const auto& node = static_cast<const SubAccessExpr&>(*expr);
      ExprPtr base = rewrite_expr(node.base(), fn);
      ExprPtr index = rewrite_expr(node.index(), fn);
      if (base == node.base() && index == node.index()) return fn(expr);
      return fn(make_subaccess(std::move(base), std::move(index)));
    }
    case ExprKind::Prim: {
      const auto& node = static_cast<const PrimExpr&>(*expr);
      std::vector<ExprPtr> operands;
      operands.reserve(node.operands().size());
      bool changed = false;
      for (const auto& operand : node.operands()) {
        operands.push_back(rewrite_expr(operand, fn));
        changed |= operands.back() != operand;
      }
      if (!changed) return fn(expr);
      return fn(make_prim(node.op(), std::move(operands), node.int_params()));
    }
  }
  return expr;  // unreachable
}

void visit_expr(const ExprPtr& expr, const std::function<void(const Expr&)>& fn) {
  fn(*expr);
  switch (expr->kind()) {
    case ExprKind::Ref:
    case ExprKind::Literal:
      return;
    case ExprKind::SubField:
      visit_expr(static_cast<const SubFieldExpr&>(*expr).base(), fn);
      return;
    case ExprKind::SubIndex:
      visit_expr(static_cast<const SubIndexExpr&>(*expr).base(), fn);
      return;
    case ExprKind::SubAccess: {
      const auto& node = static_cast<const SubAccessExpr&>(*expr);
      visit_expr(node.base(), fn);
      visit_expr(node.index(), fn);
      return;
    }
    case ExprKind::Prim:
      for (const auto& operand : static_cast<const PrimExpr&>(*expr).operands()) {
        visit_expr(operand, fn);
      }
      return;
  }
}

}  // namespace hgdb::ir
