#include "ir/stmt.h"

namespace hgdb::ir {

namespace {
template <typename T>
std::unique_ptr<T> copy_base(const T& from, std::unique_ptr<T> to) {
  to->loc = from.loc;
  to->loop_bindings = from.loop_bindings;
  return to;
}
}  // namespace

StmtPtr BlockStmt::clone() const { return clone_block(); }

std::unique_ptr<BlockStmt> BlockStmt::clone_block() const {
  auto out = std::make_unique<BlockStmt>();
  out->loc = loc;
  out->loop_bindings = loop_bindings;
  out->stmts.reserve(stmts.size());
  for (const auto& stmt : stmts) out->stmts.push_back(stmt->clone());
  return out;
}

StmtPtr WireStmt::clone() const {
  auto out = copy_base(*this, std::make_unique<WireStmt>(name, type));
  out->source_name = source_name;
  return out;
}

StmtPtr RegStmt::clone() const {
  auto out = copy_base(*this, std::make_unique<RegStmt>(name, type, clock_name));
  out->reset = reset;
  out->init = init;
  out->source_name = source_name;
  return out;
}

StmtPtr NodeStmt::clone() const {
  auto out = copy_base(*this, std::make_unique<NodeStmt>(name, value));
  out->source_name = source_name;
  out->enable = enable;
  out->synthetic = synthetic;
  return out;
}

StmtPtr ConnectStmt::clone() const {
  auto out = copy_base(*this, std::make_unique<ConnectStmt>(lhs, rhs));
  out->enable = enable;
  return out;
}

StmtPtr WhenStmt::clone() const {
  auto out = copy_base(*this, std::make_unique<WhenStmt>(cond));
  out->then_body = then_body->clone_block();
  if (else_body) out->else_body = else_body->clone_block();
  return out;
}

StmtPtr ForStmt::clone() const {
  auto out = copy_base(*this, std::make_unique<ForStmt>(var, start, end));
  out->body = body->clone_block();
  return out;
}

StmtPtr InstanceStmt::clone() const {
  return copy_base(*this, std::make_unique<InstanceStmt>(name, module_name));
}

void visit_stmts(const Stmt& root, const std::function<void(const Stmt&)>& fn) {
  fn(root);
  switch (root.kind()) {
    case StmtKind::Block:
      for (const auto& stmt : static_cast<const BlockStmt&>(root).stmts) {
        visit_stmts(*stmt, fn);
      }
      break;
    case StmtKind::When: {
      const auto& when = static_cast<const WhenStmt&>(root);
      visit_stmts(*when.then_body, fn);
      if (when.else_body) visit_stmts(*when.else_body, fn);
      break;
    }
    case StmtKind::For:
      visit_stmts(*static_cast<const ForStmt&>(root).body, fn);
      break;
    default:
      break;
  }
}

void visit_stmts(Stmt& root, const std::function<void(Stmt&)>& fn) {
  fn(root);
  switch (root.kind()) {
    case StmtKind::Block:
      for (auto& stmt : static_cast<BlockStmt&>(root).stmts) {
        visit_stmts(*stmt, fn);
      }
      break;
    case StmtKind::When: {
      auto& when = static_cast<WhenStmt&>(root);
      visit_stmts(*when.then_body, fn);
      if (when.else_body) visit_stmts(*when.else_body, fn);
      break;
    }
    case StmtKind::For:
      visit_stmts(*static_cast<ForStmt&>(root).body, fn);
      break;
    default:
      break;
  }
}

}  // namespace hgdb::ir
