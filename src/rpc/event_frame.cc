#include "rpc/event_frame.h"

#include <cstring>
#include <stdexcept>

namespace hgdb::rpc {

namespace detail {

void append_u32(std::string& out, uint32_t value) {
  char bytes[4];
  bytes[0] = static_cast<char>(value & 0xff);
  bytes[1] = static_cast<char>((value >> 8) & 0xff);
  bytes[2] = static_cast<char>((value >> 16) & 0xff);
  bytes[3] = static_cast<char>((value >> 24) & 0xff);
  out.append(bytes, sizeof(bytes));
}

void append_u64(std::string& out, uint64_t value) {
  append_u32(out, static_cast<uint32_t>(value & 0xffffffffu));
  append_u32(out, static_cast<uint32_t>(value >> 32));
}

void append_str(std::string& out, std::string_view value) {
  append_u32(out, static_cast<uint32_t>(value.size()));
  out.append(value.data(), value.size());
}

}  // namespace detail

namespace {

using detail::append_str;
using detail::append_u32;
using detail::append_u64;

void append_i64(std::string& out, int64_t value) {
  append_u64(out, static_cast<uint64_t>(value));
}

/// Body-level reader; every accessor throws on truncation so a corrupt
/// frame surfaces as one error instead of garbage fields.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  uint32_t u32() {
    need(4);
    const auto* p = reinterpret_cast<const unsigned char*>(bytes_.data() + pos_);
    pos_ += 4;
    return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
  }

  uint64_t u64() {
    const uint64_t lo = u32();
    const uint64_t hi = u32();
    return lo | (hi << 32);
  }

  int64_t i64() { return static_cast<int64_t>(u64()); }

  std::string str() {
    const uint32_t len = u32();
    need(len);
    std::string out(bytes_.substr(pos_, len));
    pos_ += len;
    return out;
  }

  [[nodiscard]] bool done() const { return pos_ == bytes_.size(); }

 private:
  void need(size_t count) const {
    if (bytes_.size() - pos_ < count) {
      throw std::runtime_error("truncated binary event frame");
    }
  }

  std::string_view bytes_;
  size_t pos_ = 0;
};

/// Builds the fixed frame preamble into an OutboundFrame header:
/// u32 BE total length placeholder + magic/version/kind/flags.
OutboundFrame start_frame(FrameKind kind) {
  OutboundFrame frame;
  frame.header[4] = kEventFrameMagic;
  frame.header[5] = kEventFrameVersion;
  frame.header[6] = static_cast<uint8_t>(kind);
  frame.header[7] = 0;  // flags, reserved
  frame.header_size = 8;
  return frame;
}

/// Patches the big-endian length prefix once header and body sizes are
/// final: length counts everything after the 4-byte prefix itself.
void seal_frame(OutboundFrame& frame) {
  const auto length =
      static_cast<uint32_t>(frame.header_size - 4 + frame.body.size());
  frame.header[0] = static_cast<uint8_t>((length >> 24) & 0xff);
  frame.header[1] = static_cast<uint8_t>((length >> 16) & 0xff);
  frame.header[2] = static_cast<uint8_t>((length >> 8) & 0xff);
  frame.header[3] = static_cast<uint8_t>(length & 0xff);
}

}  // namespace

std::string OutboundFrame::channel_message() const {
  std::string out;
  out.reserve(size());
  if (header_size > 4) {
    out.append(reinterpret_cast<const char*>(header.data()) + 4,
               header_size - 4);
  }
  if (body) out.append(body.bytes());
  return out;
}

SharedFrame encode_stop_body(const StopEvent& event) {
  std::string out;
  out.reserve(256);
  append_u64(out, event.time);
  append_u32(out, static_cast<uint32_t>(event.frames.size()));
  for (const auto& frame : event.frames) {
    append_i64(out, frame.breakpoint_id);
    append_i64(out, frame.instance_id);
    append_str(out, frame.instance_name);
    append_str(out, frame.filename);
    append_u32(out, frame.line);
    append_u32(out, frame.column);
    append_str(out, frame.locals.dump());
    append_str(out, frame.generator.dump());
    append_u32(out, static_cast<uint32_t>(frame.matched_conditions.size()));
    for (const auto& condition : frame.matched_conditions) {
      append_str(out, condition);
    }
  }
  append_u32(out, static_cast<uint32_t>(event.watch_hits.size()));
  for (const auto& hit : event.watch_hits) {
    append_i64(out, hit.id);
    append_str(out, hit.expression);
    append_str(out, hit.old_value);
    append_str(out, hit.new_value);
  }
  // condition_routed is delivery-local state, never serialized — the JSON
  // path omits it too, keeping the two wire forms field-equivalent.
  return SharedFrame::take(std::move(out));
}

SharedFrame encode_lifecycle_body(std::string_view reason) {
  std::string out;
  append_str(out, reason);
  return SharedFrame::take(std::move(out));
}

SharedFrame encode_breakpoint_change_body(const BreakpointChangeEvent& event) {
  std::string out;
  append_str(out, event.action);
  append_str(out, event.filename);
  append_u32(out, event.line);
  append_str(out, event.condition);
  append_u64(out, event.client);
  return SharedFrame::take(std::move(out));
}

OutboundFrame make_event_frame(FrameKind kind, SharedFrame body) {
  OutboundFrame frame = start_frame(kind);
  frame.body = std::move(body);
  seal_frame(frame);
  return frame;
}

OutboundFrame make_value_change_frame(uint64_t subscription,
                                      SharedFrame body) {
  OutboundFrame frame = start_frame(FrameKind::ValueChange);
  for (int i = 0; i < 8; ++i) {
    frame.header[frame.header_size++] =
        static_cast<uint8_t>((subscription >> (8 * i)) & 0xff);
  }
  frame.body = std::move(body);
  seal_frame(frame);
  return frame;
}

OutboundFrame make_text_frame(std::string text) {
  OutboundFrame frame;
  frame.header_size = 4;
  frame.body = SharedFrame::take(std::move(text));
  seal_frame(frame);
  return frame;
}

OutboundFrame make_raw_frame(std::string bytes) {
  OutboundFrame frame;
  frame.header_size = 0;  // the bytes carry their own framing
  frame.body = SharedFrame::take(std::move(bytes));
  return frame;
}

bool is_event_frame(std::string_view message) {
  return !message.empty() &&
         static_cast<uint8_t>(message[0]) == kEventFrameMagic;
}

DecodedEventFrame decode_event_frame(std::string_view message) {
  if (message.size() < 4 ||
      static_cast<uint8_t>(message[0]) != kEventFrameMagic) {
    throw std::runtime_error("not a binary event frame");
  }
  if (static_cast<uint8_t>(message[1]) != kEventFrameVersion) {
    throw std::runtime_error("unsupported binary event frame version");
  }
  DecodedEventFrame decoded;
  const auto kind = static_cast<uint8_t>(message[2]);
  Reader reader(message.substr(4));
  switch (kind) {
    case static_cast<uint8_t>(FrameKind::Stop): {
      decoded.kind = FrameKind::Stop;
      decoded.stop.time = reader.u64();
      const uint32_t frame_count = reader.u32();
      decoded.stop.frames.reserve(frame_count);
      for (uint32_t i = 0; i < frame_count; ++i) {
        Frame frame;
        frame.breakpoint_id = reader.i64();
        frame.instance_id = reader.i64();
        frame.instance_name = reader.str();
        frame.filename = reader.str();
        frame.line = reader.u32();
        frame.column = reader.u32();
        frame.locals = common::Json::parse(reader.str());
        frame.generator = common::Json::parse(reader.str());
        const uint32_t matched = reader.u32();
        frame.matched_conditions.reserve(matched);
        for (uint32_t j = 0; j < matched; ++j) {
          frame.matched_conditions.push_back(reader.str());
        }
        decoded.stop.frames.push_back(std::move(frame));
      }
      const uint32_t watch_count = reader.u32();
      decoded.stop.watch_hits.reserve(watch_count);
      for (uint32_t i = 0; i < watch_count; ++i) {
        WatchHit hit;
        hit.id = reader.i64();
        hit.expression = reader.str();
        hit.old_value = reader.str();
        hit.new_value = reader.str();
        decoded.stop.watch_hits.push_back(std::move(hit));
      }
      break;
    }
    case static_cast<uint8_t>(FrameKind::ValueChange): {
      decoded.kind = FrameKind::ValueChange;
      decoded.value_change.subscription = reader.u64();
      decoded.value_change.time = reader.u64();
      const uint32_t count = reader.u32();
      decoded.value_change.changes.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        DecodedEventFrame::ValueChange::Change change;
        change.signal = reader.str();
        change.value = reader.str();
        change.width = reader.u32();
        decoded.value_change.changes.push_back(std::move(change));
      }
      break;
    }
    case static_cast<uint8_t>(FrameKind::Lifecycle): {
      decoded.kind = FrameKind::Lifecycle;
      decoded.lifecycle = reader.str();
      break;
    }
    case static_cast<uint8_t>(FrameKind::BreakpointChanged): {
      decoded.kind = FrameKind::BreakpointChanged;
      decoded.breakpoint_change.action = reader.str();
      decoded.breakpoint_change.filename = reader.str();
      decoded.breakpoint_change.line = reader.u32();
      decoded.breakpoint_change.condition = reader.str();
      decoded.breakpoint_change.client = reader.u64();
      break;
    }
    default:
      throw std::runtime_error("unknown binary event frame kind");
  }
  if (!reader.done()) {
    throw std::runtime_error("trailing bytes in binary event frame");
  }
  return decoded;
}

}  // namespace hgdb::rpc
