#include "rpc/protocol_v2.h"

#include <stdexcept>

namespace hgdb::rpc {

using common::Json;

// -- typed errors -------------------------------------------------------------

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::None: return "none";
    case ErrorCode::MalformedRequest: return "malformed-request";
    case ErrorCode::UnknownCommand: return "unknown-command";
    case ErrorCode::InvalidPayload: return "invalid-payload";
    case ErrorCode::UnsupportedCapability: return "unsupported-capability";
    case ErrorCode::InvalidState: return "invalid-state";
    case ErrorCode::NoSuchLocation: return "no-such-location";
    case ErrorCode::NoSuchEntity: return "no-such-entity";
    case ErrorCode::EvaluationFailed: return "evaluation-failed";
    case ErrorCode::InternalError: return "internal-error";
    case ErrorCode::TooManySessions: return "too-many-sessions";
  }
  return "internal-error";
}

ErrorCode error_code_from_name(std::string_view name) {
  if (name == "none") return ErrorCode::None;
  if (name == "malformed-request") return ErrorCode::MalformedRequest;
  if (name == "unknown-command") return ErrorCode::UnknownCommand;
  if (name == "invalid-payload") return ErrorCode::InvalidPayload;
  if (name == "unsupported-capability") return ErrorCode::UnsupportedCapability;
  if (name == "invalid-state") return ErrorCode::InvalidState;
  if (name == "no-such-location") return ErrorCode::NoSuchLocation;
  if (name == "no-such-entity") return ErrorCode::NoSuchEntity;
  if (name == "evaluation-failed") return ErrorCode::EvaluationFailed;
  if (name == "too-many-sessions") return ErrorCode::TooManySessions;
  return ErrorCode::InternalError;
}

// -- capability negotiation ---------------------------------------------------

Json Capabilities::to_json() const {
  Json json = Json::object();
  json["protocol_version"] = Json(protocol_version);
  json["backend"] = Json(backend);
  json["time_travel"] = Json(time_travel);
  json["set_value"] = Json(set_value);
  json["multi_client"] = Json(multi_client);
  json["watchpoints"] = Json(watchpoints);
  json["batch_eval"] = Json(batch_eval);
  json["binary_events"] = Json(binary_events);
  return json;
}

Capabilities Capabilities::from_json(const Json& json) {
  Capabilities caps;
  if (!json.is_object()) return caps;
  caps.protocol_version = json.get_int("protocol_version", kProtocolV2);
  caps.backend = json.get_string("backend", "live");
  caps.time_travel = json.get_bool("time_travel");
  caps.set_value = json.get_bool("set_value");
  caps.multi_client = json.get_bool("multi_client", true);
  caps.watchpoints = json.get_bool("watchpoints", true);
  caps.batch_eval = json.get_bool("batch_eval", true);
  caps.binary_events = json.get_bool("binary_events");
  return caps;
}

// -- requests -----------------------------------------------------------------

bool is_v2_envelope(const Json& json) {
  if (!json.is_object()) return false;
  auto version = json.get("version");
  return version && version->get().is_number() &&
         version->get().as_int() >= kProtocolV2;
}

DecodedRequestV2 decode_request_v2(const Json& json) {
  DecodedRequestV2 decoded;
  if (!json.is_object()) {
    decoded.error = ErrorCode::MalformedRequest;
    decoded.reason = "request is not a JSON object";
    return decoded;
  }
  // Best-effort token extraction first, so even broken envelopes get their
  // error correlated back to the request.
  if (auto token = json.get("token"); token && token->get().is_number()) {
    decoded.request.token = token->get().as_int();
  }
  if (!is_v2_envelope(json)) {
    decoded.error = ErrorCode::MalformedRequest;
    decoded.reason = "missing or unsupported 'version'";
    return decoded;
  }
  auto command = json.get("command");
  if (!command || !command->get().is_string() ||
      command->get().as_string().empty()) {
    decoded.error = ErrorCode::MalformedRequest;
    decoded.reason = "missing or non-string 'command'";
    return decoded;
  }
  decoded.request.command = command->get().as_string();
  if (auto token = json.get("token")) {
    if (!token->get().is_number()) {
      decoded.error = ErrorCode::MalformedRequest;
      decoded.reason = "field 'token' must be a number";
      return decoded;
    }
  }
  if (auto payload = json.get("payload")) {
    if (!payload->get().is_object()) {
      decoded.error = ErrorCode::MalformedRequest;
      decoded.reason = "field 'payload' must be an object";
      return decoded;
    }
    decoded.request.payload = payload->get();
  }
  return decoded;
}

DecodedRequestV2 parse_request_v2(const std::string& text) {
  Json json;
  try {
    json = Json::parse(text);
  } catch (const std::exception& error) {
    DecodedRequestV2 decoded;
    decoded.error = ErrorCode::MalformedRequest;
    decoded.reason = std::string("malformed request: ") + error.what();
    return decoded;
  }
  return decode_request_v2(json);
}

std::string serialize_request_v2(const RequestV2& request) {
  Json json = Json::object();
  json["version"] = Json(kProtocolV2);
  json["command"] = Json(request.command);
  json["token"] = Json(request.token);
  json["payload"] = request.payload;
  return json.dump();
}

// -- responses / events -------------------------------------------------------

std::string serialize_response_v2(const ResponseV2& response) {
  Json json = Json::object();
  json["version"] = Json(kProtocolV2);
  json["type"] = Json("response");
  json["command"] = Json(response.command);
  json["token"] = Json(response.token);
  json["status"] = Json(response.ok() ? "success" : "error");
  if (!response.ok()) {
    json["error"] = Json(error_code_name(response.error));
    if (!response.reason.empty()) json["reason"] = Json(response.reason);
  }
  json["payload"] = response.payload;
  return json.dump();
}

std::string serialize_response_as_v1(const ResponseV2& response) {
  GenericResponse v1;
  v1.token = response.token;
  v1.success = response.ok();
  v1.reason = response.reason;
  v1.payload = response.payload;
  return serialize_response(v1);
}

std::string serialize_event_v2(const EventV2& event) {
  Json json = Json::object();
  json["version"] = Json(kProtocolV2);
  json["type"] = Json("event");
  json["event"] = Json(event.event);
  json["payload"] = event.payload;
  return json.dump();
}

ServerMessageV2 parse_server_message_v2(const std::string& text) {
  Json json;
  try {
    json = Json::parse(text);
  } catch (const std::exception& error) {
    throw std::runtime_error(std::string("malformed server message: ") +
                             error.what());
  }
  if (!json.is_object()) {
    throw std::runtime_error("server message is not a JSON object");
  }
  if (!is_v2_envelope(json)) {
    throw std::runtime_error("server message is not a v2 envelope");
  }
  ServerMessageV2 message;
  const std::string type = json.get_string("type");
  if (type == "response") {
    message.kind = ServerMessageV2::Kind::Response;
    message.response.command = json.get_string("command");
    message.response.token = json.get_int("token");
    const std::string status = json.get_string("status");
    if (status != "success" && status != "error") {
      throw std::runtime_error("unknown response status '" + status + "'");
    }
    if (status == "error") {
      message.response.error = error_code_from_name(json.get_string("error"));
      if (message.response.error == ErrorCode::None) {
        message.response.error = ErrorCode::InternalError;
      }
      message.response.reason = json.get_string("reason");
    }
    if (auto payload = json.get("payload")) {
      if (!payload->get().is_object()) {
        throw std::runtime_error("field 'payload' must be an object");
      }
      message.response.payload = payload->get();
    }
  } else if (type == "event") {
    message.kind = ServerMessageV2::Kind::Event;
    message.event.event = json.get_string("event");
    if (message.event.event.empty()) {
      throw std::runtime_error("event message missing 'event'");
    }
    if (auto payload = json.get("payload")) {
      if (!payload->get().is_object()) {
        throw std::runtime_error("field 'payload' must be an object");
      }
      message.event.payload = payload->get();
    }
  } else {
    throw std::runtime_error("unknown server message type '" + type + "'");
  }
  return message;
}

// -- v1 compat shim -----------------------------------------------------------

const char* v2_command_name(CommandRequest::Command command) {
  switch (command) {
    case CommandRequest::Command::Continue: return "continue";
    case CommandRequest::Command::Pause: return "pause";
    case CommandRequest::Command::StepOver: return "step-over";
    case CommandRequest::Command::StepBack: return "step-back";
    case CommandRequest::Command::ReverseContinue: return "reverse-continue";
    case CommandRequest::Command::Jump: return "jump";
    case CommandRequest::Command::Detach: return "detach";
  }
  return "continue";
}

RequestV2 v2_from_v1(const Request& request) {
  RequestV2 v2;
  v2.token = request.token;
  switch (request.kind) {
    case Request::Kind::Breakpoint: {
      v2.command = request.breakpoint.action == BreakpointRequest::Action::Add
                       ? "breakpoint-add"
                       : "breakpoint-remove";
      v2.payload["filename"] = Json(request.breakpoint.filename);
      v2.payload["line"] =
          Json(static_cast<int64_t>(request.breakpoint.line));
      v2.payload["column"] =
          Json(static_cast<int64_t>(request.breakpoint.column));
      if (!request.breakpoint.condition.empty()) {
        v2.payload["condition"] = Json(request.breakpoint.condition);
      }
      break;
    }
    case Request::Kind::BpLocation:
      v2.command = "bp-location";
      v2.payload["filename"] = Json(request.bp_location.filename);
      v2.payload["line"] =
          Json(static_cast<int64_t>(request.bp_location.line));
      break;
    case Request::Kind::Command:
      v2.command = v2_command_name(request.command.command);
      if (request.command.command == CommandRequest::Command::Jump) {
        v2.payload["time"] = Json(static_cast<int64_t>(request.command.time));
      }
      break;
    case Request::Kind::Evaluation:
      v2.command = "evaluate";
      v2.payload["expression"] = Json(request.evaluation.expression);
      if (request.evaluation.breakpoint_id) {
        v2.payload["breakpoint_id"] = Json(*request.evaluation.breakpoint_id);
      }
      if (!request.evaluation.instance_name.empty()) {
        v2.payload["instance_name"] = Json(request.evaluation.instance_name);
      }
      break;
    case Request::Kind::DebuggerInfo:
      v2.command = "info";
      break;
  }
  return v2;
}

}  // namespace hgdb::rpc
