#ifndef HGDB_RPC_PROTOCOL_H
#define HGDB_RPC_PROTOCOL_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"

namespace hgdb::rpc {

/// JSON debug protocol between debugger clients and the hgdb runtime
/// (paper Sec. 3.5: "RPC-based debugging protocol similar to gdb remote
/// protocol"). Every request carries a client-chosen `token` echoed in the
/// reply; stop events are unsolicited (token-less).
///
/// Wire format: one JSON object per Channel message, with a "type" field.

// -- requests (debugger -> runtime) -------------------------------------------

struct BreakpointRequest {
  enum class Action : uint8_t { Add, Remove };
  Action action = Action::Add;
  std::string filename;
  uint32_t line = 0;     ///< 0 = every line in file (remove only)
  uint32_t column = 0;   ///< 0 = any column
  std::string condition; ///< optional user condition expression
};

struct BpLocationRequest {
  std::string filename;
  uint32_t line = 0;  ///< 0 = all lines
};

struct CommandRequest {
  enum class Command : uint8_t {
    Continue,         ///< run until an inserted breakpoint hits
    Pause,            ///< stop at the next statement boundary
    StepOver,         ///< next statement (any breakpointable location)
    StepBack,         ///< previous statement (intra-cycle reverse; uses
                      ///< time travel across cycles when supported)
    ReverseContinue,  ///< run backwards until an inserted breakpoint hits
    Jump,             ///< jump to absolute time (requires time travel)
    Detach,           ///< remove all breakpoints and stop serving
  };
  Command command = Command::Continue;
  uint64_t time = 0;  ///< for Jump
};

struct EvaluationRequest {
  std::string expression;
  /// Scope: a breakpoint id (frame locals + instance vars) or an instance
  /// name. Empty = top instance.
  std::optional<int64_t> breakpoint_id;
  std::string instance_name;
};

struct DebuggerInfoRequest {};

/// Decoded request variant.
struct Request {
  enum class Kind : uint8_t {
    Breakpoint,
    BpLocation,
    Command,
    Evaluation,
    DebuggerInfo,
  };
  Kind kind = Kind::Command;
  int64_t token = 0;
  BreakpointRequest breakpoint;
  BpLocationRequest bp_location;
  CommandRequest command;
  EvaluationRequest evaluation;
};

/// Parses a request message. Malformed input — invalid JSON, a non-object
/// document, missing required fields, or wrong field types — always throws
/// std::runtime_error with a description (never any other exception type),
/// so a service loop can map it to a structured protocol error.
Request parse_request(const std::string& text);
std::string serialize_request(const Request& request);

// -- responses / events (runtime -> debugger) ---------------------------------

struct GenericResponse {
  int64_t token = 0;
  bool success = true;
  std::string reason;
  /// Optional payload (bp-location lists, evaluation results, info dumps).
  common::Json payload = common::Json::object();
};

/// One concurrent "hardware thread" stopped at a breakpoint
/// (paper Fig. 4 B): same source line, different instance.
struct Frame {
  int64_t breakpoint_id = 0;
  int64_t instance_id = 0;
  std::string instance_name;
  std::string filename;
  uint32_t line = 0;
  uint32_t column = 0;
  /// Local (scope) variables; values rendered as decimal strings; dotted
  /// names re-aggregated into nested objects (bundle reconstruction).
  common::Json locals = common::Json::object();
  /// Generator (instance) variables, same encoding.
  common::Json generator = common::Json::object();
  /// User-condition texts that matched at this hit (empty for
  /// unconditional stops). With per-session conditions refcounted on one
  /// shared location, the session layer routes the stop only to sessions
  /// whose own condition matched; omitted from the wire when empty so
  /// existing clients see identical frames.
  std::vector<std::string> matched_conditions;
};

/// A signal watchpoint that fired this cycle (protocol v2 `watch`): the
/// watched expression's value changed between consecutive rising edges.
struct WatchHit {
  int64_t id = 0;
  std::string expression;
  std::string old_value;  ///< decimal rendering before the edge
  std::string new_value;  ///< decimal rendering after the edge
};

struct StopEvent {
  uint64_t time = 0;
  std::vector<Frame> frames;
  /// Watchpoint hits (empty for plain breakpoint stops; omitted from the
  /// wire format when empty so v1 clients never see the field).
  std::vector<WatchHit> watch_hits;
  /// Session-layer routing metadata (never serialized): true when the stop
  /// came from a run-mode inserted-breakpoint hit, i.e. the frames'
  /// matched_conditions were actually evaluated. Only such stops are
  /// condition-routed; step/pause/watch stops broadcast to every session.
  bool condition_routed = false;
};

std::string serialize_response(const GenericResponse& response);
std::string serialize_stop_event(const StopEvent& event);

/// Decoded runtime->debugger message.
struct ServerMessage {
  enum class Kind : uint8_t { Generic, Stop };
  Kind kind = Kind::Generic;
  GenericResponse generic;
  StopEvent stop;
};

/// Parses a runtime->debugger message with the same malformed-input
/// guarantee as parse_request: std::runtime_error only.
ServerMessage parse_server_message(const std::string& text);

/// Extracts StopEvent fields from a JSON object — the body of a v1 "stop"
/// message and the payload of a v2 "stop" event share this shape. Throws
/// std::runtime_error on wrong-typed fields.
StopEvent stop_event_fields(const common::Json& json);
/// Renders a StopEvent's fields as a JSON object (the v2 event payload).
common::Json stop_event_payload(const StopEvent& event);

/// Inserts `value` into a nested JSON object, splitting `name` on '.' —
/// "io.out.bits" becomes {"io":{"out":{"bits": value}}}. This is the
/// bundle re-aggregation the paper demonstrates on the FPU's PortBundle.
void insert_nested(common::Json& object, const std::string& name,
                   common::Json value);

}  // namespace hgdb::rpc

#endif  // HGDB_RPC_PROTOCOL_H
