#ifndef HGDB_RPC_PROTOCOL_V2_H
#define HGDB_RPC_PROTOCOL_V2_H

#include <cstdint>
#include <string>
#include <string_view>

#include "common/json.h"
#include "rpc/protocol.h"

namespace hgdb::rpc {

/// Debug protocol v2: a schema-driven envelope replacing the closed v1
/// request enum. Every client->runtime message is
///
///   {"version": 2, "command": "<name>", "token": <int>, "payload": {...}}
///
/// and every runtime->client message is either a response
///
///   {"version": 2, "type": "response", "command": "<name>", "token": <int>,
///    "status": "success" | "error", ["error": "<code>", "reason": "..."],
///    "payload": {...}}
///
/// or an unsolicited event
///
///   {"version": 2, "type": "event", "event": "<name>", "payload": {...}}
///
/// Commands are dispatched through a registry (session::SessionManager), so
/// new request families never touch the runtime core. A `connect` handshake
/// advertises the backend's actual capabilities (time travel, set-value,
/// live vs. replay) straight from vpi::SimulatorInterface, and failures
/// carry typed error codes instead of free-form reasons.
///
/// v1 messages (no "version" field) remain accepted through a compat shim:
/// they are translated onto the v2 command namespace and answered in the v1
/// generic wire format.

constexpr int64_t kProtocolV2 = 2;

// -- typed errors -------------------------------------------------------------

enum class ErrorCode : uint8_t {
  None = 0,               ///< success
  MalformedRequest,       ///< not JSON / not an object / broken envelope
  UnknownCommand,         ///< command not in the registry
  InvalidPayload,         ///< missing/ill-typed payload fields, bad values
  UnsupportedCapability,  ///< backend lacks the required capability
  InvalidState,           ///< legal command, wrong moment (e.g. not stopped)
  NoSuchLocation,         ///< no breakpoint at the source location
  NoSuchEntity,           ///< unknown instance / watch id / signal
  EvaluationFailed,       ///< expression did not evaluate
  InternalError,          ///< handler raised an unexpected error
  TooManySessions,        ///< SessionManager accept limit reached
};

/// Stable wire name, e.g. "unsupported-capability".
[[nodiscard]] const char* error_code_name(ErrorCode code);
/// Inverse mapping; unknown names decode to InternalError.
[[nodiscard]] ErrorCode error_code_from_name(std::string_view name);

// -- capability negotiation ---------------------------------------------------

/// What this runtime's backend actually supports, advertised by `connect`.
/// Derived from vpi::SimulatorInterface, so clients stop guessing whether
/// reverse-continue or jump will work.
struct Capabilities {
  int64_t protocol_version = kProtocolV2;
  std::string backend = "live";  ///< "live" or "replay"
  bool time_travel = false;      ///< jump / reverse execution across cycles
  bool set_value = false;        ///< forcing signal values
  bool multi_client = true;      ///< concurrent sessions share the runtime
  bool watchpoints = true;       ///< watch/unwatch commands
  bool batch_eval = true;        ///< evaluate-batch command
  bool binary_events = true;     ///< connect {"binary_events": true} switches
                                 ///< pushed events to binary frames

  [[nodiscard]] common::Json to_json() const;
  static Capabilities from_json(const common::Json& json);
};

// -- requests -----------------------------------------------------------------

struct RequestV2 {
  std::string command;
  int64_t token = 0;
  common::Json payload = common::Json::object();
};

/// Decode result; a malformed envelope is reported as a typed error (the
/// parse functions never throw), keeping garbage off the service thread's
/// exception path entirely.
struct DecodedRequestV2 {
  RequestV2 request;
  ErrorCode error = ErrorCode::None;
  std::string reason;
  [[nodiscard]] bool ok() const { return error == ErrorCode::None; }
};

/// True when a parsed message carries a v2 envelope ("version" >= 2).
[[nodiscard]] bool is_v2_envelope(const common::Json& json);

DecodedRequestV2 parse_request_v2(const std::string& text);
/// Same, over an already-parsed document (the dispatcher parses once to
/// sniff the version).
DecodedRequestV2 decode_request_v2(const common::Json& json);
std::string serialize_request_v2(const RequestV2& request);

// -- responses / events -------------------------------------------------------

struct ResponseV2 {
  std::string command;  ///< echo of the request command
  int64_t token = 0;
  ErrorCode error = ErrorCode::None;
  std::string reason;
  common::Json payload = common::Json::object();

  [[nodiscard]] bool ok() const { return error == ErrorCode::None; }
  void fail(ErrorCode code, std::string why) {
    error = code;
    reason = std::move(why);
  }
};

std::string serialize_response_v2(const ResponseV2& response);
/// Renders a v2 response in the v1 generic wire format (compat shim: v1
/// clients receive exactly what the old runtime sent).
std::string serialize_response_as_v1(const ResponseV2& response);

struct EventV2 {
  std::string event;
  common::Json payload = common::Json::object();
};

std::string serialize_event_v2(const EventV2& event);

/// Client-side decoded runtime->client v2 message.
struct ServerMessageV2 {
  enum class Kind : uint8_t { Response, Event };
  Kind kind = Kind::Response;
  ResponseV2 response;
  EventV2 event;
};

/// Throws std::runtime_error (only) on malformed input.
ServerMessageV2 parse_server_message_v2(const std::string& text);

// -- v1 compat shim -----------------------------------------------------------

/// Maps a decoded v1 request onto the v2 command namespace; the session
/// dispatcher then treats it like any v2 request.
RequestV2 v2_from_v1(const Request& request);

/// v2 command name for a v1 execution command ("continue", "jump", ...).
[[nodiscard]] const char* v2_command_name(CommandRequest::Command command);

}  // namespace hgdb::rpc

#endif  // HGDB_RPC_PROTOCOL_V2_H
