#include "rpc/protocol.h"

#include <stdexcept>

#include "common/strings.h"

namespace hgdb::rpc {

using common::Json;

namespace {

const char* command_name(CommandRequest::Command command) {
  switch (command) {
    case CommandRequest::Command::Continue: return "continue";
    case CommandRequest::Command::Pause: return "pause";
    case CommandRequest::Command::StepOver: return "step_over";
    case CommandRequest::Command::StepBack: return "step_back";
    case CommandRequest::Command::ReverseContinue: return "reverse_continue";
    case CommandRequest::Command::Jump: return "jump";
    case CommandRequest::Command::Detach: return "detach";
  }
  return "continue";
}

CommandRequest::Command command_from(const std::string& name) {
  if (name == "continue") return CommandRequest::Command::Continue;
  if (name == "pause") return CommandRequest::Command::Pause;
  if (name == "step_over") return CommandRequest::Command::StepOver;
  if (name == "step_back") return CommandRequest::Command::StepBack;
  if (name == "reverse_continue") return CommandRequest::Command::ReverseContinue;
  if (name == "jump") return CommandRequest::Command::Jump;
  if (name == "detach") return CommandRequest::Command::Detach;
  throw std::runtime_error("unknown command '" + name + "'");
}

// -- malformed-input guards ---------------------------------------------------
// Every accessor below throws std::runtime_error (and nothing else) with a
// field-specific message, so the service layer can surface a structured
// protocol error instead of letting a stray exception kill the thread.

const Json& require_field(const Json& json, const char* key) {
  auto field = json.get(key);
  if (!field) {
    throw std::runtime_error(std::string("missing field '") + key + "'");
  }
  return field->get();
}

std::string require_string(const Json& json, const char* key) {
  const Json& field = require_field(json, key);
  if (!field.is_string()) {
    throw std::runtime_error(std::string("field '") + key +
                             "' must be a string");
  }
  return field.as_string();
}

int64_t require_int(const Json& json, const char* key) {
  const Json& field = require_field(json, key);
  if (!field.is_number()) {
    throw std::runtime_error(std::string("field '") + key +
                             "' must be a number");
  }
  return field.as_int();
}

/// Absent -> default; present with the wrong type -> error.
std::string optional_string(const Json& json, const char* key) {
  auto field = json.get(key);
  if (!field) return {};
  if (!field->get().is_string()) {
    throw std::runtime_error(std::string("field '") + key +
                             "' must be a string");
  }
  return field->get().as_string();
}

int64_t optional_int(const Json& json, const char* key, int64_t fallback = 0) {
  auto field = json.get(key);
  if (!field) return fallback;
  if (!field->get().is_number()) {
    throw std::runtime_error(std::string("field '") + key +
                             "' must be a number");
  }
  return field->get().as_int();
}

Json parse_object(const std::string& text, const char* what) {
  Json json;
  try {
    json = Json::parse(text);
  } catch (const std::exception& error) {
    throw std::runtime_error(std::string("malformed ") + what + ": " +
                             error.what());
  }
  if (!json.is_object()) {
    throw std::runtime_error(std::string(what) + " is not a JSON object");
  }
  return json;
}

}  // namespace

Request parse_request(const std::string& text) {
  const Json json = parse_object(text, "request");
  Request request;
  request.token = optional_int(json, "token");
  const std::string type = require_string(json, "type");
  if (type == "breakpoint") {
    request.kind = Request::Kind::Breakpoint;
    const std::string action = optional_string(json, "action");
    if (!action.empty() && action != "add" && action != "remove") {
      throw std::runtime_error("unknown breakpoint action '" + action + "'");
    }
    request.breakpoint.action = action == "remove"
                                    ? BreakpointRequest::Action::Remove
                                    : BreakpointRequest::Action::Add;
    request.breakpoint.filename = require_string(json, "filename");
    request.breakpoint.line = static_cast<uint32_t>(optional_int(json, "line"));
    request.breakpoint.column =
        static_cast<uint32_t>(optional_int(json, "column"));
    request.breakpoint.condition = optional_string(json, "condition");
  } else if (type == "bp-location") {
    request.kind = Request::Kind::BpLocation;
    request.bp_location.filename = require_string(json, "filename");
    request.bp_location.line = static_cast<uint32_t>(optional_int(json, "line"));
  } else if (type == "command") {
    request.kind = Request::Kind::Command;
    request.command.command = command_from(require_string(json, "command"));
    request.command.time = static_cast<uint64_t>(optional_int(json, "time"));
  } else if (type == "evaluation") {
    request.kind = Request::Kind::Evaluation;
    request.evaluation.expression = require_string(json, "expression");
    if (json.contains("breakpoint_id")) {
      request.evaluation.breakpoint_id = require_int(json, "breakpoint_id");
    }
    request.evaluation.instance_name = optional_string(json, "instance_name");
  } else if (type == "debugger-info") {
    request.kind = Request::Kind::DebuggerInfo;
  } else {
    throw std::runtime_error("unknown request type '" + type + "'");
  }
  return request;
}

std::string serialize_request(const Request& request) {
  Json json = Json::object();
  json["token"] = Json(request.token);
  switch (request.kind) {
    case Request::Kind::Breakpoint:
      json["type"] = Json("breakpoint");
      json["action"] = Json(request.breakpoint.action ==
                                    BreakpointRequest::Action::Remove
                                ? "remove"
                                : "add");
      json["filename"] = Json(request.breakpoint.filename);
      json["line"] = Json(static_cast<int64_t>(request.breakpoint.line));
      json["column"] = Json(static_cast<int64_t>(request.breakpoint.column));
      if (!request.breakpoint.condition.empty()) {
        json["condition"] = Json(request.breakpoint.condition);
      }
      break;
    case Request::Kind::BpLocation:
      json["type"] = Json("bp-location");
      json["filename"] = Json(request.bp_location.filename);
      json["line"] = Json(static_cast<int64_t>(request.bp_location.line));
      break;
    case Request::Kind::Command:
      json["type"] = Json("command");
      json["command"] = Json(command_name(request.command.command));
      json["time"] = Json(static_cast<int64_t>(request.command.time));
      break;
    case Request::Kind::Evaluation:
      json["type"] = Json("evaluation");
      json["expression"] = Json(request.evaluation.expression);
      if (request.evaluation.breakpoint_id) {
        json["breakpoint_id"] = Json(*request.evaluation.breakpoint_id);
      }
      if (!request.evaluation.instance_name.empty()) {
        json["instance_name"] = Json(request.evaluation.instance_name);
      }
      break;
    case Request::Kind::DebuggerInfo:
      json["type"] = Json("debugger-info");
      break;
  }
  return json.dump();
}

std::string serialize_response(const GenericResponse& response) {
  Json json = Json::object();
  json["type"] = Json("generic");
  json["token"] = Json(response.token);
  json["status"] = Json(response.success ? "success" : "error");
  if (!response.reason.empty()) json["reason"] = Json(response.reason);
  json["payload"] = response.payload;
  return json.dump();
}

namespace {

Json frame_to_json(const Frame& frame) {
  Json f = Json::object();
  f["breakpoint_id"] = Json(frame.breakpoint_id);
  f["instance_id"] = Json(frame.instance_id);
  f["instance_name"] = Json(frame.instance_name);
  f["filename"] = Json(frame.filename);
  f["line"] = Json(static_cast<int64_t>(frame.line));
  f["column"] = Json(static_cast<int64_t>(frame.column));
  f["locals"] = frame.locals;
  f["generator"] = frame.generator;
  if (!frame.matched_conditions.empty()) {
    Json matched = Json::array();
    for (const auto& condition : frame.matched_conditions) {
      matched.push_back(Json(condition));
    }
    f["matched_conditions"] = std::move(matched);
  }
  return f;
}

Frame frame_from_json(const Json& f) {
  if (!f.is_object()) throw std::runtime_error("stop frame must be an object");
  Frame frame;
  frame.breakpoint_id = optional_int(f, "breakpoint_id");
  frame.instance_id = optional_int(f, "instance_id");
  frame.instance_name = optional_string(f, "instance_name");
  frame.filename = optional_string(f, "filename");
  frame.line = static_cast<uint32_t>(optional_int(f, "line"));
  frame.column = static_cast<uint32_t>(optional_int(f, "column"));
  if (auto locals = f.get("locals")) {
    if (!locals->get().is_object()) {
      throw std::runtime_error("frame field 'locals' must be an object");
    }
    frame.locals = locals->get();
  }
  if (auto generator = f.get("generator")) {
    if (!generator->get().is_object()) {
      throw std::runtime_error("frame field 'generator' must be an object");
    }
    frame.generator = generator->get();
  }
  if (auto matched = f.get("matched_conditions")) {
    if (!matched->get().is_array()) {
      throw std::runtime_error(
          "frame field 'matched_conditions' must be an array");
    }
    for (const auto& condition : matched->get().as_array()) {
      if (!condition.is_string()) {
        throw std::runtime_error(
            "frame field 'matched_conditions' entries must be strings");
      }
      frame.matched_conditions.push_back(condition.as_string());
    }
  }
  return frame;
}

Json watch_hit_to_json(const WatchHit& hit) {
  Json w = Json::object();
  w["id"] = Json(hit.id);
  w["expression"] = Json(hit.expression);
  w["old"] = Json(hit.old_value);
  w["new"] = Json(hit.new_value);
  return w;
}

WatchHit watch_hit_from_json(const Json& w) {
  if (!w.is_object()) throw std::runtime_error("watch hit must be an object");
  WatchHit hit;
  hit.id = optional_int(w, "id");
  hit.expression = optional_string(w, "expression");
  hit.old_value = optional_string(w, "old");
  hit.new_value = optional_string(w, "new");
  return hit;
}

}  // namespace

std::string serialize_stop_event(const StopEvent& event) {
  Json frames = Json::array();
  for (const auto& frame : event.frames) {
    frames.push_back(frame_to_json(frame));
  }
  Json json = Json::object();
  json["type"] = Json("stop");
  json["time"] = Json(static_cast<int64_t>(event.time));
  json["frames"] = std::move(frames);
  if (!event.watch_hits.empty()) {
    Json watches = Json::array();
    for (const auto& hit : event.watch_hits) {
      watches.push_back(watch_hit_to_json(hit));
    }
    json["watches"] = std::move(watches);
  }
  return json.dump();
}

ServerMessage parse_server_message(const std::string& text) {
  const Json json = parse_object(text, "server message");
  ServerMessage message;
  const std::string type = require_string(json, "type");
  if (type == "stop") {
    message.kind = ServerMessage::Kind::Stop;
    message.stop = stop_event_fields(json);
  } else if (type == "generic") {
    message.kind = ServerMessage::Kind::Generic;
    message.generic.token = optional_int(json, "token");
    const std::string status = require_string(json, "status");
    if (status != "success" && status != "error") {
      throw std::runtime_error("unknown response status '" + status + "'");
    }
    message.generic.success = status == "success";
    message.generic.reason = optional_string(json, "reason");
    if (auto payload = json.get("payload")) {
      message.generic.payload = payload->get();
    }
  } else {
    throw std::runtime_error("unknown server message type '" + type + "'");
  }
  return message;
}

StopEvent stop_event_fields(const Json& json) {
  StopEvent stop;
  stop.time = static_cast<uint64_t>(optional_int(json, "time"));
  if (auto frames = json.get("frames")) {
    if (!frames->get().is_array()) {
      throw std::runtime_error("field 'frames' must be an array");
    }
    for (const auto& f : frames->get().as_array()) {
      stop.frames.push_back(frame_from_json(f));
    }
  }
  if (auto watches = json.get("watches")) {
    if (!watches->get().is_array()) {
      throw std::runtime_error("field 'watches' must be an array");
    }
    for (const auto& w : watches->get().as_array()) {
      stop.watch_hits.push_back(watch_hit_from_json(w));
    }
  }
  return stop;
}

Json stop_event_payload(const StopEvent& event) {
  Json json = Json::object();
  json["time"] = Json(static_cast<int64_t>(event.time));
  Json frames = Json::array();
  for (const auto& frame : event.frames) {
    frames.push_back(frame_to_json(frame));
  }
  json["frames"] = std::move(frames);
  if (!event.watch_hits.empty()) {
    Json watches = Json::array();
    for (const auto& hit : event.watch_hits) {
      watches.push_back(watch_hit_to_json(hit));
    }
    json["watches"] = std::move(watches);
  }
  return json;
}

void insert_nested(Json& object, const std::string& name, Json value) {
  const auto parts = common::split(name, '.');
  Json* node = &object;
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    Json& child = (*node)[parts[i]];
    if (!child.is_object()) child = Json::object();
    node = &child;
  }
  (*node)[parts.back()] = std::move(value);
}

}  // namespace hgdb::rpc
