#include "rpc/protocol.h"

#include <stdexcept>

#include "common/strings.h"

namespace hgdb::rpc {

using common::Json;

namespace {

const char* command_name(CommandRequest::Command command) {
  switch (command) {
    case CommandRequest::Command::Continue: return "continue";
    case CommandRequest::Command::Pause: return "pause";
    case CommandRequest::Command::StepOver: return "step_over";
    case CommandRequest::Command::StepBack: return "step_back";
    case CommandRequest::Command::ReverseContinue: return "reverse_continue";
    case CommandRequest::Command::Jump: return "jump";
    case CommandRequest::Command::Detach: return "detach";
  }
  return "continue";
}

CommandRequest::Command command_from(const std::string& name) {
  if (name == "continue") return CommandRequest::Command::Continue;
  if (name == "pause") return CommandRequest::Command::Pause;
  if (name == "step_over") return CommandRequest::Command::StepOver;
  if (name == "step_back") return CommandRequest::Command::StepBack;
  if (name == "reverse_continue") return CommandRequest::Command::ReverseContinue;
  if (name == "jump") return CommandRequest::Command::Jump;
  if (name == "detach") return CommandRequest::Command::Detach;
  throw std::runtime_error("unknown command '" + name + "'");
}

}  // namespace

Request parse_request(const std::string& text) {
  const Json json = Json::parse(text);
  Request request;
  request.token = json.get_int("token");
  const std::string type = json.get_string("type");
  if (type == "breakpoint") {
    request.kind = Request::Kind::Breakpoint;
    request.breakpoint.action = json.get_string("action") == "remove"
                                    ? BreakpointRequest::Action::Remove
                                    : BreakpointRequest::Action::Add;
    request.breakpoint.filename = json.get_string("filename");
    request.breakpoint.line = static_cast<uint32_t>(json.get_int("line"));
    request.breakpoint.column = static_cast<uint32_t>(json.get_int("column"));
    request.breakpoint.condition = json.get_string("condition");
  } else if (type == "bp-location") {
    request.kind = Request::Kind::BpLocation;
    request.bp_location.filename = json.get_string("filename");
    request.bp_location.line = static_cast<uint32_t>(json.get_int("line"));
  } else if (type == "command") {
    request.kind = Request::Kind::Command;
    request.command.command = command_from(json.get_string("command"));
    request.command.time = static_cast<uint64_t>(json.get_int("time"));
  } else if (type == "evaluation") {
    request.kind = Request::Kind::Evaluation;
    request.evaluation.expression = json.get_string("expression");
    if (json.contains("breakpoint_id")) {
      request.evaluation.breakpoint_id = json.get_int("breakpoint_id");
    }
    request.evaluation.instance_name = json.get_string("instance_name");
  } else if (type == "debugger-info") {
    request.kind = Request::Kind::DebuggerInfo;
  } else {
    throw std::runtime_error("unknown request type '" + type + "'");
  }
  return request;
}

std::string serialize_request(const Request& request) {
  Json json = Json::object();
  json["token"] = Json(request.token);
  switch (request.kind) {
    case Request::Kind::Breakpoint:
      json["type"] = Json("breakpoint");
      json["action"] = Json(request.breakpoint.action ==
                                    BreakpointRequest::Action::Remove
                                ? "remove"
                                : "add");
      json["filename"] = Json(request.breakpoint.filename);
      json["line"] = Json(static_cast<int64_t>(request.breakpoint.line));
      json["column"] = Json(static_cast<int64_t>(request.breakpoint.column));
      if (!request.breakpoint.condition.empty()) {
        json["condition"] = Json(request.breakpoint.condition);
      }
      break;
    case Request::Kind::BpLocation:
      json["type"] = Json("bp-location");
      json["filename"] = Json(request.bp_location.filename);
      json["line"] = Json(static_cast<int64_t>(request.bp_location.line));
      break;
    case Request::Kind::Command:
      json["type"] = Json("command");
      json["command"] = Json(command_name(request.command.command));
      json["time"] = Json(static_cast<int64_t>(request.command.time));
      break;
    case Request::Kind::Evaluation:
      json["type"] = Json("evaluation");
      json["expression"] = Json(request.evaluation.expression);
      if (request.evaluation.breakpoint_id) {
        json["breakpoint_id"] = Json(*request.evaluation.breakpoint_id);
      }
      if (!request.evaluation.instance_name.empty()) {
        json["instance_name"] = Json(request.evaluation.instance_name);
      }
      break;
    case Request::Kind::DebuggerInfo:
      json["type"] = Json("debugger-info");
      break;
  }
  return json.dump();
}

std::string serialize_response(const GenericResponse& response) {
  Json json = Json::object();
  json["type"] = Json("generic");
  json["token"] = Json(response.token);
  json["status"] = Json(response.success ? "success" : "error");
  if (!response.reason.empty()) json["reason"] = Json(response.reason);
  json["payload"] = response.payload;
  return json.dump();
}

std::string serialize_stop_event(const StopEvent& event) {
  Json frames = Json::array();
  for (const auto& frame : event.frames) {
    Json f = Json::object();
    f["breakpoint_id"] = Json(frame.breakpoint_id);
    f["instance_id"] = Json(frame.instance_id);
    f["instance_name"] = Json(frame.instance_name);
    f["filename"] = Json(frame.filename);
    f["line"] = Json(static_cast<int64_t>(frame.line));
    f["column"] = Json(static_cast<int64_t>(frame.column));
    f["locals"] = frame.locals;
    f["generator"] = frame.generator;
    frames.push_back(std::move(f));
  }
  Json json = Json::object();
  json["type"] = Json("stop");
  json["time"] = Json(static_cast<int64_t>(event.time));
  json["frames"] = std::move(frames);
  return json.dump();
}

ServerMessage parse_server_message(const std::string& text) {
  const Json json = Json::parse(text);
  ServerMessage message;
  if (json.get_string("type") == "stop") {
    message.kind = ServerMessage::Kind::Stop;
    message.stop.time = static_cast<uint64_t>(json.get_int("time"));
    if (auto frames = json.get("frames")) {
      for (const auto& f : frames->get().as_array()) {
        Frame frame;
        frame.breakpoint_id = f.get_int("breakpoint_id");
        frame.instance_id = f.get_int("instance_id");
        frame.instance_name = f.get_string("instance_name");
        frame.filename = f.get_string("filename");
        frame.line = static_cast<uint32_t>(f.get_int("line"));
        frame.column = static_cast<uint32_t>(f.get_int("column"));
        if (auto locals = f.get("locals")) frame.locals = locals->get();
        if (auto generator = f.get("generator")) {
          frame.generator = generator->get();
        }
        message.stop.frames.push_back(std::move(frame));
      }
    }
  } else {
    message.kind = ServerMessage::Kind::Generic;
    message.generic.token = json.get_int("token");
    message.generic.success = json.get_string("status") == "success";
    message.generic.reason = json.get_string("reason");
    if (auto payload = json.get("payload")) {
      message.generic.payload = payload->get();
    }
  }
  return message;
}

void insert_nested(Json& object, const std::string& name, Json value) {
  const auto parts = common::split(name, '.');
  Json* node = &object;
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    Json& child = (*node)[parts[i]];
    if (!child.is_object()) child = Json::object();
    node = &child;
  }
  (*node)[parts.back()] = std::move(value);
}

}  // namespace hgdb::rpc
