#include "rpc/channel.h"

#include <condition_variable>
#include <deque>
#include <stdexcept>

#include "common/checked_mutex.h"

namespace hgdb::rpc {

namespace {

/// Shared state of one direction of an in-process pipe.
struct Queue {
  common::RpcMutex mutex{"rpc::queue"};
  std::condition_variable_any ready;
  std::deque<std::string> messages HGDB_GUARDED_BY(mutex);
  bool closed HGDB_GUARDED_BY(mutex) = false;

  void push(std::string message) {
    {
      common::LockGuard lock(mutex);
      if (closed) throw std::runtime_error("channel closed");
      messages.push_back(std::move(message));
    }
    ready.notify_one();
  }

  std::optional<std::string> pop(std::optional<std::chrono::milliseconds> timeout) {
    common::UniqueLock lock(mutex);
    if (timeout) {
      const auto deadline = std::chrono::steady_clock::now() + *timeout;
      while (messages.empty() && !closed) {
        if (ready.wait_until(lock, deadline) == std::cv_status::timeout) {
          break;
        }
      }
      if (messages.empty() && !closed) return std::nullopt;  // timed out
    } else {
      while (messages.empty() && !closed) ready.wait(lock);
    }
    if (messages.empty()) return std::nullopt;  // closed and drained
    std::string message = std::move(messages.front());
    messages.pop_front();
    return message;
  }

  void close() {
    {
      common::LockGuard lock(mutex);
      closed = true;
    }
    ready.notify_all();
  }
};

class PairedChannel final : public Channel {
 public:
  PairedChannel(std::shared_ptr<Queue> incoming, std::shared_ptr<Queue> outgoing)
      : incoming_(std::move(incoming)), outgoing_(std::move(outgoing)) {}

  ~PairedChannel() override { close(); }

  void send(std::string message) override { outgoing_->push(std::move(message)); }

  std::optional<std::string> receive(
      std::optional<std::chrono::milliseconds> timeout) override {
    return incoming_->pop(timeout);
  }

  void close() override {
    incoming_->close();
    outgoing_->close();
  }

  [[nodiscard]] bool closed() const override {
    common::LockGuard lock(incoming_->mutex);
    return incoming_->closed && incoming_->messages.empty();
  }

 private:
  std::shared_ptr<Queue> incoming_;
  std::shared_ptr<Queue> outgoing_;
};

}  // namespace

std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>> make_channel_pair() {
  auto a_to_b = std::make_shared<Queue>();
  auto b_to_a = std::make_shared<Queue>();
  return {std::make_unique<PairedChannel>(b_to_a, a_to_b),
          std::make_unique<PairedChannel>(a_to_b, b_to_a)};
}

}  // namespace hgdb::rpc
