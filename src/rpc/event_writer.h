#ifndef HGDB_RPC_EVENT_WRITER_H
#define HGDB_RPC_EVENT_WRITER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string_view>
#include <thread>
#include <vector>

#include "common/checked_mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "rpc/event_frame.h"

namespace hgdb::rpc {

/// Async batched event writer: per-target bounded outbound queues drained
/// by one poll() readiness loop that coalesces queued frames into single
/// scatter writes.
///
/// The producer side (the simulation / delivery thread) never touches a
/// socket: enqueue() is a bounded push under the writer mutex plus a wake
/// write. The loop thread flushes each target with non-blocking
/// sendmsg(iov[]) until EAGAIN, then polls the still-pending fds for
/// POLLOUT — one stalled subscriber parks *its own queue* against its own
/// socket buffer while every other target keeps draining.
///
/// Slow-client policy: a queue is bounded by frames and bytes
/// (EventWriterOptions). An enqueue that would exceed either bound drops
/// the frame (newest-dropped), bumps the shared `rpc.writer.events_dropped`
/// counter, and — when `disconnect_on_overflow` — marks the target dead
/// and fires its on_dead callback. Responses are enqueued with
/// `force = true`: they are request-paced, so they bypass the bound
/// rather than vanish mid-handshake.
///
/// Locking: one WriterMutex (rank rpc::writer, 15) guards the target
/// table and all queues. Flushes run *with the mutex held* — the socket
/// path is non-blocking by construction (MSG_DONTWAIT) and the in-process
/// channel fallback is a fast queue push at rank rpc (10), a legal
/// acquisition under 15 — which makes remove_target() trivially safe: no
/// fd or callback can be in use once it returns. on_dead callbacks are
/// deferred and run with the mutex released.
class EventWriter {
 public:
  struct Options {
    /// Per-target queue bound in frames; 0 = unbounded (not recommended).
    size_t max_queue_frames = 1024;
    /// Per-target queue bound in bytes (headers + shared-body sizes).
    size_t max_queue_bytes = 8u << 20;
    /// Kill a target on overflow instead of silently thinning its stream.
    bool disconnect_on_overflow = false;
    /// Registry for queue-depth / drop metrics; nullptr disables them.
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// One delivery endpoint. Exactly one of `fd` / `send` carries the
  /// bytes: a real socket flushes via sendmsg on `fd`; an in-process
  /// channel (fd < 0) flushes via `send`, which receives the Channel
  /// message (no 4-byte length prefix — the channel re-frames) and
  /// returns false when the peer is gone. `send` must be fast and
  /// non-blocking: it is called with the writer mutex held.
  struct Target {
    int fd = -1;
    std::function<bool(std::string_view)> send;
    /// Fired (off-lock, on the writer thread) when the target dies:
    /// write error, send() failure, or overflow disconnect. Keep it
    /// minimal — mark the session dead and close its channel; never call
    /// back into the service layer.
    std::function<void()> on_dead;
    /// Per-front-end byte counter, bumped by flushed bytes. Optional.
    obs::Counter* bytes_sent = nullptr;
  };

  enum class Enqueue : uint8_t {
    Queued,   ///< accepted, will flush asynchronously
    Dropped,  ///< bounded queue full — frame sacrificed per policy
    Dead,     ///< target already dead or removed
  };

  explicit EventWriter(const Options& options);
  ~EventWriter();

  EventWriter(const EventWriter&) = delete;
  EventWriter& operator=(const EventWriter&) = delete;

  /// Registers a delivery endpoint; starts the loop thread on first use.
  /// Returns the id enqueue()/remove_target() address it by.
  uint64_t add_target(Target target) HGDB_EXCLUDES(mutex_);

  /// Queues a frame for a target. `force` bypasses the queue bound
  /// (responses / handshake traffic — request-paced, must not vanish).
  Enqueue enqueue(uint64_t id, OutboundFrame frame, bool force = false)
      HGDB_EXCLUDES(mutex_);

  /// Unregisters a target and discards its queue. On return the writer
  /// holds no reference to the target's fd or callbacks. Idempotent.
  void remove_target(uint64_t id) HGDB_EXCLUDES(mutex_);

  /// Blocks until the target's queue is empty, the target is dead or
  /// unknown, or `timeout` elapses; true when the queue fully flushed.
  /// Teardown helper: a session's final response (disconnect ack,
  /// session-limit rejection) is still queued when the reader thread
  /// reaches cleanup, and remove_target would discard it.
  bool drain(uint64_t id, std::chrono::milliseconds timeout)
      HGDB_EXCLUDES(mutex_);

 private:
  struct Pending {
    OutboundFrame frame;
    size_t offset = 0;  ///< bytes of `frame` already written (fd targets)
  };

  struct TargetState {
    int fd = -1;
    std::function<bool(std::string_view)> send;
    std::function<void()> on_dead;
    obs::Counter* bytes_sent = nullptr;
    std::deque<Pending> queue;
    size_t queued_bytes = 0;
    bool dead = false;
  };

  void loop();
  /// Flushes every target with pending frames; targets that error are
  /// marked dead and their on_dead moved into `deferred`.
  void flush_all_locked(std::vector<std::function<void()>>& deferred)
      HGDB_REQUIRES(mutex_);
  /// Writes as much of one fd-target's queue as the socket accepts,
  /// coalescing up to kMaxIov spans per sendmsg. Returns false on a dead
  /// socket (caller marks the target dead).
  bool flush_fd_locked(TargetState& target) HGDB_REQUIRES(mutex_);
  bool flush_channel_locked(TargetState& target) HGDB_REQUIRES(mutex_);
  void mark_dead_locked(TargetState& target,
                        std::vector<std::function<void()>>& deferred)
      HGDB_REQUIRES(mutex_);
  void wake();

  const size_t max_queue_frames_;
  const size_t max_queue_bytes_;
  const bool disconnect_on_overflow_;
  // Resolved from the registry in the constructor (the registry map locks
  // at rank obs, *above* the writer mutex — never resolve under mutex_).
  // Counter::add / Histogram::record themselves are lock-free, so
  // recording under mutex_ is fine.
  obs::Counter* events_dropped_ = nullptr;
  obs::Histogram* queue_depth_ = nullptr;

  common::WriterMutex mutex_{"rpc::writer"};
  std::map<uint64_t, TargetState> targets_ HGDB_GUARDED_BY(mutex_);
  uint64_t next_id_ HGDB_GUARDED_BY(mutex_) = 1;
  bool thread_started_ HGDB_GUARDED_BY(mutex_) = false;

  std::atomic<bool> stop_{false};
  int wake_pipe_[2] = {-1, -1};
  std::thread thread_;
};

}  // namespace hgdb::rpc

#endif  // HGDB_RPC_EVENT_WRITER_H
