#ifndef HGDB_RPC_TCP_H
#define HGDB_RPC_TCP_H

#include <cstdint>
#include <memory>
#include <string>

#include "rpc/channel.h"

namespace hgdb::rpc {

/// Loopback TCP transport with 4-byte big-endian length framing. This is
/// the cross-process stand-in for the paper's WebSocket connection between
/// the VSCode/gdb-style debuggers and the runtime (Fig. 1): same message
/// semantics, simpler framing (documented in DESIGN.md).
class TcpServer {
 public:
  /// Binds and listens on 127.0.0.1:`port` (0 picks an ephemeral port).
  explicit TcpServer(uint16_t port = 0);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  [[nodiscard]] uint16_t port() const { return port_; }

  /// Blocks until a client connects; returns the connection channel.
  /// Returns nullptr if the server was closed.
  std::unique_ptr<Channel> accept();

  void close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// Connects to a TcpServer. Throws std::runtime_error on failure.
std::unique_ptr<Channel> tcp_connect(const std::string& host, uint16_t port);

}  // namespace hgdb::rpc

#endif  // HGDB_RPC_TCP_H
