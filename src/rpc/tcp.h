#ifndef HGDB_RPC_TCP_H
#define HGDB_RPC_TCP_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "rpc/channel.h"

namespace hgdb::rpc {

/// An unframed duplex byte stream. Protocols that carry their own framing
/// (the DAP front end's `Content-Length` headers) run over this instead of
/// the message-oriented Channel: reads return whatever bytes the transport
/// delivers, with no message boundaries preserved.
class ByteStream {
 public:
  virtual ~ByteStream() = default;

  /// Writes the whole buffer; false once the peer is gone.
  virtual bool send_bytes(std::string_view bytes) = 0;
  /// Writes `count` buffers back to back. Socket transports override this
  /// with one locked writev so header+payload cost a single syscall and
  /// cannot interleave with concurrent senders; the default loops over
  /// send_bytes (callers needing atomicity must serialize externally).
  virtual bool send_bytes_gather(const std::string_view* parts, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      if (!send_bytes(parts[i])) return false;
    }
    return true;
  }
  /// Blocks for the next chunk of bytes (any size >= 1). nullopt on EOF or
  /// when the stream is closed.
  virtual std::optional<std::string> receive_some() = 0;
  /// Closes the stream; a blocked receive_some wakes with nullopt.
  virtual void close() = 0;
  /// The underlying socket descriptor, or -1 for non-socket streams. Like
  /// Channel::native_handle, this lets the async event writer own the fd's
  /// outbound side with coalesced non-blocking writes.
  [[nodiscard]] virtual int native_handle() const { return -1; }
};

/// Loopback TCP transport with 4-byte big-endian length framing. This is
/// the cross-process stand-in for the paper's WebSocket connection between
/// the VSCode/gdb-style debuggers and the runtime (Fig. 1): same message
/// semantics, simpler framing (documented in DESIGN.md).
class TcpServer {
 public:
  /// Binds and listens on 127.0.0.1:`port` (0 picks an ephemeral port).
  explicit TcpServer(uint16_t port = 0);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  [[nodiscard]] uint16_t port() const { return port_; }

  /// Blocks until a client connects; returns the connection channel.
  /// Returns nullptr if the server was closed.
  std::unique_ptr<Channel> accept();

  /// Like accept(), but hands back the raw byte stream (no length framing)
  /// for protocols that frame themselves.
  std::unique_ptr<ByteStream> accept_stream();

  void close();

 private:
  int fd_ = -1;     // immutable after the constructor; closed in ~TcpServer
  std::atomic<bool> closed_{false};
  uint16_t port_ = 0;
};

/// Connects to a TcpServer. Throws std::runtime_error on failure.
std::unique_ptr<Channel> tcp_connect(const std::string& host, uint16_t port);

/// Connects and returns the raw byte stream (self-framing protocols, e.g.
/// a DAP client). Throws std::runtime_error on failure.
std::unique_ptr<ByteStream> tcp_connect_stream(const std::string& host,
                                               uint16_t port);

}  // namespace hgdb::rpc

#endif  // HGDB_RPC_TCP_H
