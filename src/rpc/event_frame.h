#ifndef HGDB_RPC_EVENT_FRAME_H
#define HGDB_RPC_EVENT_FRAME_H

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "rpc/protocol.h"

namespace hgdb::rpc {

/// Length-prefixed binary event framing — the hot-event data plane.
///
/// JSON stop/value-change frames dominate event-path bandwidth once many
/// subscribers are attached, and every subscriber pays a full re-render.
/// Clients that opt in via the `connect` capability (`binary_events`)
/// receive pushed events as compact binary frames instead, while the
/// command channel stays JSON v2. On the wire one frame is
///
///   offset  size  field
///   0       4     payload length N (big-endian, bytes after this field)
///   4       1     magic 0xEB
///   5       1     frame format version (1)
///   6       1     kind (FrameKind)
///   7       1     flags (0, reserved)
///   8       ...   kind-specific per-client prefix
///   ...     ...   shared body (serialize-once, fanned out by reference)
///
/// The leading length field doubles as the SocketChannel's 4-byte framing:
/// writing a frame's raw bytes to the socket means the peer's ordinary
/// Channel::receive() hands back `[magic .. body]` as one message, and a
/// JSON message can never be confused with one (no JSON text starts with
/// 0xEB). Inside the body all integers are little-endian fixed-width and
/// strings are u32-length-prefixed bytes.
///
/// The split between prefix and body is what makes zero-copy fan-out work:
/// the body is serialized once per event into a refcounted SharedFrame and
/// every subscriber's queue holds only the small per-client prefix plus a
/// reference to that body (OutboundFrame).

constexpr uint8_t kEventFrameMagic = 0xEB;
constexpr uint8_t kEventFrameVersion = 1;

enum class FrameKind : uint8_t {
  Stop = 1,
  ValueChange = 2,
  Lifecycle = 3,
  BreakpointChanged = 4,
};

/// A `breakpoint-changed` notification: one client edited a shared
/// location and the other attached sessions are told. `action` is
/// "armed" or "disarmed"; `client` is the editing session's id.
struct BreakpointChangeEvent {
  std::string action;
  std::string filename;
  uint32_t line = 0;
  std::string condition;
  uint64_t client = 0;
};

/// Immutable refcounted frame body: serialized once, shared by every
/// subscriber's outbound queue. Copying a SharedFrame bumps a refcount,
/// never the bytes.
class SharedFrame {
 public:
  SharedFrame() = default;

  static SharedFrame take(std::string&& bytes) {
    SharedFrame frame;
    frame.bytes_ = std::make_shared<const std::string>(std::move(bytes));
    return frame;
  }

  [[nodiscard]] const std::string& bytes() const { return *bytes_; }
  [[nodiscard]] size_t size() const { return bytes_ ? bytes_->size() : 0; }
  explicit operator bool() const { return bytes_ != nullptr; }

 private:
  std::shared_ptr<const std::string> bytes_;
};

/// One queued outbound message: a small inline header (the 4-byte length
/// prefix, the frame preamble, and any per-client prefix) plus a shared
/// body. JSON passthrough messages (responses on a binary session) use a
/// length-only header with the JSON text as the body.
struct OutboundFrame {
  static constexpr size_t kMaxHeader = 24;
  std::array<uint8_t, kMaxHeader> header{};
  uint32_t header_size = 0;
  SharedFrame body;

  [[nodiscard]] size_t size() const {
    return header_size + body.size();
  }
  /// The frame as a Channel message (everything after the 4-byte length
  /// prefix) — the in-process fallback path, where the Channel re-frames.
  [[nodiscard]] std::string channel_message() const;
};

// -- body encoders (serialize once, share via SharedFrame) --------------------

SharedFrame encode_stop_body(const StopEvent& event);
SharedFrame encode_lifecycle_body(std::string_view reason);
SharedFrame encode_breakpoint_change_body(const BreakpointChangeEvent& event);

/// Encodes a value-change body from any container of entries carrying
/// `signal` (string), `value` (string) and `width` (u32) — the session
/// layer's Change type and the decoder's entry type both qualify.
namespace detail {
void append_u32(std::string& out, uint32_t value);
void append_u64(std::string& out, uint64_t value);
void append_str(std::string& out, std::string_view value);
}  // namespace detail

template <typename Changes>
SharedFrame encode_value_change_body(uint64_t time, const Changes& changes) {
  std::string out;
  detail::append_u64(out, time);
  detail::append_u32(out, static_cast<uint32_t>(changes.size()));
  for (const auto& change : changes) {
    detail::append_str(out, change.signal);
    detail::append_str(out, change.value);
    detail::append_u32(out, change.width);
  }
  return SharedFrame::take(std::move(out));
}

// -- frame assembly (per-client header + shared body) -------------------------

/// Frames a shared body for kinds with no per-client prefix (Stop,
/// Lifecycle, BreakpointChanged).
OutboundFrame make_event_frame(FrameKind kind, SharedFrame body);
/// Frames a value-change body; the subscription id rides in the
/// per-client prefix so the body stays shareable across subscribers.
OutboundFrame make_value_change_frame(uint64_t subscription, SharedFrame body);
/// Wraps JSON text (a response or a legacy event) for a binary session's
/// queue: length-only header, text as body.
OutboundFrame make_text_frame(std::string text);
/// Wraps already-framed bytes for a writer queue verbatim — no length
/// prefix at all. For transports with their own framing (the DAP front
/// end's Content-Length messages) that still need the writer's bounded
/// queues and non-blocking flush.
OutboundFrame make_raw_frame(std::string bytes);

// -- client-side decode -------------------------------------------------------

/// True when a received Channel message is a binary event frame (first
/// byte is the magic). JSON messages can never match.
[[nodiscard]] bool is_event_frame(std::string_view message);

/// A decoded event frame; `kind` selects which member is meaningful.
struct DecodedEventFrame {
  FrameKind kind = FrameKind::Stop;
  StopEvent stop;
  struct ValueChange {
    uint64_t subscription = 0;
    uint64_t time = 0;
    struct Change {
      std::string signal;
      std::string value;
      uint32_t width = 0;
    };
    std::vector<Change> changes;
  } value_change;
  std::string lifecycle;
  BreakpointChangeEvent breakpoint_change;
};

/// Decodes a binary event frame (the Channel message, i.e. bytes after
/// the 4-byte length prefix). Throws std::runtime_error on malformed or
/// truncated input.
DecodedEventFrame decode_event_frame(std::string_view message);

}  // namespace hgdb::rpc

#endif  // HGDB_RPC_EVENT_FRAME_H
