#include "rpc/event_writer.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace hgdb::rpc {

namespace {

/// iovec spans coalesced into one sendmsg. Each queued frame contributes
/// up to two spans (inline header + shared body), so 64 spans flush up
/// to 32 frames per syscall.
constexpr size_t kMaxIov = 64;

}  // namespace

EventWriter::EventWriter(const Options& options)
    : max_queue_frames_(options.max_queue_frames),
      max_queue_bytes_(options.max_queue_bytes),
      disconnect_on_overflow_(options.disconnect_on_overflow) {
  if (options.metrics != nullptr) {
    events_dropped_ = &options.metrics->counter("rpc.writer.events_dropped");
    queue_depth_ = &options.metrics->histogram("rpc.writer.queue_depth");
  }
  if (::pipe2(wake_pipe_, O_CLOEXEC | O_NONBLOCK) != 0) {
    throw std::runtime_error("event writer: pipe2 failed");
  }
}

EventWriter::~EventWriter() {
  stop_.store(true, std::memory_order_release);
  wake();
  if (thread_.joinable()) thread_.join();
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
}

uint64_t EventWriter::add_target(Target target) {
  const common::LockGuard lock(mutex_);
  const uint64_t id = next_id_++;
  TargetState& state = targets_[id];
  state.fd = target.fd;
  state.send = std::move(target.send);
  state.on_dead = std::move(target.on_dead);
  state.bytes_sent = target.bytes_sent;
  if (!thread_started_) {
    thread_started_ = true;
    thread_ = std::thread([this] { loop(); });
  }
  return id;
}

EventWriter::Enqueue EventWriter::enqueue(uint64_t id, OutboundFrame frame,
                                          bool force) {
  bool dropped_disconnect = false;
  std::function<void()> on_dead;
  {
    const common::LockGuard lock(mutex_);
    auto it = targets_.find(id);
    if (it == targets_.end() || it->second.dead) return Enqueue::Dead;
    TargetState& state = it->second;
    const size_t frame_size = frame.size();
    const bool over_frames =
        max_queue_frames_ != 0 && state.queue.size() >= max_queue_frames_;
    const bool over_bytes =
        max_queue_bytes_ != 0 &&
        state.queued_bytes + frame_size > max_queue_bytes_;
    if (!force && (over_frames || over_bytes)) {
      if (events_dropped_ != nullptr) events_dropped_->add();
      if (disconnect_on_overflow_) {
        state.dead = true;
        state.queue.clear();
        state.queued_bytes = 0;
        on_dead = std::move(state.on_dead);
        dropped_disconnect = true;
      }
      if (!dropped_disconnect) return Enqueue::Dropped;
    } else {
      state.queued_bytes += frame_size;
      state.queue.push_back(Pending{std::move(frame), 0});
      if (queue_depth_ != nullptr) queue_depth_->record(state.queue.size());
    }
  }
  if (dropped_disconnect) {
    if (on_dead) on_dead();
    return Enqueue::Dropped;
  }
  wake();
  return Enqueue::Queued;
}

void EventWriter::remove_target(uint64_t id) {
  const common::LockGuard lock(mutex_);
  targets_.erase(id);
}

bool EventWriter::drain(uint64_t id, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  wake();
  while (true) {
    {
      const common::LockGuard lock(mutex_);
      auto it = targets_.find(id);
      if (it == targets_.end() || it->second.dead) return false;
      if (it->second.queue.empty()) return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    // The loop thread flushes as fast as the socket accepts; polling here
    // (off-lock) is a teardown-only cost.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void EventWriter::wake() {
  const char byte = 0;
  // Full pipe means a wake is already pending — that is all we need.
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

bool EventWriter::flush_fd_locked(TargetState& target) {
  while (!target.queue.empty()) {
    struct iovec iov[kMaxIov];
    size_t iov_count = 0;
    size_t span_bytes = 0;
    for (const Pending& pending : target.queue) {
      if (iov_count + 2 > kMaxIov) break;
      const OutboundFrame& frame = pending.frame;
      size_t skip = pending.offset;
      if (skip < frame.header_size) {
        iov[iov_count].iov_base =
            const_cast<uint8_t*>(frame.header.data()) + skip;
        iov[iov_count].iov_len = frame.header_size - skip;
        span_bytes += iov[iov_count].iov_len;
        ++iov_count;
        skip = 0;
      } else {
        skip -= frame.header_size;
      }
      if (frame.body.size() > skip) {
        iov[iov_count].iov_base =
            const_cast<char*>(frame.body.bytes().data()) + skip;
        iov[iov_count].iov_len = frame.body.size() - skip;
        span_bytes += iov[iov_count].iov_len;
        ++iov_count;
      }
    }
    if (iov_count == 0) break;
    struct msghdr msg {};
    msg.msg_iov = iov;
    msg.msg_iovlen = iov_count;
    const ssize_t written =
        ::sendmsg(target.fd, &msg, MSG_DONTWAIT | MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;  // peer gone / hard error
    }
    if (target.bytes_sent != nullptr) {
      target.bytes_sent->add(static_cast<uint64_t>(written));
    }
    size_t remaining = static_cast<size_t>(written);
    while (remaining > 0 && !target.queue.empty()) {
      Pending& front = target.queue.front();
      const size_t left = front.frame.size() - front.offset;
      if (remaining >= left) {
        remaining -= left;
        target.queued_bytes -= front.frame.size();
        target.queue.pop_front();
      } else {
        front.offset += remaining;
        remaining = 0;
      }
    }
    // Short write: the socket buffer is full — wait for POLLOUT.
    if (static_cast<size_t>(written) < span_bytes) return true;
  }
  return true;
}

bool EventWriter::flush_channel_locked(TargetState& target) {
  while (!target.queue.empty()) {
    Pending& front = target.queue.front();
    const std::string message = front.frame.channel_message();
    bool ok = false;
    try {
      ok = target.send(message);
    } catch (...) {
      ok = false;
    }
    if (!ok) return false;
    if (target.bytes_sent != nullptr) target.bytes_sent->add(message.size());
    target.queued_bytes -= front.frame.size();
    target.queue.pop_front();
  }
  return true;
}

void EventWriter::flush_all_locked(
    std::vector<std::function<void()>>& deferred) {
  for (auto& [id, target] : targets_) {
    if (target.dead || target.queue.empty()) continue;
    const bool alive = target.fd >= 0 ? flush_fd_locked(target)
                                      : flush_channel_locked(target);
    if (!alive) mark_dead_locked(target, deferred);
  }
}

void EventWriter::mark_dead_locked(
    TargetState& target, std::vector<std::function<void()>>& deferred) {
  target.dead = true;
  target.queue.clear();
  target.queued_bytes = 0;
  if (target.on_dead) deferred.push_back(std::move(target.on_dead));
}

void EventWriter::loop() {
  std::vector<std::function<void()>> deferred;
  std::vector<struct pollfd> fds;
  while (!stop_.load(std::memory_order_acquire)) {
    deferred.clear();
    fds.clear();
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    {
      const common::LockGuard lock(mutex_);
      flush_all_locked(deferred);
      for (auto& [id, target] : targets_) {
        if (!target.dead && target.fd >= 0 && !target.queue.empty()) {
          fds.push_back({target.fd, POLLOUT, 0});
        }
      }
    }
    for (auto& callback : deferred) callback();
    if (stop_.load(std::memory_order_acquire)) break;
    (void)::poll(fds.data(), fds.size(), -1);
    if ((fds[0].revents & POLLIN) != 0) {
      char drain[256];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }
  }
}

}  // namespace hgdb::rpc
