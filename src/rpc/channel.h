#ifndef HGDB_RPC_CHANNEL_H
#define HGDB_RPC_CHANNEL_H

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <utility>

namespace hgdb::rpc {

/// A duplex, message-oriented transport endpoint. The debug protocol
/// (paper Sec. 3.5: debuggers connect to the runtime over an RPC protocol
/// similar to the gdb remote protocol) runs over any Channel:
/// an in-process pair for same-process debuggers and tests, or loopback
/// TCP with length framing standing in for the paper's WebSocket (see
/// DESIGN.md substitutions).
class Channel {
 public:
  virtual ~Channel() = default;

  /// Sends one message. Throws std::runtime_error if the peer is gone.
  virtual void send(std::string message) = 0;

  /// Receives the next message, blocking up to `timeout` (forever when
  /// nullopt). Returns nullopt on timeout or when the channel is closed
  /// and drained.
  virtual std::optional<std::string> receive(
      std::optional<std::chrono::milliseconds> timeout = std::nullopt) = 0;

  /// Closes this endpoint; pending receives wake with nullopt.
  virtual void close() = 0;
  [[nodiscard]] virtual bool closed() const = 0;

  /// The underlying socket descriptor, or -1 for in-process transports.
  /// The async event writer uses it to bypass send() with coalesced
  /// non-blocking scatter writes; once a session goes binary, *all*
  /// outbound traffic must route through that single writer (two writers
  /// on one fd would interleave and corrupt the framing).
  [[nodiscard]] virtual int native_handle() const { return -1; }
};

/// Creates a connected in-process channel pair (A's sends appear at B and
/// vice versa). Both endpoints are thread-safe.
std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>> make_channel_pair();

}  // namespace hgdb::rpc

#endif  // HGDB_RPC_CHANNEL_H
