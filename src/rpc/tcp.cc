#include "rpc/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <stdexcept>

#include "common/checked_mutex.h"

namespace hgdb::rpc {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("tcp: " + what + " (" + std::strerror(errno) + ")");
}

/// Blocking socket channel with 4-byte big-endian length prefixes.
///
/// close() is called cross-thread (a session reader's cleanup racing the
/// manager's shutdown), so it only ::shutdown()s the socket — safe on a
/// descriptor another thread is blocked in, and it wakes that recv. The
/// ::close() that would let the kernel reuse the fd number waits for the
/// destructor; the fd value itself never changes.
class SocketChannel final : public Channel {
 public:
  explicit SocketChannel(int fd) : fd_(fd) {}
  ~SocketChannel() override {
    close();
    ::close(fd_);
  }

  void send(std::string message) override {
    common::LockGuard lock(send_mutex_);
    if (closed()) throw std::runtime_error("tcp: send on closed channel");
    const uint32_t length = htonl(static_cast<uint32_t>(message.size()));
    write_all(reinterpret_cast<const char*>(&length), sizeof(length));
    write_all(message.data(), message.size());
  }

  std::optional<std::string> receive(
      std::optional<std::chrono::milliseconds> timeout) override {
    common::LockGuard lock(receive_mutex_);
    if (closed()) return std::nullopt;
    if (timeout) {
      pollfd pfd{fd_, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, static_cast<int>(timeout->count()));
      if (rc == 0) return std::nullopt;
      if (rc < 0) return std::nullopt;
    }
    uint32_t length = 0;
    if (!read_all(reinterpret_cast<char*>(&length), sizeof(length))) {
      return std::nullopt;
    }
    length = ntohl(length);
    if (length > (64u << 20)) return std::nullopt;  // sanity: 64 MiB cap
    std::string message(length, '\0');
    if (!read_all(message.data(), length)) return std::nullopt;
    return message;
  }

  void close() override {
    if (!closed_.exchange(true, std::memory_order_acq_rel)) {
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

  [[nodiscard]] bool closed() const override {
    return closed_.load(std::memory_order_acquire);
  }

  [[nodiscard]] int native_handle() const override { return fd_; }

 private:
  void write_all(const char* data, size_t size) {
    size_t written = 0;
    while (written < size) {
      const ssize_t n = ::send(fd_, data + written, size - written, MSG_NOSIGNAL);
      if (n <= 0) fail("send");
      written += static_cast<size_t>(n);
    }
  }

  bool read_all(char* data, size_t size) {
    size_t got = 0;
    while (got < size) {
      const ssize_t n = ::recv(fd_, data + got, size - got, 0);
      if (n <= 0) return false;
      got += static_cast<size_t>(n);
    }
    return true;
  }

  const int fd_;
  std::atomic<bool> closed_{false};
  common::RpcMutex send_mutex_{"tcp::channel_send"};
  common::RpcMutex receive_mutex_{"tcp::channel_receive"};
};

/// Raw duplex socket stream: no framing, reads return whatever the kernel
/// delivers. Used by self-framing protocols (the DAP front end).
///
/// close() is called cross-thread by design (a server shutdown while the
/// connection's reader blocks in recv), so it only ::shutdown()s — which
/// is safe on a descriptor another thread is using and wakes the blocked
/// recv — and the ::close() that would let the kernel reuse the fd number
/// is deferred to the destructor, after the reader thread is gone.
class SocketStream final : public ByteStream {
 public:
  explicit SocketStream(int fd) : fd_(fd) {}
  [[nodiscard]] int native_handle() const override { return fd_; }
  ~SocketStream() override {
    close();
    if (fd_ >= 0) ::close(fd_);
  }

  bool send_bytes(std::string_view bytes) override {
    common::LockGuard lock(send_mutex_);
    if (closed_.load(std::memory_order_acquire)) return false;
    size_t written = 0;
    while (written < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + written,
                               bytes.size() - written, MSG_NOSIGNAL);
      if (n <= 0) return false;
      written += static_cast<size_t>(n);
    }
    return true;
  }

  bool send_bytes_gather(const std::string_view* parts,
                         size_t count) override {
    common::LockGuard lock(send_mutex_);
    if (closed_.load(std::memory_order_acquire)) return false;
    // One writev for the common header+payload pair; fall back to the
    // byte loop for whatever a short write leaves behind.
    constexpr size_t kMaxParts = 8;
    while (count > 0) {
      struct iovec iov[kMaxParts];
      const size_t batch = count < kMaxParts ? count : kMaxParts;
      for (size_t i = 0; i < batch; ++i) {
        iov[i].iov_base = const_cast<char*>(parts[i].data());
        iov[i].iov_len = parts[i].size();
      }
      struct msghdr msg {};
      msg.msg_iov = iov;
      msg.msg_iovlen = batch;
      const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
      if (n < 0) return false;
      size_t written = static_cast<size_t>(n);
      // Advance past fully-written parts; finish a split part inline.
      size_t consumed = 0;
      while (consumed < batch && written >= parts[consumed].size()) {
        written -= parts[consumed].size();
        ++consumed;
      }
      if (consumed < batch && written > 0) {
        if (!write_rest(parts[consumed].substr(written))) return false;
        ++consumed;
      }
      parts += consumed;
      count -= consumed;
    }
    return true;
  }

  std::optional<std::string> receive_some() override {
    if (closed_.load(std::memory_order_acquire)) return std::nullopt;
    char buffer[4096];
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n <= 0) return std::nullopt;
    return std::string(buffer, static_cast<size_t>(n));
  }

  void close() override {
    if (!closed_.exchange(true, std::memory_order_acq_rel)) {
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

 private:
  /// Finishes a part a short writev split, while send_mutex_ is held.
  bool write_rest(std::string_view rest) {
    size_t written = 0;
    while (written < rest.size()) {
      const ssize_t n = ::send(fd_, rest.data() + written,
                               rest.size() - written, MSG_NOSIGNAL);
      if (n <= 0) return false;
      written += static_cast<size_t>(n);
    }
    return true;
  }

  const int fd_;
  std::atomic<bool> closed_{false};
  common::RpcMutex send_mutex_{"tcp::stream_send"};
};

int accept_fd(int server_fd) {
  if (server_fd < 0) return -1;
  const int client = ::accept(server_fd, nullptr, nullptr);
  if (client < 0) return -1;
  const int enable = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  return client;
}

int connect_fd(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("tcp: bad host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) < 0) {
    ::close(fd);
    fail("connect");
  }
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  return fd;
}

}  // namespace

TcpServer::TcpServer(uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) fail("socket");
  const int enable = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&address), sizeof(address)) < 0) {
    fail("bind");
  }
  if (::listen(fd_, 4) < 0) fail("listen");
  socklen_t length = sizeof(address);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&address), &length) < 0) {
    fail("getsockname");
  }
  port_ = ntohs(address.sin_port);
}

TcpServer::~TcpServer() {
  close();
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<Channel> TcpServer::accept() {
  const int client = accept_fd(fd_);
  if (client < 0) return nullptr;
  return std::make_unique<SocketChannel>(client);
}

std::unique_ptr<ByteStream> TcpServer::accept_stream() {
  const int client = accept_fd(fd_);
  if (client < 0) return nullptr;
  return std::make_unique<SocketStream>(client);
}

// Called cross-thread while an accept loop is parked in ::accept on the
// same descriptor: only ::shutdown here (wakes the accept with an error);
// the destructor does the ::close once no other thread can hold the fd.
void TcpServer::close() {
  if (!closed_.exchange(true, std::memory_order_acq_rel)) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

std::unique_ptr<Channel> tcp_connect(const std::string& host, uint16_t port) {
  return std::make_unique<SocketChannel>(connect_fd(host, port));
}

std::unique_ptr<ByteStream> tcp_connect_stream(const std::string& host,
                                               uint16_t port) {
  return std::make_unique<SocketStream>(connect_fd(host, port));
}

}  // namespace hgdb::rpc
