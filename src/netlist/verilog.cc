#include "netlist/verilog.h"

#include <map>
#include <stdexcept>

namespace hgdb::netlist {

namespace {

using namespace ir;

std::string width_decl(const TypePtr& type) {
  const uint32_t width = type->bit_width();
  if (width == 1) return "";
  return "[" + std::to_string(width - 1) + ":0] ";
}

std::string literal_text(const LiteralExpr& literal) {
  return std::to_string(literal.value().width()) + "'h" +
         literal.value().to_string(16);
}

std::string expr_text(const ExprPtr& expr);

std::string binop_text(const PrimExpr& prim, const char* op) {
  return "(" + expr_text(prim.operands()[0]) + " " + op + " " +
         expr_text(prim.operands()[1]) + ")";
}

std::string signed_wrap(const ExprPtr& operand) {
  std::string text = expr_text(operand);
  if (operand->type()->is_signed()) return "$signed(" + text + ")";
  return text;
}

std::string expr_text(const ExprPtr& expr) {
  switch (expr->kind()) {
    case ExprKind::Ref:
      return static_cast<const RefExpr&>(*expr).name();
    case ExprKind::SubField: {
      const auto& field = static_cast<const SubFieldExpr&>(*expr);
      // Instance ports are hooked up through per-instance wires.
      return expr_text(field.base()) + "_" + field.field();
    }
    case ExprKind::Literal:
      return literal_text(static_cast<const LiteralExpr&>(*expr));
    case ExprKind::Prim: {
      const auto& prim = static_cast<const PrimExpr&>(*expr);
      switch (prim.op()) {
        case PrimOp::Add: return binop_text(prim, "+");
        case PrimOp::Sub: return binop_text(prim, "-");
        case PrimOp::Mul: return binop_text(prim, "*");
        case PrimOp::Div: return binop_text(prim, "/");
        case PrimOp::Rem: return binop_text(prim, "%");
        case PrimOp::Lt: return binop_text(prim, "<");
        case PrimOp::Leq: return binop_text(prim, "<=");
        case PrimOp::Gt: return binop_text(prim, ">");
        case PrimOp::Geq: return binop_text(prim, ">=");
        case PrimOp::Eq: return binop_text(prim, "==");
        case PrimOp::Neq: return binop_text(prim, "!=");
        case PrimOp::And: return binop_text(prim, "&");
        case PrimOp::Or: return binop_text(prim, "|");
        case PrimOp::Xor: return binop_text(prim, "^");
        case PrimOp::Not: return "(~" + expr_text(prim.operands()[0]) + ")";
        case PrimOp::Neg: return "(-" + expr_text(prim.operands()[0]) + ")";
        case PrimOp::AndR: return "(&" + expr_text(prim.operands()[0]) + ")";
        case PrimOp::OrR: return "(|" + expr_text(prim.operands()[0]) + ")";
        case PrimOp::XorR: return "(^" + expr_text(prim.operands()[0]) + ")";
        case PrimOp::Cat:
          return "{" + expr_text(prim.operands()[0]) + ", " +
                 expr_text(prim.operands()[1]) + "}";
        case PrimOp::Bits:
          return expr_text(prim.operands()[0]) + "[" +
                 std::to_string(prim.int_params()[0]) + ":" +
                 std::to_string(prim.int_params()[1]) + "]";
        case PrimOp::Shl:
          return "(" + expr_text(prim.operands()[0]) + " << " +
                 std::to_string(prim.int_params()[0]) + ")";
        case PrimOp::Shr:
          return "(" + signed_wrap(prim.operands()[0]) + " >>> " +
                 std::to_string(prim.int_params()[0]) + ")";
        case PrimOp::Dshl: return binop_text(prim, "<<");
        case PrimOp::Dshr: return binop_text(prim, ">>");
        case PrimOp::Pad: {
          // Verilog widens implicitly in assignment context.
          return signed_wrap(prim.operands()[0]);
        }
        case PrimOp::AsUInt:
        case PrimOp::AsSInt:
        case PrimOp::AsClock:
          return expr_text(prim.operands()[0]);
        case PrimOp::Mux:
          return "(" + expr_text(prim.operands()[0]) + " ? " +
                 expr_text(prim.operands()[1]) + " : " +
                 expr_text(prim.operands()[2]) + ")";
      }
      return "/*bad prim*/";
    }
    default:
      throw std::runtime_error("verilog: unsupported expression " + expr->str());
  }
}

}  // namespace

std::string emit_verilog_module(const ir::Circuit& circuit,
                                const ir::Module& module) {
  std::string out = "module " + module.name() + "(\n";
  const auto& ports = module.ports();
  for (size_t i = 0; i < ports.size(); ++i) {
    out += "  ";
    out += ports[i].direction == Direction::Input ? "input " : "output ";
    out += width_decl(ports[i].type) + ports[i].name;
    out += i + 1 == ports.size() ? "\n" : ",\n";
  }
  out += ");\n";

  std::string body;
  std::string always;
  for (const auto& stmt : module.body().stmts) {
    switch (stmt->kind()) {
      case StmtKind::Reg: {
        const auto& reg = static_cast<const RegStmt&>(*stmt);
        body += "  reg " + width_decl(reg.type) + reg.name + ";\n";
        break;
      }
      case StmtKind::Node: {
        const auto& node = static_cast<const NodeStmt&>(*stmt);
        body += "  wire " + width_decl(node.value->type()) + node.name + " = " +
                expr_text(node.value) + ";";
        if (node.loc.valid()) body += "  // " + node.loc.str();
        body += "\n";
        break;
      }
      case StmtKind::Instance: {
        const auto& inst = static_cast<const InstanceStmt&>(*stmt);
        const Module* child = circuit.module(inst.module_name);
        for (const auto& port : child->ports()) {
          body += "  wire " + width_decl(port.type) + inst.name + "_" +
                  port.name + ";\n";
        }
        body += "  " + inst.module_name + " " + inst.name + "(";
        bool first = true;
        for (const auto& port : child->ports()) {
          if (!first) body += ", ";
          first = false;
          body += "." + port.name + "(" + inst.name + "_" + port.name + ")";
        }
        body += ");\n";
        break;
      }
      case StmtKind::Connect: {
        const auto& connect = static_cast<const ConnectStmt&>(*stmt);
        // Register next-values land in an always block.
        bool is_reg = false;
        if (connect.lhs->kind() == ExprKind::Ref) {
          const std::string& name =
              static_cast<const RefExpr&>(*connect.lhs).name();
          visit_stmts(module.body(), [&](const Stmt& s) {
            if (s.kind() == StmtKind::Reg &&
                static_cast<const RegStmt&>(s).name == name) {
              is_reg = true;
            }
          });
        }
        if (is_reg) {
          always += "    " + expr_text(connect.lhs) + " <= " +
                    expr_text(connect.rhs) + ";\n";
        } else {
          body += "  assign " + expr_text(connect.lhs) + " = " +
                  expr_text(connect.rhs) + ";\n";
        }
        break;
      }
      default:
        break;
    }
  }
  out += body;
  if (!always.empty()) {
    // All registers in a module share the module clock in the emitted text.
    std::string clock_name = "clock";
    visit_stmts(module.body(), [&](const Stmt& s) {
      if (s.kind() == StmtKind::Reg) {
        clock_name = static_cast<const RegStmt&>(s).clock_name;
      }
    });
    out += "  always @(posedge " + clock_name + ") begin\n" + always +
           "  end\n";
  }
  out += "endmodule\n";
  return out;
}

std::string emit_verilog(const ir::Circuit& circuit) {
  std::string out;
  for (const auto& module : circuit.modules()) {
    out += emit_verilog_module(circuit, *module) + "\n";
  }
  return out;
}

}  // namespace hgdb::netlist
