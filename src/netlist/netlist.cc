#include "netlist/netlist.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace hgdb::netlist {

namespace {

using namespace ir;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("elaborate: " + what);
}

}  // namespace

class Elaborator {
 public:
  explicit Elaborator(const Circuit& circuit) : circuit_(circuit) {}

  Netlist run() {
    if (circuit_.form() != Form::Low) {
      fail("circuit must be in Low form");
    }
    const Module* top = circuit_.top();
    netlist_.top_name_ = top->name();
    // Top-level ports become Input/Output signals.
    Scope top_scope;
    for (const auto& port : top->ports()) {
      const bool is_input = port.direction == Direction::Input;
      const uint32_t slot = new_signal(
          top->name() + "." + port.name, port.type,
          is_input ? SignalKind::Input : SignalKind::Output);
      if (is_input && port.type->kind() == TypeKind::Clock) {
        netlist_.signals_[slot].is_clock = true;
        netlist_.clocks_.push_back(slot);
      }
      top_scope.slots[port.name] = slot;
    }
    elaborate_module(*top, top->name(), top_scope);
    schedule();
    resolve_register_clocks();
    return std::move(netlist_);
  }

 private:
  /// Name resolution for one module instance during elaboration.
  struct Scope {
    std::map<std::string, uint32_t> slots;          // name -> slot
    std::map<std::string, Scope> children;          // instance -> child scope
  };

  uint32_t new_signal(const std::string& name, const TypePtr& type,
                      SignalKind kind) {
    Signal signal;
    signal.id = static_cast<uint32_t>(netlist_.signals_.size());
    signal.name = name;
    signal.width = type->bit_width();
    signal.kind = kind;
    signal.is_signed = type->is_signed();
    netlist_.signals_.push_back(signal);
    if (!name.empty()) {
      if (!netlist_.by_name_.emplace(name, signal.id).second) {
        fail("duplicate hierarchical name '" + name + "'");
      }
    }
    return signal.id;
  }

  uint32_t new_temp(uint32_t width, bool is_signed) {
    Signal signal;
    signal.id = static_cast<uint32_t>(netlist_.signals_.size());
    signal.width = width;
    signal.kind = SignalKind::Temp;
    signal.is_signed = is_signed;
    netlist_.signals_.push_back(signal);
    return signal.id;
  }

  void emit_const(uint32_t dst, common::BitVector value) {
    Instr instr;
    instr.kind = Instr::Kind::Const;
    instr.dst = dst;
    instr.constant = std::move(value);
    netlist_.instrs_.push_back(std::move(instr));
  }

  void emit_copy(uint32_t dst, uint32_t src) {
    Instr instr;
    instr.kind = Instr::Kind::Copy;
    instr.dst = dst;
    instr.operands = {src};
    netlist_.instrs_.push_back(std::move(instr));
  }

  /// Emits instructions computing `expr`; returns the slot holding the
  /// result.
  uint32_t emit_expr(const ExprPtr& expr, const Scope& scope,
                     const std::string& path) {
    switch (expr->kind()) {
      case ExprKind::Ref: {
        const auto& ref = static_cast<const RefExpr&>(*expr);
        auto it = scope.slots.find(ref.name());
        if (it == scope.slots.end()) {
          fail("unresolved reference '" + ref.name() + "' in " + path);
        }
        return it->second;
      }
      case ExprKind::SubField: {
        // Instance port reference: inst.port.
        const auto& field = static_cast<const SubFieldExpr&>(*expr);
        if (field.base()->kind() != ExprKind::Ref) {
          fail("unsupported field access '" + expr->str() + "'");
        }
        const auto& base = static_cast<const RefExpr&>(*field.base());
        auto child = scope.children.find(base.name());
        if (child == scope.children.end()) {
          fail("unknown instance '" + base.name() + "' in " + path);
        }
        auto slot = child->second.slots.find(field.field());
        if (slot == child->second.slots.end()) {
          fail("unknown port '" + expr->str() + "' in " + path);
        }
        return slot->second;
      }
      case ExprKind::Literal: {
        const auto& literal = static_cast<const LiteralExpr&>(*expr);
        const uint32_t dst =
            new_temp(expr->width(), expr->type()->is_signed());
        emit_const(dst, literal.value());
        return dst;
      }
      case ExprKind::Prim: {
        const auto& prim = static_cast<const PrimExpr&>(*expr);
        Instr instr;
        instr.kind = Instr::Kind::Prim;
        instr.op = prim.op();
        instr.int_params = prim.int_params();
        for (const auto& operand : prim.operands()) {
          instr.operands.push_back(emit_expr(operand, scope, path));
          instr.operand_signs.push_back(operand->type()->is_signed());
        }
        instr.dst = new_temp(expr->width(), expr->type()->is_signed());
        const uint32_t dst = instr.dst;
        netlist_.instrs_.push_back(std::move(instr));
        return dst;
      }
      default:
        fail("unsupported expression '" + expr->str() + "' after lowering");
    }
  }

  void elaborate_module(const Module& module, const std::string& path,
                        Scope& scope) {
    netlist_.instance_paths_.push_back(path);
    // First pass: declare every named slot (regs, nodes, instances) so any
    // statement order works.
    for (const auto& stmt : module.body().stmts) {
      switch (stmt->kind()) {
        case StmtKind::Reg: {
          const auto& reg = static_cast<const RegStmt&>(*stmt);
          const uint32_t slot =
              new_signal(path + "." + reg.name, reg.type, SignalKind::Register);
          scope.slots[reg.name] = slot;
          break;
        }
        case StmtKind::Node: {
          const auto& node = static_cast<const NodeStmt&>(*stmt);
          const uint32_t slot = new_signal(path + "." + node.name,
                                           node.value->type(), SignalKind::Wire);
          scope.slots[node.name] = slot;
          break;
        }
        case StmtKind::Instance: {
          const auto& inst = static_cast<const InstanceStmt&>(*stmt);
          const Module* child = circuit_.module(inst.module_name);
          Scope child_scope;
          for (const auto& port : child->ports()) {
            const uint32_t slot =
                new_signal(path + "." + inst.name + "." + port.name, port.type,
                           SignalKind::Wire);
            child_scope.slots[port.name] = slot;
          }
          scope.children.emplace(inst.name, std::move(child_scope));
          break;
        }
        case StmtKind::Wire:
          fail("wire statement survived SSA in module " + module.name());
        default:
          break;
      }
    }
    // Second pass: emit logic.
    for (const auto& stmt : module.body().stmts) {
      switch (stmt->kind()) {
        case StmtKind::Node: {
          const auto& node = static_cast<const NodeStmt&>(*stmt);
          const uint32_t value = emit_expr(node.value, scope, path);
          emit_copy(scope.slots.at(node.name), value);
          break;
        }
        case StmtKind::Connect: {
          const auto& connect = static_cast<const ConnectStmt&>(*stmt);
          const uint32_t rhs = emit_expr(connect.rhs, scope, path);
          const uint32_t lhs = resolve_target(*connect.lhs, scope, path);
          const Signal& lhs_signal = netlist_.signals_[lhs];
          if (lhs_signal.kind == SignalKind::Register) {
            // Next-value connect; recorded in the register table.
            auto it = std::find_if(netlist_.registers_.begin(),
                                   netlist_.registers_.end(),
                                   [&](const Register& r) {
                                     return r.signal == lhs;
                                   });
            if (it == netlist_.registers_.end()) {
              fail("connect to unknown register in " + path);
            }
            it->next = rhs;
          } else {
            emit_copy(lhs, rhs);
          }
          break;
        }
        case StmtKind::Reg: {
          const auto& reg = static_cast<const RegStmt&>(*stmt);
          Register entry;
          entry.signal = scope.slots.at(reg.name);
          entry.next = entry.signal;  // hold by default
          auto clock_it = scope.slots.find(reg.clock_name);
          if (clock_it == scope.slots.end()) {
            fail("register '" + reg.name + "' references unknown clock '" +
                 reg.clock_name + "'");
          }
          entry.clock = clock_it->second;
          if (reg.reset) {
            entry.reset = emit_expr(reg.reset, scope, path);
            entry.init = emit_expr(reg.init, scope, path);
          }
          netlist_.registers_.push_back(entry);
          break;
        }
        case StmtKind::Instance: {
          const auto& inst = static_cast<const InstanceStmt&>(*stmt);
          const Module* child = circuit_.module(inst.module_name);
          elaborate_module(*child, path + "." + inst.name,
                           scope.children.at(inst.name));
          break;
        }
        default:
          break;
      }
    }
  }

  uint32_t resolve_target(const Expr& lhs, const Scope& scope,
                          const std::string& path) {
    if (lhs.kind() == ExprKind::Ref) {
      const auto& ref = static_cast<const RefExpr&>(lhs);
      auto it = scope.slots.find(ref.name());
      if (it == scope.slots.end()) fail("unknown connect target in " + path);
      return it->second;
    }
    if (lhs.kind() == ExprKind::SubField) {
      const auto& field = static_cast<const SubFieldExpr&>(lhs);
      const auto& base = static_cast<const RefExpr&>(*field.base());
      auto child = scope.children.find(base.name());
      if (child == scope.children.end()) {
        fail("unknown instance target in " + path);
      }
      return child->second.slots.at(field.field());
    }
    fail("unsupported connect target '" + lhs.str() + "'");
  }

  /// Kahn topological sort of the combinational program. Register outputs,
  /// inputs and constants are sources. Detects combinational loops.
  void schedule() {
    auto& instrs = netlist_.instrs_;
    const size_t n = instrs.size();
    // writer[slot] = instr index writing that slot (at most one: SSA).
    std::vector<int32_t> writer(netlist_.signals_.size(), -1);
    for (size_t i = 0; i < n; ++i) {
      if (writer[instrs[i].dst] != -1) {
        fail("slot written twice: " + netlist_.signals_[instrs[i].dst].name);
      }
      writer[instrs[i].dst] = static_cast<int32_t>(i);
    }
    std::vector<uint32_t> in_degree(n, 0);
    std::vector<std::vector<uint32_t>> dependents(n);
    for (size_t i = 0; i < n; ++i) {
      for (uint32_t src : instrs[i].operands) {
        const Signal& signal = netlist_.signals_[src];
        if (signal.kind == SignalKind::Register ||
            signal.kind == SignalKind::Input) {
          continue;  // state/input: stable during eval
        }
        const int32_t w = writer[src];
        if (w < 0) continue;  // undriven wire: defaults to zero
        dependents[w].push_back(static_cast<uint32_t>(i));
        ++in_degree[i];
      }
    }
    std::vector<uint32_t> order;
    order.reserve(n);
    std::vector<uint32_t> ready;
    for (size_t i = 0; i < n; ++i) {
      if (in_degree[i] == 0) ready.push_back(static_cast<uint32_t>(i));
    }
    while (!ready.empty()) {
      const uint32_t i = ready.back();
      ready.pop_back();
      order.push_back(i);
      for (uint32_t d : dependents[i]) {
        if (--in_degree[d] == 0) ready.push_back(d);
      }
    }
    if (order.size() != n) {
      // Find a slot involved in the cycle for the error message.
      for (size_t i = 0; i < n; ++i) {
        if (in_degree[i] != 0) {
          fail("combinational loop involving '" +
               netlist_.signals_[instrs[i].dst].name + "'");
        }
      }
    }
    std::vector<Instr> sorted;
    sorted.reserve(n);
    for (uint32_t i : order) sorted.push_back(std::move(instrs[i]));
    instrs = std::move(sorted);
  }

  /// Traces each register's clock slot back through Copy instructions to a
  /// top-level clock input.
  void resolve_register_clocks() {
    std::map<uint32_t, uint32_t> copy_src;  // dst -> src for Copy instrs
    for (const auto& instr : netlist_.instrs_) {
      if (instr.kind == Instr::Kind::Copy) {
        copy_src[instr.dst] = instr.operands[0];
      }
    }
    for (auto& reg : netlist_.registers_) {
      uint32_t slot = reg.clock;
      for (int hops = 0; hops < 1024; ++hops) {
        const Signal& signal = netlist_.signals_[slot];
        if (signal.kind == SignalKind::Input && signal.is_clock) break;
        auto it = copy_src.find(slot);
        if (it == copy_src.end()) {
          fail("register '" + netlist_.signals_[reg.signal].name +
               "' is not driven by a top-level clock (derived clocks are "
               "unsupported)");
        }
        slot = it->second;
      }
      reg.clock = slot;
    }
  }

  const Circuit& circuit_;
  Netlist netlist_;
};

std::optional<uint32_t> Netlist::signal_id(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

Netlist elaborate(const ir::Circuit& circuit) { return Elaborator(circuit).run(); }

}  // namespace hgdb::netlist
