#ifndef HGDB_NETLIST_NETLIST_H
#define HGDB_NETLIST_NETLIST_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bitvector.h"
#include "ir/circuit.h"

namespace hgdb::netlist {

/// Kind of a value slot in the elaborated design.
enum class SignalKind : uint8_t {
  Input,     ///< top-level input (testbench-driven)
  Output,    ///< top-level output
  Register,  ///< state element; written at clock edges
  Wire,      ///< named combinational value (IR node / child port)
  Temp,      ///< unnamed expression temporary
};

struct Signal {
  uint32_t id = 0;
  /// Hierarchical name, e.g. "Top.child.sum0"; empty for temporaries.
  std::string name;
  uint32_t width = 1;
  SignalKind kind = SignalKind::Wire;
  bool is_signed = false;
  bool is_clock = false;
};

/// One step of the (topologically sorted) combinational program.
struct Instr {
  enum class Kind : uint8_t { Const, Copy, Prim };
  Kind kind = Kind::Prim;
  uint32_t dst = 0;
  ir::PrimOp op = ir::PrimOp::Add;       // Prim only
  std::vector<uint32_t> operands;        // slot ids
  std::vector<uint32_t> int_params;
  std::vector<bool> operand_signs;
  common::BitVector constant;            // Const only
};

struct Register {
  uint32_t signal = 0;       ///< register output slot
  uint32_t next = 0;         ///< next-value slot (sampled before the edge)
  uint32_t clock = 0;        ///< top-level clock slot driving this register
  std::optional<uint32_t> reset;  ///< synchronous reset slot
  std::optional<uint32_t> init;   ///< value loaded while reset is high
};

/// A fully elaborated, flattened design: value slots + a topologically
/// sorted combinational program + registers. This is the substrate the
/// zero-delay simulator executes; the paper's breakpoint emulation relies
/// on exactly these semantics (all values stable at every clock edge).
class Netlist {
 public:
  [[nodiscard]] const std::vector<Signal>& signals() const { return signals_; }
  [[nodiscard]] const std::vector<Instr>& instrs() const { return instrs_; }
  [[nodiscard]] const std::vector<Register>& registers() const {
    return registers_;
  }
  [[nodiscard]] const std::string& top_name() const { return top_name_; }
  /// Top-level clock inputs.
  [[nodiscard]] const std::vector<uint32_t>& clocks() const { return clocks_; }
  /// Hierarchical instance paths, e.g. {"Top", "Top.child"}.
  [[nodiscard]] const std::vector<std::string>& instance_paths() const {
    return instance_paths_;
  }

  [[nodiscard]] std::optional<uint32_t> signal_id(const std::string& name) const;
  [[nodiscard]] const Signal& signal(uint32_t id) const { return signals_[id]; }
  [[nodiscard]] size_t slot_count() const { return signals_.size(); }

 private:
  friend class Elaborator;
  std::vector<Signal> signals_;
  std::vector<Instr> instrs_;
  std::vector<Register> registers_;
  std::vector<uint32_t> clocks_;
  std::vector<std::string> instance_paths_;
  std::map<std::string, uint32_t> by_name_;
  std::string top_name_;
};

/// Elaborates a Low-form circuit into a flat netlist. Throws
/// std::runtime_error on combinational loops, derived clocks, or other
/// unsupported structures.
Netlist elaborate(const ir::Circuit& circuit);

}  // namespace hgdb::netlist

#endif  // HGDB_NETLIST_NETLIST_H
