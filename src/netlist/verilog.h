#ifndef HGDB_NETLIST_VERILOG_H
#define HGDB_NETLIST_VERILOG_H

#include <string>

#include "ir/circuit.h"

namespace hgdb::netlist {

/// Emits human-readable Verilog for a Low-form circuit.
///
/// This is the "generated RTL" a designer would otherwise have to debug by
/// hand (the paper's Listing 4): flattened control flow, compiler-named
/// temporaries, no trace of the source structure. The RTL simulator does
/// *not* consume this output — it executes the elaborated netlist directly;
/// the emitter exists so examples and docs can show what hgdb saves the
/// user from reading.
std::string emit_verilog(const ir::Circuit& circuit);
std::string emit_verilog_module(const ir::Circuit& circuit,
                                const ir::Module& module);

}  // namespace hgdb::netlist

#endif  // HGDB_NETLIST_VERILOG_H
