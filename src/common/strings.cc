#include "common/strings.h"

#include <algorithm>
#include <cctype>

namespace hgdb::common {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view delimiter) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += delimiter;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

size_t longest_common_substring(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return 0;
  // Rolling 1-D dynamic program: O(|a|*|b|) time, O(|b|) space.
  std::vector<size_t> previous(b.size() + 1, 0);
  std::vector<size_t> current(b.size() + 1, 0);
  size_t best = 0;
  for (size_t i = 1; i <= a.size(); ++i) {
    for (size_t j = 1; j <= b.size(); ++j) {
      if (a[i - 1] == b[j - 1]) {
        current[j] = previous[j - 1] + 1;
        best = std::max(best, current[j]);
      } else {
        current[j] = 0;
      }
    }
    std::swap(previous, current);
  }
  return best;
}

bool ends_with_path(std::string_view name, std::string_view suffix) {
  if (suffix.empty() || suffix.size() > name.size()) return false;
  if (name.substr(name.size() - suffix.size()) != suffix) return false;
  if (name.size() == suffix.size()) return true;
  return name[name.size() - suffix.size() - 1] == '.';
}

}  // namespace hgdb::common
