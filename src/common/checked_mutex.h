#ifndef HGDB_COMMON_CHECKED_MUTEX_H
#define HGDB_COMMON_CHECKED_MUTEX_H

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/thread_annotations.h"

// Ranked, capability-annotated mutexes.
//
// Every mutex in the repo carries a static rank from the one documented
// lock hierarchy (README "Concurrency model"). A thread may only acquire
// a mutex whose rank is *strictly below* every rank it already holds, so
// any cycle that could deadlock two threads is instead a rank inversion
// on whichever thread acquires against the order — caught deterministically
// on the first execution of that path, not on the unlucky interleaving.
//
// Debug builds (or -DHGDB_FORCE_LOCK_RANK_CHECKS=ON) keep a thread-local
// stack of held locks and abort with both lock names and the acquisition
// order on an inversion. Release builds compile CheckedMutex down to a
// bare std::mutex — no name, no flag, no branch (bench/metrics_overhead
// gates the claim).
//
// Rank checking is a build-wide property (HGDB_CHECK_LOCK_RANKS must be
// consistent across every TU, or the inline lock paths violate the ODR);
// it is derived from NDEBUG here and overridden only via the global CMake
// option, never per target.

#ifndef HGDB_CHECK_LOCK_RANKS
#ifdef NDEBUG
#define HGDB_CHECK_LOCK_RANKS 0
#else
#define HGDB_CHECK_LOCK_RANKS 1
#endif
#endif

namespace hgdb::common {

/// The lock hierarchy, outermost first. Higher value = acquired earlier.
/// Acquiring rank R is legal only when R < every currently-held rank;
/// equal ranks may never nest (sequential acquire/release is fine).
enum class LockRank : int {
  kSessionLifecycle = 100,  ///< SessionManager shutdown latch
  kSessionSessions = 90,    ///< SessionManager session table
  kSessionConnections = 85, ///< DapServer connection table
  kSessionCommand = 80,     ///< DebugService command hand-off
  kSessionDelivery = 75,    ///< DebugService sink delivery bracket
  kSessionClients = 70,     ///< DebugService client/subscription table
  kRuntimeService = 65,     ///< Runtime session-layer slot (held across construction)
  kRuntimeListener = 60,    ///< Runtime callback slots (change listener / stop handler)
  kRuntimeState = 50,       ///< Runtime scheduler state
  kRuntimePool = 40,        ///< ThreadPool work queue
  kSessionTransport = 35,   ///< Per-connection protocol state + socket writes
  kWaveformPipeline = 32,   ///< Convert-pipeline error slot (above kWaveform:
                            ///< a writer worker reports a failure, then its
                            ///< shard writer's backend locks at kWaveform)
  kWaveform = 30,           ///< Waveform reader cache / writer backend
  kObs = 20,                ///< MetricsRegistry map, trace string interning
  kRpcWriter = 15,          ///< EventWriter target queues (above kRpc: the
                            ///< in-process flush path sends through a
                            ///< Channel, whose queues lock at kRpc)
  kRpc = 10,                ///< Channel queues, socket send/receive
};

[[nodiscard]] constexpr const char* to_string(LockRank rank) {
  switch (rank) {
    case LockRank::kSessionLifecycle: return "session::lifecycle";
    case LockRank::kSessionSessions: return "session::sessions";
    case LockRank::kSessionConnections: return "session::connections";
    case LockRank::kSessionCommand: return "session::command";
    case LockRank::kSessionDelivery: return "session::delivery";
    case LockRank::kSessionClients: return "session::clients";
    case LockRank::kRuntimeService: return "runtime::service";
    case LockRank::kRuntimeListener: return "runtime::listener";
    case LockRank::kRuntimeState: return "runtime::state";
    case LockRank::kRuntimePool: return "runtime::pool";
    case LockRank::kSessionTransport: return "session::transport";
    case LockRank::kWaveformPipeline: return "waveform::pipeline";
    case LockRank::kWaveform: return "waveform";
    case LockRank::kObs: return "obs";
    case LockRank::kRpcWriter: return "rpc::writer";
    case LockRank::kRpc: return "rpc";
  }
  return "?";
}

#if HGDB_CHECK_LOCK_RANKS

namespace detail {

/// Per-thread record of held CheckedMutexes, innermost last. Fixed-size:
/// the hierarchy is 16 ranks deep and equal ranks never nest, so a depth
/// past 16 is itself a discipline bug worth aborting on.
struct HeldLocks {
  static constexpr int kMaxDepth = 16;
  struct Entry {
    const void* addr;
    int rank;
    const char* name;
  };
  Entry stack[kMaxDepth];
  int depth = 0;
};

inline HeldLocks& held_locks() {
  thread_local HeldLocks held;
  return held;
}

[[noreturn]] inline void rank_abort(const char* what, int rank,
                                    const char* name) {
  auto& held = held_locks();
  std::fprintf(stderr,
               "hgdb: lock rank inversion: %s '%s' (rank %s=%d) while "
               "holding, in acquisition order:\n",
               what, name, to_string(static_cast<LockRank>(rank)), rank);
  for (int i = 0; i < held.depth; ++i) {
    std::fprintf(stderr, "  %d. '%s' (rank %s=%d)\n", i + 1,
                 held.stack[i].name,
                 to_string(static_cast<LockRank>(held.stack[i].rank)),
                 held.stack[i].rank);
  }
  std::fflush(stderr);
  std::abort();
}

inline void push_lock(const void* addr, int rank, const char* name) {
  auto& held = held_locks();
  for (int i = 0; i < held.depth; ++i) {
    if (held.stack[i].rank <= rank) rank_abort("acquiring", rank, name);
  }
  if (held.depth >= HeldLocks::kMaxDepth) rank_abort("acquiring", rank, name);
  held.stack[held.depth++] = {addr, rank, name};
}

inline void pop_lock(const void* addr, int rank, const char* name) {
  auto& held = held_locks();
  // Innermost-first search: condition-variable waits and hand-over-hand
  // sections release out of LIFO order, which is legal.
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.stack[i].addr == addr) {
      for (int j = i; j + 1 < held.depth; ++j) {
        held.stack[j] = held.stack[j + 1];
      }
      --held.depth;
      return;
    }
  }
  rank_abort("releasing unheld", rank, name);
}

}  // namespace detail

/// Drop-in std::mutex replacement carrying a static hierarchy rank.
/// Satisfies Lockable (works under std::lock_guard, std::unique_lock and
/// std::condition_variable_any), but lock sites should use the annotated
/// common::LockGuard / common::UniqueLock so clang's thread-safety
/// analysis tracks the critical section.
template <LockRank Rank>
class HGDB_CAPABILITY("mutex") CheckedMutex {
 public:
  explicit CheckedMutex(const char* name = "<anonymous>") : name_(name) {}

  CheckedMutex(const CheckedMutex&) = delete;
  CheckedMutex& operator=(const CheckedMutex&) = delete;

  void lock() HGDB_ACQUIRE() {
    detail::push_lock(this, static_cast<int>(Rank), name_);
    mutex_.lock();
    held_.store(true, std::memory_order_release);
  }

  bool try_lock() HGDB_TRY_ACQUIRE(true) {
    // A failed try_lock must not disturb the stack; a successful one obeys
    // the same ordering rule as lock() (it still closes deadlock cycles).
    if (!mutex_.try_lock()) return false;
    detail::push_lock(this, static_cast<int>(Rank), name_);
    held_.store(true, std::memory_order_release);
    return true;
  }

  void unlock() HGDB_RELEASE() {
    held_.store(false, std::memory_order_release);
    mutex_.unlock();
    detail::pop_lock(this, static_cast<int>(Rank), name_);
  }

  /// Dynamic "somebody holds this" check for fork/join workers that run
  /// under a lock taken by the parent thread (ThreadPool::parallel_for
  /// bodies). Not a substitute for lock(): it proves the capability is
  /// held, not by whom.
  void assert_held() const HGDB_ASSERT_CAPABILITY(this) {
    if (!held_.load(std::memory_order_acquire)) {
      std::fprintf(stderr, "hgdb: '%s' (rank %s) required but not held\n",
                   name_, to_string(Rank));
      std::fflush(stderr);
      std::abort();
    }
  }

  [[nodiscard]] const char* name() const { return name_; }
  static constexpr LockRank rank() { return Rank; }

 private:
  std::mutex mutex_;
  const char* name_;
  std::atomic<bool> held_{false};
};

#else  // !HGDB_CHECK_LOCK_RANKS

template <LockRank Rank>
class HGDB_CAPABILITY("mutex") CheckedMutex {
 public:
  explicit CheckedMutex(const char* name = "<anonymous>") { (void)name; }

  CheckedMutex(const CheckedMutex&) = delete;
  CheckedMutex& operator=(const CheckedMutex&) = delete;

  void lock() HGDB_ACQUIRE() { mutex_.lock(); }
  bool try_lock() HGDB_TRY_ACQUIRE(true) { return mutex_.try_lock(); }
  void unlock() HGDB_RELEASE() { mutex_.unlock(); }
  void assert_held() const HGDB_ASSERT_CAPABILITY(this) {}

  [[nodiscard]] const char* name() const { return "<unchecked>"; }
  static constexpr LockRank rank() { return Rank; }

 private:
  std::mutex mutex_;
};

#endif  // HGDB_CHECK_LOCK_RANKS

/// std::lock_guard, annotated so the analysis sees the critical section.
template <typename Mutex>
class HGDB_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) HGDB_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~LockGuard() HGDB_RELEASE() { mutex_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// std::unique_lock for the patterns that need early release or a
/// condition-variable wait. Always constructed locked; BasicLockable, so
/// std::condition_variable_any::wait(UniqueLock&) re-enters through the
/// CheckedMutex and the rank bookkeeping survives the unlock/relock.
template <typename Mutex>
class HGDB_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) HGDB_ACQUIRE(mutex) : mutex_(&mutex) {
    mutex_->lock();
    owns_ = true;
  }
  ~UniqueLock() HGDB_RELEASE() {
    if (owns_) mutex_->unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() HGDB_ACQUIRE() {
    mutex_->lock();
    owns_ = true;
  }
  void unlock() HGDB_RELEASE() {
    mutex_->unlock();
    owns_ = false;
  }
  [[nodiscard]] bool owns_lock() const { return owns_; }

 private:
  Mutex* mutex_;
  bool owns_;
};

// One alias per hierarchy level: declaration sites name the level, the
// numeric ordering stays in LockRank.
using LifecycleMutex = CheckedMutex<LockRank::kSessionLifecycle>;
using SessionsMutex = CheckedMutex<LockRank::kSessionSessions>;
using ConnectionsMutex = CheckedMutex<LockRank::kSessionConnections>;
using CommandMutex = CheckedMutex<LockRank::kSessionCommand>;
using DeliveryMutex = CheckedMutex<LockRank::kSessionDelivery>;
using ClientsMutex = CheckedMutex<LockRank::kSessionClients>;
using ServiceMutex = CheckedMutex<LockRank::kRuntimeService>;
using ListenerMutex = CheckedMutex<LockRank::kRuntimeListener>;
using StateMutex = CheckedMutex<LockRank::kRuntimeState>;
using PoolMutex = CheckedMutex<LockRank::kRuntimePool>;
using TransportMutex = CheckedMutex<LockRank::kSessionTransport>;
using PipelineMutex = CheckedMutex<LockRank::kWaveformPipeline>;
using WaveformMutex = CheckedMutex<LockRank::kWaveform>;
using ObsMutex = CheckedMutex<LockRank::kObs>;
using WriterMutex = CheckedMutex<LockRank::kRpcWriter>;
using RpcMutex = CheckedMutex<LockRank::kRpc>;

}  // namespace hgdb::common

#endif  // HGDB_COMMON_CHECKED_MUTEX_H
