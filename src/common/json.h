#ifndef HGDB_COMMON_JSON_H
#define HGDB_COMMON_JSON_H

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace hgdb::common {

/// Minimal JSON value with parse/serialize support.
///
/// Used by the RPC debug protocol (Sec. 3.5 of the paper: the debuggers talk
/// to the runtime via a JSON-based protocol) and by the RPC-served symbol
/// table. Supports the full JSON data model except lossless >53-bit floats;
/// integers are kept as int64 where possible.
class Json {
 public:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  using Array = std::vector<Json>;
  // std::map keeps serialization deterministic, which the tests rely on.
  using Object = std::map<std::string, Json, std::less<>>;

  Json() : type_(Type::Null) {}
  Json(std::nullptr_t) : type_(Type::Null) {}  // NOLINT(google-explicit-constructor)
  Json(bool value) : type_(Type::Bool), bool_(value) {}  // NOLINT
  Json(int value) : type_(Type::Int), int_(value) {}  // NOLINT
  Json(int64_t value) : type_(Type::Int), int_(value) {}  // NOLINT
  Json(uint32_t value) : type_(Type::Int), int_(value) {}  // NOLINT
  Json(uint64_t value) : type_(Type::Int), int_(static_cast<int64_t>(value)) {}  // NOLINT
  Json(double value) : type_(Type::Double), double_(value) {}  // NOLINT
  Json(const char* value) : type_(Type::String), string_(value) {}  // NOLINT
  Json(std::string value) : type_(Type::String), string_(std::move(value)) {}  // NOLINT
  Json(std::string_view value) : type_(Type::String), string_(value) {}  // NOLINT
  Json(Array value) : type_(Type::Array), array_(std::move(value)) {}  // NOLINT
  Json(Object value) : type_(Type::Object), object_(std::move(value)) {}  // NOLINT

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::Bool; }
  [[nodiscard]] bool is_int() const { return type_ == Type::Int; }
  [[nodiscard]] bool is_double() const { return type_ == Type::Double; }
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const { return type_ == Type::String; }
  [[nodiscard]] bool is_array() const { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const { return type_ == Type::Object; }

  [[nodiscard]] bool as_bool() const { expect(Type::Bool); return bool_; }
  [[nodiscard]] int64_t as_int() const {
    if (type_ == Type::Double) return static_cast<int64_t>(double_);
    expect(Type::Int);
    return int_;
  }
  [[nodiscard]] double as_double() const {
    if (type_ == Type::Int) return static_cast<double>(int_);
    expect(Type::Double);
    return double_;
  }
  [[nodiscard]] const std::string& as_string() const { expect(Type::String); return string_; }
  [[nodiscard]] const Array& as_array() const { expect(Type::Array); return array_; }
  [[nodiscard]] Array& as_array() { expect(Type::Array); return array_; }
  [[nodiscard]] const Object& as_object() const { expect(Type::Object); return object_; }
  [[nodiscard]] Object& as_object() { expect(Type::Object); return object_; }

  /// Object access; creates the key on mutation (like a map).
  Json& operator[](const std::string& key) {
    expect(Type::Object);
    return object_[key];
  }
  /// Const lookup: returns nullopt when the key is absent.
  [[nodiscard]] std::optional<std::reference_wrapper<const Json>> get(
      std::string_view key) const {
    expect(Type::Object);
    auto it = object_.find(key);
    if (it == object_.end()) return std::nullopt;
    return std::cref(it->second);
  }
  [[nodiscard]] bool contains(std::string_view key) const {
    return type_ == Type::Object && object_.find(key) != object_.end();
  }
  /// Convenience typed getters with defaults.
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string default_value = "") const;
  [[nodiscard]] int64_t get_int(std::string_view key, int64_t default_value = 0) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool default_value = false) const;

  void push_back(Json value) { expect(Type::Array); array_.push_back(std::move(value)); }
  [[nodiscard]] size_t size() const {
    if (type_ == Type::Array) return array_.size();
    if (type_ == Type::Object) return object_.size();
    throw std::runtime_error("Json::size on non-container");
  }
  const Json& at(size_t index) const { expect(Type::Array); return array_.at(index); }

  bool operator==(const Json& rhs) const;
  bool operator!=(const Json& rhs) const { return !(*this == rhs); }

  /// Compact serialization (no whitespace).
  [[nodiscard]] std::string dump() const;
  /// Parses a complete JSON document; throws std::runtime_error with a
  /// byte-offset message on malformed input.
  static Json parse(std::string_view text);

 private:
  void expect(Type type) const {
    if (type_ != type) throw std::runtime_error("Json type mismatch");
  }
  void dump_to(std::string& out) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace hgdb::common

#endif  // HGDB_COMMON_JSON_H
