#ifndef HGDB_COMMON_STRINGS_H
#define HGDB_COMMON_STRINGS_H

#include <string>
#include <string_view>
#include <vector>

namespace hgdb::common {

/// Splits on a single-character delimiter; keeps empty tokens.
std::vector<std::string> split(std::string_view text, char delimiter);

/// Joins with a delimiter.
std::string join(const std::vector<std::string>& parts, std::string_view delimiter);

/// Strips leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Length of the longest common substring. The paper (Sec. 3.3) uses common
/// substring matching to map symbol-table instance names onto the design
/// hierarchy found in VCD traces, which carry no definition info.
size_t longest_common_substring(std::string_view a, std::string_view b);

/// True when `name` ends with the dotted suffix `suffix` on a path-component
/// boundary, e.g. "tb.dut.core.alu" ends with "core.alu" but not "re.alu".
bool ends_with_path(std::string_view name, std::string_view suffix);

}  // namespace hgdb::common

#endif  // HGDB_COMMON_STRINGS_H
