#include "common/bitvector.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace hgdb::common {

namespace {

constexpr uint32_t kWordBits = 64;

size_t words_for(uint32_t width) { return (width + kWordBits - 1) / kWordBits; }

void check_same_width(const BitVector& a, const BitVector& b) {
  if (a.width() != b.width()) {
    throw std::invalid_argument("BitVector width mismatch: " +
                                std::to_string(a.width()) + " vs " +
                                std::to_string(b.width()));
  }
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

BitVector::BitVector(uint32_t width, uint64_t value) : width_(width) {
  if (width == 0) throw std::invalid_argument("BitVector width must be >= 1");
  words_.assign(words_for(width), 0);
  words_[0] = value;
  normalize();
}

BitVector BitVector::from_words(uint32_t width, std::vector<uint64_t> words) {
  BitVector result(width, 0);
  const size_t copy_words = std::min(words.size(), result.words_.size());
  std::copy_n(words.begin(), copy_words, result.words_.begin());
  result.normalize();
  return result;
}

BitVector BitVector::all_ones(uint32_t width) {
  BitVector result(width, 0);
  std::fill(result.words_.begin(), result.words_.end(), ~uint64_t{0});
  result.normalize();
  return result;
}

void BitVector::normalize() {
  const uint32_t rem = width_ % kWordBits;
  if (rem != 0) {
    words_.back() &= (~uint64_t{0}) >> (kWordBits - rem);
  }
}

BitVector BitVector::from_string(std::string_view literal) {
  if (literal.empty()) throw std::invalid_argument("empty BitVector literal");

  uint32_t width = 0;
  int base = 10;
  std::string_view digits = literal;

  const size_t tick = literal.find('\'');
  if (tick != std::string_view::npos) {
    // Verilog style: <width>'<base><digits>
    if (tick == 0 || tick + 2 > literal.size()) {
      throw std::invalid_argument("malformed literal: " + std::string(literal));
    }
    width = static_cast<uint32_t>(std::stoul(std::string(literal.substr(0, tick))));
    const char base_char = literal[tick + 1];
    switch (base_char) {
      case 'h': case 'H': base = 16; break;
      case 'b': case 'B': base = 2; break;
      case 'd': case 'D': base = 10; break;
      case 'o': case 'O': base = 8; break;
      default:
        throw std::invalid_argument("unknown literal base: " + std::string(literal));
    }
    digits = literal.substr(tick + 2);
  } else if (literal.size() > 2 && literal[0] == '0' &&
             (literal[1] == 'x' || literal[1] == 'X')) {
    base = 16;
    digits = literal.substr(2);
  } else if (literal.size() > 2 && literal[0] == '0' &&
             (literal[1] == 'b' || literal[1] == 'B')) {
    base = 2;
    digits = literal.substr(2);
  }

  if (digits.empty()) {
    throw std::invalid_argument("literal has no digits: " + std::string(literal));
  }

  // Accumulate into a wide scratch vector: value = value * base + digit.
  const uint32_t scratch_width =
      std::max<uint32_t>(width, static_cast<uint32_t>(digits.size()) * 4 + 8);
  BitVector value(scratch_width, 0);
  const BitVector base_bv(scratch_width, static_cast<uint64_t>(base));
  for (char c : digits) {
    if (c == '_') continue;
    const int d = hex_digit(c);
    if (d < 0 || d >= base) {
      throw std::invalid_argument("bad digit in literal: " + std::string(literal));
    }
    value = value.mul(base_bv).add(BitVector(scratch_width, static_cast<uint64_t>(d)));
  }

  if (width == 0) {
    // Minimal width that holds the value.
    uint32_t highest = 0;
    for (uint32_t i = 0; i < scratch_width; ++i) {
      if (value.bit(i)) highest = i;
    }
    width = highest + 1;
  }
  return value.resize(width);
}

int64_t BitVector::to_int64() const {
  uint64_t raw = words_[0];
  if (width_ < kWordBits) {
    if (sign_bit()) raw |= (~uint64_t{0}) << width_;
  }
  return static_cast<int64_t>(raw);
}

bool BitVector::to_bool() const {
  return std::any_of(words_.begin(), words_.end(),
                     [](uint64_t w) { return w != 0; });
}

bool BitVector::fits_uint64() const {
  return std::all_of(words_.begin() + 1, words_.end(),
                     [](uint64_t w) { return w == 0; });
}

bool BitVector::bit(uint32_t index) const {
  assert(index < width_);
  return (words_[index / kWordBits] >> (index % kWordBits)) & 1u;
}

void BitVector::set_bit(uint32_t index, bool value) {
  assert(index < width_);
  const uint64_t mask = uint64_t{1} << (index % kWordBits);
  if (value) {
    words_[index / kWordBits] |= mask;
  } else {
    words_[index / kWordBits] &= ~mask;
  }
}

BitVector BitVector::slice(uint32_t hi, uint32_t lo) const {
  if (lo > hi || hi >= width_) {
    throw std::invalid_argument("bad slice [" + std::to_string(hi) + ":" +
                                std::to_string(lo) + "] of width " +
                                std::to_string(width_));
  }
  return lshr(lo).resize(hi - lo + 1);
}

BitVector BitVector::concat(const BitVector& rhs) const {
  const uint32_t total = width_ + rhs.width_;
  BitVector high = resize(total).shl(rhs.width_);
  BitVector low = rhs.resize(total);
  return high.bit_or(low);
}

BitVector BitVector::resize(uint32_t new_width, bool sign_extend) const {
  BitVector result(new_width, 0);
  const size_t copy_words = std::min(result.words_.size(), words_.size());
  std::copy_n(words_.begin(), copy_words, result.words_.begin());
  if (new_width < width_) {
    result.normalize();
    return result;
  }
  if (sign_extend && sign_bit()) {
    // Fill bits [width_, new_width) with ones.
    for (uint32_t i = width_; i < new_width; ++i) result.set_bit(i, true);
  }
  return result;
}

BitVector BitVector::add(const BitVector& rhs) const {
  check_same_width(*this, rhs);
  BitVector result(width_, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    const uint64_t a = words_[i];
    const uint64_t b = rhs.words_[i];
    const uint64_t sum = a + b;
    const uint64_t sum2 = sum + carry;
    carry = (sum < a) || (sum2 < sum) ? 1 : 0;
    result.words_[i] = sum2;
  }
  result.normalize();
  return result;
}

BitVector BitVector::sub(const BitVector& rhs) const {
  return add(rhs.negate());
}

BitVector BitVector::negate() const {
  BitVector one(width_, 1);
  return bit_not().add(one);
}

BitVector BitVector::mul(const BitVector& rhs) const {
  check_same_width(*this, rhs);
  // Schoolbook multiplication on 32-bit limbs, truncated to width.
  const size_t n = words_.size() * 2;
  std::vector<uint32_t> a(n, 0), b(n, 0), out(n, 0);
  for (size_t i = 0; i < words_.size(); ++i) {
    a[2 * i] = static_cast<uint32_t>(words_[i]);
    a[2 * i + 1] = static_cast<uint32_t>(words_[i] >> 32);
    b[2 * i] = static_cast<uint32_t>(rhs.words_[i]);
    b[2 * i + 1] = static_cast<uint32_t>(rhs.words_[i] >> 32);
  }
  for (size_t i = 0; i < n; ++i) {
    if (a[i] == 0) continue;
    uint64_t carry = 0;
    for (size_t j = 0; i + j < n; ++j) {
      const uint64_t cur =
          static_cast<uint64_t>(a[i]) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
  }
  BitVector result(width_, 0);
  for (size_t i = 0; i < result.words_.size(); ++i) {
    result.words_[i] =
        static_cast<uint64_t>(out[2 * i]) |
        (static_cast<uint64_t>(out[2 * i + 1]) << 32);
  }
  result.normalize();
  return result;
}

BitVector BitVector::udiv(const BitVector& rhs) const {
  check_same_width(*this, rhs);
  if (rhs.is_zero()) return all_ones(width_);
  if (fits_uint64() && rhs.fits_uint64()) {
    return BitVector(width_, words_[0] / rhs.words_[0]);
  }
  // Bitwise shift-subtract long division.
  BitVector quotient(width_, 0);
  BitVector remainder(width_, 0);
  for (int i = static_cast<int>(width_) - 1; i >= 0; --i) {
    remainder = remainder.shl(1u);
    remainder.set_bit(0, bit(static_cast<uint32_t>(i)));
    if (!remainder.ult(rhs)) {
      remainder = remainder.sub(rhs);
      quotient.set_bit(static_cast<uint32_t>(i), true);
    }
  }
  return quotient;
}

BitVector BitVector::urem(const BitVector& rhs) const {
  check_same_width(*this, rhs);
  if (rhs.is_zero()) return *this;
  if (fits_uint64() && rhs.fits_uint64()) {
    return BitVector(width_, words_[0] % rhs.words_[0]);
  }
  BitVector remainder(width_, 0);
  for (int i = static_cast<int>(width_) - 1; i >= 0; --i) {
    remainder = remainder.shl(1u);
    remainder.set_bit(0, bit(static_cast<uint32_t>(i)));
    if (!remainder.ult(rhs)) remainder = remainder.sub(rhs);
  }
  return remainder;
}

BitVector BitVector::sdiv(const BitVector& rhs) const {
  check_same_width(*this, rhs);
  if (rhs.is_zero()) return all_ones(width_);
  const bool neg_a = sign_bit();
  const bool neg_b = rhs.sign_bit();
  const BitVector a = neg_a ? negate() : *this;
  const BitVector b = neg_b ? rhs.negate() : rhs;
  BitVector q = a.udiv(b);
  return (neg_a != neg_b) ? q.negate() : q;
}

BitVector BitVector::srem(const BitVector& rhs) const {
  check_same_width(*this, rhs);
  if (rhs.is_zero()) return *this;
  const bool neg_a = sign_bit();
  const BitVector a = neg_a ? negate() : *this;
  const BitVector b = rhs.sign_bit() ? rhs.negate() : rhs;
  BitVector r = a.urem(b);
  return neg_a ? r.negate() : r;  // remainder takes the dividend's sign
}

BitVector BitVector::bit_and(const BitVector& rhs) const {
  check_same_width(*this, rhs);
  BitVector result(width_, 0);
  for (size_t i = 0; i < words_.size(); ++i) {
    result.words_[i] = words_[i] & rhs.words_[i];
  }
  return result;
}

BitVector BitVector::bit_or(const BitVector& rhs) const {
  check_same_width(*this, rhs);
  BitVector result(width_, 0);
  for (size_t i = 0; i < words_.size(); ++i) {
    result.words_[i] = words_[i] | rhs.words_[i];
  }
  return result;
}

BitVector BitVector::bit_xor(const BitVector& rhs) const {
  check_same_width(*this, rhs);
  BitVector result(width_, 0);
  for (size_t i = 0; i < words_.size(); ++i) {
    result.words_[i] = words_[i] ^ rhs.words_[i];
  }
  return result;
}

BitVector BitVector::bit_not() const {
  BitVector result(width_, 0);
  for (size_t i = 0; i < words_.size(); ++i) result.words_[i] = ~words_[i];
  result.normalize();
  return result;
}

BitVector BitVector::reduce_and() const {
  return BitVector(1, *this == all_ones(width_) ? 1 : 0);
}

BitVector BitVector::reduce_or() const { return BitVector(1, to_bool() ? 1 : 0); }

BitVector BitVector::reduce_xor() const {
  return BitVector(1, popcount() & 1u);
}

uint32_t BitVector::popcount() const {
  uint32_t count = 0;
  for (uint64_t w : words_) count += static_cast<uint32_t>(__builtin_popcountll(w));
  return count;
}

BitVector BitVector::shl(const BitVector& amount) const {
  if (!amount.fits_uint64() || amount.words_[0] >= width_) {
    return BitVector(width_, 0);
  }
  return shl(static_cast<uint32_t>(amount.words_[0]));
}

BitVector BitVector::lshr(const BitVector& amount) const {
  if (!amount.fits_uint64() || amount.words_[0] >= width_) {
    return BitVector(width_, 0);
  }
  return lshr(static_cast<uint32_t>(amount.words_[0]));
}

BitVector BitVector::ashr(const BitVector& amount) const {
  if (!amount.fits_uint64() || amount.words_[0] >= width_) {
    return sign_bit() ? all_ones(width_) : BitVector(width_, 0);
  }
  return ashr(static_cast<uint32_t>(amount.words_[0]));
}

BitVector BitVector::shl(uint32_t amount) const {
  if (amount >= width_) return BitVector(width_, 0);
  BitVector result(width_, 0);
  const uint32_t word_shift = amount / kWordBits;
  const uint32_t bit_shift = amount % kWordBits;
  for (size_t i = words_.size(); i-- > word_shift;) {
    uint64_t value = words_[i - word_shift] << bit_shift;
    if (bit_shift != 0 && i > word_shift) {
      value |= words_[i - word_shift - 1] >> (kWordBits - bit_shift);
    }
    result.words_[i] = value;
  }
  result.normalize();
  return result;
}

BitVector BitVector::lshr(uint32_t amount) const {
  if (amount >= width_) return BitVector(width_, 0);
  BitVector result(width_, 0);
  const uint32_t word_shift = amount / kWordBits;
  const uint32_t bit_shift = amount % kWordBits;
  for (size_t i = 0; i + word_shift < words_.size(); ++i) {
    uint64_t value = words_[i + word_shift] >> bit_shift;
    if (bit_shift != 0 && i + word_shift + 1 < words_.size()) {
      value |= words_[i + word_shift + 1] << (kWordBits - bit_shift);
    }
    result.words_[i] = value;
  }
  return result;
}

BitVector BitVector::ashr(uint32_t amount) const {
  if (amount >= width_) {
    return sign_bit() ? all_ones(width_) : BitVector(width_, 0);
  }
  BitVector result = lshr(amount);
  if (sign_bit()) {
    for (uint32_t i = width_ - amount; i < width_; ++i) result.set_bit(i, true);
  }
  return result;
}

bool BitVector::eq(const BitVector& rhs) const {
  check_same_width(*this, rhs);
  return words_ == rhs.words_;
}

bool BitVector::ult(const BitVector& rhs) const {
  check_same_width(*this, rhs);
  for (size_t i = words_.size(); i-- > 0;) {
    if (words_[i] != rhs.words_[i]) return words_[i] < rhs.words_[i];
  }
  return false;
}

bool BitVector::ule(const BitVector& rhs) const { return !rhs.ult(*this); }

bool BitVector::slt(const BitVector& rhs) const {
  check_same_width(*this, rhs);
  const bool neg_a = sign_bit();
  const bool neg_b = rhs.sign_bit();
  if (neg_a != neg_b) return neg_a;
  return ult(rhs);
}

bool BitVector::sle(const BitVector& rhs) const { return !rhs.slt(*this); }

std::string BitVector::to_string(int base) const {
  if (base == 2) {
    std::string out;
    out.reserve(width_);
    for (uint32_t i = width_; i-- > 0;) out.push_back(bit(i) ? '1' : '0');
    return out;
  }
  if (base == 16) {
    const uint32_t digits = (width_ + 3) / 4;
    std::string out;
    out.reserve(digits);
    for (uint32_t d = digits; d-- > 0;) {
      uint32_t nibble = 0;
      for (uint32_t b = 0; b < 4; ++b) {
        const uint32_t idx = d * 4 + b;
        if (idx < width_ && bit(idx)) nibble |= 1u << b;
      }
      out.push_back("0123456789abcdef"[nibble]);
    }
    return out;
  }
  // Decimal via repeated division by 10^9.
  if (fits_uint64()) return std::to_string(words_[0]);
  BitVector value = *this;
  const BitVector billion(width_, 1000000000ull);
  std::vector<uint32_t> chunks;
  while (value.to_bool()) {
    chunks.push_back(static_cast<uint32_t>(value.urem(billion).to_uint64()));
    value = value.udiv(billion);
  }
  if (chunks.empty()) return "0";
  std::string out = std::to_string(chunks.back());
  for (size_t i = chunks.size() - 1; i-- > 0;) {
    std::string part = std::to_string(chunks[i]);
    out += std::string(9 - part.size(), '0') + part;
  }
  return out;
}

std::string BitVector::to_vcd_string() const {
  // VCD vector values drop leading zeros (but keep at least one digit).
  std::string bits = to_string(2);
  const size_t first_one = bits.find('1');
  if (first_one == std::string::npos) return "0";
  return bits.substr(first_one);
}

size_t BitVector::hash() const {
  size_t h = std::hash<uint32_t>{}(width_);
  for (uint64_t w : words_) {
    h ^= std::hash<uint64_t>{}(w) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace hgdb::common
