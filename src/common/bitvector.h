#ifndef HGDB_COMMON_BITVECTOR_H
#define HGDB_COMMON_BITVECTOR_H

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hgdb::common {

namespace detail {

/// Word storage for BitVector with a small-buffer optimization: values up
/// to kInlineWords * 64 bits live inline with no heap allocation. The
/// debugger's compiled expression engine evaluates conditions on every
/// clock edge; with the dominant signal widths (<= 64 bits, occasionally
/// <= 128) this keeps the whole hot loop allocation-free. Copy assignment
/// reuses existing heap capacity, so scratch registers reused across
/// evaluations never re-allocate either.
class WordStore {
 public:
  static constexpr size_t kInlineWords = 2;

  using iterator = uint64_t*;
  using const_iterator = const uint64_t*;

  WordStore() noexcept { inline_[0] = 0; }
  explicit WordStore(size_t count, uint64_t fill = 0) { assign(count, fill); }

  WordStore(const WordStore& other) { copy_from(other); }
  WordStore& operator=(const WordStore& other) {
    if (this != &other) copy_from(other);
    return *this;
  }
  WordStore(WordStore&& other) noexcept { steal(other); }
  WordStore& operator=(WordStore&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }
  ~WordStore() { release(); }

  /// Resizes to `count` words, all set to `fill`. Reuses capacity.
  void assign(size_t count, uint64_t fill) {
    reserve(count);
    size_ = static_cast<uint32_t>(count);
    std::fill_n(data_, count, fill);
  }

  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] uint64_t* data() { return data_; }
  [[nodiscard]] const uint64_t* data() const { return data_; }
  [[nodiscard]] iterator begin() { return data_; }
  [[nodiscard]] iterator end() { return data_ + size_; }
  [[nodiscard]] const_iterator begin() const { return data_; }
  [[nodiscard]] const_iterator end() const { return data_ + size_; }
  [[nodiscard]] uint64_t& back() { return data_[size_ - 1]; }
  [[nodiscard]] uint64_t back() const { return data_[size_ - 1]; }
  uint64_t& operator[](size_t index) { return data_[index]; }
  uint64_t operator[](size_t index) const { return data_[index]; }

  bool operator==(const WordStore& rhs) const {
    return size_ == rhs.size_ && std::equal(begin(), end(), rhs.begin());
  }
  bool operator!=(const WordStore& rhs) const { return !(*this == rhs); }

 private:
  void reserve(size_t count) {
    if (count <= capacity_) return;
    // Allocate before freeing: a throwing new must leave *this intact.
    uint64_t* grown = new uint64_t[count];
    if (data_ != inline_) delete[] data_;
    data_ = grown;
    capacity_ = static_cast<uint32_t>(count);
  }

  void copy_from(const WordStore& other) {
    reserve(other.size_);
    size_ = other.size_;
    std::copy_n(other.data_, other.size_, data_);
  }

  /// Leaves `other` valid: a one-word inline zero.
  void steal(WordStore& other) noexcept {
    if (other.data_ == other.inline_) {
      data_ = inline_;
      capacity_ = kInlineWords;
      size_ = other.size_;
      std::copy_n(other.inline_, other.size_, inline_);
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_;
      other.capacity_ = kInlineWords;
    }
    other.size_ = 1;
    other.inline_[0] = 0;
  }

  void release() {
    if (data_ != inline_) delete[] data_;
  }

  uint64_t* data_ = inline_;
  uint32_t size_ = 1;
  uint32_t capacity_ = kInlineWords;
  uint64_t inline_[kInlineWords];
};

}  // namespace detail

/// Arbitrary-width two-state (0/1) bit vector with value semantics.
///
/// This is the value type used throughout the IR constant folder, the RTL
/// simulator, the VCD trace engine, and the debugger runtime. The paper's
/// breakpoint emulation assumes zero-delay two-state simulation (Sec. 3),
/// so no X/Z states are modelled; see DESIGN.md for the substitution note.
///
/// Invariants:
///  - width() >= 1
///  - storage is ceil(width/64) little-endian 64-bit words
///  - all bits above width() are zero ("normalized")
///  - widths <= 128 bits are stored inline (no heap allocation)
///
/// Arithmetic is modular in the result width. Unless documented otherwise,
/// binary operations require equal operand widths (the compiler inserts
/// explicit resize nodes); this keeps simulator evaluation branch-free.
class BitVector {
 public:
  /// One-bit zero.
  BitVector() : BitVector(1, 0) {}
  /// `width`-bit vector holding `value` (truncated modulo 2^width).
  explicit BitVector(uint32_t width, uint64_t value = 0);

  /// Parses Verilog-flavoured literals: "8'hff", "4'b1010", "16'd123",
  /// plain decimal "42", "0x1f", "0b101". Plain literals get the minimal
  /// width that holds the value (at least 1). Throws std::invalid_argument
  /// on malformed input.
  static BitVector from_string(std::string_view literal);
  /// `width`-bit vector with every bit set.
  static BitVector all_ones(uint32_t width);
  /// Builds from raw words (little-endian); truncates to `width`.
  static BitVector from_words(uint32_t width, std::vector<uint64_t> words);

  [[nodiscard]] uint32_t width() const { return width_; }
  [[nodiscard]] size_t num_words() const { return words_.size(); }
  [[nodiscard]] const detail::WordStore& words() const { return words_; }

  /// Low 64 bits (truncating view).
  [[nodiscard]] uint64_t to_uint64() const { return words_[0]; }
  /// Low 64 bits sign-extended from bit width()-1.
  [[nodiscard]] int64_t to_int64() const;
  /// True iff any bit is set.
  [[nodiscard]] bool to_bool() const;
  [[nodiscard]] bool is_zero() const { return !to_bool(); }
  /// True iff the value fits in 64 bits.
  [[nodiscard]] bool fits_uint64() const;

  [[nodiscard]] bool bit(uint32_t index) const;
  void set_bit(uint32_t index, bool value);

  /// In-place store of a 64-bit value (truncated modulo 2^width) without
  /// reallocating. This keeps the simulator's hot loop allocation-free for
  /// the (dominant) <=64-bit signals.
  void assign_uint64(uint64_t value) {
    words_[0] = value;
    for (size_t i = 1; i < words_.size(); ++i) words_[i] = 0;
    normalize();
  }

  /// In-place re-initialization to `width` bits holding `value`, reusing
  /// storage capacity. The compiled expression engine writes every
  /// intermediate result through this, so steady-state evaluation never
  /// allocates.
  void reset(uint32_t width, uint64_t value = 0) {
    width_ = width;
    words_.assign((width + 63) / 64, 0);
    words_[0] = value;
    normalize();
  }

  /// Bits [hi:lo], result width hi-lo+1. Requires lo <= hi < width().
  [[nodiscard]] BitVector slice(uint32_t hi, uint32_t lo) const;
  /// {*this, rhs}: this becomes the high part, width sums.
  [[nodiscard]] BitVector concat(const BitVector& rhs) const;
  /// Zero- or sign-extends / truncates to `new_width`.
  [[nodiscard]] BitVector resize(uint32_t new_width, bool sign_extend = false) const;

  // -- Arithmetic (equal widths required; result has the same width) -------
  [[nodiscard]] BitVector add(const BitVector& rhs) const;
  [[nodiscard]] BitVector sub(const BitVector& rhs) const;
  [[nodiscard]] BitVector mul(const BitVector& rhs) const;
  /// Unsigned division; division by zero yields all-ones (Verilog-style
  /// two-state convention, documented in the simulator).
  [[nodiscard]] BitVector udiv(const BitVector& rhs) const;
  /// Unsigned remainder; remainder by zero yields the dividend.
  [[nodiscard]] BitVector urem(const BitVector& rhs) const;
  [[nodiscard]] BitVector sdiv(const BitVector& rhs) const;
  [[nodiscard]] BitVector srem(const BitVector& rhs) const;
  [[nodiscard]] BitVector negate() const;

  // -- Bitwise --------------------------------------------------------------
  [[nodiscard]] BitVector bit_and(const BitVector& rhs) const;
  [[nodiscard]] BitVector bit_or(const BitVector& rhs) const;
  [[nodiscard]] BitVector bit_xor(const BitVector& rhs) const;
  [[nodiscard]] BitVector bit_not() const;

  // -- Reductions (result width 1) ------------------------------------------
  [[nodiscard]] BitVector reduce_and() const;
  [[nodiscard]] BitVector reduce_or() const;
  [[nodiscard]] BitVector reduce_xor() const;
  /// Number of set bits.
  [[nodiscard]] uint32_t popcount() const;

  // -- Shifts (shift amount may have any width) ------------------------------
  [[nodiscard]] BitVector shl(const BitVector& amount) const;
  [[nodiscard]] BitVector lshr(const BitVector& amount) const;
  [[nodiscard]] BitVector ashr(const BitVector& amount) const;
  [[nodiscard]] BitVector shl(uint32_t amount) const;
  [[nodiscard]] BitVector lshr(uint32_t amount) const;
  [[nodiscard]] BitVector ashr(uint32_t amount) const;

  // -- Comparisons (equal widths; result is bool) ----------------------------
  [[nodiscard]] bool eq(const BitVector& rhs) const;
  [[nodiscard]] bool ult(const BitVector& rhs) const;
  [[nodiscard]] bool ule(const BitVector& rhs) const;
  [[nodiscard]] bool slt(const BitVector& rhs) const;
  [[nodiscard]] bool sle(const BitVector& rhs) const;

  bool operator==(const BitVector& rhs) const {
    return width_ == rhs.width_ && words_ == rhs.words_;
  }
  bool operator!=(const BitVector& rhs) const { return !(*this == rhs); }

  /// Decimal (base 10, unsigned), hex (base 16, no prefix, zero-padded to
  /// the width), or binary (base 2, zero-padded).
  [[nodiscard]] std::string to_string(int base = 10) const;
  /// Binary string without padding removal, e.g. for VCD ("b0101").
  [[nodiscard]] std::string to_vcd_string() const;

  [[nodiscard]] size_t hash() const;

 private:
  void normalize();
  [[nodiscard]] bool sign_bit() const { return bit(width_ - 1); }

  uint32_t width_;
  detail::WordStore words_;
};

}  // namespace hgdb::common

template <>
struct std::hash<hgdb::common::BitVector> {
  size_t operator()(const hgdb::common::BitVector& bv) const noexcept {
    return bv.hash();
  }
};

#endif  // HGDB_COMMON_BITVECTOR_H
