#ifndef HGDB_COMMON_THREAD_ANNOTATIONS_H
#define HGDB_COMMON_THREAD_ANNOTATIONS_H

// Clang thread-safety-analysis attribute wrappers (no-ops elsewhere).
//
// Lock discipline in this codebase is written down as attributes, not
// comments: members say which lock guards them (HGDB_GUARDED_BY), helpers
// say which lock their caller must hold (HGDB_REQUIRES), and the analysis
// turns a violated convention into a compile error under
// `clang -Werror=thread-safety` (the CI `static-analysis` job). Under GCC
// and MSVC every macro expands to nothing, so the annotations cost nothing
// where they cannot be checked.
//
// The attributes only track *annotated* capability types, which is why the
// repo locks through common::CheckedMutex / common::LockGuard
// (checked_mutex.h) instead of raw std::mutex / std::lock_guard — see
// `tools/lint.py`, which enforces exactly that.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && (!defined(SWIG))
#define HGDB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HGDB_THREAD_ANNOTATION(x)  // no-op
#endif

/// Marks a type as a capability ("mutex" in diagnostics). Lockable classes
/// (CheckedMutex) carry this so the analysis can track acquire/release.
#define HGDB_CAPABILITY(x) HGDB_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose lifetime equals a critical section.
#define HGDB_SCOPED_CAPABILITY HGDB_THREAD_ANNOTATION(scoped_lockable)

/// Member data that may only be touched while `x` is held.
#define HGDB_GUARDED_BY(x) HGDB_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x` (the pointer itself
/// may be read freely).
#define HGDB_PT_GUARDED_BY(x) HGDB_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function contract: the caller already holds every listed capability.
/// This is the enforced form of "caller holds `state_mutex_`" comments and
/// the `_locked` method-name convention.
#define HGDB_REQUIRES(...) \
  HGDB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function contract: the caller must NOT hold the listed capabilities
/// (the function acquires them itself, or calls out under them).
#define HGDB_EXCLUDES(...) HGDB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function acquires the capability and returns with it held.
#define HGDB_ACQUIRE(...) \
  HGDB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases a capability the caller held on entry.
#define HGDB_RELEASE(...) \
  HGDB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Try-lock: acquires only when returning `ret`.
#define HGDB_TRY_ACQUIRE(ret, ...) \
  HGDB_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Dynamic assertion that the capability is held (fork/join workers that
/// run under a lock taken by the *parent* thread assert instead of
/// acquiring — see CheckedMutex::assert_held).
#define HGDB_ASSERT_CAPABILITY(x) \
  HGDB_THREAD_ANNOTATION(assert_capability(x))

/// Return value is a reference to data guarded by the listed capability.
#define HGDB_RETURN_CAPABILITY(x) HGDB_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch. Not used under src/runtime or src/session (enforced by
/// tools/lint.py); exists for test scaffolding that deliberately misuses
/// locks to prove the checkers fire.
#define HGDB_NO_THREAD_SAFETY_ANALYSIS \
  HGDB_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // HGDB_COMMON_THREAD_ANNOTATIONS_H
