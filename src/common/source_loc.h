#ifndef HGDB_COMMON_SOURCE_LOC_H
#define HGDB_COMMON_SOURCE_LOC_H

#include <cstdint>
#include <string>
#include <tuple>

namespace hgdb::common {

/// A generator-source location: which file/line/column of the *generator
/// program* produced an IR node.
///
/// This is the analogue of Chisel storing Scala filenames and line numbers
/// inside FIRRTL (paper Sec. 4.1). The frontend eDSL captures locations from
/// the host C++ program; the IR parser fills them from `@[file line col]`
/// annotations; passes must preserve them so SymbolExtraction can emit
/// breakpoints.
struct SourceLoc {
  std::string filename;  ///< empty means "unknown / synthesized node"
  uint32_t line = 0;
  uint32_t column = 0;

  [[nodiscard]] bool valid() const { return !filename.empty() && line != 0; }

  /// Lexical order: by filename, then line, then column. This is the
  /// "absolute ordering of every potential breakpoint" the paper's Fig. 2
  /// scheduler precomputes.
  [[nodiscard]] auto tie() const { return std::tie(filename, line, column); }
  bool operator==(const SourceLoc& rhs) const { return tie() == rhs.tie(); }
  bool operator!=(const SourceLoc& rhs) const { return !(*this == rhs); }
  bool operator<(const SourceLoc& rhs) const { return tie() < rhs.tie(); }

  [[nodiscard]] std::string str() const {
    if (!valid()) return "<unknown>";
    std::string out = filename + ":" + std::to_string(line);
    if (column != 0) out += ":" + std::to_string(column);
    return out;
  }
};

}  // namespace hgdb::common

#endif  // HGDB_COMMON_SOURCE_LOC_H
