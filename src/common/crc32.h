#ifndef HGDB_COMMON_CRC32_H
#define HGDB_COMMON_CRC32_H

#include <cstddef>
#include <cstdint>

namespace hgdb::common {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte range.
/// Used by the .wvx waveform index for per-block integrity checksums.
/// `seed` chains incremental computation: crc32(b, n2, crc32(a, n1)) equals
/// crc32 of the concatenation.
[[nodiscard]] uint32_t crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace hgdb::common

#endif  // HGDB_COMMON_CRC32_H
