#ifndef HGDB_COMMON_SPSC_QUEUE_H
#define HGDB_COMMON_SPSC_QUEUE_H

#include <atomic>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

namespace hgdb::common {

/// Bounded single-producer / single-consumer ring. The waveform convert
/// pipeline's hand-off: the VCD parser thread pushes routed changes, one
/// writer worker pops them. Exactly one thread may call push()/close()
/// and exactly one may call pop() — the ring needs no mutex then, just an
/// acquire/release pair per transfer (head_ and tail_ each have a single
/// writer), which TSan accepts and which keeps the per-change cost to two
/// atomic ops.
///
/// Backpressure is spin-then-yield on both sides: a full queue stalls the
/// producer (bounding memory no matter how far the parser runs ahead), an
/// empty one stalls the consumer. Slots are recycled with std::swap so a
/// popped element donates its heap capacity (string payloads) back to the
/// ring instead of freeing it.
///
/// close() may be called by either side: the producer to signal
/// end-of-stream (consumer drains, then pop() returns false), or the
/// consumer to refuse further work after a failure (push() returns false
/// and the producer collects the error out of band). closed_ is the only
/// flag both threads write; it is monotonic, so a relaxed race on "who
/// closed first" is harmless.
template <typename T>
class SpscQueue {
 public:
  /// `capacity` is rounded up to a power of two (mask indexing).
  explicit SpscQueue(size_t capacity) {
    size_t rounded = 1;
    while (rounded < capacity) rounded <<= 1;
    ring_.resize(rounded);
    mask_ = rounded - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Moves `item` into the ring, blocking while full. Returns false (item
  /// untouched) once the queue is closed.
  bool push(T& item) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    size_t spins = 0;
    while (true) {
      if (closed_.load(std::memory_order_acquire)) return false;
      const size_t head = head_.load(std::memory_order_acquire);
      if (tail - head <= mask_) break;
      if (++spins > kSpinLimit) std::this_thread::yield();
    }
    std::swap(ring_[tail & mask_], item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Moves the next element into `out`, blocking while empty. Returns
  /// false only when the queue is closed *and* drained.
  bool pop(T& out) {
    const size_t head = head_.load(std::memory_order_relaxed);
    size_t spins = 0;
    while (true) {
      const size_t tail = tail_.load(std::memory_order_acquire);
      if (head != tail) break;
      if (closed_.load(std::memory_order_acquire) &&
          tail_.load(std::memory_order_acquire) == head) {
        return false;
      }
      if (++spins > kSpinLimit) std::this_thread::yield();
    }
    std::swap(out, ring_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  void close() { closed_.store(true, std::memory_order_release); }
  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }
  [[nodiscard]] size_t capacity() const { return mask_ + 1; }

 private:
  static constexpr size_t kSpinLimit = 64;

  std::vector<T> ring_;
  size_t mask_ = 0;
  /// Consumer cursor and producer cursor; monotonically increasing, ring
  /// position is cursor & mask_. Padded apart so the two single-writer
  /// cache lines don't false-share.
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::atomic<size_t> tail_{0};
  alignas(64) std::atomic<bool> closed_{false};
};

}  // namespace hgdb::common

#endif  // HGDB_COMMON_SPSC_QUEUE_H
