#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>

namespace hgdb::common {

std::string Json::get_string(std::string_view key, std::string default_value) const {
  auto value = get(key);
  if (!value || !value->get().is_string()) return default_value;
  return value->get().as_string();
}

int64_t Json::get_int(std::string_view key, int64_t default_value) const {
  auto value = get(key);
  if (!value || !value->get().is_number()) return default_value;
  return value->get().as_int();
}

bool Json::get_bool(std::string_view key, bool default_value) const {
  auto value = get(key);
  if (!value || !value->get().is_bool()) return default_value;
  return value->get().as_bool();
}

bool Json::operator==(const Json& rhs) const {
  if (type_ != rhs.type_) {
    // Allow int/double numeric comparison.
    if (is_number() && rhs.is_number()) return as_double() == rhs.as_double();
    return false;
  }
  switch (type_) {
    case Type::Null: return true;
    case Type::Bool: return bool_ == rhs.bool_;
    case Type::Int: return int_ == rhs.int_;
    case Type::Double: return double_ == rhs.double_;
    case Type::String: return string_ == rhs.string_;
    case Type::Array: return array_ == rhs.array_;
    case Type::Object: return object_ == rhs.object_;
  }
  return false;
}

namespace {

void escape_string(const std::string& in, std::string& out) {
  out.push_back('"');
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error("JSON parse error at byte " + std::to_string(pos_) +
                             ": " + message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      fail("expected '" + std::string(literal) + "'");
    }
    pos_ += literal.size();
  }

  Json parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': expect_literal("true"); return Json(true);
      case 'f': expect_literal("false"); return Json(false);
      case 'n': expect_literal("null"); return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    next();  // '{'
    Json::Object object;
    skip_whitespace();
    if (peek() == '}') {
      next();
      return Json(std::move(object));
    }
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_whitespace();
      if (next() != ':') fail("expected ':'");
      object[std::move(key)] = parse_value();
      skip_whitespace();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return Json(std::move(object));
  }

  Json parse_array() {
    next();  // '['
    Json::Array array;
    skip_whitespace();
    if (peek() == ']') {
      next();
      return Json(std::move(array));
    }
    while (true) {
      array.push_back(parse_value());
      skip_whitespace();
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return Json(std::move(array));
  }

  std::string parse_string() {
    next();  // '"'
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') break;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char escape = next();
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode (no surrogate-pair handling; BMP is enough here).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
    return out;
  }

  Json parse_number() {
    const size_t start = pos_;
    if (peek() == '-') next();
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty()) fail("expected value");
    if (token.find('.') == std::string_view::npos &&
        token.find('e') == std::string_view::npos &&
        token.find('E') == std::string_view::npos) {
      int64_t value = 0;
      auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) return Json(value);
    }
    double value = 0;
    auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) fail("bad number");
    return Json(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

void Json::dump_to(std::string& out) const {
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Int: out += std::to_string(int_); break;
    case Type::Double: {
      if (std::isfinite(double_)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", double_);
        out += buf;
      } else {
        out += "null";  // JSON has no Inf/NaN
      }
      break;
    }
    case Type::String: escape_string(string_, out); break;
    case Type::Array: {
      out.push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out.push_back(',');
        array_[i].dump_to(out);
      }
      out.push_back(']');
      break;
    }
    case Type::Object: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out.push_back(',');
        first = false;
        escape_string(key, out);
        out.push_back(':');
        value.dump_to(out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace hgdb::common
