#include "frontend/dsl.h"

#include <stdexcept>

namespace hgdb::frontend {

using namespace ir;

// ---------------------------------------------------------------------------
// Value operators
// ---------------------------------------------------------------------------

std::pair<ExprPtr, ExprPtr> balance(const Value& a, const Value& b) {
  ExprPtr lhs = a.expr();
  ExprPtr rhs = b.expr();
  const uint32_t width = std::max(lhs->width(), rhs->width());
  return {make_pad(std::move(lhs), width), make_pad(std::move(rhs), width)};
}

namespace {

Value binary(PrimOp op, const Value& a, const Value& b) {
  auto [lhs, rhs] = balance(a, b);
  return Value(make_prim(op, {std::move(lhs), std::move(rhs)}), a.builder());
}

Value as_bool(const Value& v) {
  if (v.width() == 1) return v;
  return v.reduce_or();
}

}  // namespace

Value Value::operator+(const Value& rhs) const { return binary(PrimOp::Add, *this, rhs); }
Value Value::operator-(const Value& rhs) const { return binary(PrimOp::Sub, *this, rhs); }
Value Value::operator*(const Value& rhs) const { return binary(PrimOp::Mul, *this, rhs); }
Value Value::operator/(const Value& rhs) const { return binary(PrimOp::Div, *this, rhs); }
Value Value::operator%(const Value& rhs) const { return binary(PrimOp::Rem, *this, rhs); }
Value Value::operator&(const Value& rhs) const { return binary(PrimOp::And, *this, rhs); }
Value Value::operator|(const Value& rhs) const { return binary(PrimOp::Or, *this, rhs); }
Value Value::operator^(const Value& rhs) const { return binary(PrimOp::Xor, *this, rhs); }
Value Value::operator==(const Value& rhs) const { return binary(PrimOp::Eq, *this, rhs); }
Value Value::operator!=(const Value& rhs) const { return binary(PrimOp::Neq, *this, rhs); }
Value Value::operator<(const Value& rhs) const { return binary(PrimOp::Lt, *this, rhs); }
Value Value::operator<=(const Value& rhs) const { return binary(PrimOp::Leq, *this, rhs); }
Value Value::operator>(const Value& rhs) const { return binary(PrimOp::Gt, *this, rhs); }
Value Value::operator>=(const Value& rhs) const { return binary(PrimOp::Geq, *this, rhs); }

Value Value::operator~() const {
  return Value(make_prim(PrimOp::Not, {expr_}), builder_);
}

Value Value::operator!() const {
  return Value(make_prim(PrimOp::Not, {as_bool(*this).expr()}), builder_);
}

Value Value::operator&&(const Value& rhs) const {
  return binary(PrimOp::And, as_bool(*this), as_bool(rhs));
}

Value Value::operator||(const Value& rhs) const {
  return binary(PrimOp::Or, as_bool(*this), as_bool(rhs));
}

Value Value::shl(uint32_t amount) const {
  return Value(make_prim(PrimOp::Shl, {expr_}, {amount}), builder_);
}

Value Value::shr(uint32_t amount) const {
  return Value(make_prim(PrimOp::Shr, {expr_}, {amount}), builder_);
}

Value Value::shl(const Value& amount) const {
  return Value(make_prim(PrimOp::Dshl, {expr_, amount.expr()}), builder_);
}

Value Value::shr(const Value& amount) const {
  return Value(make_prim(PrimOp::Dshr, {expr_, amount.expr()}), builder_);
}

Value Value::slice(uint32_t hi, uint32_t lo) const {
  return Value(make_prim(PrimOp::Bits, {expr_}, {hi, lo}), builder_);
}

Value Value::concat(const Value& low) const {
  return Value(make_prim(PrimOp::Cat, {expr_, low.expr()}), builder_);
}

Value Value::pad(uint32_t width) const {
  return Value(make_pad(expr_, width), builder_);
}

Value Value::reduce_or() const {
  return Value(make_prim(PrimOp::OrR, {expr_}), builder_);
}

Value Value::reduce_and() const {
  return Value(make_prim(PrimOp::AndR, {expr_}), builder_);
}

Value Value::reduce_xor() const {
  return Value(make_prim(PrimOp::XorR, {expr_}), builder_);
}

Value Value::field(const std::string& name) const {
  return Value(make_subfield(expr_, name), builder_);
}

Value Value::operator[](uint32_t index) const {
  return Value(make_subindex(expr_, index), builder_);
}

Value Value::operator[](const Value& index) const {
  return Value(make_subaccess(expr_, index.expr()), builder_);
}

Value mux(const Value& sel, const Value& then_value, const Value& else_value) {
  if (then_value.expr()->type()->is_ground() &&
      else_value.expr()->type()->is_ground()) {
    auto [a, b] = balance(then_value, else_value);
    return Value(make_mux(sel.expr(), std::move(a), std::move(b)),
                 sel.builder());
  }
  return Value(make_mux(sel.expr(), then_value.expr(), else_value.expr()),
               sel.builder());
}

// ---------------------------------------------------------------------------
// Instance
// ---------------------------------------------------------------------------

Value Instance::port(const std::string& port_name) const {
  std::vector<BundleField> fields;
  for (const auto& p : module_->ports()) {
    fields.push_back(
        BundleField{p.name, p.type, p.direction == Direction::Output});
  }
  ExprPtr base = make_ref(name_, bundle_type(std::move(fields)));
  return Value(make_subfield(std::move(base), port_name), builder_);
}

// ---------------------------------------------------------------------------
// ModuleBuilder
// ---------------------------------------------------------------------------

ModuleBuilder::ModuleBuilder(Circuit& circuit, const std::string& name)
    : circuit_(&circuit), name_(name), module_(std::make_unique<Module>(name)) {
  block_stack_.push_back(&module_->body());
}

Module& ModuleBuilder::finish() {
  if (finished_) throw std::logic_error("module '" + name_ + "' already finished");
  finished_ = true;
  return circuit_->add_module(std::move(module_));
}

void ModuleBuilder::push(StmtPtr stmt) { block_stack_.back()->push(std::move(stmt)); }

TypePtr ModuleBuilder::lookup(const std::string& name) const {
  TypePtr type = module_->lookup_type(name);
  if (!type) throw std::invalid_argument("unknown name '" + name + "'");
  return type;
}

Value ModuleBuilder::clock(const std::string& name) {
  module_->add_port(Port{name, clock_type(), Direction::Input, {}});
  return Value(make_ref(name, clock_type()), this);
}

Value ModuleBuilder::input(const std::string& name, uint32_t width,
                           common::SourceLoc loc) {
  return input_type(name, uint_type(width), std::move(loc));
}

Value ModuleBuilder::output(const std::string& name, uint32_t width,
                            common::SourceLoc loc) {
  return output_type(name, uint_type(width), std::move(loc));
}

Value ModuleBuilder::input_type(const std::string& name, TypePtr type,
                                common::SourceLoc loc) {
  module_->add_port(Port{name, type, Direction::Input, std::move(loc)});
  return Value(make_ref(name, type), this);
}

Value ModuleBuilder::output_type(const std::string& name, TypePtr type,
                                 common::SourceLoc loc) {
  module_->add_port(Port{name, type, Direction::Output, std::move(loc)});
  return Value(make_ref(name, type), this);
}

Value ModuleBuilder::wire(const std::string& name, uint32_t width,
                          common::SourceLoc loc) {
  return wire_type(name, uint_type(width), std::move(loc));
}

Value ModuleBuilder::wire_type(const std::string& name, TypePtr type,
                               common::SourceLoc loc) {
  auto stmt = std::make_unique<WireStmt>(name, type);
  stmt->source_name = name;
  stmt->loc = std::move(loc);
  push(std::move(stmt));
  return Value(make_ref(name, type), this);
}

Value ModuleBuilder::reg(const std::string& name, uint32_t width,
                         const Value& clk, common::SourceLoc loc) {
  return reg_type(name, uint_type(width), clk, std::move(loc));
}

Value ModuleBuilder::reg_type(const std::string& name, TypePtr type,
                              const Value& clk, common::SourceLoc loc) {
  const auto& clock_ref = static_cast<const RefExpr&>(*clk.expr());
  auto stmt = std::make_unique<RegStmt>(name, type, clock_ref.name());
  stmt->source_name = name;
  stmt->loc = std::move(loc);
  push(std::move(stmt));
  return Value(make_ref(name, type), this);
}

Value ModuleBuilder::reg_init(const std::string& name, uint32_t width,
                              const Value& clk, const Value& reset,
                              uint64_t init, common::SourceLoc loc) {
  const auto& clock_ref = static_cast<const RefExpr&>(*clk.expr());
  auto stmt = std::make_unique<RegStmt>(name, uint_type(width),
                                        clock_ref.name());
  stmt->source_name = name;
  stmt->loc = std::move(loc);
  stmt->reset = reset.expr();
  stmt->init = make_uint_literal(width, init);
  push(std::move(stmt));
  return Value(make_ref(name, uint_type(width)), this);
}

Value ModuleBuilder::node(const std::string& name, const Value& value,
                          common::SourceLoc loc) {
  auto stmt = std::make_unique<NodeStmt>(name, value.expr());
  stmt->source_name = name;
  stmt->loc = std::move(loc);
  push(std::move(stmt));
  return Value(make_ref(name, value.expr()->type()), this);
}

Value ModuleBuilder::lit(uint32_t width, uint64_t value) {
  return Value(make_uint_literal(width, value), this);
}

void ModuleBuilder::assign(const Value& target, const Value& value,
                           common::SourceLoc loc) {
  auto stmt = std::make_unique<ConnectStmt>(target.expr(), value.expr());
  stmt->loc = std::move(loc);
  push(std::move(stmt));
}

void ModuleBuilder::when_(const Value& condition, common::SourceLoc loc,
                          const std::function<void()>& then_body,
                          const std::function<void()>& else_body) {
  Value cond_bool =
      condition.width() == 1 ? condition : condition.reduce_or();
  auto stmt = std::make_unique<WhenStmt>(cond_bool.expr());
  stmt->loc = std::move(loc);
  WhenStmt* when = stmt.get();
  push(std::move(stmt));

  block_stack_.push_back(when->then_body.get());
  then_body();
  block_stack_.pop_back();

  if (else_body) {
    when->else_body = std::make_unique<BlockStmt>();
    block_stack_.push_back(when->else_body.get());
    else_body();
    block_stack_.pop_back();
  }
}

void ModuleBuilder::for_(const std::string& var, int64_t start, int64_t end,
                         common::SourceLoc loc,
                         const std::function<void(Value)>& body) {
  if (end < start) throw std::invalid_argument("for_: end < start");
  auto stmt = std::make_unique<ForStmt>(var, start, end);
  stmt->loc = std::move(loc);
  ForStmt* loop = stmt.get();
  push(std::move(stmt));

  // Loop-variable width: minimal bits holding end-1 (at least 1).
  uint32_t width = 1;
  const int64_t max_value = std::max<int64_t>(end - 1, 1);
  while ((int64_t{1} << width) <= max_value && width < 63) ++width;
  Value index(make_ref(var, uint_type(width)), this);

  block_stack_.push_back(loop->body.get());
  body(index);
  block_stack_.pop_back();
}

Instance ModuleBuilder::instantiate(const std::string& instance_name,
                                    const std::string& module_name,
                                    common::SourceLoc loc) {
  const Module* child = circuit_->module(module_name);
  if (child == nullptr) {
    throw std::invalid_argument("instantiate: unknown module '" + module_name +
                                "' (declare children before parents)");
  }
  auto stmt = std::make_unique<InstanceStmt>(instance_name, module_name);
  stmt->loc = std::move(loc);
  push(std::move(stmt));
  return Instance(instance_name, child, this);
}

}  // namespace hgdb::frontend
