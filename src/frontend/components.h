#ifndef HGDB_FRONTEND_COMPONENTS_H
#define HGDB_FRONTEND_COMPONENTS_H

#include "frontend/dsl.h"

namespace hgdb::frontend {

/// Reusable generator components (the "library of generator components"
/// any HGF ships). All are pure eDSL code: each instantiation elaborates
/// fresh IR statements carrying this library's source locations — exactly
/// the multi-instantiation pattern that makes generated RTL hard to debug
/// and source mapping valuable.

/// Free-running XNOR Galois LFSR register (progresses from the all-zero
/// power-on state, so designs need no reset to self-stimulate).
/// Returns the register Value; the step logic is emitted immediately.
Value lfsr(ModuleBuilder& b, const std::string& name, uint32_t width,
           const Value& clk);

/// Free-running counter of `width` bits.
Value counter(ModuleBuilder& b, const std::string& name, uint32_t width,
              const Value& clk);

/// Combinational adder tree over `inputs` (auto-padded); returns the sum.
Value adder_tree(ModuleBuilder& b, const std::vector<Value>& inputs);

/// Compare-and-exchange: returns {min, max} of two values (unsigned).
std::pair<Value, Value> sort2(const Value& a, const Value& b);

}  // namespace hgdb::frontend

#endif  // HGDB_FRONTEND_COMPONENTS_H
