#include "frontend/components.h"

#include <stdexcept>

namespace hgdb::frontend {

namespace {

/// XNOR-LFSR tap positions for common widths (maximal-length where listed;
/// otherwise a serviceable default for stimulus generation).
std::vector<uint32_t> taps_for(uint32_t width) {
  switch (width) {
    case 8: return {7, 5, 4, 3};
    case 16: return {15, 14, 12, 3};
    case 24: return {23, 22, 21, 16};
    case 32: return {31, 21, 1, 0};
    default:
      if (width < 2) throw std::invalid_argument("lfsr width must be >= 2");
      return {width - 1, width / 2};
  }
}

}  // namespace

Value lfsr(ModuleBuilder& b, const std::string& name, uint32_t width,
           const Value& clk) {
  Value state = b.reg(name, width, clk, HGDB_LOC);
  Value feedback;
  for (uint32_t tap : taps_for(width)) {
    Value bit = state.bit(tap);
    feedback = feedback.valid() ? (feedback ^ bit) : bit;
  }
  feedback = ~feedback;  // XNOR form: all-zero state progresses
  b.assign(state, state.shl(1) | feedback.pad(width), HGDB_LOC);
  return state;
}

Value counter(ModuleBuilder& b, const std::string& name, uint32_t width,
              const Value& clk) {
  Value count = b.reg(name, width, clk, HGDB_LOC);
  b.assign(count, count + b.lit(width, 1), HGDB_LOC);
  return count;
}

Value adder_tree(ModuleBuilder& b, const std::vector<Value>& inputs) {
  if (inputs.empty()) throw std::invalid_argument("adder_tree: no inputs");
  std::vector<Value> level = inputs;
  while (level.size() > 1) {
    std::vector<Value> next;
    next.reserve((level.size() + 1) / 2);
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(level[i] + level[i + 1]);
    }
    if (level.size() % 2 != 0) next.push_back(level.back());
    level = std::move(next);
  }
  (void)b;
  return level.front();
}

std::pair<Value, Value> sort2(const Value& a, const Value& b) {
  Value a_less = a < b;
  return {mux(a_less, a, b), mux(a_less, b, a)};
}

}  // namespace hgdb::frontend
