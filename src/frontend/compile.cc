#include "frontend/compile.h"

#include "passes/pass.h"
#include "passes/symbol_extract.h"

namespace hgdb::frontend {

CompileResult compile(std::unique_ptr<ir::Circuit> circuit,
                      const CompileOptions& options) {
  passes::check_form(*circuit, ir::Form::High);

  passes::PassManager manager;
  manager.add(passes::create_unroll_loops_pass());
  manager.add(passes::create_lower_aggregates_pass());
  manager.add(passes::create_ssa_pass());
  if (options.debug_mode) {
    manager.add(passes::create_insert_dont_touch_pass());
  }
  if (options.optimize) {
    manager.add(passes::create_const_prop_pass());
    manager.add(passes::create_cse_pass());
    manager.add(passes::create_dce_pass());
  }
  manager.run(*circuit);

  CompileResult result;
  result.symbols = passes::extract_symbol_table(*circuit);
  result.netlist = netlist::elaborate(*circuit);
  result.pass_order = manager.executed();
  result.circuit = std::move(circuit);
  return result;
}

}  // namespace hgdb::frontend
