#ifndef HGDB_FRONTEND_DSL_H
#define HGDB_FRONTEND_DSL_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/circuit.h"

namespace hgdb::frontend {

/// Captures the *generator* source location — the C++ analogue of Chisel
/// recording Scala file/line into FIRRTL (paper Sec. 4.1). Pass to every
/// statement-producing builder call; breakpoints resolve to these.
#define HGDB_LOC                                                 \
  ::hgdb::common::SourceLoc {                                    \
    __FILE__, static_cast<uint32_t>(__LINE__), 0                 \
  }

class ModuleBuilder;

/// A typed value handle inside a module under construction. Wraps an IR
/// expression; operators auto-pad operands to the wider width so generator
/// code reads naturally (the compiler inserts the explicit pads the IR
/// requires).
class Value {
 public:
  Value() = default;
  Value(ir::ExprPtr expr, ModuleBuilder* builder)
      : expr_(std::move(expr)), builder_(builder) {}

  [[nodiscard]] bool valid() const { return expr_ != nullptr; }
  [[nodiscard]] const ir::ExprPtr& expr() const { return expr_; }
  [[nodiscard]] uint32_t width() const { return expr_->width(); }
  [[nodiscard]] ModuleBuilder* builder() const { return builder_; }

  // arithmetic / bitwise (width = max of operands, Verilog-style)
  Value operator+(const Value& rhs) const;
  Value operator-(const Value& rhs) const;
  Value operator*(const Value& rhs) const;
  Value operator/(const Value& rhs) const;
  Value operator%(const Value& rhs) const;
  Value operator&(const Value& rhs) const;
  Value operator|(const Value& rhs) const;
  Value operator^(const Value& rhs) const;
  Value operator~() const;
  Value operator!() const;
  // comparisons (1-bit)
  Value operator==(const Value& rhs) const;
  Value operator!=(const Value& rhs) const;
  Value operator<(const Value& rhs) const;
  Value operator<=(const Value& rhs) const;
  Value operator>(const Value& rhs) const;
  Value operator>=(const Value& rhs) const;
  Value operator&&(const Value& rhs) const;
  Value operator||(const Value& rhs) const;
  // shifts
  [[nodiscard]] Value shl(uint32_t amount) const;
  [[nodiscard]] Value shr(uint32_t amount) const;
  [[nodiscard]] Value shl(const Value& amount) const;
  [[nodiscard]] Value shr(const Value& amount) const;
  // structure
  [[nodiscard]] Value slice(uint32_t hi, uint32_t lo) const;
  [[nodiscard]] Value bit(uint32_t index) const { return slice(index, index); }
  [[nodiscard]] Value concat(const Value& low) const;
  [[nodiscard]] Value pad(uint32_t width) const;
  [[nodiscard]] Value reduce_or() const;
  [[nodiscard]] Value reduce_and() const;
  [[nodiscard]] Value reduce_xor() const;
  /// Bundle field access.
  [[nodiscard]] Value field(const std::string& name) const;
  /// Vector element access (constant or dynamic index).
  Value operator[](uint32_t index) const;
  Value operator[](const Value& index) const;

 private:
  ir::ExprPtr expr_;
  ModuleBuilder* builder_ = nullptr;
};

/// Ternary select; arms are padded to a common width.
Value mux(const Value& sel, const Value& then_value, const Value& else_value);

/// Handle for an instantiated child module.
class Instance {
 public:
  Instance() = default;
  Instance(std::string name, const ir::Module* module, ModuleBuilder* builder)
      : name_(std::move(name)), module_(module), builder_(builder) {}
  /// Port access: read outputs, assign inputs (via ModuleBuilder::assign).
  [[nodiscard]] Value port(const std::string& port_name) const;
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  const ir::Module* module_ = nullptr;
  ModuleBuilder* builder_ = nullptr;
};

/// Builds one IR module. The generator calls methods in program order;
/// every statement records the generator source location it was created
/// from. Procedural semantics: wires may be assigned repeatedly, `when_`
/// scopes conditions, `for_` emits an IR-level loop that the compiler
/// unrolls (paper Listing 1).
class ModuleBuilder {
 public:
  ModuleBuilder(ir::Circuit& circuit, const std::string& name);

  /// Finishes the module (must be called exactly once).
  ir::Module& finish();

  [[nodiscard]] const std::string& module_name() const { return name_; }
  [[nodiscard]] ir::Circuit& circuit() { return *circuit_; }

  // -- ports -------------------------------------------------------------------
  Value clock(const std::string& name = "clock");
  Value input(const std::string& name, uint32_t width,
              common::SourceLoc loc = {});
  Value output(const std::string& name, uint32_t width,
               common::SourceLoc loc = {});
  Value input_type(const std::string& name, ir::TypePtr type,
                   common::SourceLoc loc = {});
  Value output_type(const std::string& name, ir::TypePtr type,
                    common::SourceLoc loc = {});

  // -- declarations ---------------------------------------------------------------
  /// Procedural variable (the paper's `sum`). May be assigned repeatedly;
  /// SSA renames the assignments.
  Value wire(const std::string& name, uint32_t width, common::SourceLoc loc = {});
  Value wire_type(const std::string& name, ir::TypePtr type,
                  common::SourceLoc loc = {});
  /// Clocked register; optional synchronous reset loading `init`.
  Value reg(const std::string& name, uint32_t width, const Value& clk,
            common::SourceLoc loc = {});
  Value reg_init(const std::string& name, uint32_t width, const Value& clk,
                 const Value& reset, uint64_t init,
                 common::SourceLoc loc = {});
  Value reg_type(const std::string& name, ir::TypePtr type, const Value& clk,
                 common::SourceLoc loc = {});
  /// Named immutable intermediate (breakpointable statement).
  Value node(const std::string& name, const Value& value,
             common::SourceLoc loc = {});

  // -- literals --------------------------------------------------------------------
  Value lit(uint32_t width, uint64_t value);
  Value lit_bool(bool value) { return lit(1, value ? 1 : 0); }

  // -- statements -------------------------------------------------------------------
  /// connect: target must be a wire, register, output port, vector element
  /// of a wire/register, or instance input port.
  void assign(const Value& target, const Value& value,
              common::SourceLoc loc = {});
  /// Conditional scope (paper's `when`); else branch optional.
  void when_(const Value& condition, common::SourceLoc loc,
             const std::function<void()>& then_body,
             const std::function<void()>& else_body = {});
  /// IR-level static loop, unrolled by the compiler (paper Listing 1->2).
  /// `body` receives the loop-variable Value.
  void for_(const std::string& var, int64_t start, int64_t end,
            common::SourceLoc loc, const std::function<void(Value)>& body);
  /// Child module instantiation.
  Instance instantiate(const std::string& instance_name,
                       const std::string& module_name,
                       common::SourceLoc loc = {});

 private:
  friend class Value;
  friend class Instance;

  void push(ir::StmtPtr stmt);
  [[nodiscard]] ir::TypePtr lookup(const std::string& name) const;

  ir::Circuit* circuit_;
  std::string name_;
  std::unique_ptr<ir::Module> module_;
  std::vector<ir::BlockStmt*> block_stack_;
  bool finished_ = false;
};

/// Pads two values to a common width (helper shared by operators).
std::pair<ir::ExprPtr, ir::ExprPtr> balance(const Value& a, const Value& b);

}  // namespace hgdb::frontend

#endif  // HGDB_FRONTEND_DSL_H
