#ifndef HGDB_FRONTEND_COMPILE_H
#define HGDB_FRONTEND_COMPILE_H

#include <memory>
#include <string>

#include "ir/circuit.h"
#include "netlist/netlist.h"
#include "symbols/schema.h"

namespace hgdb::frontend {

/// Compiler pipeline configuration, mirroring the paper's two build modes
/// (Sec. 4.1/4.3):
///  - optimized ("baseline"): const-prop + CSE + DCE shrink the design and
///    the symbol table, like a software -O2 build;
///  - debug: DontTouchAnnotation pins every breakpointable node, bloating
///    the RTL and the symbol table (~30% in the paper) but keeping every
///    source statement debuggable, like -O0.
struct CompileOptions {
  bool debug_mode = false;  ///< insert DontTouch on breakpointable nodes
  bool optimize = true;     ///< run const-prop / CSE / DCE
};

struct CompileResult {
  std::unique_ptr<ir::Circuit> circuit;  ///< Low form, post-pipeline
  symbols::SymbolTableData symbols;      ///< Algorithm 1 output
  netlist::Netlist netlist;              ///< elaborated, simulation-ready
  std::vector<std::string> pass_order;   ///< executed pass names
};

/// Runs the full pipeline: check(High) -> unroll-loops -> lower-aggregates
/// -> SSA (-> insert-dont-touch) (-> const-prop -> cse -> dce) ->
/// symbol extraction -> netlist elaboration.
/// Throws std::runtime_error on malformed input.
CompileResult compile(std::unique_ptr<ir::Circuit> circuit,
                      const CompileOptions& options = {});

}  // namespace hgdb::frontend

#endif  // HGDB_FRONTEND_COMPILE_H
