#include <map>
#include <set>
#include <stdexcept>

#include "passes/pass.h"
#include "passes/util.h"

namespace hgdb::passes {

namespace {

using namespace ir;

/// Annotation kinds produced here and consumed by Algorithm 1's second pass
/// (symbol extraction) after optimization.
constexpr const char* kScopeAnnotation = "hgdb.scope";

/// SSA + when-flattening (paper Sec. 3.1, Listings 1 -> 2).
///
/// Procedural wires ("variables" in generator source) are renamed so each
/// assignment defines a fresh node: `sum` becomes `sum0, sum1, ...`. Every
/// emitted node carries:
///   - the source location of the originating assignment (one source line
///     can produce several nodes after unrolling — several breakpoints);
///   - the *enable condition*: the AND-reduction of the `when` condition
///     stack, which tells the debugger when this emulated breakpoint is
///     active during simulation;
///   - a scope annotation with the variable mapping visible *before* the
///     statement executes (hitting Listing 2 line 4 shows sum == sum0).
///
/// Ports and register next-values use last-connect-wins with mux joins at
/// `when` merges (FIRRTL semantics); wires use procedural read-after-write
/// semantics within the module body.
class SsaTransform final : public Pass {
 public:
  [[nodiscard]] std::string name() const override { return "ssa"; }
  [[nodiscard]] Form input_form() const override { return Form::Mid; }
  [[nodiscard]] Form output_form() const override { return Form::Low; }

  void run(Circuit& circuit) override {
    circuit_ = &circuit;
    for (const auto& module : circuit.modules()) {
      run_on_module(*module);
    }
    circuit_ = nullptr;
  }

 private:
  enum class VarKind : uint8_t { Wire, OutputPort, InstanceInput, RegNext };

  struct Var {
    VarKind kind = VarKind::Wire;
    TypePtr type;
    std::string source_name;  ///< generator-level name ("sum")
    std::string fresh_base;   ///< base for SSA names
    ExprPtr value;            ///< current SSA value (null = unassigned)
    bool poisoned = false;    ///< assigned on some paths only, no default
    std::string instance;     ///< for InstanceInput: instance name
    std::string port;         ///< for InstanceInput/OutputPort: port name
  };

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("ssa: " + what + " in module '" +
                             module_->name() + "'");
  }

  void run_on_module(Module& module) {
    module_ = &module;
    vars_.clear();
    used_names_.clear();
    output_ = std::make_unique<BlockStmt>();
    var_order_.clear();

    for (const auto& port : module.ports()) {
      used_names_.insert(port.name);
      if (port.direction == Direction::Output) {
        Var var;
        var.kind = VarKind::OutputPort;
        var.type = port.type;
        var.source_name = port.name;
        var.fresh_base = port.name + "_ssa";
        var.port = port.name;
        declare(port.name, std::move(var));
      }
    }
    // Collect declared names up front so fresh names never collide with
    // later declarations.
    visit_stmts(module.body(), [&](const Stmt& stmt) {
      switch (stmt.kind()) {
        case StmtKind::Wire:
          used_names_.insert(static_cast<const WireStmt&>(stmt).name);
          break;
        case StmtKind::Reg:
          used_names_.insert(static_cast<const RegStmt&>(stmt).name);
          break;
        case StmtKind::Node:
          used_names_.insert(static_cast<const NodeStmt&>(stmt).name);
          break;
        case StmtKind::Instance:
          used_names_.insert(static_cast<const InstanceStmt&>(stmt).name);
          break;
        default:
          break;
      }
    });

    walk_block(module.body());
    finalize();
    module.set_body(std::move(output_));
    module_ = nullptr;
  }

  void declare(const std::string& key, Var var) {
    if (vars_.count(key)) fail("duplicate SSA variable '" + key + "'");
    vars_[key] = std::move(var);
    var_order_.push_back(key);
  }

  std::string fresh(const std::string& base) {
    std::string name = fresh_name(
        base, [&](const std::string& candidate) {
          return used_names_.count(candidate) != 0;
        });
    used_names_.insert(name);
    return name;
  }

  // -- reads ------------------------------------------------------------------

  /// Replaces reads of procedural wires with their current SSA value.
  ExprPtr rewrite_reads(const ExprPtr& expr, const common::SourceLoc& loc) {
    return rewrite_expr(expr, [&](const ExprPtr& e) -> ExprPtr {
      if (e->kind() != ExprKind::Ref) return e;
      const auto& ref = static_cast<const RefExpr&>(*e);
      auto it = vars_.find(ref.name());
      if (it == vars_.end() || it->second.kind != VarKind::Wire) return e;
      const Var& var = it->second;
      if (var.poisoned) {
        fail("variable '" + var.source_name +
             "' may be unassigned when read at " + loc.str());
      }
      if (!var.value) {
        fail("variable '" + var.source_name + "' read before assignment at " +
             loc.str());
      }
      return var.value;
    });
  }

  // -- condition stack ---------------------------------------------------------

  [[nodiscard]] ExprPtr current_enable() const {
    ExprPtr enable;
    for (const auto& cond : cond_stack_) {
      enable = enable ? make_and(enable, cond) : cond;
    }
    return enable;
  }

  // -- scope snapshots ----------------------------------------------------------

  /// Records the variable mapping visible before the statement at
  /// `target_node` executes. Loop bindings become constant "variables".
  void record_scope(const std::string& target_node, const Stmt& origin) {
    common::Json vars = common::Json::object();
    for (const auto& key : var_order_) {
      const Var& var = vars_.at(key);
      if (var.kind != VarKind::Wire || !var.value) continue;
      vars[var.source_name] = common::Json(var.value->str());
    }
    common::Json constants = common::Json::object();
    for (const auto& [name, value] : origin.loop_bindings) {
      constants[name] = common::Json(static_cast<int64_t>(value));
    }
    common::Json payload = common::Json::object();
    payload["vars"] = std::move(vars);
    payload["constants"] = std::move(constants);
    circuit_->annotate(
        Annotation{kScopeAnnotation, module_->name(), target_node,
                   std::move(payload)});
  }

  // -- assignment helpers --------------------------------------------------------

  static ExprPtr coerce(ExprPtr value, const TypePtr& type) {
    if (value->type()->equals(*type)) return value;
    if (!type->is_ground() || !value->type()->is_ground()) {
      throw std::runtime_error("ssa: cannot coerce aggregate connect");
    }
    if (type->kind() == TypeKind::Clock || type->kind() == TypeKind::Reset ||
        value->type()->kind() == TypeKind::Clock ||
        value->type()->kind() == TypeKind::Reset) {
      if (value->width() == 1 && type->bit_width() == 1) return value;
      throw std::runtime_error("ssa: bad clock/reset connect");
    }
    if (value->width() != type->bit_width()) {
      value = make_pad(std::move(value), type->bit_width());
    }
    if (value->type()->is_signed() != type->is_signed()) {
      value = make_prim(type->is_signed() ? PrimOp::AsSInt : PrimOp::AsUInt,
                        {std::move(value)});
    }
    return value;
  }

  /// Emits the SSA node for an assignment and updates the environment.
  void assign(const std::string& key, ExprPtr rhs, const Stmt& origin) {
    Var& var = vars_.at(key);
    rhs = coerce(std::move(rhs), var.type);
    const std::string node_name = fresh(var.fresh_base);
    auto node = std::make_unique<NodeStmt>(node_name, std::move(rhs));
    node->loc = origin.loc;
    node->loop_bindings = origin.loop_bindings;
    node->source_name = var.source_name;
    node->enable = current_enable();
    if (origin.loc.valid()) record_scope(node_name, origin);
    ExprPtr value = make_ref(node_name, node->value->type());
    output_->push(std::move(node));
    var.value = std::move(value);
    var.poisoned = false;
  }

  // -- statement walk --------------------------------------------------------------

  void walk_block(const BlockStmt& block) {
    for (const auto& stmt : block.stmts) walk_stmt(*stmt);
  }

  void walk_stmt(const Stmt& stmt) {
    switch (stmt.kind()) {
      case StmtKind::Block:
        walk_block(static_cast<const BlockStmt&>(stmt));
        return;
      case StmtKind::Wire: {
        const auto& wire = static_cast<const WireStmt&>(stmt);
        Var var;
        var.kind = VarKind::Wire;
        var.type = wire.type;
        var.source_name =
            wire.source_name.empty() ? wire.name : wire.source_name;
        var.fresh_base = wire.name;
        declare(wire.name, std::move(var));
        // The wire declaration itself disappears; its SSA nodes replace it.
        return;
      }
      case StmtKind::Reg: {
        const auto& reg = static_cast<const RegStmt&>(stmt);
        if (!cond_stack_.empty()) fail("register declared inside when");
        auto clone = reg.clone();
        auto* cloned = static_cast<RegStmt*>(clone.get());
        if (cloned->reset) {
          cloned->reset = rewrite_reads(cloned->reset, reg.loc);
          cloned->init = rewrite_reads(cloned->init, reg.loc);
        }
        output_->push(std::move(clone));
        Var var;
        var.kind = VarKind::RegNext;
        var.type = reg.type;
        var.source_name = reg.source_name.empty() ? reg.name : reg.source_name;
        var.fresh_base = reg.name + "_next";
        // Registers hold their value when unassigned.
        var.value = make_ref(reg.name, reg.type);
        declare(reg.name, std::move(var));
        return;
      }
      case StmtKind::Node: {
        const auto& node = static_cast<const NodeStmt&>(stmt);
        auto clone = node.clone();
        auto* cloned = static_cast<NodeStmt*>(clone.get());
        cloned->value = rewrite_reads(cloned->value, node.loc);
        cloned->enable = current_enable();
        if (cloned->loc.valid() && !cloned->synthetic) {
          record_scope(cloned->name, node);
        }
        // Named source values ("val t = ..." in Chisel terms) appear in the
        // IDE's generator-variable pane.
        if (!cloned->synthetic) {
          annotate_genvar(cloned->name, cloned->source_name.empty()
                                            ? cloned->name
                                            : cloned->source_name);
        }
        output_->push(std::move(clone));
        return;
      }
      case StmtKind::Instance: {
        const auto& inst = static_cast<const InstanceStmt&>(stmt);
        if (!cond_stack_.empty()) fail("instance declared inside when");
        const Module* child = circuit_->module(inst.module_name);
        for (const auto& port : child->ports()) {
          if (port.direction != Direction::Input) continue;
          Var var;
          var.kind = VarKind::InstanceInput;
          var.type = port.type;
          var.source_name = inst.name + "." + port.name;
          var.fresh_base = inst.name + "_" + port.name + "_ssa";
          var.instance = inst.name;
          var.port = port.name;
          declare(inst.name + "." + port.name, std::move(var));
        }
        output_->push(stmt.clone());
        return;
      }
      case StmtKind::Connect: {
        const auto& connect = static_cast<const ConnectStmt&>(stmt);
        const std::string key = connect_key(*connect.lhs);
        ExprPtr rhs = rewrite_reads(connect.rhs, connect.loc);
        assign(key, std::move(rhs), connect);
        return;
      }
      case StmtKind::When: {
        walk_when(static_cast<const WhenStmt&>(stmt));
        return;
      }
      case StmtKind::For:
        fail("for statement (run unroll-loops first)");
    }
  }

  /// Maps a connect lhs to the SSA environment key, validating direction.
  std::string connect_key(const Expr& lhs) {
    if (lhs.kind() == ExprKind::Ref) {
      const auto& ref = static_cast<const RefExpr&>(lhs);
      if (const Port* port = module_->port(ref.name())) {
        if (port->direction == Direction::Input) {
          fail("connect to input port '" + ref.name() + "'");
        }
        return ref.name();
      }
      auto it = vars_.find(ref.name());
      if (it == vars_.end()) {
        fail("connect to undeclared name '" + ref.name() + "'");
      }
      return ref.name();
    }
    if (lhs.kind() == ExprKind::SubField) {
      const auto& field = static_cast<const SubFieldExpr&>(lhs);
      if (field.base()->kind() != ExprKind::Ref) {
        fail("unsupported connect target '" + lhs.str() + "'");
      }
      const auto& base = static_cast<const RefExpr&>(*field.base());
      const std::string key = base.name() + "." + field.field();
      auto it = vars_.find(key);
      if (it == vars_.end()) {
        fail("connect to instance output or unknown port '" + key + "'");
      }
      return key;
    }
    fail("unsupported connect target '" + lhs.str() + "'");
  }

  void walk_when(const WhenStmt& when) {
    // The condition itself is an executable statement in the source: emit a
    // node for it so users can break on the `when` line and so branch
    // enables share one signal.
    ExprPtr cond = rewrite_reads(when.cond, when.loc);
    if (cond->width() != 1) fail("when condition must be 1 bit");
    const std::string cond_name = fresh("when_cond");
    auto cond_node = std::make_unique<NodeStmt>(cond_name, std::move(cond));
    cond_node->loc = when.loc;
    cond_node->loop_bindings = when.loop_bindings;
    cond_node->enable = current_enable();
    if (when.loc.valid()) record_scope(cond_name, when);
    ExprPtr cond_ref = make_ref(cond_name, bool_type());
    output_->push(std::move(cond_node));

    // Snapshot, walk both arms, merge with muxes.
    const auto snapshot = save_env();

    cond_stack_.push_back(cond_ref);
    walk_block(*when.then_body);
    auto then_env = save_env();
    cond_stack_.pop_back();

    restore_env(snapshot);
    if (when.else_body) {
      cond_stack_.push_back(make_not(cond_ref));
      walk_block(*when.else_body);
      cond_stack_.pop_back();
    }
    auto else_env = save_env();

    merge_env(cond_ref, snapshot, then_env, else_env, when);
  }

  using Env = std::map<std::string, std::pair<ExprPtr, bool>>;

  [[nodiscard]] Env save_env() const {
    Env env;
    for (const auto& [key, var] : vars_) {
      env[key] = {var.value, var.poisoned};
    }
    return env;
  }

  void restore_env(const Env& env) {
    for (auto& [key, var] : vars_) {
      auto it = env.find(key);
      if (it == env.end()) {
        // Declared inside the branch we just left: out of scope now.
        var.value = nullptr;
        var.poisoned = false;
      } else {
        var.value = it->second.first;
        var.poisoned = it->second.second;
      }
    }
  }

  void merge_env(const ExprPtr& cond, const Env& before, const Env& then_env,
                 const Env& else_env, const WhenStmt& when) {
    for (const auto& key : var_order_) {
      auto before_it = before.find(key);
      if (before_it == before.end()) continue;  // declared inside a branch
      const ExprPtr& base = before_it->second.first;
      auto then_it = then_env.find(key);
      auto else_it = else_env.find(key);
      const ExprPtr then_value =
          then_it != then_env.end() ? then_it->second.first : base;
      const ExprPtr else_value =
          else_it != else_env.end() ? else_it->second.first : base;
      const bool then_poisoned =
          then_it != then_env.end() ? then_it->second.second : false;
      const bool else_poisoned =
          else_it != else_env.end() ? else_it->second.second : false;

      Var& var = vars_.at(key);
      if (then_value == else_value) {
        var.value = then_value;
        var.poisoned = then_poisoned || else_poisoned;
        continue;
      }
      if (!then_value || !else_value || then_poisoned || else_poisoned) {
        // Assigned on one path only with no default: poisoned until a
        // subsequent unconditional assignment.
        var.value = then_value ? then_value : else_value;
        var.poisoned = true;
        continue;
      }
      // Phi: a synthetic mux join.
      const std::string phi_name = fresh(var.fresh_base);
      auto phi = std::make_unique<NodeStmt>(
          phi_name, make_mux(cond, then_value, else_value));
      phi->loc = when.loc;
      phi->loop_bindings = when.loop_bindings;
      phi->source_name = var.source_name;
      phi->enable = current_enable();
      phi->synthetic = true;
      ExprPtr value = make_ref(phi_name, phi->value->type());
      output_->push(std::move(phi));
      var.value = std::move(value);
      var.poisoned = false;
    }
  }

  // -- finalization ------------------------------------------------------------

  void finalize() {
    for (const auto& key : var_order_) {
      const Var& var = vars_.at(key);
      switch (var.kind) {
        case VarKind::Wire: {
          // The final SSA value is this generator variable's value; expose
          // it to the debugger as an instance ("generator") variable.
          if (var.value && var.value->kind() == ExprKind::Ref) {
            annotate_genvar(static_cast<const RefExpr&>(*var.value).name(),
                            var.source_name);
          }
          break;
        }
        case VarKind::OutputPort: {
          if (!var.value || var.poisoned) {
            fail("output port '" + var.port + "' is not fully assigned");
          }
          output_->push(std::make_unique<ConnectStmt>(
              make_ref(var.port, var.type), var.value));
          annotate_genvar(var.port, var.port);
          break;
        }
        case VarKind::InstanceInput: {
          if (!var.value || var.poisoned) {
            fail("instance input '" + key + "' is not fully assigned");
          }
          ExprPtr lhs = make_subfield(instance_ref(var.instance), var.port);
          output_->push(std::make_unique<ConnectStmt>(std::move(lhs), var.value));
          break;
        }
        case VarKind::RegNext: {
          output_->push(std::make_unique<ConnectStmt>(
              make_ref(key, var.type), var.value));
          annotate_genvar(key, var.source_name);
          break;
        }
      }
    }
    // Input ports are readable generator variables too.
    for (const auto& port : module_->ports()) {
      if (port.direction == Direction::Input) {
        annotate_genvar(port.name, port.name);
      }
    }
  }

  ExprPtr instance_ref(const std::string& instance) {
    // Rebuild the synthetic bundle type for the instance reference.
    std::string module_name;
    visit_stmts(module_->body(), [&](const Stmt& stmt) {
      if (stmt.kind() == StmtKind::Instance) {
        const auto& inst = static_cast<const InstanceStmt&>(stmt);
        if (inst.name == instance) module_name = inst.module_name;
      }
    });
    const Module* child = circuit_->module(module_name);
    std::vector<BundleField> fields;
    for (const auto& port : child->ports()) {
      fields.push_back(BundleField{port.name, port.type,
                                   port.direction == Direction::Output});
    }
    return make_ref(instance, bundle_type(std::move(fields)));
  }

  void annotate_genvar(const std::string& rtl_name,
                       const std::string& source_name) {
    common::Json payload = common::Json::object();
    payload["name"] = common::Json(source_name);
    circuit_->annotate(Annotation{"hgdb.genvar", module_->name(), rtl_name,
                                  std::move(payload)});
  }

  Circuit* circuit_ = nullptr;
  Module* module_ = nullptr;
  std::map<std::string, Var> vars_;
  std::vector<std::string> var_order_;
  std::set<std::string> used_names_;
  std::vector<ExprPtr> cond_stack_;
  std::unique_ptr<BlockStmt> output_;
};

}  // namespace

std::unique_ptr<Pass> create_ssa_pass() {
  return std::make_unique<SsaTransform>();
}

}  // namespace hgdb::passes
