#include <map>
#include <set>
#include <stdexcept>

#include "passes/const_fold.h"
#include "passes/pass.h"
#include "passes/util.h"

namespace hgdb::passes {

namespace {

using namespace ir;

bool is_dont_touch(const Circuit& circuit, const std::string& module,
                   const std::string& target) {
  return circuit.has_annotation(kDontTouchAnnotation, module, target);
}

// ---------------------------------------------------------------------------
// Constant propagation
// ---------------------------------------------------------------------------

/// Folds literal subexpressions and propagates literal-valued nodes into
/// their uses (paper Sec. 4.1 lists constant propagation among the default
/// FIRRTL optimizations that "make the final RTL challenging to debug").
class ConstProp final : public Pass {
 public:
  [[nodiscard]] std::string name() const override { return "const-prop"; }
  [[nodiscard]] Form input_form() const override { return Form::Low; }
  [[nodiscard]] Form output_form() const override { return Form::Low; }

  void run(Circuit& circuit) override {
    for (const auto& module : circuit.modules()) {
      std::map<std::string, ExprPtr> literal_nodes;
      auto rewrite = [&](const ExprPtr& e) -> ExprPtr {
        if (e->kind() == ExprKind::Ref) {
          auto it = literal_nodes.find(static_cast<const RefExpr&>(*e).name());
          if (it != literal_nodes.end()) return it->second;
          return e;
        }
        return fold_expr_node(e);
      };
      for (auto& stmt : module->body().stmts) {
        rewrite_stmt_exprs(*stmt, rewrite);
        if (stmt->kind() == StmtKind::Node) {
          auto& node = static_cast<NodeStmt&>(*stmt);
          if (node.value->kind() == ExprKind::Literal) {
            literal_nodes[node.name] = node.value;
          }
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Common subexpression elimination
// ---------------------------------------------------------------------------

/// Merges nodes with structurally identical values. The canonical node is
/// the first occurrence; later duplicates are deleted and their uses
/// redirected. DontTouch-annotated nodes are never deleted (debug mode),
/// which is exactly why the paper's debug-mode symbol table is ~30% larger.
class Cse final : public Pass {
 public:
  [[nodiscard]] std::string name() const override { return "cse"; }
  [[nodiscard]] Form input_form() const override { return Form::Low; }
  [[nodiscard]] Form output_form() const override { return Form::Low; }

  void run(Circuit& circuit) override {
    for (const auto& module : circuit.modules()) {
      std::map<size_t, std::vector<const NodeStmt*>> by_hash;
      std::map<std::string, std::string> replace;  // dup name -> canonical

      auto rewrite = [&](const ExprPtr& e) -> ExprPtr {
        if (e->kind() != ExprKind::Ref) return e;
        auto it = replace.find(static_cast<const RefExpr&>(*e).name());
        if (it == replace.end()) return e;
        return make_ref(it->second, e->type());
      };

      std::vector<StmtPtr> kept;
      for (auto& stmt : module->body().stmts) {
        rewrite_stmt_exprs(*stmt, rewrite);
        if (stmt->kind() == StmtKind::Node) {
          auto& node = static_cast<NodeStmt&>(*stmt);
          if (!is_dont_touch(circuit, module->name(), node.name)) {
            bool merged = false;
            auto& bucket = by_hash[node.value->hash()];
            for (const NodeStmt* canonical : bucket) {
              if (canonical->value->equals(*node.value) &&
                  canonical->value->type()->equals(*node.value->type())) {
                replace[node.name] = canonical->name;
                merged = true;
                break;
              }
            }
            if (merged) continue;  // drop the duplicate definition
            bucket.push_back(&node);
          }
        }
        kept.push_back(std::move(stmt));
      }
      module->body().stmts = std::move(kept);
    }
  }
};

// ---------------------------------------------------------------------------
// Dead code elimination
// ---------------------------------------------------------------------------

/// Removes nodes whose values no connect, register, or live breakpoint
/// enable transitively uses. Roots:
///   - connect statements (ports, instance inputs, register next-values)
///   - register reset/init expressions
///   - DontTouch-annotated nodes (debug mode keeps everything breakable)
/// When a breakpointable node survives, its *enable condition* references
/// are marked live too — the debugger must be able to evaluate the enable
/// at runtime (paper Sec. 3.1).
class Dce final : public Pass {
 public:
  [[nodiscard]] std::string name() const override { return "dce"; }
  [[nodiscard]] Form input_form() const override { return Form::Low; }
  [[nodiscard]] Form output_form() const override { return Form::Low; }

  void run(Circuit& circuit) override {
    for (const auto& module : circuit.modules()) {
      run_on_module(circuit, *module);
    }
  }

 private:
  static void mark_expr(const ExprPtr& expr, std::set<std::string>& live,
                        std::vector<std::string>& worklist) {
    visit_expr(expr, [&](const Expr& e) {
      if (e.kind() == ExprKind::Ref) {
        const std::string& name = static_cast<const RefExpr&>(e).name();
        if (live.insert(name).second) worklist.push_back(name);
      }
    });
  }

  void run_on_module(Circuit& circuit, Module& module) {
    // Index node definitions.
    std::map<std::string, const NodeStmt*> nodes;
    for (const auto& stmt : module.body().stmts) {
      if (stmt->kind() == StmtKind::Node) {
        const auto& node = static_cast<const NodeStmt&>(*stmt);
        nodes[node.name] = &node;
      }
    }

    std::set<std::string> live;
    std::vector<std::string> worklist;
    for (const auto& stmt : module.body().stmts) {
      switch (stmt->kind()) {
        case StmtKind::Connect: {
          const auto& connect = static_cast<const ConnectStmt&>(*stmt);
          mark_expr(connect.rhs, live, worklist);
          break;
        }
        case StmtKind::Reg: {
          const auto& reg = static_cast<const RegStmt&>(*stmt);
          if (reg.reset) {
            mark_expr(reg.reset, live, worklist);
            mark_expr(reg.init, live, worklist);
          }
          break;
        }
        case StmtKind::Node: {
          const auto& node = static_cast<const NodeStmt&>(*stmt);
          if (is_dont_touch(circuit, module.name(), node.name)) {
            if (live.insert(node.name).second) worklist.push_back(node.name);
          }
          break;
        }
        default:
          break;
      }
    }

    while (!worklist.empty()) {
      const std::string name = std::move(worklist.back());
      worklist.pop_back();
      auto it = nodes.find(name);
      if (it == nodes.end()) continue;  // reg or port: no further deps here
      const NodeStmt& node = *it->second;
      mark_expr(node.value, live, worklist);
      // Keep the enable computable for surviving breakpoints.
      if (node.enable && node.loc.valid() && !node.synthetic) {
        mark_expr(node.enable, live, worklist);
      }
    }

    std::erase_if(module.body().stmts, [&](const StmtPtr& stmt) {
      if (stmt->kind() != StmtKind::Node) return false;
      return live.count(static_cast<const NodeStmt&>(*stmt).name) == 0;
    });
  }
};

// ---------------------------------------------------------------------------
// DontTouch insertion (debug mode)
// ---------------------------------------------------------------------------

/// Debug-mode pass (paper Sec. 4.1: "similar to gcc's -O0, the first pass
/// can insert DontTouchAnnotation, which keeps the target IR node away from
/// any compiler optimization"). Marks every breakpointable node.
class InsertDontTouch final : public Pass {
 public:
  [[nodiscard]] std::string name() const override { return "insert-dont-touch"; }
  [[nodiscard]] Form input_form() const override { return Form::Low; }
  [[nodiscard]] Form output_form() const override { return Form::Low; }

  void run(Circuit& circuit) override {
    for (const auto& module : circuit.modules()) {
      for (const auto& stmt : module->body().stmts) {
        if (stmt->kind() != StmtKind::Node) continue;
        const auto& node = static_cast<const NodeStmt&>(*stmt);
        if (node.loc.valid()) {
          circuit.annotate(Annotation{kDontTouchAnnotation, module->name(),
                                      node.name, common::Json::object()});
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Pass> create_const_prop_pass() {
  return std::make_unique<ConstProp>();
}

std::unique_ptr<Pass> create_cse_pass() { return std::make_unique<Cse>(); }

std::unique_ptr<Pass> create_dce_pass() { return std::make_unique<Dce>(); }

std::unique_ptr<Pass> create_insert_dont_touch_pass() {
  return std::make_unique<InsertDontTouch>();
}

}  // namespace hgdb::passes
