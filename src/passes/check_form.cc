#include <set>
#include <stdexcept>

#include "passes/pass.h"

namespace hgdb::passes {

namespace {

[[noreturn]] void violation(const ir::Module& module, const std::string& what) {
  throw std::runtime_error("form violation in module '" + module.name() +
                           "': " + what);
}

/// Low form: every wire gets exactly one unconditional connect, no `when`.
void check_single_assignment(const ir::Module& module) {
  std::set<std::string> connected;
  ir::visit_stmts(module.body(), [&](const ir::Stmt& stmt) {
    if (stmt.kind() == ir::StmtKind::When) {
      violation(module, "when statement present after SSA");
    }
    if (stmt.kind() == ir::StmtKind::Connect) {
      const auto& connect = static_cast<const ir::ConnectStmt&>(stmt);
      const std::string target = connect.lhs->str();
      if (!connected.insert(target).second) {
        violation(module, "multiple connects to '" + target + "'");
      }
    }
  });
}

/// Mid/Low form: ground-typed declarations, no `for`, no dynamic indexing.
void check_lowered(const ir::Module& module) {
  for (const auto& port : module.ports()) {
    if (!port.type->is_ground()) {
      violation(module, "aggregate port '" + port.name + "' after lowering");
    }
  }
  ir::visit_stmts(module.body(), [&](const ir::Stmt& stmt) {
    switch (stmt.kind()) {
      case ir::StmtKind::For:
        violation(module, "for statement present after unrolling");
      case ir::StmtKind::Wire: {
        const auto& wire = static_cast<const ir::WireStmt&>(stmt);
        if (!wire.type->is_ground()) {
          violation(module, "aggregate wire '" + wire.name + "' after lowering");
        }
        break;
      }
      case ir::StmtKind::Reg: {
        const auto& reg = static_cast<const ir::RegStmt&>(stmt);
        if (!reg.type->is_ground()) {
          violation(module, "aggregate reg '" + reg.name + "' after lowering");
        }
        break;
      }
      case ir::StmtKind::Node: {
        const auto& node = static_cast<const ir::NodeStmt&>(stmt);
        ir::visit_expr(node.value, [&](const ir::Expr& expr) {
          if (expr.kind() == ir::ExprKind::SubAccess) {
            violation(module,
                      "dynamic index after lowering at node '" + node.name + "'");
          }
        });
        break;
      }
      default:
        break;
    }
  });
}

void check_unique_names(const ir::Module& module) {
  std::set<std::string> names;
  for (const auto& port : module.ports()) names.insert(port.name);
  ir::visit_stmts(module.body(), [&](const ir::Stmt& stmt) {
    const std::string* name = nullptr;
    switch (stmt.kind()) {
      case ir::StmtKind::Wire:
        name = &static_cast<const ir::WireStmt&>(stmt).name;
        break;
      case ir::StmtKind::Reg:
        name = &static_cast<const ir::RegStmt&>(stmt).name;
        break;
      case ir::StmtKind::Node:
        name = &static_cast<const ir::NodeStmt&>(stmt).name;
        break;
      case ir::StmtKind::Instance:
        name = &static_cast<const ir::InstanceStmt&>(stmt).name;
        break;
      default:
        break;
    }
    if (name != nullptr && !names.insert(*name).second) {
      violation(module, "duplicate declaration '" + *name + "'");
    }
  });
}

}  // namespace

void check_form(const ir::Circuit& circuit, ir::Form form) {
  if (circuit.top() == nullptr) {
    throw std::runtime_error("circuit has no top module '" +
                             circuit.top_name() + "'");
  }
  for (const auto& module : circuit.modules()) {
    ir::visit_stmts(module->body(), [&](const ir::Stmt& stmt) {
      if (stmt.kind() == ir::StmtKind::Instance) {
        const auto& inst = static_cast<const ir::InstanceStmt&>(stmt);
        if (circuit.module(inst.module_name) == nullptr) {
          violation(*module, "instance '" + inst.name +
                                 "' of unknown module '" + inst.module_name + "'");
        }
      }
    });
    switch (form) {
      case ir::Form::High:
        break;
      case ir::Form::Mid:
        check_unique_names(*module);
        check_lowered(*module);
        break;
      case ir::Form::Low:
        check_unique_names(*module);
        check_lowered(*module);
        check_single_assignment(*module);
        break;
    }
  }
}

}  // namespace hgdb::passes
