#ifndef HGDB_PASSES_PASS_H
#define HGDB_PASSES_PASS_H

#include <memory>
#include <string>
#include <vector>

#include "ir/circuit.h"

namespace hgdb::passes {

/// A circuit-to-circuit transform. Passes mutate the circuit in place and
/// declare the IR form they consume and produce so the PassManager can
/// verify pipeline legality (the paper's FIRRTL pipeline works the same
/// way: High-form passes run before lowering, Low-form passes after).
class Pass {
 public:
  virtual ~Pass() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual ir::Form input_form() const = 0;
  [[nodiscard]] virtual ir::Form output_form() const = 0;
  virtual void run(ir::Circuit& circuit) = 0;
};

/// Runs passes in sequence, checking form transitions. Throws
/// std::runtime_error if a pass is fed the wrong form or a form check
/// fails after a pass that claims to establish it.
class PassManager {
 public:
  void add(std::unique_ptr<Pass> pass) { passes_.push_back(std::move(pass)); }
  void run(ir::Circuit& circuit, bool verify_forms = true);
  [[nodiscard]] const std::vector<std::string>& executed() const {
    return executed_;
  }

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
  std::vector<std::string> executed_;
};

// -- form verification --------------------------------------------------------

/// Throws std::runtime_error describing the first violation if `circuit`
/// does not satisfy the constraints of `form` (see ir::Form).
void check_form(const ir::Circuit& circuit, ir::Form form);

// -- pass factories -----------------------------------------------------------

std::unique_ptr<Pass> create_unroll_loops_pass();
std::unique_ptr<Pass> create_ssa_pass();
std::unique_ptr<Pass> create_lower_aggregates_pass();
std::unique_ptr<Pass> create_const_prop_pass();
std::unique_ptr<Pass> create_cse_pass();
std::unique_ptr<Pass> create_dce_pass();
std::unique_ptr<Pass> create_insert_dont_touch_pass();

}  // namespace hgdb::passes

#endif  // HGDB_PASSES_PASS_H
