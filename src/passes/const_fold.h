#ifndef HGDB_PASSES_CONST_FOLD_H
#define HGDB_PASSES_CONST_FOLD_H

#include "ir/expr.h"

namespace hgdb::passes {

/// Evaluates a primitive over constant operand values with the same
/// semantics the RTL simulator uses (two-state, modular, Verilog-flavoured
/// widths). `operands` are the literal values, `signs` their signedness.
common::BitVector eval_prim(ir::PrimOp op,
                            const std::vector<common::BitVector>& operands,
                            const std::vector<bool>& signs,
                            const std::vector<uint32_t>& int_params,
                            uint32_t result_width);

/// Bottom-up single-node fold: if `expr` is a prim whose operands are all
/// literals (or a mux with a literal selector), returns the folded literal
/// or simplified arm; otherwise returns `expr` unchanged.
ir::ExprPtr fold_expr_node(const ir::ExprPtr& expr);

}  // namespace hgdb::passes

#endif  // HGDB_PASSES_CONST_FOLD_H
