#include "passes/symbol_extract.h"

#include <map>
#include <set>
#include <stdexcept>

#include "passes/pass.h"

namespace hgdb::passes {

namespace {

using namespace ir;
using symbols::SymbolTableData;

/// Static (per-module) symbol information gathered before walking the
/// instance hierarchy.
struct ModuleSymbols {
  struct Breakpoint {
    std::string node_name;
    common::SourceLoc loc;
    std::string enable;  ///< empty = always
    uint32_t order_index = 0;
    /// source variable name -> instance-relative RTL name
    std::vector<std::pair<std::string, std::string>> scope_rtl;
    /// constant bindings (unrolled loop indices): name -> rendered value
    std::vector<std::pair<std::string, std::string>> scope_constants;
  };
  struct GenVar {
    std::string name;   ///< generator-level (dotted) name
    std::string value;  ///< instance-relative RTL name
  };
  std::vector<Breakpoint> breakpoints;
  std::vector<GenVar> generator_variables;
  std::vector<std::pair<std::string, std::string>> instances;  // name, module
};

/// All referencable RTL names in a Low-form module: ports, regs, nodes.
std::set<std::string> rtl_names(const Module& module) {
  std::set<std::string> names;
  for (const auto& port : module.ports()) names.insert(port.name);
  visit_stmts(module.body(), [&](const Stmt& stmt) {
    if (stmt.kind() == StmtKind::Reg) {
      names.insert(static_cast<const RegStmt&>(stmt).name);
    } else if (stmt.kind() == StmtKind::Node) {
      names.insert(static_cast<const NodeStmt&>(stmt).name);
    }
  });
  return names;
}

ModuleSymbols analyze_module(const Circuit& circuit, const Module& module) {
  ModuleSymbols out;
  const std::set<std::string> names = rtl_names(module);

  // Index this module's annotations.
  std::map<std::string, const common::Json*> scopes;        // node -> payload
  std::map<std::string, std::string> flat_sources;          // flat -> dotted
  std::vector<std::pair<std::string, std::string>> genvars; // target, name
  for (const auto& annotation : circuit.annotations()) {
    if (annotation.module != module.name()) continue;
    if (annotation.kind == "hgdb.scope") {
      scopes[annotation.target] = &annotation.payload;
    } else if (annotation.kind == "hgdb.flat") {
      flat_sources[annotation.target] =
          annotation.payload.get_string("source");
    } else if (annotation.kind == "hgdb.genvar") {
      genvars.emplace_back(annotation.target,
                           annotation.payload.get_string("name"));
    }
  }

  // Breakpoints: every surviving non-synthetic node with a source location,
  // in statement order (this is the Fig. 2 intra-cycle execution order).
  uint32_t order = 0;
  visit_stmts(module.body(), [&](const Stmt& stmt) {
    if (stmt.kind() == StmtKind::Instance) {
      const auto& inst = static_cast<const InstanceStmt&>(stmt);
      out.instances.emplace_back(inst.name, inst.module_name);
      return;
    }
    if (stmt.kind() != StmtKind::Node) return;
    const auto& node = static_cast<const NodeStmt&>(stmt);
    if (!node.loc.valid() || node.synthetic) return;
    ModuleSymbols::Breakpoint bp;
    bp.node_name = node.name;
    bp.loc = node.loc;
    bp.enable = node.enable ? node.enable->str() : "";
    bp.order_index = order++;
    if (auto it = scopes.find(node.name); it != scopes.end()) {
      const common::Json& payload = *it->second;
      if (auto vars = payload.get("vars"); vars && vars->get().is_object()) {
        for (const auto& [source_name, rtl] : vars->get().as_object()) {
          // Drop variables whose RTL signal was optimized away. A scope
          // entry can be a bare name or an expression; only bare surviving
          // names are kept (consistent with software -O2 debug info).
          const std::string& rtl_name = rtl.as_string();
          if (names.count(rtl_name)) {
            bp.scope_rtl.emplace_back(source_name, rtl_name);
          }
        }
      }
      if (auto constants = payload.get("constants");
          constants && constants->get().is_object()) {
        for (const auto& [constant_name, value] : constants->get().as_object()) {
          bp.scope_constants.emplace_back(constant_name,
                                          std::to_string(value.as_int()));
        }
      }
    }
    out.breakpoints.push_back(std::move(bp));
  });

  // Generator variables: only those whose targets survived optimization.
  std::set<std::string> seen;
  for (const auto& [target, name] : genvars) {
    if (!names.count(target)) continue;
    std::string display = name;
    if (auto it = flat_sources.find(target); it != flat_sources.end()) {
      display = it->second;
    }
    if (!seen.insert(display).second) continue;
    out.generator_variables.push_back(ModuleSymbols::GenVar{display, target});
  }
  return out;
}

class Extractor {
 public:
  explicit Extractor(const Circuit& circuit) : circuit_(circuit) {}

  SymbolTableData run() {
    for (const auto& module : circuit_.modules()) {
      modules_.emplace(module->name(), analyze_module(circuit_, *module));
    }
    const Module* top = circuit_.top();
    if (top == nullptr) throw std::runtime_error("extract: no top module");
    walk_instance(top->name(), top->name());
    return std::move(data_);
  }

 private:
  /// Shared variable rows: one per (module, rtl-or-constant value). Two
  /// instances of the same module reference the same row because values
  /// are instance-relative.
  int64_t variable_id(const std::string& module, const std::string& value,
                      bool is_rtl) {
    const std::string key = module + "\x1f" + value + (is_rtl ? "\x1fr" : "\x1fc");
    auto it = variable_cache_.find(key);
    if (it != variable_cache_.end()) return it->second;
    const int64_t id = static_cast<int64_t>(data_.variables.size()) + 1;
    data_.variables.push_back(symbols::VariableRow{id, value, is_rtl});
    variable_cache_.emplace(key, id);
    return id;
  }

  void walk_instance(const std::string& path, const std::string& module_name) {
    const ModuleSymbols& symbols = modules_.at(module_name);
    const int64_t instance_id = static_cast<int64_t>(data_.instances.size()) + 1;
    data_.instances.push_back(symbols::InstanceRow{instance_id, path});

    for (const auto& bp : symbols.breakpoints) {
      const int64_t bp_id = static_cast<int64_t>(data_.breakpoints.size()) + 1;
      data_.breakpoints.push_back(symbols::BreakpointRow{
          bp_id, instance_id, bp.loc.filename, bp.loc.line, bp.loc.column,
          bp.enable, bp.order_index});
      for (const auto& [name, rtl] : bp.scope_rtl) {
        data_.scope_variables.push_back(symbols::ScopeVariableRow{
            bp_id, variable_id(module_name, rtl, /*is_rtl=*/true), name});
      }
      for (const auto& [name, constant] : bp.scope_constants) {
        data_.scope_variables.push_back(symbols::ScopeVariableRow{
            bp_id, variable_id(module_name, constant, /*is_rtl=*/false), name});
      }
    }
    for (const auto& genvar : symbols.generator_variables) {
      data_.generator_variables.push_back(symbols::GeneratorVariableRow{
          instance_id, variable_id(module_name, genvar.value, /*is_rtl=*/true),
          genvar.name});
    }
    for (const auto& [child_name, child_module] : symbols.instances) {
      walk_instance(path + "." + child_name, child_module);
    }
  }

  const Circuit& circuit_;
  std::map<std::string, ModuleSymbols> modules_;
  std::map<std::string, int64_t> variable_cache_;
  SymbolTableData data_;
};

}  // namespace

SymbolTableData extract_symbol_table(const Circuit& circuit) {
  if (circuit.form() != Form::Low) {
    throw std::runtime_error(
        "extract_symbol_table requires the Low form (run the pipeline first)");
  }
  return Extractor(circuit).run();
}

}  // namespace hgdb::passes
