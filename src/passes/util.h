#ifndef HGDB_PASSES_UTIL_H
#define HGDB_PASSES_UTIL_H

#include <functional>
#include <string>

#include "ir/stmt.h"

namespace hgdb::passes {

/// Applies `fn` (a bottom-up expression rewriter, see ir::rewrite_expr) to
/// every expression held by `stmt` and its children: node values and
/// enables, connect lhs/rhs/enables, when conditions, register reset/init.
void rewrite_stmt_exprs(
    ir::Stmt& stmt, const std::function<ir::ExprPtr(const ir::ExprPtr&)>& fn);

/// Bottom-up rewrite step that turns `vec[Literal]` dynamic accesses into
/// constant SubIndex accesses (applied after loop-variable substitution).
ir::ExprPtr fold_subaccess(const ir::ExprPtr& expr);

/// Returns a fresh name of the form `<base><k>` that is not in `used`,
/// starting from k = 0 (matches the paper's sum0/sum1/sum2 naming).
std::string fresh_name(const std::string& base,
                       const std::function<bool(const std::string&)>& is_used);

}  // namespace hgdb::passes

#endif  // HGDB_PASSES_UTIL_H
