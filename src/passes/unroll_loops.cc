#include <set>

#include "passes/pass.h"
#include "passes/util.h"

namespace hgdb::passes {

namespace {

using namespace ir;

/// Unrolls `for` statements with static bounds (paper Sec. 3.1: "During the
/// SSA transform, fixed-length loops get unrolled"). Each iteration clones
/// the body, substitutes the loop variable with a constant literal, and
/// renames declarations made inside the body so iterations don't collide.
/// Source locators are preserved on every clone — that is precisely how one
/// source line yields multiple emulated breakpoints (Listing 1 -> Listing 2).
class UnrollLoops final : public Pass {
 public:
  [[nodiscard]] std::string name() const override { return "unroll-loops"; }
  [[nodiscard]] Form input_form() const override { return Form::High; }
  [[nodiscard]] Form output_form() const override { return Form::High; }

  void run(Circuit& circuit) override {
    for (const auto& module : circuit.modules()) {
      module->set_body(unroll_block(*module->body().clone_block()));
    }
  }

 private:
  static std::set<std::string> declared_names(const Stmt& root) {
    std::set<std::string> names;
    visit_stmts(root, [&](const Stmt& stmt) {
      switch (stmt.kind()) {
        case StmtKind::Wire:
          names.insert(static_cast<const WireStmt&>(stmt).name);
          break;
        case StmtKind::Reg:
          names.insert(static_cast<const RegStmt&>(stmt).name);
          break;
        case StmtKind::Node:
          names.insert(static_cast<const NodeStmt&>(stmt).name);
          break;
        case StmtKind::Instance:
          names.insert(static_cast<const InstanceStmt&>(stmt).name);
          break;
        default:
          break;
      }
    });
    return names;
  }

  static void rename_declarations(Stmt& root,
                                  const std::set<std::string>& names,
                                  const std::string& suffix) {
    visit_stmts(root, [&](Stmt& stmt) {
      switch (stmt.kind()) {
        case StmtKind::Wire: {
          auto& wire = static_cast<WireStmt&>(stmt);
          if (names.count(wire.name)) wire.name += suffix;
          break;
        }
        case StmtKind::Reg: {
          auto& reg = static_cast<RegStmt&>(stmt);
          if (names.count(reg.name)) reg.name += suffix;
          break;
        }
        case StmtKind::Node: {
          auto& node = static_cast<NodeStmt&>(stmt);
          if (names.count(node.name)) node.name += suffix;
          break;
        }
        case StmtKind::Instance: {
          auto& inst = static_cast<InstanceStmt&>(stmt);
          if (names.count(inst.name)) inst.name += suffix;
          break;
        }
        default:
          break;
      }
    });
    rewrite_stmt_exprs(root, [&](const ExprPtr& expr) -> ExprPtr {
      if (expr->kind() != ExprKind::Ref) return expr;
      const auto& ref = static_cast<const RefExpr&>(*expr);
      if (!names.count(ref.name())) return expr;
      return make_ref(ref.name() + suffix, expr->type());
    });
  }

  std::unique_ptr<BlockStmt> unroll_block(const BlockStmt& block) {
    auto out = std::make_unique<BlockStmt>();
    out->loc = block.loc;
    for (const auto& stmt : block.stmts) {
      switch (stmt->kind()) {
        case StmtKind::For: {
          const auto& loop = static_cast<const ForStmt&>(*stmt);
          // Inner loops first so each clone below is loop-free.
          auto body = unroll_block(*loop.body);
          const std::set<std::string> local_names = declared_names(*body);
          for (int64_t i = loop.start; i < loop.end; ++i) {
            auto iteration = body->clone_block();
            // Record the binding on every statement of this iteration so
            // SSA can expose the loop index in breakpoint scopes.
            visit_stmts(*iteration, [&](Stmt& s) {
              s.loop_bindings.emplace_back(loop.var, i);
            });
            if (!local_names.empty()) {
              rename_declarations(*iteration, local_names,
                                  "_" + std::to_string(i));
            }
            // Substitute the loop variable with a constant of the same
            // width the references carry, then fold vec[const].
            rewrite_stmt_exprs(*iteration, [&](const ExprPtr& expr) -> ExprPtr {
              if (expr->kind() == ExprKind::Ref) {
                const auto& ref = static_cast<const RefExpr&>(*expr);
                if (ref.name() == loop.var) {
                  return make_literal(
                      common::BitVector(expr->width(),
                                        static_cast<uint64_t>(i)),
                      expr->type()->is_signed());
                }
                return expr;
              }
              return fold_subaccess(expr);
            });
            for (auto& inner : iteration->stmts) {
              out->push(std::move(inner));
            }
          }
          break;
        }
        case StmtKind::When: {
          const auto& when = static_cast<const WhenStmt&>(*stmt);
          auto replacement = std::make_unique<WhenStmt>(when.cond);
          replacement->loc = when.loc;
          replacement->then_body = unroll_block(*when.then_body);
          if (when.else_body) replacement->else_body = unroll_block(*when.else_body);
          out->push(std::move(replacement));
          break;
        }
        default:
          out->push(stmt->clone());
          break;
      }
    }
    return out;
  }
};

}  // namespace

std::unique_ptr<Pass> create_unroll_loops_pass() {
  return std::make_unique<UnrollLoops>();
}

}  // namespace hgdb::passes
