#include <stdexcept>

#include "passes/pass.h"

namespace hgdb::passes {

void PassManager::run(ir::Circuit& circuit, bool verify_forms) {
  for (auto& pass : passes_) {
    if (circuit.form() != pass->input_form()) {
      throw std::runtime_error(
          "pass '" + pass->name() + "' requires form " +
          std::to_string(static_cast<int>(pass->input_form())) +
          " but circuit is in form " +
          std::to_string(static_cast<int>(circuit.form())));
    }
    pass->run(circuit);
    circuit.set_form(pass->output_form());
    if (verify_forms) check_form(circuit, circuit.form());
    executed_.push_back(pass->name());
  }
}

}  // namespace hgdb::passes
