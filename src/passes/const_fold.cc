#include "passes/const_fold.h"

#include "ir/eval.h"

namespace hgdb::passes {

using common::BitVector;
using namespace ir;

BitVector eval_prim(PrimOp op, const std::vector<BitVector>& operands,
                    const std::vector<bool>& signs,
                    const std::vector<uint32_t>& int_params,
                    uint32_t result_width) {
  return ir::eval_prim(op, operands, signs, int_params, result_width);
}

ExprPtr fold_expr_node(const ExprPtr& expr) {
  if (expr->kind() != ExprKind::Prim) return expr;
  const auto& prim = static_cast<const PrimExpr&>(*expr);

  // Mux with a literal selector simplifies without needing literal arms.
  if (prim.op() == PrimOp::Mux &&
      prim.operands()[0]->kind() == ExprKind::Literal) {
    const auto& sel = static_cast<const LiteralExpr&>(*prim.operands()[0]);
    return sel.value().to_bool() ? prim.operands()[1] : prim.operands()[2];
  }
  // Mux with identical arms simplifies regardless of the selector.
  if (prim.op() == PrimOp::Mux &&
      prim.operands()[1]->equals(*prim.operands()[2])) {
    return prim.operands()[1];
  }

  std::vector<common::BitVector> values;
  std::vector<bool> signs;
  values.reserve(prim.operands().size());
  for (const auto& operand : prim.operands()) {
    if (operand->kind() != ExprKind::Literal) return expr;
    values.push_back(static_cast<const LiteralExpr&>(*operand).value());
    signs.push_back(operand->type()->is_signed());
  }
  common::BitVector folded = hgdb::passes::eval_prim(
      prim.op(), values, signs, prim.int_params(), expr->width());
  // eval_prim may produce a narrower/wider scratch value for comparisons;
  // normalize to the expression's width.
  if (folded.width() != expr->width()) {
    folded = folded.resize(expr->width(), expr->type()->is_signed());
  }
  return make_literal(std::move(folded), expr->type()->is_signed());
}

}  // namespace hgdb::passes
