#ifndef HGDB_PASSES_SYMBOL_EXTRACT_H
#define HGDB_PASSES_SYMBOL_EXTRACT_H

#include "ir/circuit.h"
#include "symbols/schema.h"

namespace hgdb::passes {

/// Algorithm 1, second pass: collects the annotations the SSA/lowering
/// passes attached to IR nodes ("first pass") and computes the final
/// symbol table from the *current* (optimized) circuit state.
///
/// Nodes deleted by optimization simply no longer exist in the Low form,
/// so their breakpoints and variables are dropped — "a behavior consistent
/// with software compilers" (paper Sec. 4.1). Variables whose RTL targets
/// were optimized away are likewise omitted from scopes.
///
/// Instance rows are emitted for the full elaborated hierarchy, rooted at
/// the top module's name; variable rows hold instance-relative RTL paths
/// and are shared between instances of the same module.
symbols::SymbolTableData extract_symbol_table(const ir::Circuit& circuit);

}  // namespace hgdb::passes

#endif  // HGDB_PASSES_SYMBOL_EXTRACT_H
