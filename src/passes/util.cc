#include "passes/util.h"

namespace hgdb::passes {

void rewrite_stmt_exprs(
    ir::Stmt& stmt, const std::function<ir::ExprPtr(const ir::ExprPtr&)>& fn) {
  using namespace ir;
  visit_stmts(stmt, [&](Stmt& s) {
    switch (s.kind()) {
      case StmtKind::Node: {
        auto& node = static_cast<NodeStmt&>(s);
        node.value = rewrite_expr(node.value, fn);
        if (node.enable) node.enable = rewrite_expr(node.enable, fn);
        break;
      }
      case StmtKind::Connect: {
        auto& connect = static_cast<ConnectStmt&>(s);
        connect.lhs = rewrite_expr(connect.lhs, fn);
        connect.rhs = rewrite_expr(connect.rhs, fn);
        if (connect.enable) connect.enable = rewrite_expr(connect.enable, fn);
        break;
      }
      case StmtKind::When: {
        auto& when = static_cast<WhenStmt&>(s);
        when.cond = rewrite_expr(when.cond, fn);
        break;
      }
      case StmtKind::Reg: {
        auto& reg = static_cast<RegStmt&>(s);
        if (reg.reset) reg.reset = rewrite_expr(reg.reset, fn);
        if (reg.init) reg.init = rewrite_expr(reg.init, fn);
        break;
      }
      default:
        break;
    }
  });
}

ir::ExprPtr fold_subaccess(const ir::ExprPtr& expr) {
  using namespace ir;
  if (expr->kind() != ExprKind::SubAccess) return expr;
  const auto& access = static_cast<const SubAccessExpr&>(*expr);
  if (access.index()->kind() != ExprKind::Literal) return expr;
  const auto& literal = static_cast<const LiteralExpr&>(*access.index());
  const auto& vec = static_cast<const VectorType&>(*access.base()->type());
  uint64_t index = literal.value().to_uint64();
  // An out-of-range constant index clamps to the last element; two-state
  // simulation has no X to return, and clamping matches the mux-chain
  // lowering (the last arm is the default).
  if (index >= vec.size()) index = vec.size() - 1;
  return make_subindex(access.base(), static_cast<uint32_t>(index));
}

std::string fresh_name(const std::string& base,
                       const std::function<bool(const std::string&)>& is_used) {
  for (uint32_t k = 0;; ++k) {
    std::string candidate = base + std::to_string(k);
    if (!is_used(candidate)) return candidate;
  }
}

}  // namespace hgdb::passes
