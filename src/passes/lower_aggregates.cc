#include <map>
#include <stdexcept>

#include "passes/pass.h"
#include "passes/util.h"

namespace hgdb::passes {

namespace {

using namespace ir;

/// Annotation kinds recorded by this pass. The debugger runtime reads
/// "hgdb.flat" entries to re-aggregate flattened bundles when it
/// reconstructs frames (paper Sec. 4.2: the IO ports appear as a Chisel
/// PortBundle even though the RTL only has flattened scalars).
constexpr const char* kFlatAnnotation = "hgdb.flat";

/// One ground leaf of an aggregate type.
struct Leaf {
  std::string flat_suffix;    ///< "_a_2_b" style suffix (empty for ground)
  std::string source_suffix;  ///< ".a[2].b" style suffix (empty for ground)
  TypePtr type;
  bool flip = false;  ///< cumulative flip parity
};

void collect_leaves(const TypePtr& type, const std::string& flat,
                    const std::string& source, bool flip,
                    std::vector<Leaf>& out) {
  if (type->is_ground()) {
    out.push_back(Leaf{flat, source, type, flip});
    return;
  }
  if (type->kind() == TypeKind::Bundle) {
    const auto& bundle = static_cast<const BundleType&>(*type);
    for (const auto& field : bundle.fields()) {
      collect_leaves(field.type, flat + "_" + field.name,
                     source + "." + field.name, flip != field.flip, out);
    }
    return;
  }
  const auto& vec = static_cast<const VectorType&>(*type);
  for (uint32_t i = 0; i < vec.size(); ++i) {
    collect_leaves(vec.element(), flat + "_" + std::to_string(i),
                   source + "[" + std::to_string(i) + "]", flip, out);
  }
}

std::vector<Leaf> leaves_of(const TypePtr& type) {
  std::vector<Leaf> out;
  collect_leaves(type, "", "", false, out);
  return out;
}

/// A reference path while rewriting: either an already-ground expression or
/// a still-aggregate prefix ("w", "inst.io") plus its type.
struct Path {
  ExprPtr ground;           ///< non-null iff the path resolved to ground
  std::string flat_prefix;  ///< flat name accumulated so far
  std::string inst;         ///< non-empty when the path roots at an instance
  TypePtr type;             ///< aggregate type at this prefix
};

class LowerAggregates final : public Pass {
 public:
  [[nodiscard]] std::string name() const override { return "lower-aggregates"; }
  [[nodiscard]] Form input_form() const override { return Form::High; }
  [[nodiscard]] Form output_form() const override { return Form::Mid; }

  void run(Circuit& circuit) override {
    circuit_ = &circuit;
    // Phase 1: flatten every module's port list so instance references can
    // resolve against the flattened interface of any child.
    for (const auto& module : circuit.modules()) {
      flatten_ports(*module);
    }
    // Phase 2: rewrite bodies.
    for (const auto& module : circuit.modules()) {
      module_ = module.get();
      instance_modules_.clear();
      collect_instances(module->body());
      module->set_body(rewrite_block(module->body()));
    }
    circuit_ = nullptr;
  }

 private:
  // -- phase 1 ---------------------------------------------------------------

  void flatten_ports(Module& module) {
    std::vector<Port> flat_ports;
    for (const auto& port : module.ports()) {
      if (port.type->is_ground()) {
        flat_ports.push_back(port);
        continue;
      }
      original_port_types_[module.name() + "." + port.name] = port.type;
      for (const auto& leaf : leaves_of(port.type)) {
        Port p;
        p.name = port.name + leaf.flat_suffix;
        p.type = leaf.type;
        // A flipped leaf of an output bundle is an input, and vice versa.
        const bool is_output = (port.direction == Direction::Output) != leaf.flip;
        p.direction = is_output ? Direction::Output : Direction::Input;
        p.loc = port.loc;
        circuit_->annotate(Annotation{
            kFlatAnnotation, module.name(), p.name,
            common::Json(common::Json::Object{
                {"source", common::Json(port.name + leaf.source_suffix)},
                {"kind", common::Json("port")}})});
        flat_ports.push_back(std::move(p));
      }
    }
    flat_port_lists_[module.name()] = flat_ports;
    module.set_ports(std::move(flat_ports));
  }

  // -- phase 2 ---------------------------------------------------------------

  void collect_instances(const BlockStmt& body) {
    visit_stmts(body, [&](const Stmt& stmt) {
      if (stmt.kind() == StmtKind::Instance) {
        const auto& inst = static_cast<const InstanceStmt&>(stmt);
        instance_modules_[inst.name] = inst.module_name;
      }
    });
  }

  [[noreturn]] void unsupported(const std::string& what) const {
    throw std::runtime_error("lower-aggregates: " + what + " in module '" +
                             module_->name() + "'");
  }

  void record_flat(const std::string& flat_name, const std::string& source_name,
                   const char* kind) {
    circuit_->annotate(Annotation{
        kFlatAnnotation, module_->name(), flat_name,
        common::Json(common::Json::Object{{"source", common::Json(source_name)},
                                          {"kind", common::Json(kind)}})});
  }

  /// Resolves an expression into either a ground expression or an aggregate
  /// path that callers may extend.
  Path resolve(const ExprPtr& expr) {
    switch (expr->kind()) {
      case ExprKind::Ref: {
        const auto& ref = static_cast<const RefExpr&>(*expr);
        if (instance_modules_.count(ref.name())) {
          return Path{nullptr, "", ref.name(), expr->type()};
        }
        if (expr->type()->is_ground()) {
          return Path{expr, ref.name(), "", expr->type()};
        }
        return Path{nullptr, ref.name(), "", expr->type()};
      }
      case ExprKind::SubField: {
        const auto& field = static_cast<const SubFieldExpr&>(*expr);
        Path base = resolve(field.base());
        if (base.ground) unsupported("subfield on ground value");
        if (!base.inst.empty() && base.flat_prefix.empty()) {
          // First level below an instance: the port name.
          return extend_instance(base, field.field());
        }
        return extend(base, "_" + field.field(),
                      member_type(base.type, field.field()));
      }
      case ExprKind::SubIndex: {
        const auto& index = static_cast<const SubIndexExpr&>(*expr);
        Path base = resolve(index.base());
        if (base.ground) unsupported("subindex on ground value");
        const std::string text = std::to_string(index.index());
        if (!base.inst.empty() && base.flat_prefix.empty()) {
          unsupported("indexing an instance");
        }
        const auto& vec = static_cast<const VectorType&>(*base.type);
        return extend(base, "_" + text, vec.element());
      }
      case ExprKind::SubAccess: {
        // Rewritten by the expression rewriter before resolve() sees it.
        unsupported("unexpected dynamic access during path resolution");
      }
      default:
        unsupported("aggregate-typed operator expression");
    }
  }

  static TypePtr member_type(const TypePtr& type, const std::string& field) {
    const auto& bundle = static_cast<const BundleType&>(*type);
    const BundleField* f = bundle.field(field);
    if (f == nullptr) {
      throw std::runtime_error("lower-aggregates: missing field " + field);
    }
    return f->type;
  }

  Path extend(Path base, const std::string& flat_suffix, TypePtr type) {
    Path out;
    out.inst = base.inst;
    out.flat_prefix = base.flat_prefix + flat_suffix;
    out.type = type;
    if (type->is_ground()) {
      if (!out.inst.empty()) {
        out.ground = instance_port_ref(out.inst, out.flat_prefix);
      } else {
        out.ground = make_ref(out.flat_prefix, type);
      }
    }
    return out;
  }

  Path extend_instance(const Path& base, const std::string& port_name) {
    // Find all flattened child ports that begin with port_name; if the
    // original port was ground this resolves directly.
    const auto& child_ports = flat_port_lists_.at(instance_modules_.at(base.inst));
    for (const auto& port : child_ports) {
      if (port.name == port_name) {
        Path out;
        out.inst = base.inst;
        out.flat_prefix = port_name;
        out.type = port.type;
        out.ground = instance_port_ref(base.inst, port_name);
        return out;
      }
    }
    // Aggregate child port: reconstruct its pre-flattening type lazily by
    // returning a prefix path; later SubField/SubIndex extensions must match
    // flattened port names.
    Path out;
    out.inst = base.inst;
    out.flat_prefix = port_name;
    out.type = aggregate_port_type(base.inst, port_name);
    return out;
  }

  /// Original aggregate type of `port_name` on the pre-flattening module of
  /// instance `inst`. Kept from phase 1 via original port lists.
  TypePtr aggregate_port_type(const std::string& inst,
                              const std::string& port_name) {
    const std::string& child = instance_modules_.at(inst);
    auto it = original_port_types_.find(child + "." + port_name);
    if (it == original_port_types_.end()) {
      unsupported("unknown instance port " + inst + "." + port_name);
    }
    return it->second;
  }

  ExprPtr instance_port_ref(const std::string& inst,
                            const std::string& port_name) {
    const std::string& child_name = instance_modules_.at(inst);
    const auto& child_ports = flat_port_lists_.at(child_name);
    std::vector<BundleField> fields;
    fields.reserve(child_ports.size());
    for (const auto& port : child_ports) {
      fields.push_back(BundleField{port.name, port.type,
                                   port.direction == Direction::Output});
    }
    ExprPtr base = make_ref(inst, bundle_type(std::move(fields)));
    return make_subfield(std::move(base), port_name);
  }

  /// Expression rewriter: flattens aggregate paths and expands dynamic
  /// accesses into mux chains.
  ExprPtr rewrite(const ExprPtr& expr) {
    switch (expr->kind()) {
      case ExprKind::Literal:
        return expr;
      case ExprKind::Ref: {
        if (expr->type()->is_ground()) return expr;
        unsupported("aggregate value '" + expr->str() +
                    "' used in ground context");
      }
      case ExprKind::SubField:
      case ExprKind::SubIndex: {
        if (!expr->type()->is_ground()) {
          unsupported("aggregate value '" + expr->str() +
                      "' used in ground context");
        }
        Path path = resolve(expr);
        return path.ground;
      }
      case ExprKind::SubAccess: {
        const auto& access = static_cast<const SubAccessExpr&>(*expr);
        if (!expr->type()->is_ground()) {
          unsupported("dynamic access yielding an aggregate");
        }
        ExprPtr index = rewrite(access.index());
        const auto& vec = static_cast<const VectorType&>(*access.base()->type());
        // Mux chain: idx == 0 ? elem0 : idx == 1 ? elem1 : ... : elemN-1.
        ExprPtr out = rewrite(make_subindex(access.base(), vec.size() - 1));
        for (uint32_t i = vec.size() - 1; i-- > 0;) {
          ExprPtr element = rewrite(make_subindex(access.base(), i));
          ExprPtr sel = make_eq(
              index, make_literal(common::BitVector(index->width(), i), false));
          out = make_mux(std::move(sel), std::move(element), std::move(out));
        }
        return out;
      }
      case ExprKind::Prim: {
        const auto& prim = static_cast<const PrimExpr&>(*expr);
        std::vector<ExprPtr> operands;
        operands.reserve(prim.operands().size());
        for (const auto& operand : prim.operands()) {
          operands.push_back(rewrite(operand));
        }
        return make_prim(prim.op(), std::move(operands), prim.int_params());
      }
    }
    return expr;
  }

  std::unique_ptr<BlockStmt> rewrite_block(const BlockStmt& block) {
    auto out = std::make_unique<BlockStmt>();
    out->loc = block.loc;
    out->loop_bindings = block.loop_bindings;
    for (const auto& stmt : block.stmts) {
      rewrite_stmt(*stmt, *out);
    }
    return out;
  }

  void rewrite_stmt(const Stmt& stmt, BlockStmt& out) {
    switch (stmt.kind()) {
      case StmtKind::Wire: {
        const auto& wire = static_cast<const WireStmt&>(stmt);
        if (wire.type->is_ground()) {
          out.push(wire.clone());
          return;
        }
        for (const auto& leaf : leaves_of(wire.type)) {
          auto flat = std::make_unique<WireStmt>(wire.name + leaf.flat_suffix,
                                                 leaf.type);
          flat->loc = wire.loc;
          flat->loop_bindings = wire.loop_bindings;
          flat->source_name = wire.source_name + leaf.source_suffix;
          record_flat(flat->name, flat->source_name, "wire");
          out.push(std::move(flat));
        }
        return;
      }
      case StmtKind::Reg: {
        const auto& reg = static_cast<const RegStmt&>(stmt);
        if (reg.type->is_ground()) {
          auto clone = reg.clone();
          auto* cloned = static_cast<RegStmt*>(clone.get());
          if (cloned->reset) cloned->reset = rewrite(cloned->reset);
          if (cloned->init) cloned->init = rewrite(cloned->init);
          out.push(std::move(clone));
          return;
        }
        for (const auto& leaf : leaves_of(reg.type)) {
          auto flat = std::make_unique<RegStmt>(reg.name + leaf.flat_suffix,
                                                leaf.type, reg.clock_name);
          flat->loc = reg.loc;
          flat->loop_bindings = reg.loop_bindings;
          flat->source_name = reg.source_name + leaf.source_suffix;
          if (reg.reset) {
            flat->reset = rewrite(reg.reset);
            // Aggregate init must be an aggregate literal path; support the
            // common zero-literal case by re-slicing a ground literal.
            if (reg.init->kind() == ExprKind::Literal) {
              const auto& literal = static_cast<const LiteralExpr&>(*reg.init);
              flat->init = make_literal(
                  common::BitVector(leaf.type->bit_width(),
                                    literal.value().to_uint64()),
                  leaf.type->is_signed());
            } else {
              Path path = resolve(reg.init);
              flat->init = make_ref(path.flat_prefix + leaf.flat_suffix, leaf.type);
            }
          }
          record_flat(flat->name, flat->source_name, "reg");
          out.push(std::move(flat));
        }
        return;
      }
      case StmtKind::Node: {
        const auto& node = static_cast<const NodeStmt&>(stmt);
        auto flat = std::make_unique<NodeStmt>(node.name, rewrite(node.value));
        flat->loc = node.loc;
        flat->loop_bindings = node.loop_bindings;
        flat->source_name = node.source_name;
        if (node.enable) flat->enable = rewrite(node.enable);
        out.push(std::move(flat));
        return;
      }
      case StmtKind::Connect: {
        const auto& connect = static_cast<const ConnectStmt&>(stmt);
        if (connect.lhs->type()->is_ground()) {
          auto flat = std::make_unique<ConnectStmt>(rewrite_lhs(connect.lhs),
                                                    rewrite(connect.rhs));
          flat->loc = connect.loc;
          flat->loop_bindings = connect.loop_bindings;
          if (connect.enable) flat->enable = rewrite(connect.enable);
          out.push(std::move(flat));
          return;
        }
        // Aggregate connect: both sides must be paths; expand leaf-wise.
        Path lhs = resolve(connect.lhs);
        Path rhs = resolve(connect.rhs);
        if (!lhs.type->equals(*rhs.type)) {
          unsupported("aggregate connect type mismatch: " + lhs.type->str() +
                      " vs " + rhs.type->str());
        }
        for (const auto& leaf : leaves_of(lhs.type)) {
          ExprPtr lhs_leaf = path_leaf_ref(lhs, leaf);
          ExprPtr rhs_leaf = path_leaf_ref(rhs, leaf);
          auto flat = std::make_unique<ConnectStmt>(
              leaf.flip ? std::move(rhs_leaf) : std::move(lhs_leaf),
              leaf.flip ? std::move(lhs_leaf) : std::move(rhs_leaf));
          flat->loc = connect.loc;
          flat->loop_bindings = connect.loop_bindings;
          out.push(std::move(flat));
        }
        return;
      }
      case StmtKind::When: {
        const auto& when = static_cast<const WhenStmt&>(stmt);
        auto flat = std::make_unique<WhenStmt>(rewrite(when.cond));
        flat->loc = when.loc;
        flat->loop_bindings = when.loop_bindings;
        flat->then_body = rewrite_block(*when.then_body);
        if (when.else_body) flat->else_body = rewrite_block(*when.else_body);
        out.push(std::move(flat));
        return;
      }
      case StmtKind::Instance:
        out.push(stmt.clone());
        return;
      case StmtKind::Block: {
        for (const auto& inner : static_cast<const BlockStmt&>(stmt).stmts) {
          rewrite_stmt(*inner, out);
        }
        return;
      }
      case StmtKind::For:
        unsupported("for statement (run unroll-loops first)");
    }
  }

  /// Connect lhs: ground path (ref / instance-port subfield).
  ExprPtr rewrite_lhs(const ExprPtr& lhs) {
    Path path = resolve(lhs);
    if (!path.ground) unsupported("connect target is aggregate");
    return path.ground;
  }

  ExprPtr path_leaf_ref(const Path& path, const Leaf& leaf) {
    if (!path.inst.empty()) {
      return instance_port_ref(path.inst, path.flat_prefix + leaf.flat_suffix);
    }
    return make_ref(path.flat_prefix + leaf.flat_suffix, leaf.type);
  }

  Circuit* circuit_ = nullptr;
  Module* module_ = nullptr;
  std::map<std::string, std::string> instance_modules_;
  std::map<std::string, std::vector<Port>> flat_port_lists_;
  std::map<std::string, TypePtr> original_port_types_;
};

}  // namespace

std::unique_ptr<Pass> create_lower_aggregates_pass() {
  return std::make_unique<LowerAggregates>();
}

}  // namespace hgdb::passes
