#include <algorithm>
#include <set>

#include "symbols/symbol_table.h"

namespace hgdb::symbols {

void sort_breakpoints(std::vector<BreakpointRow>& breakpoints) {
  std::sort(breakpoints.begin(), breakpoints.end(),
            [](const BreakpointRow& a, const BreakpointRow& b) {
              return std::tie(a.filename, a.line_num, a.column_num,
                              a.order_index, a.instance_id, a.id) <
                     std::tie(b.filename, b.line_num, b.column_num,
                              b.order_index, b.instance_id, b.id);
            });
}

MemorySymbolTable::MemorySymbolTable(SymbolTableData data)
    : data_(std::move(data)) {}

const VariableRow* MemorySymbolTable::variable(int64_t id) const {
  for (const auto& row : data_.variables) {
    if (row.id == id) return &row;
  }
  return nullptr;
}

std::vector<BreakpointRow> MemorySymbolTable::breakpoints_at(
    const std::string& filename, uint32_t line) const {
  std::vector<BreakpointRow> out;
  for (const auto& row : data_.breakpoints) {
    if (row.filename == filename && (line == 0 || row.line_num == line)) {
      out.push_back(row);
    }
  }
  sort_breakpoints(out);
  return out;
}

std::vector<BreakpointRow> MemorySymbolTable::all_breakpoints() const {
  std::vector<BreakpointRow> out = data_.breakpoints;
  sort_breakpoints(out);
  return out;
}

std::optional<BreakpointRow> MemorySymbolTable::breakpoint(int64_t id) const {
  for (const auto& row : data_.breakpoints) {
    if (row.id == id) return row;
  }
  return std::nullopt;
}

std::vector<ResolvedVariable> MemorySymbolTable::scope_variables(
    int64_t breakpoint_id) const {
  std::vector<ResolvedVariable> out;
  for (const auto& row : data_.scope_variables) {
    if (row.breakpoint_id != breakpoint_id) continue;
    if (const VariableRow* var = variable(row.variable_id)) {
      out.push_back(ResolvedVariable{row.name, var->value, var->is_rtl});
    }
  }
  return out;
}

std::optional<ResolvedVariable> MemorySymbolTable::resolve_scope_variable(
    int64_t breakpoint_id, const std::string& name) const {
  for (const auto& row : data_.scope_variables) {
    if (row.breakpoint_id == breakpoint_id && row.name == name) {
      if (const VariableRow* var = variable(row.variable_id)) {
        return ResolvedVariable{row.name, var->value, var->is_rtl};
      }
    }
  }
  return std::nullopt;
}

std::vector<ResolvedVariable> MemorySymbolTable::generator_variables(
    int64_t instance_id) const {
  std::vector<ResolvedVariable> out;
  for (const auto& row : data_.generator_variables) {
    if (row.instance_id != instance_id) continue;
    if (const VariableRow* var = variable(row.variable_id)) {
      out.push_back(ResolvedVariable{row.name, var->value, var->is_rtl});
    }
  }
  return out;
}

std::optional<ResolvedVariable> MemorySymbolTable::resolve_generator_variable(
    int64_t instance_id, const std::string& name) const {
  for (const auto& row : data_.generator_variables) {
    if (row.instance_id == instance_id && row.name == name) {
      if (const VariableRow* var = variable(row.variable_id)) {
        return ResolvedVariable{row.name, var->value, var->is_rtl};
      }
    }
  }
  return std::nullopt;
}

std::vector<InstanceRow> MemorySymbolTable::instances() const {
  return data_.instances;
}

std::optional<InstanceRow> MemorySymbolTable::instance(int64_t id) const {
  for (const auto& row : data_.instances) {
    if (row.id == id) return row;
  }
  return std::nullopt;
}

std::optional<InstanceRow> MemorySymbolTable::instance_by_name(
    const std::string& name) const {
  for (const auto& row : data_.instances) {
    if (row.name == name) return row;
  }
  return std::nullopt;
}

std::vector<std::string> MemorySymbolTable::files() const {
  std::set<std::string> seen;
  for (const auto& row : data_.breakpoints) seen.insert(row.filename);
  return {seen.begin(), seen.end()};
}

}  // namespace hgdb::symbols
