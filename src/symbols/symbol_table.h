#ifndef HGDB_SYMBOLS_SYMBOL_TABLE_H
#define HGDB_SYMBOLS_SYMBOL_TABLE_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "symbols/schema.h"

namespace hgdb::symbols {

/// The paper's *unified symbol table interface* (Sec. 3.4). The debugger
/// runtime is written purely against these primitives, so a symbol table
/// may live in SQLite, in memory, or behind an RPC connection — the
/// runtime cannot tell the difference.
class SymbolTable {
 public:
  virtual ~SymbolTable() = default;

  // -- "Get breakpoints from source location" --------------------------------
  /// All breakpoints at filename:line, ordered by (column, order_index).
  /// With line == 0, every breakpoint in the file.
  [[nodiscard]] virtual std::vector<BreakpointRow> breakpoints_at(
      const std::string& filename, uint32_t line) const = 0;
  /// Every breakpoint, in scheduling order (filename, line, column,
  /// order_index) — the Fig. 2 precomputed "absolute ordering".
  [[nodiscard]] virtual std::vector<BreakpointRow> all_breakpoints() const = 0;
  [[nodiscard]] virtual std::optional<BreakpointRow> breakpoint(
      int64_t id) const = 0;

  // -- "Get scope information for each breakpoint" ---------------------------
  [[nodiscard]] virtual std::vector<ResolvedVariable> scope_variables(
      int64_t breakpoint_id) const = 0;

  // -- "Resolve scoped variable names to RTL name" ---------------------------
  [[nodiscard]] virtual std::optional<ResolvedVariable> resolve_scope_variable(
      int64_t breakpoint_id, const std::string& name) const = 0;

  // -- "Resolve instance variable names to RTL name" -------------------------
  [[nodiscard]] virtual std::vector<ResolvedVariable> generator_variables(
      int64_t instance_id) const = 0;
  [[nodiscard]] virtual std::optional<ResolvedVariable>
  resolve_generator_variable(int64_t instance_id,
                             const std::string& name) const = 0;

  // -- instances --------------------------------------------------------------
  [[nodiscard]] virtual std::vector<InstanceRow> instances() const = 0;
  [[nodiscard]] virtual std::optional<InstanceRow> instance(
      int64_t id) const = 0;
  [[nodiscard]] virtual std::optional<InstanceRow> instance_by_name(
      const std::string& name) const = 0;

  // -- misc -------------------------------------------------------------------
  /// Distinct source filenames (IDE file listing).
  [[nodiscard]] virtual std::vector<std::string> files() const = 0;
};

/// In-memory symbol table (the "native" implementation an HGF can hand to
/// the runtime directly).
class MemorySymbolTable final : public SymbolTable {
 public:
  explicit MemorySymbolTable(SymbolTableData data);

  [[nodiscard]] std::vector<BreakpointRow> breakpoints_at(
      const std::string& filename, uint32_t line) const override;
  [[nodiscard]] std::vector<BreakpointRow> all_breakpoints() const override;
  [[nodiscard]] std::optional<BreakpointRow> breakpoint(int64_t id) const override;
  [[nodiscard]] std::vector<ResolvedVariable> scope_variables(
      int64_t breakpoint_id) const override;
  [[nodiscard]] std::optional<ResolvedVariable> resolve_scope_variable(
      int64_t breakpoint_id, const std::string& name) const override;
  [[nodiscard]] std::vector<ResolvedVariable> generator_variables(
      int64_t instance_id) const override;
  [[nodiscard]] std::optional<ResolvedVariable> resolve_generator_variable(
      int64_t instance_id, const std::string& name) const override;
  [[nodiscard]] std::vector<InstanceRow> instances() const override;
  [[nodiscard]] std::optional<InstanceRow> instance(int64_t id) const override;
  [[nodiscard]] std::optional<InstanceRow> instance_by_name(
      const std::string& name) const override;
  [[nodiscard]] std::vector<std::string> files() const override;

  [[nodiscard]] const SymbolTableData& data() const { return data_; }

 private:
  [[nodiscard]] const VariableRow* variable(int64_t id) const;

  SymbolTableData data_;
};

/// Sorts breakpoints into the canonical scheduling order.
void sort_breakpoints(std::vector<BreakpointRow>& breakpoints);

}  // namespace hgdb::symbols

#endif  // HGDB_SYMBOLS_SYMBOL_TABLE_H
