#ifndef HGDB_SYMBOLS_SQLITE_STORE_H
#define HGDB_SYMBOLS_SQLITE_STORE_H

#include <memory>
#include <string>

#include "symbols/symbol_table.h"

namespace hgdb::symbols {

/// SQLite-backed symbol table (paper Fig. 3). The schema matches the
/// figure: instance, breakpoint, variable, scope_variable and
/// generator_variable tables, with foreign keys used as the "arrows" that
/// improve search performance and guarantee integrity.
class SqliteSymbolTable final : public SymbolTable {
 public:
  /// Opens an existing symbol-table database.
  explicit SqliteSymbolTable(const std::string& path);
  ~SqliteSymbolTable() override;

  SqliteSymbolTable(const SqliteSymbolTable&) = delete;
  SqliteSymbolTable& operator=(const SqliteSymbolTable&) = delete;

  /// Creates/overwrites `path` with the given data. Returns the database
  /// file size in bytes (used by the symbol-table-size experiment,
  /// paper Sec. 4.1's ~30% debug-mode growth).
  static size_t save(const SymbolTableData& data, const std::string& path);

  /// Loads the full contents (e.g. to serve over RPC).
  [[nodiscard]] SymbolTableData load_all() const;

  [[nodiscard]] std::vector<BreakpointRow> breakpoints_at(
      const std::string& filename, uint32_t line) const override;
  [[nodiscard]] std::vector<BreakpointRow> all_breakpoints() const override;
  [[nodiscard]] std::optional<BreakpointRow> breakpoint(int64_t id) const override;
  [[nodiscard]] std::vector<ResolvedVariable> scope_variables(
      int64_t breakpoint_id) const override;
  [[nodiscard]] std::optional<ResolvedVariable> resolve_scope_variable(
      int64_t breakpoint_id, const std::string& name) const override;
  [[nodiscard]] std::vector<ResolvedVariable> generator_variables(
      int64_t instance_id) const override;
  [[nodiscard]] std::optional<ResolvedVariable> resolve_generator_variable(
      int64_t instance_id, const std::string& name) const override;
  [[nodiscard]] std::vector<InstanceRow> instances() const override;
  [[nodiscard]] std::optional<InstanceRow> instance(int64_t id) const override;
  [[nodiscard]] std::optional<InstanceRow> instance_by_name(
      const std::string& name) const override;
  [[nodiscard]] std::vector<std::string> files() const override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hgdb::symbols

#endif  // HGDB_SYMBOLS_SQLITE_STORE_H
