#ifndef HGDB_SYMBOLS_SCHEMA_H
#define HGDB_SYMBOLS_SCHEMA_H

#include <cstdint>
#include <string>
#include <vector>

namespace hgdb::symbols {

/// Row types mirroring the paper's Fig. 3 SQLite schema.
///
/// `Instance` describes a hierarchical RTL instance name (relative to the
/// generated design's top; the runtime maps it into the full testbench
/// hierarchy, Sec. 3.4). `Breakpoint` encodes a source location plus the
/// SSA-derived *enable condition*. `Variable` holds either an RTL signal
/// path (relative to the owning instance) or a constant string.
/// `ScopeVariable` binds variables into a breakpoint's frame;
/// `GeneratorVariable` binds variables to an instance (the "generator
/// variables" pane in the paper's Fig. 4).

struct InstanceRow {
  int64_t id = 0;
  std::string name;  ///< e.g. "Top.child.alu"
};

struct BreakpointRow {
  int64_t id = 0;
  int64_t instance_id = 0;
  std::string filename;
  uint32_t line_num = 0;
  uint32_t column_num = 0;
  /// Enable condition as an expression over instance-relative RTL names
  /// (IR text syntax, e.g. "and(when_cond0, not(when_cond1))"). Empty
  /// means always enabled.
  std::string enable;
  /// Execution order within a clock cycle (paper Fig. 2: "absolute ordering
  /// of every potential breakpoint"): statement order in the lowered IR.
  uint32_t order_index = 0;
};

struct VariableRow {
  int64_t id = 0;
  /// RTL signal path relative to the instance when `is_rtl`, otherwise a
  /// constant rendered as text (e.g. an unrolled loop index).
  std::string value;
  bool is_rtl = true;
};

struct ScopeVariableRow {
  int64_t breakpoint_id = 0;
  int64_t variable_id = 0;
  std::string name;  ///< source-level name, e.g. "sum"
};

struct GeneratorVariableRow {
  int64_t instance_id = 0;
  int64_t variable_id = 0;
  std::string name;  ///< source-level name, possibly dotted ("io.signaling")
};

/// A complete symbol table as plain data; produced by the compiler's
/// symbol-extraction pass (Algorithm 1) and loadable into any store.
struct SymbolTableData {
  std::vector<InstanceRow> instances;
  std::vector<BreakpointRow> breakpoints;
  std::vector<VariableRow> variables;
  std::vector<ScopeVariableRow> scope_variables;
  std::vector<GeneratorVariableRow> generator_variables;

  [[nodiscard]] size_t total_rows() const {
    return instances.size() + breakpoints.size() + variables.size() +
           scope_variables.size() + generator_variables.size();
  }
};

/// A resolved variable visible in some frame: name plus either an RTL path
/// (relative to the instance) or a constant.
struct ResolvedVariable {
  std::string name;
  std::string value;
  bool is_rtl = true;
};

}  // namespace hgdb::symbols

#endif  // HGDB_SYMBOLS_SCHEMA_H
