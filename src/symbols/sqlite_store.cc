#include "symbols/sqlite_store.h"

#include <sqlite3.h>

#include <cstdio>
#include <filesystem>
#include <stdexcept>

namespace hgdb::symbols {

namespace {

[[noreturn]] void fail(sqlite3* db, const std::string& what) {
  throw std::runtime_error("sqlite: " + what + ": " +
                           (db != nullptr ? sqlite3_errmsg(db) : "unknown"));
}

/// RAII wrapper for a prepared statement.
class Statement {
 public:
  Statement(sqlite3* db, const char* sql) : db_(db) {
    if (sqlite3_prepare_v2(db, sql, -1, &stmt_, nullptr) != SQLITE_OK) {
      fail(db, std::string("prepare '") + sql + "'");
    }
  }
  ~Statement() { sqlite3_finalize(stmt_); }
  Statement(const Statement&) = delete;
  Statement& operator=(const Statement&) = delete;

  Statement& bind(int index, int64_t value) {
    sqlite3_bind_int64(stmt_, index, value);
    return *this;
  }
  Statement& bind(int index, const std::string& value) {
    sqlite3_bind_text(stmt_, index, value.c_str(), -1, SQLITE_TRANSIENT);
    return *this;
  }
  /// Steps once; true if a row is available.
  bool step() {
    const int rc = sqlite3_step(stmt_);
    if (rc == SQLITE_ROW) return true;
    if (rc == SQLITE_DONE) return false;
    fail(db_, "step");
  }
  [[nodiscard]] int64_t column_int(int index) const {
    return sqlite3_column_int64(stmt_, index);
  }
  [[nodiscard]] std::string column_text(int index) const {
    const unsigned char* text = sqlite3_column_text(stmt_, index);
    return text != nullptr ? reinterpret_cast<const char*>(text) : "";
  }

 private:
  sqlite3* db_;
  sqlite3_stmt* stmt_ = nullptr;
};

void exec(sqlite3* db, const char* sql) {
  char* error = nullptr;
  if (sqlite3_exec(db, sql, nullptr, nullptr, &error) != SQLITE_OK) {
    std::string message = error != nullptr ? error : "unknown";
    sqlite3_free(error);
    throw std::runtime_error("sqlite exec failed: " + message);
  }
}

constexpr const char* kSchema = R"sql(
CREATE TABLE instance (
  id INTEGER PRIMARY KEY,
  name TEXT NOT NULL
);
CREATE TABLE breakpoint (
  id INTEGER PRIMARY KEY,
  instance_id INTEGER NOT NULL REFERENCES instance(id),
  filename TEXT NOT NULL,
  line_num INTEGER NOT NULL,
  column_num INTEGER NOT NULL,
  enable TEXT,
  order_index INTEGER NOT NULL
);
CREATE TABLE variable (
  id INTEGER PRIMARY KEY,
  value TEXT NOT NULL,
  is_rtl INTEGER NOT NULL
);
CREATE TABLE scope_variable (
  breakpoint_id INTEGER NOT NULL REFERENCES breakpoint(id),
  variable_id INTEGER NOT NULL REFERENCES variable(id),
  name TEXT NOT NULL
);
CREATE TABLE generator_variable (
  instance_id INTEGER NOT NULL REFERENCES instance(id),
  variable_id INTEGER NOT NULL REFERENCES variable(id),
  name TEXT NOT NULL
);
CREATE INDEX idx_breakpoint_loc ON breakpoint(filename, line_num);
CREATE INDEX idx_scope_bp ON scope_variable(breakpoint_id);
CREATE INDEX idx_gen_inst ON generator_variable(instance_id);
CREATE INDEX idx_instance_name ON instance(name);
)sql";

BreakpointRow read_breakpoint(const Statement& stmt) {
  BreakpointRow row;
  row.id = stmt.column_int(0);
  row.instance_id = stmt.column_int(1);
  row.filename = stmt.column_text(2);
  row.line_num = static_cast<uint32_t>(stmt.column_int(3));
  row.column_num = static_cast<uint32_t>(stmt.column_int(4));
  row.enable = stmt.column_text(5);
  row.order_index = static_cast<uint32_t>(stmt.column_int(6));
  return row;
}

constexpr const char* kBreakpointColumns =
    "id, instance_id, filename, line_num, column_num, enable, order_index";

}  // namespace

struct SqliteSymbolTable::Impl {
  sqlite3* db = nullptr;
  ~Impl() {
    if (db != nullptr) sqlite3_close(db);
  }
};

SqliteSymbolTable::SqliteSymbolTable(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  if (sqlite3_open_v2(path.c_str(), &impl_->db, SQLITE_OPEN_READONLY, nullptr) !=
      SQLITE_OK) {
    fail(impl_->db, "open " + path);
  }
}

SqliteSymbolTable::~SqliteSymbolTable() = default;

size_t SqliteSymbolTable::save(const SymbolTableData& data,
                               const std::string& path) {
  std::remove(path.c_str());
  sqlite3* db = nullptr;
  if (sqlite3_open(path.c_str(), &db) != SQLITE_OK) fail(db, "create " + path);
  try {
    exec(db, kSchema);
    exec(db, "BEGIN TRANSACTION;");
    for (const auto& row : data.instances) {
      Statement insert(db, "INSERT INTO instance (id, name) VALUES (?, ?);");
      insert.bind(1, row.id).bind(2, row.name);
      insert.step();
    }
    for (const auto& row : data.breakpoints) {
      Statement insert(db,
                       "INSERT INTO breakpoint (id, instance_id, filename, "
                       "line_num, column_num, enable, order_index) VALUES "
                       "(?, ?, ?, ?, ?, ?, ?);");
      insert.bind(1, row.id)
          .bind(2, row.instance_id)
          .bind(3, row.filename)
          .bind(4, static_cast<int64_t>(row.line_num))
          .bind(5, static_cast<int64_t>(row.column_num))
          .bind(6, row.enable)
          .bind(7, static_cast<int64_t>(row.order_index));
      insert.step();
    }
    for (const auto& row : data.variables) {
      Statement insert(
          db, "INSERT INTO variable (id, value, is_rtl) VALUES (?, ?, ?);");
      insert.bind(1, row.id)
          .bind(2, row.value)
          .bind(3, static_cast<int64_t>(row.is_rtl ? 1 : 0));
      insert.step();
    }
    for (const auto& row : data.scope_variables) {
      Statement insert(db,
                       "INSERT INTO scope_variable (breakpoint_id, "
                       "variable_id, name) VALUES (?, ?, ?);");
      insert.bind(1, row.breakpoint_id)
          .bind(2, row.variable_id)
          .bind(3, row.name);
      insert.step();
    }
    for (const auto& row : data.generator_variables) {
      Statement insert(db,
                       "INSERT INTO generator_variable (instance_id, "
                       "variable_id, name) VALUES (?, ?, ?);");
      insert.bind(1, row.instance_id)
          .bind(2, row.variable_id)
          .bind(3, row.name);
      insert.step();
    }
    exec(db, "COMMIT;");
  } catch (...) {
    sqlite3_close(db);
    throw;
  }
  sqlite3_close(db);
  return static_cast<size_t>(std::filesystem::file_size(path));
}

SymbolTableData SqliteSymbolTable::load_all() const {
  SymbolTableData data;
  {
    Statement stmt(impl_->db, "SELECT id, name FROM instance;");
    while (stmt.step()) {
      data.instances.push_back(InstanceRow{stmt.column_int(0), stmt.column_text(1)});
    }
  }
  {
    Statement stmt(impl_->db, ("SELECT " + std::string(kBreakpointColumns) +
                               " FROM breakpoint;")
                                  .c_str());
    while (stmt.step()) data.breakpoints.push_back(read_breakpoint(stmt));
  }
  {
    Statement stmt(impl_->db, "SELECT id, value, is_rtl FROM variable;");
    while (stmt.step()) {
      data.variables.push_back(VariableRow{stmt.column_int(0), stmt.column_text(1),
                                           stmt.column_int(2) != 0});
    }
  }
  {
    Statement stmt(impl_->db,
                   "SELECT breakpoint_id, variable_id, name FROM scope_variable;");
    while (stmt.step()) {
      data.scope_variables.push_back(ScopeVariableRow{
          stmt.column_int(0), stmt.column_int(1), stmt.column_text(2)});
    }
  }
  {
    Statement stmt(
        impl_->db,
        "SELECT instance_id, variable_id, name FROM generator_variable;");
    while (stmt.step()) {
      data.generator_variables.push_back(GeneratorVariableRow{
          stmt.column_int(0), stmt.column_int(1), stmt.column_text(2)});
    }
  }
  return data;
}

std::vector<BreakpointRow> SqliteSymbolTable::breakpoints_at(
    const std::string& filename, uint32_t line) const {
  std::vector<BreakpointRow> out;
  std::string sql = "SELECT " + std::string(kBreakpointColumns) +
                    " FROM breakpoint WHERE filename = ?";
  if (line != 0) sql += " AND line_num = ?";
  Statement stmt(impl_->db, sql.c_str());
  stmt.bind(1, filename);
  if (line != 0) stmt.bind(2, static_cast<int64_t>(line));
  while (stmt.step()) out.push_back(read_breakpoint(stmt));
  sort_breakpoints(out);
  return out;
}

std::vector<BreakpointRow> SqliteSymbolTable::all_breakpoints() const {
  std::vector<BreakpointRow> out;
  Statement stmt(impl_->db, ("SELECT " + std::string(kBreakpointColumns) +
                             " FROM breakpoint;")
                                .c_str());
  while (stmt.step()) out.push_back(read_breakpoint(stmt));
  sort_breakpoints(out);
  return out;
}

std::optional<BreakpointRow> SqliteSymbolTable::breakpoint(int64_t id) const {
  Statement stmt(impl_->db, ("SELECT " + std::string(kBreakpointColumns) +
                             " FROM breakpoint WHERE id = ?;")
                                .c_str());
  stmt.bind(1, id);
  if (!stmt.step()) return std::nullopt;
  return read_breakpoint(stmt);
}

std::vector<ResolvedVariable> SqliteSymbolTable::scope_variables(
    int64_t breakpoint_id) const {
  std::vector<ResolvedVariable> out;
  Statement stmt(impl_->db,
                 "SELECT s.name, v.value, v.is_rtl FROM scope_variable s "
                 "JOIN variable v ON v.id = s.variable_id "
                 "WHERE s.breakpoint_id = ?;");
  stmt.bind(1, breakpoint_id);
  while (stmt.step()) {
    out.push_back(ResolvedVariable{stmt.column_text(0), stmt.column_text(1),
                                   stmt.column_int(2) != 0});
  }
  return out;
}

std::optional<ResolvedVariable> SqliteSymbolTable::resolve_scope_variable(
    int64_t breakpoint_id, const std::string& name) const {
  Statement stmt(impl_->db,
                 "SELECT s.name, v.value, v.is_rtl FROM scope_variable s "
                 "JOIN variable v ON v.id = s.variable_id "
                 "WHERE s.breakpoint_id = ? AND s.name = ?;");
  stmt.bind(1, breakpoint_id).bind(2, name);
  if (!stmt.step()) return std::nullopt;
  return ResolvedVariable{stmt.column_text(0), stmt.column_text(1),
                          stmt.column_int(2) != 0};
}

std::vector<ResolvedVariable> SqliteSymbolTable::generator_variables(
    int64_t instance_id) const {
  std::vector<ResolvedVariable> out;
  Statement stmt(impl_->db,
                 "SELECT g.name, v.value, v.is_rtl FROM generator_variable g "
                 "JOIN variable v ON v.id = g.variable_id "
                 "WHERE g.instance_id = ?;");
  stmt.bind(1, instance_id);
  while (stmt.step()) {
    out.push_back(ResolvedVariable{stmt.column_text(0), stmt.column_text(1),
                                   stmt.column_int(2) != 0});
  }
  return out;
}

std::optional<ResolvedVariable> SqliteSymbolTable::resolve_generator_variable(
    int64_t instance_id, const std::string& name) const {
  Statement stmt(impl_->db,
                 "SELECT g.name, v.value, v.is_rtl FROM generator_variable g "
                 "JOIN variable v ON v.id = g.variable_id "
                 "WHERE g.instance_id = ? AND g.name = ?;");
  stmt.bind(1, instance_id).bind(2, name);
  if (!stmt.step()) return std::nullopt;
  return ResolvedVariable{stmt.column_text(0), stmt.column_text(1),
                          stmt.column_int(2) != 0};
}

std::vector<InstanceRow> SqliteSymbolTable::instances() const {
  std::vector<InstanceRow> out;
  Statement stmt(impl_->db, "SELECT id, name FROM instance;");
  while (stmt.step()) {
    out.push_back(InstanceRow{stmt.column_int(0), stmt.column_text(1)});
  }
  return out;
}

std::optional<InstanceRow> SqliteSymbolTable::instance(int64_t id) const {
  Statement stmt(impl_->db, "SELECT id, name FROM instance WHERE id = ?;");
  stmt.bind(1, id);
  if (!stmt.step()) return std::nullopt;
  return InstanceRow{stmt.column_int(0), stmt.column_text(1)};
}

std::optional<InstanceRow> SqliteSymbolTable::instance_by_name(
    const std::string& name) const {
  Statement stmt(impl_->db, "SELECT id, name FROM instance WHERE name = ?;");
  stmt.bind(1, name);
  if (!stmt.step()) return std::nullopt;
  return InstanceRow{stmt.column_int(0), stmt.column_text(1)};
}

std::vector<std::string> SqliteSymbolTable::files() const {
  std::vector<std::string> out;
  Statement stmt(impl_->db,
                 "SELECT DISTINCT filename FROM breakpoint ORDER BY filename;");
  while (stmt.step()) out.push_back(stmt.column_text(0));
  return out;
}

}  // namespace hgdb::symbols
