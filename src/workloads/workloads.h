#ifndef HGDB_WORKLOADS_WORKLOADS_H
#define HGDB_WORKLOADS_WORKLOADS_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/circuit.h"

namespace hgdb::workloads {

/// One benchmark design named after the paper's Fig. 5 RocketChip
/// benchmark-suite workloads. Each design is fully self-stimulating
/// (internal LFSR/counter stimulus, clock-only interface) and folds its
/// results into a `checksum` output so optimization cannot remove the
/// datapath and re-execution is deterministic (a requirement for native
/// reverse debugging).
struct WorkloadInfo {
  std::string name;  ///< Fig. 5 label: "multiply", "mm", ...
  std::string top;   ///< top module name
  std::function<std::unique_ptr<ir::Circuit>()> build;
};

/// All ten Fig. 5 workloads, in the paper's plot order.
const std::vector<WorkloadInfo>& fig5_workloads();

/// Looks up one workload by Fig. 5 name; throws std::out_of_range.
const WorkloadInfo& workload(const std::string& name);

/// Scalable matrix-multiply design for the callback-overhead ablation
/// (EXP-3): an n x n MAC grid; combinational work grows as n^2 while the
/// per-cycle hgdb callback cost stays constant.
std::unique_ptr<ir::Circuit> build_matmul(uint32_t n);

/// The Sec. 4.2 case study: a recoded-float compare unit inside an FPU
/// control block. `with_bug` seeds the paper's bug — `dcmp.io.signaling`
/// permanently asserted — which corrupts the exception flags whenever a
/// quiet-NaN operand arrives; the fixed version drives signaling from the
/// instruction decode.
std::unique_ptr<ir::Circuit> build_fpu_compare(bool with_bug);

/// Source file:line anchors for writing FPU-debug breakpoints in examples
/// and tests without hard-coding line numbers.
struct FpuSourceInfo {
  std::string filename;       ///< generator source file of the FPU design
  uint32_t when_wflags_line;  ///< the `when (wflags)` statement
  uint32_t toint_line;        ///< the `toint` assignment inside the when
};
FpuSourceInfo fpu_source_info();

}  // namespace hgdb::workloads

#endif  // HGDB_WORKLOADS_WORKLOADS_H
