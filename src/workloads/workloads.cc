#include "workloads/workloads.h"

#include <stdexcept>

#include "frontend/components.h"
#include "frontend/dsl.h"

namespace hgdb::workloads {

using frontend::Instance;
using frontend::ModuleBuilder;
using frontend::Value;
using frontend::adder_tree;
using frontend::counter;
using frontend::lfsr;
using frontend::mux;
using frontend::sort2;

namespace {

/// Diagnostic intermediates a generator typically elaborates but a given
/// configuration never consumes: parity/overflow probes and folded config
/// constants. The optimized build removes them (const-prop + DCE), dropping
/// their breakpoints and scope variables from the symbol table; debug mode
/// pins them with DontTouch — this asymmetry is the source of the paper's
/// ~30% debug-mode symbol-table growth (Sec. 4.1), reproduced by EXP-2.
void emit_diagnostics(ModuleBuilder& b, const std::string& prefix,
                      const Value& probe) {
  Value parity = b.node(prefix + "_parity", probe.reduce_xor(), HGDB_LOC);
  Value nonzero = b.node(prefix + "_nonzero", probe.reduce_or(), HGDB_LOC);
  Value saturated = b.node(prefix + "_saturated", probe.reduce_and(), HGDB_LOC);
  Value window = b.node(prefix + "_window", probe.shr(4) & b.lit(probe.width(), 0xff),
                        HGDB_LOC);
  Value cfg = b.node(prefix + "_cfg",
                     b.lit(32, 0xf0).shl(4) | b.lit(32, 0x0c), HGDB_LOC);
  Value flag = b.wire(prefix + "_flag", 1, HGDB_LOC);
  b.assign(flag, parity & nonzero, HGDB_LOC);
  b.when_(cfg.bit(3), HGDB_LOC,
          [&] { b.assign(flag, flag | saturated | window.reduce_or(), HGDB_LOC); });
}

// ---------------------------------------------------------------------------
// multiply: pipelined multiplier with a parity-gated accumulator
// ---------------------------------------------------------------------------

std::unique_ptr<ir::Circuit> build_multiply() {
  auto circuit = std::make_unique<ir::Circuit>("Multiply");
  ModuleBuilder b(*circuit, "Multiply");
  Value clk = b.clock();
  Value checksum = b.output("checksum", 32, HGDB_LOC);

  Value a = lfsr(b, "a", 16, clk);
  Value bb = lfsr(b, "b", 16, clk);

  Value prod = b.node("prod", a.pad(32) * bb.pad(32), HGDB_LOC);
  Value stage1 = b.reg("stage1", 32, clk, HGDB_LOC);
  b.assign(stage1, prod, HGDB_LOC);
  Value stage2 = b.reg("stage2", 32, clk, HGDB_LOC);
  b.assign(stage2, stage1 ^ stage1.shr(7), HGDB_LOC);

  Value acc = b.reg("acc", 32, clk, HGDB_LOC);
  Value sum = b.wire("sum", 32, HGDB_LOC);
  b.assign(sum, acc ^ stage2, HGDB_LOC);
  b.when_(stage2.bit(0), HGDB_LOC,
          [&] { b.assign(sum, sum + b.lit(32, 1), HGDB_LOC); });
  b.assign(acc, sum, HGDB_LOC);
  emit_diagnostics(b, "dbg", prod);
  b.assign(checksum, acc, HGDB_LOC);
  b.finish();
  return circuit;
}

// ---------------------------------------------------------------------------
// mm / mt-matmul: n x n multiply-accumulate grid
// ---------------------------------------------------------------------------

/// Builds the MAC-grid core module inside `circuit` and returns its name.
/// Host C++ loops elaborate the grid — many IR statements share the same
/// generator source line, exactly like a Chisel `for` (the concurrent
/// "threads" of paper Fig. 4 B).
std::string build_matmul_core(ir::Circuit& circuit, const std::string& name,
                              uint32_t n) {
  ModuleBuilder b(circuit, name);
  Value clk = b.clock();
  Value seed = b.input("seed", 16, HGDB_LOC);
  Value checksum = b.output("checksum", 32, HGDB_LOC);

  Value raw_stimulus = lfsr(b, "raw_stimulus", 32, clk);
  Value stimulus =
      b.node("stimulus", raw_stimulus ^ seed.pad(32).shl(3), HGDB_LOC);

  // Activations: one register per row, refreshed from LFSR slices.
  std::vector<Value> activations;
  for (uint32_t i = 0; i < n; ++i) {
    Value act = b.reg("act_" + std::to_string(i), 16, clk, HGDB_LOC);
    b.assign(act, act + stimulus.slice((i % 4) * 8 + 7, (i % 4) * 8), HGDB_LOC);
    activations.push_back(act);
  }

  // Weight grid and per-column MAC accumulators.
  std::vector<Value> column_sums;
  for (uint32_t j = 0; j < n; ++j) {
    std::vector<Value> products;
    for (uint32_t i = 0; i < n; ++i) {
      Value weight = b.reg("w_" + std::to_string(i) + "_" + std::to_string(j),
                           16, clk, HGDB_LOC);
      b.assign(weight, weight ^ stimulus.slice(15, 0) ^ b.lit(16, i * 31 + j * 7),
               HGDB_LOC);
      products.push_back(
          b.node("p_" + std::to_string(i) + "_" + std::to_string(j),
                 weight.pad(32) * activations[i].pad(32), HGDB_LOC));
    }
    Value column = adder_tree(b, products);
    Value acc = b.reg("col_" + std::to_string(j), 32, clk, HGDB_LOC);
    b.assign(acc, acc + column, HGDB_LOC);
    column_sums.push_back(acc);
  }

  Value folded = column_sums[0];
  for (uint32_t j = 1; j < n; ++j) folded = folded ^ column_sums[j];
  emit_diagnostics(b, "dbg", folded);
  b.assign(checksum, folded.pad(32), HGDB_LOC);
  b.finish();
  return name;
}

std::unique_ptr<ir::Circuit> build_mm() {
  auto circuit = std::make_unique<ir::Circuit>("Matmul");
  build_matmul_core(*circuit, "Matmul", 4);
  return circuit;
}

std::unique_ptr<ir::Circuit> build_mt_matmul() {
  auto circuit = std::make_unique<ir::Circuit>("MtMatmul");
  build_matmul_core(*circuit, "MatmulCore", 3);
  ModuleBuilder b(*circuit, "MtMatmul");
  Value clk = b.clock();
  Value checksum = b.output("checksum", 32, HGDB_LOC);
  // Two hardware "threads" of the same core module.
  Instance t0 = b.instantiate("thread0", "MatmulCore", HGDB_LOC);
  Instance t1 = b.instantiate("thread1", "MatmulCore", HGDB_LOC);
  b.assign(t0.port("clock"), clk, HGDB_LOC);
  b.assign(t1.port("clock"), clk, HGDB_LOC);
  b.assign(t0.port("seed"), b.lit(16, 0x1a2b), HGDB_LOC);
  b.assign(t1.port("seed"), b.lit(16, 0x7c3d), HGDB_LOC);
  b.assign(checksum, t0.port("checksum") ^ t1.port("checksum"), HGDB_LOC);
  b.finish();
  return circuit;
}

// ---------------------------------------------------------------------------
// vvadd / mt-vvadd: vector add with the paper's Listing-1 loop shape
// ---------------------------------------------------------------------------

std::string build_vvadd_core(ir::Circuit& circuit, const std::string& name) {
  constexpr uint32_t kLanes = 8;
  ModuleBuilder b(circuit, name);
  Value clk = b.clock();
  Value seed = b.input("seed", 16, HGDB_LOC);
  Value checksum = b.output("checksum", 32, HGDB_LOC);

  Value raw_stimulus = lfsr(b, "raw_stimulus", 32, clk);
  Value stimulus = b.node("stimulus", raw_stimulus ^ seed.pad(32), HGDB_LOC);
  Value va = b.reg_type("va", ir::vector_type(ir::uint_type(16), kLanes), clk,
                        HGDB_LOC);
  Value vb = b.reg_type("vb", ir::vector_type(ir::uint_type(16), kLanes), clk,
                        HGDB_LOC);
  for (uint32_t k = 0; k < kLanes; ++k) {
    b.assign(va[k], va[k] + stimulus.slice(15, 0) + b.lit(16, k), HGDB_LOC);
    b.assign(vb[k], vb[k] ^ stimulus.slice(31, 16) ^ b.lit(16, 3 * k), HGDB_LOC);
  }

  // The paper's Listing 1: a procedural accumulator reassigned inside an
  // unrolled loop, guarded by a data-dependent condition. One source line
  // here becomes kLanes emulated breakpoints with distinct enables.
  Value sum = b.wire("sum", 32, HGDB_LOC);
  b.assign(sum, b.lit(32, 0), HGDB_LOC);
  b.for_("i", 0, kLanes, HGDB_LOC, [&](Value i) {
    Value element = b.node("element", (va[i] + vb[i]).pad(32), HGDB_LOC);
    b.when_((element % b.lit(32, 2)) == b.lit(32, 1), HGDB_LOC,
            [&] { b.assign(sum, sum + element, HGDB_LOC); });
  });

  Value acc = b.reg("acc", 32, clk, HGDB_LOC);
  b.assign(acc, acc ^ sum, HGDB_LOC);
  emit_diagnostics(b, "dbg", sum);
  b.assign(checksum, acc, HGDB_LOC);
  b.finish();
  return name;
}

std::unique_ptr<ir::Circuit> build_vvadd() {
  auto circuit = std::make_unique<ir::Circuit>("Vvadd");
  build_vvadd_core(*circuit, "Vvadd");
  return circuit;
}

std::unique_ptr<ir::Circuit> build_mt_vvadd() {
  auto circuit = std::make_unique<ir::Circuit>("MtVvadd");
  build_vvadd_core(*circuit, "VvaddCore");
  ModuleBuilder b(*circuit, "MtVvadd");
  Value clk = b.clock();
  Value checksum = b.output("checksum", 32, HGDB_LOC);
  Instance t0 = b.instantiate("thread0", "VvaddCore", HGDB_LOC);
  Instance t1 = b.instantiate("thread1", "VvaddCore", HGDB_LOC);
  b.assign(t0.port("clock"), clk, HGDB_LOC);
  b.assign(t1.port("clock"), clk, HGDB_LOC);
  b.assign(t0.port("seed"), b.lit(16, 0x00ff), HGDB_LOC);
  b.assign(t1.port("seed"), b.lit(16, 0x5a5a), HGDB_LOC);
  b.assign(checksum, t0.port("checksum") + t1.port("checksum"), HGDB_LOC);
  b.finish();
  return circuit;
}

// ---------------------------------------------------------------------------
// qsort: 8-lane bitonic sorting network, pipelined between stages
// ---------------------------------------------------------------------------

std::unique_ptr<ir::Circuit> build_qsort() {
  constexpr uint32_t kLanes = 8;
  auto circuit = std::make_unique<ir::Circuit>("Qsort");
  ModuleBuilder b(*circuit, "Qsort");
  Value clk = b.clock();
  Value checksum = b.output("checksum", 32, HGDB_LOC);

  Value stimulus = lfsr(b, "stimulus", 32, clk);
  std::vector<Value> lanes;
  for (uint32_t i = 0; i < kLanes; ++i) {
    Value lane = b.reg("in_" + std::to_string(i), 16, clk, HGDB_LOC);
    b.assign(lane,
             lane + stimulus.slice((i % 2) * 16 + 15, (i % 2) * 16) +
                 b.lit(16, i * 17),
             HGDB_LOC);
    lanes.push_back(lane);
  }

  // Batcher odd-even merge network for 8 inputs (19 compare-exchanges).
  static constexpr std::pair<uint32_t, uint32_t> kStages[] = {
      {0, 1}, {2, 3}, {4, 5}, {6, 7}, {0, 2}, {1, 3}, {4, 6}, {5, 7},
      {1, 2}, {5, 6}, {0, 4}, {1, 5}, {2, 6}, {3, 7}, {2, 4}, {3, 5},
      {1, 2}, {3, 4}, {5, 6}};
  std::vector<Value> network = lanes;
  uint32_t exchange_index = 0;
  for (const auto& [low, high] : kStages) {
    auto [small, large] = sort2(network[low], network[high]);
    network[low] =
        b.node("cmp_lo_" + std::to_string(exchange_index), small, HGDB_LOC);
    network[high] =
        b.node("cmp_hi_" + std::to_string(exchange_index), large, HGDB_LOC);
    ++exchange_index;
  }

  // Sortedness witness folded into the checksum: catches any network bug.
  Value sorted_flag = b.wire("sorted_flag", 1, HGDB_LOC);
  b.assign(sorted_flag, b.lit(1, 1), HGDB_LOC);
  for (uint32_t i = 0; i + 1 < kLanes; ++i) {
    b.assign(sorted_flag, sorted_flag & (network[i] <= network[i + 1]),
             HGDB_LOC);
  }

  Value acc = b.reg("acc", 32, clk, HGDB_LOC);
  Value folded = network[0].pad(32);
  for (uint32_t i = 1; i < kLanes; ++i) {
    folded = folded + network[i].pad(32).shl(i % 8);
  }
  b.assign(acc, acc ^ folded ^ sorted_flag.pad(32), HGDB_LOC);
  emit_diagnostics(b, "dbg", folded);
  b.assign(checksum, acc, HGDB_LOC);
  b.finish();
  return circuit;
}

// ---------------------------------------------------------------------------
// dhrystone: mixed-ALU state machine with deep when chains
// ---------------------------------------------------------------------------

std::unique_ptr<ir::Circuit> build_dhrystone() {
  auto circuit = std::make_unique<ir::Circuit>("Dhrystone");
  ModuleBuilder b(*circuit, "Dhrystone");
  Value clk = b.clock();
  Value checksum = b.output("checksum", 32, HGDB_LOC);

  Value x = lfsr(b, "x", 32, clk);
  Value y = counter(b, "y", 32, clk);
  Value op = b.node("op", x.slice(2, 0), HGDB_LOC);

  Value result = b.wire("result", 32, HGDB_LOC);
  b.assign(result, x ^ y, HGDB_LOC);
  b.when_(op == b.lit(3, 0), HGDB_LOC,
          [&] { b.assign(result, x + y, HGDB_LOC); },
          [&] {
            b.when_(op == b.lit(3, 1), HGDB_LOC,
                    [&] { b.assign(result, x - y, HGDB_LOC); },
                    [&] {
                      b.when_(op == b.lit(3, 2), HGDB_LOC,
                              [&] { b.assign(result, x & y, HGDB_LOC); },
                              [&] {
                                b.when_(
                                    op == b.lit(3, 3), HGDB_LOC,
                                    [&] {
                                      b.assign(result,
                                               x % (y | b.lit(32, 1)), HGDB_LOC);
                                    },
                                    [&] {
                                      b.assign(result, x * y, HGDB_LOC);
                                    });
                              });
                    });
          });

  Value acc = b.reg("acc", 32, clk, HGDB_LOC);
  b.assign(acc, (acc.shl(1) | acc.shr(31)) ^ result, HGDB_LOC);
  emit_diagnostics(b, "dbg", result);
  b.assign(checksum, acc, HGDB_LOC);
  b.finish();
  return circuit;
}

// ---------------------------------------------------------------------------
// median: median-of-9 filter over a shifting sample window
// ---------------------------------------------------------------------------

std::unique_ptr<ir::Circuit> build_median() {
  constexpr uint32_t kWindow = 9;
  auto circuit = std::make_unique<ir::Circuit>("Median");
  ModuleBuilder b(*circuit, "Median");
  Value clk = b.clock();
  Value checksum = b.output("checksum", 32, HGDB_LOC);

  Value stimulus = lfsr(b, "stimulus", 16, clk);
  std::vector<Value> window;
  for (uint32_t i = 0; i < kWindow; ++i) {
    Value sample = b.reg("w_" + std::to_string(i), 16, clk, HGDB_LOC);
    if (i == 0) {
      b.assign(sample, stimulus, HGDB_LOC);
    } else {
      b.assign(sample, window[i - 1], HGDB_LOC);
    }
    window.push_back(sample);
  }

  // Median-of-9 via a full sorting network (simple and verifiable).
  std::vector<Value> net = window;
  uint32_t exchange_index = 0;
  for (uint32_t pass = 0; pass < kWindow; ++pass) {
    for (uint32_t i = pass % 2; i + 1 < kWindow; i += 2) {
      auto [small, large] = sort2(net[i], net[i + 1]);
      net[i] = b.node("m_lo_" + std::to_string(exchange_index), small, HGDB_LOC);
      net[i + 1] =
          b.node("m_hi_" + std::to_string(exchange_index), large, HGDB_LOC);
      ++exchange_index;
    }
  }
  Value median = b.node("median", net[kWindow / 2], HGDB_LOC);

  Value acc = b.reg("acc", 32, clk, HGDB_LOC);
  b.assign(acc, acc + median.pad(32), HGDB_LOC);
  emit_diagnostics(b, "dbg", median);
  b.assign(checksum, acc, HGDB_LOC);
  b.finish();
  return circuit;
}

// ---------------------------------------------------------------------------
// towers: Towers-of-Hanoi flavoured FSM
// ---------------------------------------------------------------------------

std::unique_ptr<ir::Circuit> build_towers() {
  auto circuit = std::make_unique<ir::Circuit>("Towers");
  ModuleBuilder b(*circuit, "Towers");
  Value clk = b.clock();
  Value checksum = b.output("checksum", 32, HGDB_LOC);

  Value state = b.reg("state", 2, clk, HGDB_LOC);
  Value peg0 = b.reg("peg0", 8, clk, HGDB_LOC);
  Value peg1 = b.reg("peg1", 8, clk, HGDB_LOC);
  Value peg2 = b.reg("peg2", 8, clk, HGDB_LOC);
  Value moves = b.reg("moves", 32, clk, HGDB_LOC);

  // Refill peg0 with 5 disks whenever everything drained.
  Value empty = b.node(
      "empty", (peg0 == b.lit(8, 0)) & (peg1 == b.lit(8, 0)), HGDB_LOC);
  b.when_(empty, HGDB_LOC, [&] { b.assign(peg0, b.lit(8, 5), HGDB_LOC); });

  b.when_(state == b.lit(2, 0), HGDB_LOC,
          [&] {
            b.when_(peg0 > b.lit(8, 0), HGDB_LOC, [&] {
              b.assign(peg0, peg0 - b.lit(8, 1), HGDB_LOC);
              b.assign(peg1, peg1 + b.lit(8, 1), HGDB_LOC);
              b.assign(moves, moves + b.lit(32, 1), HGDB_LOC);
            });
            b.assign(state, b.lit(2, 1), HGDB_LOC);
          },
          [&] {
            b.when_(state == b.lit(2, 1), HGDB_LOC,
                    [&] {
                      b.when_(peg1 > b.lit(8, 0), HGDB_LOC, [&] {
                        b.assign(peg1, peg1 - b.lit(8, 1), HGDB_LOC);
                        b.assign(peg2, peg2 + b.lit(8, 1), HGDB_LOC);
                        b.assign(moves, moves + b.lit(32, 1), HGDB_LOC);
                      });
                      b.assign(state, b.lit(2, 2), HGDB_LOC);
                    },
                    [&] {
                      b.when_(peg2 > b.lit(8, 0), HGDB_LOC, [&] {
                        b.assign(peg2, peg2 - b.lit(8, 1), HGDB_LOC);
                        b.assign(moves, moves + b.lit(32, 3), HGDB_LOC);
                      });
                      b.assign(state, b.lit(2, 0), HGDB_LOC);
                    });
          });

  Value acc = b.reg("acc", 32, clk, HGDB_LOC);
  b.assign(acc,
           acc ^ moves ^ peg0.pad(32).shl(8) ^ peg1.pad(32).shl(16) ^
               peg2.pad(32).shl(24),
           HGDB_LOC);
  emit_diagnostics(b, "dbg", moves);
  b.assign(checksum, acc, HGDB_LOC);
  b.finish();
  return circuit;
}

// ---------------------------------------------------------------------------
// spmv: sparse gather with dynamic vector indexing
// ---------------------------------------------------------------------------

std::unique_ptr<ir::Circuit> build_spmv() {
  constexpr uint32_t kEntries = 8;
  auto circuit = std::make_unique<ir::Circuit>("Spmv");
  ModuleBuilder b(*circuit, "Spmv");
  Value clk = b.clock();
  Value checksum = b.output("checksum", 32, HGDB_LOC);

  Value stimulus = lfsr(b, "stimulus", 32, clk);
  Value values = b.reg_type(
      "values", ir::vector_type(ir::uint_type(16), kEntries), clk, HGDB_LOC);
  for (uint32_t k = 0; k < kEntries; ++k) {
    b.assign(values[k], values[k] + stimulus.slice(15, 0) + b.lit(16, 11 * k),
             HGDB_LOC);
  }

  // Gather: three "nonzeros" per row, column indices from the LFSR. The
  // dynamic index lowers to a mux chain (LowerAggregates), and the
  // accumulation loop is the paper's SSA showcase again.
  Value row_sum = b.wire("row_sum", 32, HGDB_LOC);
  b.assign(row_sum, b.lit(32, 0), HGDB_LOC);
  b.for_("nz", 0, 3, HGDB_LOC, [&](Value nz) {
    Value column = b.node(
        "column", (stimulus.shr(5) + nz.pad(32) * b.lit(32, 3)).slice(2, 0),
        HGDB_LOC);
    Value gathered = b.node("gathered", values[column], HGDB_LOC);
    b.when_(gathered != b.lit(16, 0), HGDB_LOC,
            [&] { b.assign(row_sum, row_sum + gathered.pad(32), HGDB_LOC); });
  });

  Value acc = b.reg("acc", 32, clk, HGDB_LOC);
  b.assign(acc, acc + row_sum, HGDB_LOC);
  emit_diagnostics(b, "dbg", row_sum);
  b.assign(checksum, acc, HGDB_LOC);
  b.finish();
  return circuit;
}

// ---------------------------------------------------------------------------
// FPU compare (Sec. 4.2 case study)
// ---------------------------------------------------------------------------

struct FpuLines {
  uint32_t when_wflags = 0;
  uint32_t toint = 0;
};
FpuLines g_fpu_lines;

/// Recoded-float compare unit ("dcmp" in the paper's Listing 3). The
/// format is hardfloat-style 33-bit recoded: [32] sign, [31:23] exponent
/// (top three bits 111 = NaN), [22:0] significand (bit 22 clear = sNaN).
void build_dcmp(ir::Circuit& circuit) {
  ModuleBuilder b(circuit, "CompareRecFN");
  Value a = b.input("a", 33, HGDB_LOC);
  Value bv = b.input("b", 33, HGDB_LOC);
  Value signaling = b.input("signaling", 1, HGDB_LOC);
  Value lt = b.output("lt", 1, HGDB_LOC);
  Value eq = b.output("eq", 1, HGDB_LOC);
  Value exception_flags = b.output("exceptionFlags", 5, HGDB_LOC);

  Value a_nan = b.node("a_nan", a.slice(31, 29) == b.lit(3, 7), HGDB_LOC);
  Value b_nan = b.node("b_nan", bv.slice(31, 29) == b.lit(3, 7), HGDB_LOC);
  Value a_snan = b.node("a_snan", a_nan & ~a.bit(22), HGDB_LOC);
  Value b_snan = b.node("b_snan", b_nan & ~bv.bit(22), HGDB_LOC);
  Value any_nan = b.node("any_nan", a_nan | b_nan, HGDB_LOC);

  // Invalid-operation: signaling compares trap on any NaN; quiet compares
  // only on signaling NaNs. The paper's bug wires `signaling` high, so
  // quiet-NaN feq instructions spuriously raise this flag.
  Value invalid =
      b.node("invalid", (any_nan & signaling) | a_snan | b_snan, HGDB_LOC);
  b.assign(exception_flags, invalid.pad(5).shl(4), HGDB_LOC);

  Value sign_a = a.bit(32);
  Value sign_b = bv.bit(32);
  Value mag_a = b.node("mag_a", a.slice(31, 0), HGDB_LOC);
  Value mag_b = b.node("mag_b", bv.slice(31, 0), HGDB_LOC);
  Value mag_lt = b.node("mag_lt", mag_a < mag_b, HGDB_LOC);
  Value mag_eq = b.node("mag_eq", mag_a == mag_b, HGDB_LOC);

  Value ordered_lt = b.wire("ordered_lt", 1, HGDB_LOC);
  b.assign(ordered_lt, ~sign_a & ~sign_b & mag_lt, HGDB_LOC);
  b.when_(sign_a & ~sign_b, HGDB_LOC,
          [&] { b.assign(ordered_lt, b.lit(1, 1), HGDB_LOC); });
  b.when_(sign_a & sign_b, HGDB_LOC, [&] {
    b.assign(ordered_lt, ~mag_lt & ~mag_eq, HGDB_LOC);
  });

  b.assign(lt, ~any_nan & ordered_lt, HGDB_LOC);
  b.assign(eq, ~any_nan & mag_eq & (sign_a == sign_b), HGDB_LOC);
  b.finish();
}

std::unique_ptr<ir::Circuit> build_fpu_compare_impl(bool with_bug) {
  auto circuit = std::make_unique<ir::Circuit>("FpuCtrl");
  build_dcmp(*circuit);

  ModuleBuilder b(*circuit, "FpuCtrl");
  Value clk = b.clock();
  Value checksum = b.output("checksum", 32, HGDB_LOC);
  Value exc_out = b.output("exc_flags", 5, HGDB_LOC);

  // Instruction/operand stream (stand-in for the RocketChip pipeline).
  Value stream = lfsr(b, "stream", 32, clk);
  Value in1 = b.reg("in1", 33, clk, HGDB_LOC);
  Value in2 = b.reg("in2", 33, clk, HGDB_LOC);
  // Force frequent NaN patterns so the bug manifests: the top exponent
  // bits come from the LFSR, so about 1/8 of operands are NaNs.
  b.assign(in1, in1.shl(3) ^ stream.pad(33), HGDB_LOC);
  b.assign(in2, in2.shl(5) ^ stream.shr(7).pad(33) ^ b.lit(33, 0x155), HGDB_LOC);

  Value rm = b.node("rm", stream.slice(1, 0), HGDB_LOC);
  Value wflags = b.node("wflags", stream.bit(2), HGDB_LOC);
  Value store = b.node("store", in1.slice(31, 0), HGDB_LOC);

  Instance dcmp = b.instantiate("dcmp", "CompareRecFN", HGDB_LOC);
  b.assign(dcmp.port("a"), in1, HGDB_LOC);
  b.assign(dcmp.port("b"), in2, HGDB_LOC);
  if (with_bug) {
    // Listing 3: dcmp.io.signaling := Bool(true)  -- the seeded bug.
    b.assign(dcmp.port("signaling"), b.lit(1, 1), HGDB_LOC);
  } else {
    // Fixed: only flt/fle (rm[1] == 0 in this encoding) are signaling.
    b.assign(dcmp.port("signaling"), ~rm.bit(1), HGDB_LOC);
  }

  Value toint = b.wire("toint", 32, HGDB_LOC);
  Value exc = b.wire("exc", 5, HGDB_LOC);
  b.assign(toint, store, HGDB_LOC);
  b.assign(exc, b.lit(5, 0), HGDB_LOC);
  g_fpu_lines.when_wflags = __LINE__ + 1;
  b.when_(wflags, HGDB_LOC, [&] {
    g_fpu_lines.toint = __LINE__ + 1;
    b.assign(toint, (~rm.pad(2) & dcmp.port("lt").concat(dcmp.port("eq"))).pad(32), HGDB_LOC);
    b.assign(exc, dcmp.port("exceptionFlags"), HGDB_LOC);
  });

  Value acc = b.reg("acc_reg", 32, clk, HGDB_LOC);
  b.assign(acc, acc ^ toint ^ exc.pad(32).shl(11), HGDB_LOC);
  b.assign(checksum, acc, HGDB_LOC);
  b.assign(exc_out, exc, HGDB_LOC);
  b.finish();
  return circuit;
}

}  // namespace

const std::vector<WorkloadInfo>& fig5_workloads() {
  static const std::vector<WorkloadInfo> kWorkloads = {
      {"multiply", "Multiply", build_multiply},
      {"mm", "Matmul", build_mm},
      {"mt-matmul", "MtMatmul", build_mt_matmul},
      {"vvadd", "Vvadd", build_vvadd},
      {"qsort", "Qsort", build_qsort},
      {"dhrystone", "Dhrystone", build_dhrystone},
      {"median", "Median", build_median},
      {"towers", "Towers", build_towers},
      {"spmv", "Spmv", build_spmv},
      {"mt-vvadd", "MtVvadd", build_mt_vvadd},
  };
  return kWorkloads;
}

const WorkloadInfo& workload(const std::string& name) {
  for (const auto& info : fig5_workloads()) {
    if (info.name == name) return info;
  }
  throw std::out_of_range("unknown workload '" + name + "'");
}

std::unique_ptr<ir::Circuit> build_matmul(uint32_t n) {
  auto circuit = std::make_unique<ir::Circuit>("Matmul");
  build_matmul_core(*circuit, "Matmul", n);
  return circuit;
}

std::unique_ptr<ir::Circuit> build_fpu_compare(bool with_bug) {
  return build_fpu_compare_impl(with_bug);
}

FpuSourceInfo fpu_source_info() {
  if (g_fpu_lines.when_wflags == 0) {
    // Elaborate once to capture the anchor lines.
    build_fpu_compare_impl(true);
  }
  return FpuSourceInfo{__FILE__, g_fpu_lines.when_wflags, g_fpu_lines.toint};
}

}  // namespace hgdb::workloads
