#include "trace/vcd_reader.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/strings.h"

namespace hgdb::trace {

using common::BitVector;

std::optional<size_t> VcdTrace::var_index(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

BitVector VcdTrace::value_at(size_t index, uint64_t time) const {
  const auto& list = changes_[index];
  // Last change with change.time <= time.
  auto it = std::upper_bound(
      list.begin(), list.end(), time,
      [](uint64_t t, const auto& change) { return t < change.first; });
  if (it == list.begin()) return BitVector(vars_[index].width, 0);
  return std::prev(it)->second;
}

std::vector<uint64_t> VcdTrace::rising_edges(size_t index) const {
  std::vector<uint64_t> out;
  bool previous = false;
  for (const auto& [time, value] : changes_[index]) {
    const bool current = value.to_bool();
    if (current && !previous) out.push_back(time);
    previous = current;
  }
  return out;
}

namespace {

/// Maps VCD value characters to two-state bits ('x'/'z' -> 0).
bool bit_of(char c) { return c == '1'; }

BitVector parse_vector_value(std::string_view text, uint32_t width) {
  BitVector value(width, 0);
  // text is binary, MSB first, possibly shorter than width.
  uint32_t bit = 0;
  for (size_t i = text.size(); i-- > 0 && bit < width; ++bit) {
    if (bit_of(text[i])) value.set_bit(bit, true);
  }
  return value;
}

}  // namespace

VcdTrace parse_vcd(std::string_view text) {
  VcdTrace trace;
  std::map<std::string, size_t> code_to_index;
  std::vector<std::string> scope_stack;
  uint64_t now = 0;
  bool in_definitions = true;

  std::istringstream stream{std::string(text)};
  std::string token;

  auto read_token = [&]() -> bool { return bool(stream >> token); };
  auto expect_end = [&] {
    while (read_token()) {
      if (token == "$end") return;
    }
    throw std::runtime_error("vcd: unterminated directive");
  };

  while (read_token()) {
    if (token.empty()) continue;
    if (token[0] == '$') {
      if (token == "$scope") {
        std::string kind, name;
        stream >> kind >> name;
        scope_stack.push_back(name);
        expect_end();
      } else if (token == "$upscope") {
        if (scope_stack.empty()) throw std::runtime_error("vcd: upscope underflow");
        scope_stack.pop_back();
        expect_end();
      } else if (token == "$var") {
        std::string kind, width_text, code;
        stream >> kind >> width_text >> code;
        VcdVar var;
        var.width = static_cast<uint32_t>(std::stoul(width_text));
        std::string name;
        stream >> name;
        // Optional "[msb:lsb]" token before $end.
        std::string tail;
        while (stream >> tail && tail != "$end") {
          // ignore range tokens
        }
        std::string full;
        for (const auto& scope : scope_stack) full += scope + ".";
        full += name;
        var.hier_name = full;
        code_to_index[code] = trace.vars_.size();
        trace.by_name_[full] = trace.vars_.size();
        trace.vars_.push_back(std::move(var));
        trace.changes_.emplace_back();
      } else if (token == "$enddefinitions") {
        expect_end();
        in_definitions = false;
      } else if (token == "$dumpvars" || token == "$dumpall" ||
                 token == "$dumpon" || token == "$dumpoff") {
        // Value-change section; values follow until $end but are parsed by
        // the normal value handling below.
      } else if (token == "$end") {
        // end of a dump section
      } else {
        expect_end();
      }
      continue;
    }
    if (in_definitions) continue;
    if (token[0] == '#') {
      now = std::stoull(token.substr(1));
      trace.max_time_ = std::max(trace.max_time_, now);
      continue;
    }
    if (token[0] == 'b' || token[0] == 'B') {
      const std::string value_text = token.substr(1);
      std::string code;
      stream >> code;
      auto it = code_to_index.find(code);
      if (it == code_to_index.end()) {
        throw std::runtime_error("vcd: unknown id code '" + code + "'");
      }
      const size_t index = it->second;
      trace.changes_[index].emplace_back(
          now, parse_vector_value(value_text, trace.vars_[index].width));
      continue;
    }
    if (token[0] == '0' || token[0] == '1' || token[0] == 'x' ||
        token[0] == 'X' || token[0] == 'z' || token[0] == 'Z') {
      const std::string code = token.substr(1);
      auto it = code_to_index.find(code);
      if (it == code_to_index.end()) {
        throw std::runtime_error("vcd: unknown id code '" + code + "'");
      }
      trace.changes_[it->second].emplace_back(
          now, BitVector(1, bit_of(token[0]) ? 1 : 0));
      continue;
    }
    if (token[0] == 'r' || token[0] == 'R') {
      // real values: unsupported, skip the code token
      stream >> token;
      continue;
    }
    throw std::runtime_error("vcd: unexpected token '" + token + "'");
  }
  return trace;
}

VcdTrace parse_vcd_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open VCD file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_vcd(buffer.str());
}

}  // namespace hgdb::trace
