#include "trace/vcd_reader.h"

#include <algorithm>
#include <stdexcept>

#include "waveform/indexed_waveform.h"
#include "waveform/vcd_stream_parser.h"

namespace hgdb::trace {

using common::BitVector;

std::optional<size_t> VcdTrace::var_index(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

BitVector VcdTrace::value_at(size_t index, uint64_t time) const {
  const auto& list = changes_[canonical_[index]];
  // Last change with change.time <= time.
  auto it = std::upper_bound(
      list.begin(), list.end(), time,
      [](uint64_t t, const auto& change) { return t < change.first; });
  if (it == list.begin()) return BitVector(vars_[index].width, 0);
  return std::prev(it)->second;
}

std::vector<uint64_t> VcdTrace::rising_edges(size_t index) const {
  std::vector<uint64_t> out;
  bool previous = false;
  for (const auto& [time, value] : changes_[canonical_[index]]) {
    const bool current = value.to_bool();
    if (current && !previous) out.push_back(time);
    previous = current;
  }
  return out;
}

size_t VcdTrace::resident_bytes() const {
  size_t bytes = 0;
  for (const auto& list : changes_) {
    bytes += list.capacity() * sizeof(list[0]);
    for (const auto& [time, value] : list) {
      bytes += value.num_words() * sizeof(uint64_t);
    }
  }
  return bytes;
}

/// VcdStreamParser sink that materializes the change lists.
class VcdTraceBuilder final : public waveform::VcdEventSink {
 public:
  void on_signal(size_t id, const waveform::SignalInfo& info) override {
    if (id != trace_.vars_.size()) {
      throw std::runtime_error("vcd: non-contiguous signal id");
    }
    // Aliased re-declarations of one name keep the first index.
    trace_.by_name_.emplace(info.hier_name, id);
    trace_.vars_.push_back(info);
    trace_.changes_.emplace_back();
    trace_.canonical_.push_back(id);
  }

  void on_alias(size_t id, size_t canonical_id) override {
    // The alias serves the canonical signal's change list; its own stays
    // empty (one stream's memory for the whole group).
    trace_.canonical_[id] = trace_.canonical_[canonical_id];
    ++trace_.alias_count_;
  }

  void on_change(size_t id, uint64_t time, const BitVector& value) override {
    trace_.changes_[id].emplace_back(time, value);
  }

  void on_finish(uint64_t max_time) override { trace_.max_time_ = max_time; }

  VcdTrace take() { return std::move(trace_); }

 private:
  VcdTrace trace_;
};

VcdTrace parse_vcd(std::string_view text) {
  VcdTraceBuilder builder;
  waveform::VcdStreamParser::parse_text(text, builder);
  return builder.take();
}

VcdTrace parse_vcd_file(const std::string& path) {
  VcdTraceBuilder builder;
  waveform::VcdStreamParser::parse_file(path, builder);
  return builder.take();
}

std::shared_ptr<waveform::WaveformSource> open_waveform(const std::string& path,
                                                        size_t cache_blocks,
                                                        waveform::IoMode io_mode) {
  if (waveform::is_wvx_path(path)) {
    return std::make_shared<waveform::IndexedWaveform>(
        path, waveform::WaveformOpenOptions{cache_blocks, io_mode});
  }
  return std::make_shared<VcdTrace>(parse_vcd_file(path));
}

}  // namespace hgdb::trace
