#ifndef HGDB_TRACE_REPLAY_H
#define HGDB_TRACE_REPLAY_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "trace/vcd_reader.h"
#include "waveform/waveform_source.h"

namespace hgdb::trace {

/// Replay engine over a waveform store (the paper's "Replay tool" box in
/// Fig. 1). Maintains a time cursor that can move to any clock edge,
/// forward or backward — time travel is free because the trace holds the
/// complete history, which is what makes reverse-debugging "much more
/// challenging to implement for software" trivial here (Sec. 1).
///
/// The engine is written against waveform::WaveformSource, so the backend
/// is interchangeable: an in-memory VcdTrace for small dumps, or a
/// waveform::IndexedWaveform whose residency is bounded by its LRU block
/// cache for production-scale dumps.
class ReplayEngine {
 public:
  /// `clock_name` selects the clock whose rising edges define the cycle
  /// grid. When empty, the engine picks the first 1-bit variable whose
  /// leaf name is "clock" or "clk" (case-insensitive, so "CLK" and
  /// "Clock" work). Throws std::runtime_error when no candidate exists or
  /// the chosen clock never rises (an empty edge grid cannot replay).
  explicit ReplayEngine(std::shared_ptr<const waveform::WaveformSource> source,
                        const std::string& clock_name = "");
  /// Convenience for the in-memory backend.
  explicit ReplayEngine(VcdTrace trace, const std::string& clock_name = "");

  [[nodiscard]] const waveform::WaveformSource& source() const {
    return *source_;
  }
  [[nodiscard]] const std::shared_ptr<const waveform::WaveformSource>&
  source_ptr() const {
    return source_;
  }

  /// Rising-edge times of the selected clock.
  [[nodiscard]] const std::vector<uint64_t>& edges() const { return edges_; }
  [[nodiscard]] size_t cycle_count() const { return edges_.size(); }
  [[nodiscard]] const std::string& clock_name() const { return clock_name_; }

  // -- time cursor -------------------------------------------------------------
  [[nodiscard]] uint64_t time() const { return time_; }
  void set_time(uint64_t time) { time_ = time; }
  /// Index of the latest clock edge at or before the cursor; nullopt if
  /// the cursor is before the first edge.
  [[nodiscard]] std::optional<size_t> current_cycle() const;
  /// Moves the cursor to the given edge index. Throws on out-of-range.
  void seek_cycle(size_t cycle);
  /// Steps one edge forward/backward; returns false at the trace ends.
  bool step_forward();
  bool step_backward();

  // -- values ------------------------------------------------------------------
  [[nodiscard]] std::optional<common::BitVector> value(
      const std::string& hier_name) const;
  /// Stable signal index for repeated reads (batched breakpoint fetch):
  /// resolve the name once, then value_at() skips the name lookup. The
  /// returned index is *canonical* — aliased names map to the one index
  /// owning their shared change stream (WaveformSource::canonical_index).
  [[nodiscard]] std::optional<size_t> signal_index(
      const std::string& hier_name) const;
  /// Value of signal `index` at the current cursor time.
  [[nodiscard]] common::BitVector value_at(size_t index) const;

 private:
  std::shared_ptr<const waveform::WaveformSource> source_;
  std::string clock_name_;
  std::vector<uint64_t> edges_;
  uint64_t time_ = 0;
};

}  // namespace hgdb::trace

#endif  // HGDB_TRACE_REPLAY_H
