#ifndef HGDB_TRACE_REPLAY_H
#define HGDB_TRACE_REPLAY_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "trace/vcd_reader.h"

namespace hgdb::trace {

/// Replay engine over a parsed VCD trace (the paper's "Replay tool" box in
/// Fig. 1). Maintains a time cursor that can move to any clock edge,
/// forward or backward — time travel is free because the trace holds the
/// complete history, which is what makes reverse-debugging "much more
/// challenging to implement for software" trivial here (Sec. 1).
class ReplayEngine {
 public:
  /// `clock_name` selects the clock whose rising edges define the cycle
  /// grid. When empty, the engine picks the first 1-bit variable whose
  /// leaf name is "clock" or "clk".
  explicit ReplayEngine(VcdTrace trace, const std::string& clock_name = "");

  [[nodiscard]] const VcdTrace& trace() const { return trace_; }

  /// Rising-edge times of the selected clock.
  [[nodiscard]] const std::vector<uint64_t>& edges() const { return edges_; }
  [[nodiscard]] size_t cycle_count() const { return edges_.size(); }

  // -- time cursor -------------------------------------------------------------
  [[nodiscard]] uint64_t time() const { return time_; }
  void set_time(uint64_t time) { time_ = time; }
  /// Index of the latest clock edge at or before the cursor; nullopt if
  /// the cursor is before the first edge.
  [[nodiscard]] std::optional<size_t> current_cycle() const;
  /// Moves the cursor to the given edge index. Throws on out-of-range.
  void seek_cycle(size_t cycle);
  /// Steps one edge forward/backward; returns false at the trace ends.
  bool step_forward();
  bool step_backward();

  // -- values ------------------------------------------------------------------
  [[nodiscard]] std::optional<common::BitVector> value(
      const std::string& hier_name) const;

 private:
  VcdTrace trace_;
  std::vector<uint64_t> edges_;
  uint64_t time_ = 0;
};

}  // namespace hgdb::trace

#endif  // HGDB_TRACE_REPLAY_H
