#ifndef HGDB_TRACE_VCD_READER_H
#define HGDB_TRACE_VCD_READER_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bitvector.h"
#include "waveform/storage_backend.h"
#include "waveform/waveform_source.h"

namespace hgdb::trace {

/// One traced variable (alias of the waveform-layer signal descriptor).
using VcdVar = waveform::SignalInfo;

/// A fully in-memory waveform store with per-signal time-indexed change
/// lists, parsed from VCD text by the streaming parser.
///
/// This is the small-trace fast path of the replay flow (paper Sec. 3.3):
/// the VCD carries the design hierarchy but no definition information, so
/// the debugger matches symbol-table instance names onto it by substring
/// matching. X/Z values are mapped to 0 (the runtime is two-state).
/// Id-code aliases (several $var names on one net) share a single change
/// list through a canonical-id indirection — N aliased names cost one
/// stream's memory, not N.
/// For production-scale dumps use waveform::IndexedWaveform, which answers
/// the same WaveformSource queries from an on-disk block index.
class VcdTrace final : public waveform::WaveformSource {
 public:
  [[nodiscard]] const std::vector<VcdVar>& vars() const { return vars_; }
  [[nodiscard]] std::optional<size_t> var_index(const std::string& name) const;
  [[nodiscard]] uint64_t max_time() const override { return max_time_; }

  // -- waveform::WaveformSource -------------------------------------------------
  [[nodiscard]] size_t signal_count() const override { return vars_.size(); }
  [[nodiscard]] const waveform::SignalInfo& signal(size_t index) const override {
    return vars_[index];
  }
  [[nodiscard]] std::optional<size_t> signal_index(
      const std::string& hier_name) const override {
    return var_index(hier_name);
  }
  [[nodiscard]] size_t canonical_index(size_t index) const override {
    return canonical_[index];
  }

  /// Value of variable `index` at `time` (last change at or before `time`;
  /// zero before the first change).
  [[nodiscard]] common::BitVector value_at(size_t index,
                                           uint64_t time) const override;

  /// Times at which the variable transitions 0 -> nonzero.
  [[nodiscard]] std::vector<uint64_t> rising_edges(size_t index) const override;

  /// Change list (time, value), sorted by time — the canonical signal's
  /// list for aliased indexes.
  [[nodiscard]] const std::vector<std::pair<uint64_t, common::BitVector>>&
  changes(size_t index) const {
    return changes_[canonical_[index]];
  }

  /// Signals sharing another signal's change list.
  [[nodiscard]] size_t alias_count() const { return alias_count_; }

  /// Rough resident footprint of the change lists in bytes (bench proxy
  /// for comparing against the indexed store's bounded cache). Aliased
  /// streams are counted once — they are stored once.
  [[nodiscard]] size_t resident_bytes() const;

 private:
  friend class VcdTraceBuilder;
  std::vector<VcdVar> vars_;
  std::map<std::string, size_t> by_name_;
  std::vector<std::vector<std::pair<uint64_t, common::BitVector>>> changes_;
  std::vector<size_t> canonical_;  ///< change-list owner per signal
  size_t alias_count_ = 0;
  uint64_t max_time_ = 0;
};

/// Parses VCD text. Throws std::runtime_error on malformed input.
VcdTrace parse_vcd(std::string_view text);
/// Streams a VCD file through the chunked parser (constant parse memory on
/// top of the materialized change lists).
VcdTrace parse_vcd_file(const std::string& path);

/// Opens a waveform by file type: ".wvx" -> waveform::IndexedWaveform
/// (on-disk index, LRU-bounded residency; `io_mode` picks the storage
/// backend), anything else -> in-memory VcdTrace parse.
std::shared_ptr<waveform::WaveformSource> open_waveform(
    const std::string& path,
    size_t cache_blocks = waveform::kDefaultCacheBlocks,
    waveform::IoMode io_mode = waveform::IoMode::kAuto);

}  // namespace hgdb::trace

#endif  // HGDB_TRACE_VCD_READER_H
