#ifndef HGDB_TRACE_VCD_READER_H
#define HGDB_TRACE_VCD_READER_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bitvector.h"

namespace hgdb::trace {

/// One traced variable.
struct VcdVar {
  std::string hier_name;  ///< dotted hierarchical name
  uint32_t width = 1;
};

/// A parsed VCD trace with per-signal time-indexed change lists.
///
/// This is the data source for offline replay (paper Sec. 3.3): the VCD
/// carries the design hierarchy but no definition information, so the
/// debugger matches symbol-table instance names onto it by substring
/// matching. X/Z values are mapped to 0 (the runtime is two-state).
class VcdTrace {
 public:
  [[nodiscard]] const std::vector<VcdVar>& vars() const { return vars_; }
  [[nodiscard]] std::optional<size_t> var_index(const std::string& name) const;
  [[nodiscard]] uint64_t max_time() const { return max_time_; }

  /// Value of variable `index` at `time` (last change at or before `time`;
  /// zero before the first change).
  [[nodiscard]] common::BitVector value_at(size_t index, uint64_t time) const;

  /// Times at which the variable transitions 0 -> nonzero.
  [[nodiscard]] std::vector<uint64_t> rising_edges(size_t index) const;

  /// Change list (time, value), sorted by time.
  [[nodiscard]] const std::vector<std::pair<uint64_t, common::BitVector>>&
  changes(size_t index) const {
    return changes_[index];
  }

 private:
  friend VcdTrace parse_vcd(std::string_view text);
  std::vector<VcdVar> vars_;
  std::map<std::string, size_t> by_name_;
  std::vector<std::vector<std::pair<uint64_t, common::BitVector>>> changes_;
  uint64_t max_time_ = 0;
};

/// Parses VCD text. Throws std::runtime_error on malformed input.
VcdTrace parse_vcd(std::string_view text);
VcdTrace parse_vcd_file(const std::string& path);

}  // namespace hgdb::trace

#endif  // HGDB_TRACE_VCD_READER_H
