#include "trace/replay.h"

#include <algorithm>
#include <stdexcept>

#include "common/strings.h"

namespace hgdb::trace {

ReplayEngine::ReplayEngine(VcdTrace trace, const std::string& clock_name)
    : trace_(std::move(trace)) {
  std::optional<size_t> clock_index;
  if (!clock_name.empty()) {
    clock_index = trace_.var_index(clock_name);
    if (!clock_index) {
      // Try a suffix match ("clock" matches "Top.clock").
      for (size_t i = 0; i < trace_.vars().size(); ++i) {
        if (common::ends_with_path(trace_.vars()[i].hier_name, clock_name)) {
          clock_index = i;
          break;
        }
      }
    }
    if (!clock_index) {
      throw std::runtime_error("replay: clock '" + clock_name +
                               "' not found in trace");
    }
  } else {
    for (size_t i = 0; i < trace_.vars().size(); ++i) {
      const auto& var = trace_.vars()[i];
      if (var.width != 1) continue;
      const auto parts = common::split(var.hier_name, '.');
      const std::string& leaf = parts.back();
      if (leaf == "clock" || leaf == "clk") {
        clock_index = i;
        break;
      }
    }
    if (!clock_index) {
      throw std::runtime_error(
          "replay: no clock variable found (pass clock_name explicitly)");
    }
  }
  edges_ = trace_.rising_edges(*clock_index);
}

std::optional<size_t> ReplayEngine::current_cycle() const {
  auto it = std::upper_bound(edges_.begin(), edges_.end(), time_);
  if (it == edges_.begin()) return std::nullopt;
  return static_cast<size_t>(std::distance(edges_.begin(), it)) - 1;
}

void ReplayEngine::seek_cycle(size_t cycle) {
  if (cycle >= edges_.size()) {
    throw std::out_of_range("replay: cycle " + std::to_string(cycle) +
                            " beyond trace end (" +
                            std::to_string(edges_.size()) + " cycles)");
  }
  time_ = edges_[cycle];
}

bool ReplayEngine::step_forward() {
  auto cycle = current_cycle();
  const size_t next = cycle ? *cycle + 1 : 0;
  if (next >= edges_.size()) return false;
  time_ = edges_[next];
  return true;
}

bool ReplayEngine::step_backward() {
  auto cycle = current_cycle();
  if (!cycle || *cycle == 0) return false;
  time_ = edges_[*cycle - 1];
  return true;
}

std::optional<common::BitVector> ReplayEngine::value(
    const std::string& hier_name) const {
  auto index = trace_.var_index(hier_name);
  if (!index) return std::nullopt;
  return trace_.value_at(*index, time_);
}

}  // namespace hgdb::trace
