#include "trace/replay.h"

#include <algorithm>
#include <stdexcept>

namespace hgdb::trace {

ReplayEngine::ReplayEngine(
    std::shared_ptr<const waveform::WaveformSource> source,
    const std::string& clock_name)
    : source_(std::move(source)) {
  if (!source_) throw std::runtime_error("replay: null waveform source");
  const size_t clock_index = waveform::resolve_clock(*source_, clock_name);
  clock_name_ = source_->signal(clock_index).hier_name;
  edges_ = source_->rising_edges(clock_index);
  if (edges_.empty()) {
    throw std::runtime_error("replay: clock '" + clock_name_ +
                             "' never rises in the trace (empty edge grid); "
                             "pass a different clock_name");
  }
}

ReplayEngine::ReplayEngine(VcdTrace trace, const std::string& clock_name)
    : ReplayEngine(std::make_shared<VcdTrace>(std::move(trace)), clock_name) {}

std::optional<size_t> ReplayEngine::current_cycle() const {
  auto it = std::upper_bound(edges_.begin(), edges_.end(), time_);
  if (it == edges_.begin()) return std::nullopt;
  return static_cast<size_t>(std::distance(edges_.begin(), it)) - 1;
}

void ReplayEngine::seek_cycle(size_t cycle) {
  if (cycle >= edges_.size()) {
    throw std::out_of_range("replay: cycle " + std::to_string(cycle) +
                            " beyond trace end (" +
                            std::to_string(edges_.size()) + " cycles)");
  }
  time_ = edges_[cycle];
}

bool ReplayEngine::step_forward() {
  auto cycle = current_cycle();
  const size_t next = cycle ? *cycle + 1 : 0;
  if (next >= edges_.size()) return false;
  time_ = edges_[next];
  return true;
}

bool ReplayEngine::step_backward() {
  auto cycle = current_cycle();
  if (!cycle || *cycle == 0) return false;
  time_ = edges_[*cycle - 1];
  return true;
}

std::optional<common::BitVector> ReplayEngine::value(
    const std::string& hier_name) const {
  auto index = source_->signal_index(hier_name);
  if (!index) return std::nullopt;
  return source_->value_at(*index, time_);
}

std::optional<size_t> ReplayEngine::signal_index(
    const std::string& hier_name) const {
  // Canonicalize: aliased names resolve to the index owning the change
  // stream, so repeated-read plans (the batched breakpoint fetch) and the
  // block cache see one signal per net, not one per name.
  auto index = source_->signal_index(hier_name);
  if (!index) return std::nullopt;
  return source_->canonical_index(*index);
}

common::BitVector ReplayEngine::value_at(size_t index) const {
  return source_->value_at(index, time_);
}

}  // namespace hgdb::trace
