#ifndef HGDB_RUNTIME_THREAD_POOL_H
#define HGDB_RUNTIME_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <functional>
#include <thread>
#include <vector>

#include "common/checked_mutex.h"

namespace hgdb::runtime {

/// Minimal fork-join pool used by the Fig. 2 scheduler to "evaluate each
/// breakpoint condition in parallel". One job at a time; the calling
/// thread participates in the work, so a pool of size 1 degenerates to
/// sequential evaluation with no synchronization overhead on the workers.
class ThreadPool {
 public:
  /// Jobs with at most this many items run inline on the caller: waking
  /// workers costs microseconds, which dwarfs a handful of compiled
  /// condition evaluations. Single-breakpoint designs therefore never pay
  /// wake-up latency on the clock-edge path.
  static constexpr size_t kDefaultSerialCutoff = 4;

  explicit ThreadPool(size_t threads,
                      size_t serial_cutoff = kDefaultSerialCutoff);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] size_t size() const { return workers_.size() + 1; }
  [[nodiscard]] size_t serial_cutoff() const { return serial_cutoff_; }

  /// Runs fn(0) .. fn(n-1), partitioned over all threads; blocks until
  /// every call returns. fn must be safe to call concurrently. Jobs of at
  /// most serial_cutoff() items are dispatched inline on the caller.
  void parallel_for(size_t n, const std::function<void(size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  size_t serial_cutoff_;
  common::PoolMutex mutex_{"pool::work"};
  std::condition_variable_any work_ready_;
  std::condition_variable_any work_done_;
  const std::function<void(size_t)>* job_ HGDB_GUARDED_BY(mutex_) = nullptr;
  size_t job_size_ HGDB_GUARDED_BY(mutex_) = 0;
  uint64_t generation_ HGDB_GUARDED_BY(mutex_) = 0;
  std::atomic<size_t> next_index_{0};
  std::atomic<size_t> active_workers_{0};
  bool shutdown_ HGDB_GUARDED_BY(mutex_) = false;
};

}  // namespace hgdb::runtime

#endif  // HGDB_RUNTIME_THREAD_POOL_H
