#include "runtime/expression.h"

#include <cctype>
#include <stdexcept>
#include <vector>

#include "ir/eval.h"
#include "ir/expr.h"

namespace hgdb::runtime {

using common::BitVector;
using ir::PrimOp;

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

struct Expression::Node {
  enum class Kind : uint8_t { Literal, Name, Op };
  Kind kind = Kind::Literal;
  BitVector literal{1, 0};
  bool literal_signed = false;
  std::string name;
  PrimOp op = PrimOp::Add;
  std::vector<uint32_t> int_params;
  std::vector<std::unique_ptr<Node>> children;
  /// Logical (&&, ||, !) ops coerce operands to booleans first.
  bool logical = false;
};

namespace {

using Node = Expression::Node;

}  // namespace

// The out-of-line special members must see the complete Node type.
Expression::Expression(std::unique_ptr<Node> root, std::string text,
                       std::set<std::string> names)
    : root_(std::move(root)), text_(std::move(text)), names_(std::move(names)) {}
Expression::Expression(Expression&&) noexcept = default;
Expression& Expression::operator=(Expression&&) noexcept = default;
Expression::~Expression() = default;

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind : uint8_t { Name, Number, TypedLiteral, Punct, End };
  Kind kind = Kind::End;
  std::string text;       // Name / Punct spelling
  BitVector value{1, 0};  // Number / TypedLiteral
  bool is_signed = false;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { advance(); }

  [[nodiscard]] const Token& peek() const { return current_; }
  Token next() {
    Token token = current_;
    advance();
    return token;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw std::invalid_argument("expression error at offset " +
                                std::to_string(pos_) + ": " + message);
  }

 private:
  void advance() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      current_ = Token{};
      return;
    }
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      lex_name_or_literal();
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      lex_number();
      return;
    }
    lex_punct();
  }

  void lex_name_or_literal() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '$')) {
      ++pos_;
    }
    std::string name = text_.substr(start, pos_ - start);
    // Typed literal: UInt<8>(42) / SInt<4>(-3).
    if ((name == "UInt" || name == "SInt") && pos_ < text_.size() &&
        text_[pos_] == '<') {
      ++pos_;
      const uint32_t width = static_cast<uint32_t>(lex_raw_int());
      expect('>');
      expect('(');
      const int64_t value = lex_raw_int();
      expect(')');
      current_.kind = Token::Kind::TypedLiteral;
      current_.value = BitVector(width, static_cast<uint64_t>(value));
      current_.is_signed = name == "SInt";
      return;
    }
    // Path suffixes are part of the name: a.b[3].c matches the symbol
    // table's flattened source names verbatim.
    while (pos_ < text_.size()) {
      if (text_[pos_] == '.') {
        size_t probe = pos_ + 1;
        if (probe >= text_.size() ||
            !(std::isalpha(static_cast<unsigned char>(text_[probe])) ||
              text_[probe] == '_' || text_[probe] == '$')) {
          break;
        }
        name.push_back('.');
        pos_ = probe;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '$')) {
          name.push_back(text_[pos_]);
          ++pos_;
        }
        continue;
      }
      if (text_[pos_] == '[') {
        size_t probe = pos_ + 1;
        std::string digits;
        while (probe < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[probe]))) {
          digits.push_back(text_[probe]);
          ++probe;
        }
        if (digits.empty() || probe >= text_.size() || text_[probe] != ']') {
          break;
        }
        name += "[" + digits + "]";
        pos_ = probe + 1;
        continue;
      }
      break;
    }
    current_.kind = Token::Kind::Name;
    current_.text = std::move(name);
  }

  int64_t lex_raw_int() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool negative = false;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("expected integer");
    }
    int64_t value = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      value = value * 10 + (text_[pos_] - '0');
      ++pos_;
    }
    return negative ? -value : value;
  }

  void expect(char c) {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  void lex_number() {
    uint64_t value = 0;
    uint32_t width = 0;
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        (text_[pos_ + 1] == 'x' || text_[pos_ + 1] == 'X')) {
      pos_ += 2;
      const size_t start = pos_;
      while (pos_ < text_.size() &&
             std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
        value = value * 16 +
                static_cast<uint64_t>(
                    std::isdigit(static_cast<unsigned char>(text_[pos_]))
                        ? text_[pos_] - '0'
                        : std::tolower(text_[pos_]) - 'a' + 10);
        ++pos_;
      }
      if (pos_ == start) fail("bad hex literal");
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        value = value * 10 + static_cast<uint64_t>(text_[pos_] - '0');
        ++pos_;
      }
    }
    // Bare numbers behave like software-debugger integers: 64-bit, so
    // mixed-width arithmetic never wraps unexpectedly. Typed literals
    // (UInt<w>(v)) give exact widths when wanted.
    width = 64;
    current_.kind = Token::Kind::Number;
    current_.value = BitVector(width, value);
    current_.is_signed = false;
  }

  void lex_punct() {
    static const char* kTwoChar[] = {"==", "!=", "<=", ">=", "&&", "||", "<<", ">>"};
    for (const char* op : kTwoChar) {
      if (text_.compare(pos_, 2, op) == 0) {
        current_.kind = Token::Kind::Punct;
        current_.text = op;
        pos_ += 2;
        return;
      }
    }
    static const std::string kOneChar = "+-*/%&|^~!<>(),";
    if (kOneChar.find(text_[pos_]) != std::string::npos) {
      current_.kind = Token::Kind::Punct;
      current_.text = std::string(1, text_[pos_]);
      ++pos_;
      return;
    }
    fail(std::string("unexpected character '") + text_[pos_] + "'");
  }

  const std::string& text_;
  size_t pos_ = 0;
  Token current_;
};

// ---------------------------------------------------------------------------
// Parser (precedence climbing)
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(const std::string& text) : lexer_(text) {}

  std::unique_ptr<Node> parse() {
    auto node = parse_binary(0);
    if (lexer_.peek().kind != Token::Kind::End) {
      lexer_.fail("trailing tokens");
    }
    return node;
  }

  std::set<std::string> take_names() { return std::move(names_); }

 private:
  struct OpInfo {
    const char* spelling;
    int precedence;
    PrimOp op;
    bool logical;
  };

  static const OpInfo* binary_op(const std::string& text) {
    static const OpInfo kOps[] = {
        {"||", 1, PrimOp::Or, true},   {"&&", 2, PrimOp::And, true},
        {"|", 3, PrimOp::Or, false},   {"^", 4, PrimOp::Xor, false},
        {"&", 5, PrimOp::And, false},  {"==", 6, PrimOp::Eq, false},
        {"!=", 6, PrimOp::Neq, false}, {"<", 7, PrimOp::Lt, false},
        {"<=", 7, PrimOp::Leq, false}, {">", 7, PrimOp::Gt, false},
        {">=", 7, PrimOp::Geq, false}, {"<<", 8, PrimOp::Dshl, false},
        {">>", 8, PrimOp::Dshr, false},{"+", 9, PrimOp::Add, false},
        {"-", 9, PrimOp::Sub, false},  {"*", 10, PrimOp::Mul, false},
        {"/", 10, PrimOp::Div, false}, {"%", 10, PrimOp::Rem, false},
    };
    for (const auto& info : kOps) {
      if (text == info.spelling) return &info;
    }
    return nullptr;
  }

  std::unique_ptr<Node> parse_binary(int min_precedence) {
    auto lhs = parse_unary();
    while (lexer_.peek().kind == Token::Kind::Punct) {
      const OpInfo* info = binary_op(lexer_.peek().text);
      if (info == nullptr || info->precedence < min_precedence) break;
      lexer_.next();
      auto rhs = parse_binary(info->precedence + 1);
      auto node = std::make_unique<Node>();
      node->kind = Node::Kind::Op;
      node->op = info->op;
      node->logical = info->logical;
      node->children.push_back(std::move(lhs));
      node->children.push_back(std::move(rhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  std::unique_ptr<Node> parse_unary() {
    if (lexer_.peek().kind == Token::Kind::Punct) {
      // Copy: next() overwrites the token the peek reference points into.
      const std::string text = lexer_.peek().text;
      if (text == "!" || text == "~" || text == "-") {
        lexer_.next();
        auto operand = parse_unary();
        auto node = std::make_unique<Node>();
        node->kind = Node::Kind::Op;
        node->op = text == "-" ? PrimOp::Neg : PrimOp::Not;
        node->logical = text == "!";
        node->children.push_back(std::move(operand));
        return node;
      }
      if (text == "(") {
        lexer_.next();
        auto node = parse_binary(0);
        expect_punct(")");
        return node;
      }
    }
    return parse_primary();
  }

  std::unique_ptr<Node> parse_primary() {
    Token token = lexer_.next();
    auto node = std::make_unique<Node>();
    switch (token.kind) {
      case Token::Kind::Number:
      case Token::Kind::TypedLiteral:
        node->kind = Node::Kind::Literal;
        node->literal = token.value;
        node->literal_signed = token.is_signed;
        return node;
      case Token::Kind::Name: {
        // Call syntax for IR primitives: add(a, b), bits(x, 7, 0), ...
        PrimOp op;
        if (lexer_.peek().kind == Token::Kind::Punct &&
            lexer_.peek().text == "(" && ir::prim_op_from_name(token.text, &op)) {
          lexer_.next();
          node->kind = Node::Kind::Op;
          node->op = op;
          if (!(lexer_.peek().kind == Token::Kind::Punct &&
                lexer_.peek().text == ")")) {
            while (true) {
              // bits/pad/shl/shr integer parameters arrive as numbers in
              // trailing positions; treat trailing pure numbers for param-
              // taking ops as int params.
              node->children.push_back(parse_binary(0));
              if (lexer_.peek().kind == Token::Kind::Punct &&
                  lexer_.peek().text == ",") {
                lexer_.next();
                continue;
              }
              break;
            }
          }
          expect_punct(")");
          split_int_params(*node);
          return node;
        }
        node->kind = Node::Kind::Name;
        node->name = token.text;
        names_.insert(token.text);
        return node;
      }
      default:
        lexer_.fail("expected value");
    }
  }

  /// For ops that take integer parameters (bits, pad, shl, shr), move the
  /// trailing literal children into int_params.
  static void split_int_params(Node& node) {
    size_t param_count = 0;
    switch (node.op) {
      case PrimOp::Bits: param_count = 2; break;
      case PrimOp::Pad:
      case PrimOp::Shl:
      case PrimOp::Shr: param_count = 1; break;
      default: return;
    }
    if (node.children.size() < param_count) return;
    for (size_t i = node.children.size() - param_count;
         i < node.children.size(); ++i) {
      if (node.children[i]->kind != Node::Kind::Literal) {
        throw std::invalid_argument("expression error: " +
                                    std::string(ir::prim_op_name(node.op)) +
                                    " parameters must be integer literals");
      }
      node.int_params.push_back(
          static_cast<uint32_t>(node.children[i]->literal.to_uint64()));
    }
    node.children.resize(node.children.size() - param_count);
  }

  void expect_punct(const std::string& text) {
    if (lexer_.peek().kind != Token::Kind::Punct || lexer_.peek().text != text) {
      lexer_.fail("expected '" + text + "'");
    }
    lexer_.next();
  }

  Lexer lexer_;
  std::set<std::string> names_;
};

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

struct Value {
  BitVector bits{1, 0};
  bool is_signed = false;
};

Value evaluate_node(const Node& node, const Expression::Resolver& resolver) {
  switch (node.kind) {
    case Node::Kind::Literal:
      return {node.literal, node.literal_signed};
    case Node::Kind::Name: {
      auto value = resolver(node.name);
      if (!value) {
        throw std::runtime_error("cannot resolve symbol '" + node.name + "'");
      }
      return {std::move(*value), false};
    }
    case Node::Kind::Op:
      break;
  }
  std::vector<Value> operands;
  operands.reserve(node.children.size());
  for (const auto& child : node.children) {
    operands.push_back(evaluate_node(*child, resolver));
  }
  if (node.logical) {
    // Coerce operands to booleans first; then And/Or/Not are exact.
    for (auto& operand : operands) {
      operand = {BitVector(1, operand.bits.to_bool() ? 1 : 0), false};
    }
  }
  // Determine the result width.
  uint32_t width = 1;
  switch (node.op) {
    case PrimOp::Add: case PrimOp::Sub: case PrimOp::Mul:
    case PrimOp::Div: case PrimOp::Rem: case PrimOp::And:
    case PrimOp::Or: case PrimOp::Xor:
      width = std::max(operands[0].bits.width(), operands[1].bits.width());
      break;
    case PrimOp::Mux:
      width = std::max(operands[1].bits.width(), operands[2].bits.width());
      break;
    case PrimOp::Not: case PrimOp::Neg:
    case PrimOp::Dshl: case PrimOp::Dshr:
    case PrimOp::AsUInt: case PrimOp::AsSInt: case PrimOp::AsClock:
      width = operands[0].bits.width();
      break;
    case PrimOp::Cat:
      width = operands[0].bits.width() + operands[1].bits.width();
      break;
    case PrimOp::Bits:
      width = node.int_params[0] - node.int_params[1] + 1;
      break;
    case PrimOp::Shl: case PrimOp::Shr:
      width = operands[0].bits.width();
      break;
    case PrimOp::Pad:
      width = node.int_params[0];
      break;
    case PrimOp::Lt: case PrimOp::Leq: case PrimOp::Gt: case PrimOp::Geq:
    case PrimOp::Eq: case PrimOp::Neq:
    case PrimOp::AndR: case PrimOp::OrR: case PrimOp::XorR:
      width = 1;
      break;
  }
  std::vector<BitVector> bits;
  std::vector<bool> signs;
  bits.reserve(operands.size());
  for (const auto& operand : operands) {
    bits.push_back(operand.bits);
    signs.push_back(operand.is_signed);
  }
  // Mux with unequal arm widths: extend both arms.
  if (node.op == PrimOp::Mux) {
    bits[1] = bits[1].resize(width, signs[1]);
    bits[2] = bits[2].resize(width, signs[2]);
  }
  BitVector result = ir::eval_prim(node.op, bits, signs, node.int_params, width);
  if (result.width() != width) result = result.resize(width);
  const bool result_signed =
      (node.op == PrimOp::AsSInt) ||
      (!signs.empty() && signs[0] &&
       (node.op == PrimOp::Add || node.op == PrimOp::Sub ||
        node.op == PrimOp::Mul || node.op == PrimOp::Div ||
        node.op == PrimOp::Rem || node.op == PrimOp::Neg));
  return {std::move(result), result_signed};
}

}  // namespace

Expression Expression::parse(const std::string& text) {
  Parser parser(text);
  auto root = parser.parse();
  return Expression(std::move(root), text, parser.take_names());
}

BitVector Expression::evaluate(const Resolver& resolver) const {
  return evaluate_node(*root_, resolver).bits;
}

bool Expression::evaluate_bool(const Resolver& resolver) const {
  return evaluate(resolver).to_bool();
}

}  // namespace hgdb::runtime
