#include "runtime/expression.h"

#include <cctype>
#include <map>
#include <stdexcept>
#include <vector>

#include "ir/eval.h"
#include "ir/expr.h"

namespace hgdb::runtime {

using common::BitVector;
using ir::PrimOp;

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

struct Expression::Node {
  enum class Kind : uint8_t { Literal, Name, Op };
  Kind kind = Kind::Literal;
  BitVector literal{1, 0};
  bool literal_signed = false;
  std::string name;
  PrimOp op = PrimOp::Add;
  std::vector<uint32_t> int_params;
  std::vector<std::unique_ptr<Node>> children;
  /// Logical (&&, ||, !) ops coerce operands to booleans first.
  bool logical = false;
};

namespace {

using Node = Expression::Node;

}  // namespace

// The out-of-line special members must see the complete Node type.
Expression::Expression(std::unique_ptr<Node> root, std::string text,
                       std::set<std::string> names)
    : root_(std::move(root)), text_(std::move(text)), names_(std::move(names)) {}
Expression::Expression(Expression&&) noexcept = default;
Expression& Expression::operator=(Expression&&) noexcept = default;
Expression::~Expression() = default;

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind : uint8_t { Name, Number, TypedLiteral, Punct, End };
  Kind kind = Kind::End;
  std::string text;       // Name / Punct spelling
  BitVector value{1, 0};  // Number / TypedLiteral
  bool is_signed = false;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { advance(); }

  [[nodiscard]] const Token& peek() const { return current_; }
  Token next() {
    Token token = current_;
    advance();
    return token;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw std::invalid_argument("expression error at offset " +
                                std::to_string(pos_) + ": " + message);
  }

 private:
  void advance() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      current_ = Token{};
      return;
    }
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      lex_name_or_literal();
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      lex_number();
      return;
    }
    lex_punct();
  }

  void lex_name_or_literal() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '$')) {
      ++pos_;
    }
    std::string name = text_.substr(start, pos_ - start);
    // Typed literal: UInt<8>(42) / SInt<4>(-3).
    if ((name == "UInt" || name == "SInt") && pos_ < text_.size() &&
        text_[pos_] == '<') {
      ++pos_;
      const uint32_t width = static_cast<uint32_t>(lex_raw_int());
      expect('>');
      expect('(');
      const int64_t value = lex_raw_int();
      expect(')');
      current_.kind = Token::Kind::TypedLiteral;
      current_.value = BitVector(width, static_cast<uint64_t>(value));
      current_.is_signed = name == "SInt";
      return;
    }
    // Path suffixes are part of the name: a.b[3].c matches the symbol
    // table's flattened source names verbatim.
    while (pos_ < text_.size()) {
      if (text_[pos_] == '.') {
        size_t probe = pos_ + 1;
        if (probe >= text_.size() ||
            !(std::isalpha(static_cast<unsigned char>(text_[probe])) ||
              text_[probe] == '_' || text_[probe] == '$')) {
          break;
        }
        name.push_back('.');
        pos_ = probe;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '$')) {
          name.push_back(text_[pos_]);
          ++pos_;
        }
        continue;
      }
      if (text_[pos_] == '[') {
        size_t probe = pos_ + 1;
        std::string digits;
        while (probe < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[probe]))) {
          digits.push_back(text_[probe]);
          ++probe;
        }
        if (digits.empty() || probe >= text_.size() || text_[probe] != ']') {
          break;
        }
        name += "[" + digits + "]";
        pos_ = probe + 1;
        continue;
      }
      break;
    }
    current_.kind = Token::Kind::Name;
    current_.text = std::move(name);
  }

  int64_t lex_raw_int() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool negative = false;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("expected integer");
    }
    int64_t value = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      value = value * 10 + (text_[pos_] - '0');
      ++pos_;
    }
    return negative ? -value : value;
  }

  void expect(char c) {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  void lex_number() {
    uint64_t value = 0;
    uint32_t width = 0;
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        (text_[pos_ + 1] == 'x' || text_[pos_ + 1] == 'X')) {
      pos_ += 2;
      const size_t start = pos_;
      while (pos_ < text_.size() &&
             std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
        value = value * 16 +
                static_cast<uint64_t>(
                    std::isdigit(static_cast<unsigned char>(text_[pos_]))
                        ? text_[pos_] - '0'
                        : std::tolower(text_[pos_]) - 'a' + 10);
        ++pos_;
      }
      if (pos_ == start) fail("bad hex literal");
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        value = value * 10 + static_cast<uint64_t>(text_[pos_] - '0');
        ++pos_;
      }
    }
    // Bare numbers behave like software-debugger integers: 64-bit, so
    // mixed-width arithmetic never wraps unexpectedly. Typed literals
    // (UInt<w>(v)) give exact widths when wanted.
    width = 64;
    current_.kind = Token::Kind::Number;
    current_.value = BitVector(width, value);
    current_.is_signed = false;
  }

  void lex_punct() {
    static const char* kTwoChar[] = {"==", "!=", "<=", ">=", "&&", "||", "<<", ">>"};
    for (const char* op : kTwoChar) {
      if (text_.compare(pos_, 2, op) == 0) {
        current_.kind = Token::Kind::Punct;
        current_.text = op;
        pos_ += 2;
        return;
      }
    }
    static const std::string kOneChar = "+-*/%&|^~!<>(),";
    if (kOneChar.find(text_[pos_]) != std::string::npos) {
      current_.kind = Token::Kind::Punct;
      current_.text = std::string(1, text_[pos_]);
      ++pos_;
      return;
    }
    fail(std::string("unexpected character '") + text_[pos_] + "'");
  }

  const std::string& text_;
  size_t pos_ = 0;
  Token current_;
};

// ---------------------------------------------------------------------------
// Parser (precedence climbing)
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(const std::string& text) : lexer_(text) {}

  std::unique_ptr<Node> parse() {
    auto node = parse_binary(0);
    if (lexer_.peek().kind != Token::Kind::End) {
      lexer_.fail("trailing tokens");
    }
    return node;
  }

  std::set<std::string> take_names() { return std::move(names_); }

 private:
  struct OpInfo {
    const char* spelling;
    int precedence;
    PrimOp op;
    bool logical;
  };

  static const OpInfo* binary_op(const std::string& text) {
    static const OpInfo kOps[] = {
        {"||", 1, PrimOp::Or, true},   {"&&", 2, PrimOp::And, true},
        {"|", 3, PrimOp::Or, false},   {"^", 4, PrimOp::Xor, false},
        {"&", 5, PrimOp::And, false},  {"==", 6, PrimOp::Eq, false},
        {"!=", 6, PrimOp::Neq, false}, {"<", 7, PrimOp::Lt, false},
        {"<=", 7, PrimOp::Leq, false}, {">", 7, PrimOp::Gt, false},
        {">=", 7, PrimOp::Geq, false}, {"<<", 8, PrimOp::Dshl, false},
        {">>", 8, PrimOp::Dshr, false},{"+", 9, PrimOp::Add, false},
        {"-", 9, PrimOp::Sub, false},  {"*", 10, PrimOp::Mul, false},
        {"/", 10, PrimOp::Div, false}, {"%", 10, PrimOp::Rem, false},
    };
    for (const auto& info : kOps) {
      if (text == info.spelling) return &info;
    }
    return nullptr;
  }

  std::unique_ptr<Node> parse_binary(int min_precedence) {
    auto lhs = parse_unary();
    while (lexer_.peek().kind == Token::Kind::Punct) {
      const OpInfo* info = binary_op(lexer_.peek().text);
      if (info == nullptr || info->precedence < min_precedence) break;
      lexer_.next();
      auto rhs = parse_binary(info->precedence + 1);
      auto node = std::make_unique<Node>();
      node->kind = Node::Kind::Op;
      node->op = info->op;
      node->logical = info->logical;
      node->children.push_back(std::move(lhs));
      node->children.push_back(std::move(rhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  std::unique_ptr<Node> parse_unary() {
    if (lexer_.peek().kind == Token::Kind::Punct) {
      // Copy: next() overwrites the token the peek reference points into.
      const std::string text = lexer_.peek().text;
      if (text == "!" || text == "~" || text == "-") {
        lexer_.next();
        auto operand = parse_unary();
        auto node = std::make_unique<Node>();
        node->kind = Node::Kind::Op;
        node->op = text == "-" ? PrimOp::Neg : PrimOp::Not;
        node->logical = text == "!";
        node->children.push_back(std::move(operand));
        return node;
      }
      if (text == "(") {
        lexer_.next();
        auto node = parse_binary(0);
        expect_punct(")");
        return node;
      }
    }
    return parse_primary();
  }

  std::unique_ptr<Node> parse_primary() {
    Token token = lexer_.next();
    auto node = std::make_unique<Node>();
    switch (token.kind) {
      case Token::Kind::Number:
      case Token::Kind::TypedLiteral:
        node->kind = Node::Kind::Literal;
        node->literal = token.value;
        node->literal_signed = token.is_signed;
        return node;
      case Token::Kind::Name: {
        // Call syntax for IR primitives: add(a, b), bits(x, 7, 0), ...
        PrimOp op;
        if (lexer_.peek().kind == Token::Kind::Punct &&
            lexer_.peek().text == "(" && ir::prim_op_from_name(token.text, &op)) {
          lexer_.next();
          node->kind = Node::Kind::Op;
          node->op = op;
          if (!(lexer_.peek().kind == Token::Kind::Punct &&
                lexer_.peek().text == ")")) {
            while (true) {
              // bits/pad/shl/shr integer parameters arrive as numbers in
              // trailing positions; treat trailing pure numbers for param-
              // taking ops as int params.
              node->children.push_back(parse_binary(0));
              if (lexer_.peek().kind == Token::Kind::Punct &&
                  lexer_.peek().text == ",") {
                lexer_.next();
                continue;
              }
              break;
            }
          }
          expect_punct(")");
          split_int_params(*node);
          validate_call_arity(*node);
          return node;
        }
        node->kind = Node::Kind::Name;
        node->name = token.text;
        names_.insert(token.text);
        return node;
      }
      default:
        lexer_.fail("expected value");
    }
  }

  /// For ops that take integer parameters (bits, pad, shl, shr), move the
  /// trailing literal children into int_params.
  static void split_int_params(Node& node) {
    size_t param_count = 0;
    switch (node.op) {
      case PrimOp::Bits: param_count = 2; break;
      case PrimOp::Pad:
      case PrimOp::Shl:
      case PrimOp::Shr: param_count = 1; break;
      default: return;
    }
    if (node.children.size() < param_count) return;
    for (size_t i = node.children.size() - param_count;
         i < node.children.size(); ++i) {
      if (node.children[i]->kind != Node::Kind::Literal) {
        throw std::invalid_argument("expression error: " +
                                    std::string(ir::prim_op_name(node.op)) +
                                    " parameters must be integer literals");
      }
      node.int_params.push_back(
          static_cast<uint32_t>(node.children[i]->literal.to_uint64()));
    }
    node.children.resize(node.children.size() - param_count);
  }

  /// Rejects primitive calls with the wrong operand count. Without this
  /// check a call like add(a) parses but indexes past the operand vector
  /// at evaluation time.
  static void validate_call_arity(const Node& node) {
    size_t expected = 2;
    switch (node.op) {
      case PrimOp::Not: case PrimOp::Neg:
      case PrimOp::AndR: case PrimOp::OrR: case PrimOp::XorR:
      case PrimOp::AsUInt: case PrimOp::AsSInt: case PrimOp::AsClock:
      case PrimOp::Bits: case PrimOp::Pad:
      case PrimOp::Shl: case PrimOp::Shr:
        expected = 1;
        break;
      case PrimOp::Mux:
        expected = 3;
        break;
      default:
        break;
    }
    size_t expected_params = 0;
    if (node.op == PrimOp::Bits) expected_params = 2;
    if (node.op == PrimOp::Pad || node.op == PrimOp::Shl ||
        node.op == PrimOp::Shr) {
      expected_params = 1;
    }
    if (node.children.size() != expected ||
        node.int_params.size() != expected_params) {
      throw std::invalid_argument(
          "expression error: " + std::string(ir::prim_op_name(node.op)) +
          " expects " + std::to_string(expected) + " operand(s)" +
          (expected_params != 0
               ? " and " + std::to_string(expected_params) +
                     " integer parameter(s)"
               : std::string{}));
    }
  }

  void expect_punct(const std::string& text) {
    if (lexer_.peek().kind != Token::Kind::Punct || lexer_.peek().text != text) {
      lexer_.fail("expected '" + text + "'");
    }
    lexer_.next();
  }

  Lexer lexer_;
  std::set<std::string> names_;
};

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

struct Value {
  BitVector bits{1, 0};
  bool is_signed = false;
};

/// Result width of `op` over operand widths `w` (only the entries the op
/// uses are read) and integer params. Shared by the interpreted walk and
/// the compiled program so the two evaluators agree by construction.
uint32_t result_width_for(PrimOp op, const uint32_t* w, const uint32_t* params) {
  switch (op) {
    case PrimOp::Add: case PrimOp::Sub: case PrimOp::Mul:
    case PrimOp::Div: case PrimOp::Rem: case PrimOp::And:
    case PrimOp::Or: case PrimOp::Xor:
      return std::max(w[0], w[1]);
    case PrimOp::Mux:
      return std::max(w[1], w[2]);
    case PrimOp::Not: case PrimOp::Neg:
    case PrimOp::Dshl: case PrimOp::Dshr:
    case PrimOp::AsUInt: case PrimOp::AsSInt: case PrimOp::AsClock:
      return w[0];
    case PrimOp::Cat:
      return w[0] + w[1];
    case PrimOp::Bits:
      return params[0] - params[1] + 1;
    case PrimOp::Shl: case PrimOp::Shr:
      return w[0];
    case PrimOp::Pad:
      return params[0];
    case PrimOp::Lt: case PrimOp::Leq: case PrimOp::Gt: case PrimOp::Geq:
    case PrimOp::Eq: case PrimOp::Neq:
    case PrimOp::AndR: case PrimOp::OrR: case PrimOp::XorR:
      return 1;
  }
  return 1;
}

/// Signedness of an op result given the first operand's signedness; the
/// second half of the shared semantics contract.
bool result_signed_for(PrimOp op, bool sign0) {
  return op == PrimOp::AsSInt ||
         (sign0 && (op == PrimOp::Add || op == PrimOp::Sub ||
                    op == PrimOp::Mul || op == PrimOp::Div ||
                    op == PrimOp::Rem || op == PrimOp::Neg));
}

Value evaluate_node(const Node& node, const Expression::Resolver& resolver) {
  switch (node.kind) {
    case Node::Kind::Literal:
      return {node.literal, node.literal_signed};
    case Node::Kind::Name: {
      auto value = resolver(node.name);
      if (!value) {
        throw std::runtime_error("cannot resolve symbol '" + node.name + "'");
      }
      return {std::move(*value), false};
    }
    case Node::Kind::Op:
      break;
  }
  // Logical && / || short-circuit like the C expressions they mimic: the
  // right operand is not evaluated (and cannot fault) when the left side
  // decides the result. The compiled program mirrors this with a branch
  // instruction, so the two engines stay differentially equivalent.
  if (node.logical && node.children.size() == 2 &&
      (node.op == PrimOp::And || node.op == PrimOp::Or)) {
    const bool lhs = evaluate_node(*node.children[0], resolver).bits.to_bool();
    if (node.op == PrimOp::And && !lhs) return {BitVector(1, 0), false};
    if (node.op == PrimOp::Or && lhs) return {BitVector(1, 1), false};
    const bool rhs = evaluate_node(*node.children[1], resolver).bits.to_bool();
    return {BitVector(1, rhs ? 1 : 0), false};
  }
  std::vector<Value> operands;
  operands.reserve(node.children.size());
  for (const auto& child : node.children) {
    operands.push_back(evaluate_node(*child, resolver));
  }
  if (node.logical) {
    // Coerce operands to booleans first; then And/Or/Not are exact.
    for (auto& operand : operands) {
      operand = {BitVector(1, operand.bits.to_bool() ? 1 : 0), false};
    }
  }
  uint32_t widths[3] = {1, 1, 1};
  for (size_t i = 0; i < operands.size() && i < 3; ++i) {
    widths[i] = operands[i].bits.width();
  }
  const uint32_t width =
      result_width_for(node.op, widths, node.int_params.data());
  std::vector<BitVector> bits;
  std::vector<bool> signs;
  bits.reserve(operands.size());
  for (const auto& operand : operands) {
    bits.push_back(operand.bits);
    signs.push_back(operand.is_signed);
  }
  // Mux with unequal arm widths: extend both arms.
  if (node.op == PrimOp::Mux) {
    bits[1] = bits[1].resize(width, signs[1]);
    bits[2] = bits[2].resize(width, signs[2]);
  }
  BitVector result = ir::eval_prim(node.op, bits, signs, node.int_params, width);
  if (result.width() != width) result = result.resize(width);
  const bool result_signed =
      result_signed_for(node.op, !signs.empty() && signs[0]);
  return {std::move(result), result_signed};
}

}  // namespace

Expression Expression::parse(const std::string& text) {
  Parser parser(text);
  auto root = parser.parse();
  return Expression(std::move(root), text, parser.take_names());
}

BitVector Expression::evaluate(const Resolver& resolver) const {
  return evaluate_node(*root_, resolver).bits;
}

bool Expression::evaluate_bool(const Resolver& resolver) const {
  return evaluate(resolver).to_bool();
}

namespace {

/// Canonical AST rendering: unambiguous (every node parenthesized and
/// length-prefixed where needed) and independent of source spelling —
/// whitespace, infix vs. call syntax, and literal radix all normalize
/// away. Not meant to be pretty; meant to be a cache key.
void render_key(const Node& node, std::string& out) {
  switch (node.kind) {
    case Node::Kind::Literal:
      out += node.literal_signed ? "s" : "u";
      out += std::to_string(node.literal.width());
      out += "'";
      out += node.literal.to_string(16);
      return;
    case Node::Kind::Name:
      // Length prefix: names may contain any punctuation ('.', '[', ']').
      out += "n";
      out += std::to_string(node.name.size());
      out += ":";
      out += node.name;
      return;
    case Node::Kind::Op:
      break;
  }
  out += node.logical ? "L(" : "(";
  out += ir::prim_op_name(node.op);
  for (uint32_t param : node.int_params) {
    out += " #";
    out += std::to_string(param);
  }
  for (const auto& child : node.children) {
    out += " ";
    render_key(*child, out);
  }
  out += ")";
}

}  // namespace

std::string Expression::cache_key() const {
  std::string out;
  out.reserve(text_.size() + 16);
  render_key(*root_, out);
  return out;
}

// ---------------------------------------------------------------------------
// Compilation: AST -> flat register program
// ---------------------------------------------------------------------------

CompiledExpression Expression::compile() const {
  CompiledExpression out;
  std::map<std::string, uint32_t> slot_of;

  struct Emitter {
    CompiledExpression& out;
    std::map<std::string, uint32_t>& slot_of;

    uint32_t emit(const Node& node) {
      switch (node.kind) {
        case Node::Kind::Literal: {
          out.literals_.push_back(
              CompiledExpression::Value{node.literal, node.literal_signed});
          return CompiledExpression::encode(CompiledExpression::Src::Literal,
                                            out.literals_.size() - 1);
        }
        case Node::Kind::Name: {
          auto [it, inserted] = slot_of.try_emplace(
              node.name, static_cast<uint32_t>(out.symbols_.size()));
          if (inserted) out.symbols_.push_back(node.name);
          return CompiledExpression::encode(CompiledExpression::Src::Slot,
                                            it->second);
        }
        case Node::Kind::Op:
          break;
      }
      // Logical && / ||: lower with a short-circuit branch between the two
      // operand subprograms. Layout:
      //   [lhs subprogram]
      //   Branch  — left side decisive? write verdict into the combine's
      //             register and jump past the right subprogram
      //   [rhs subprogram]
      //   Combine — the ordinary logical And/Or over both operands
      if (node.logical && node.children.size() == 2 &&
          (node.op == PrimOp::And || node.op == PrimOp::Or)) {
        const uint32_t lhs = emit(*node.children[0]);
        CompiledExpression::Instr branch;
        branch.kind = CompiledExpression::Instr::Kind::Branch;
        branch.op = node.op;
        branch.n_operands = 1;
        branch.operands[0] = lhs;
        out.instrs_.push_back(branch);
        const size_t branch_pc = out.instrs_.size() - 1;
        const uint32_t rhs = emit(*node.children[1]);
        CompiledExpression::Instr combine;
        combine.op = node.op;
        combine.logical = true;
        combine.n_operands = 2;
        combine.operands[0] = lhs;
        combine.operands[1] = rhs;
        out.instrs_.push_back(combine);
        // Patch the branch with the combine's pc (operands[1] holds a raw
        // instruction index, not an encoded operand).
        out.instrs_[branch_pc].operands[1] =
            static_cast<uint32_t>(out.instrs_.size() - 1);
        return CompiledExpression::encode(CompiledExpression::Src::Reg,
                                          out.instrs_.size() - 1);
      }
      CompiledExpression::Instr instr;
      instr.op = node.op;
      instr.logical = node.logical;
      instr.n_operands = static_cast<uint8_t>(node.children.size());
      for (size_t i = 0; i < node.children.size(); ++i) {
        instr.operands[i] = emit(*node.children[i]);
      }
      instr.n_params = static_cast<uint8_t>(node.int_params.size());
      for (size_t i = 0; i < node.int_params.size(); ++i) {
        instr.params[i] = node.int_params[i];
      }
      out.instrs_.push_back(instr);
      return CompiledExpression::encode(CompiledExpression::Src::Reg,
                                        out.instrs_.size() - 1);
    }
  };

  out.root_ = Emitter{out, slot_of}.emit(*root_);
  return out;
}

// ---------------------------------------------------------------------------
// Compiled evaluation
// ---------------------------------------------------------------------------

namespace {

constexpr uint32_t kScalarWidth = 64;

uint64_t mask_of(uint32_t width) {  // width in [1, 64]
  return width >= kScalarWidth ? ~uint64_t{0}
                               : (uint64_t{1} << width) - uint64_t{1};
}

/// Zero-/sign-extends a normalized `from_width`-bit value to `to_width`
/// bits (both <= 64), truncating when narrower.
uint64_t extend_to(uint64_t raw, uint32_t from_width, bool is_signed,
                   uint32_t to_width) {
  uint64_t value = raw;
  if (is_signed && from_width < kScalarWidth &&
      ((raw >> (from_width - 1)) & 1u) != 0) {
    value |= ~uint64_t{0} << from_width;
  }
  return value & mask_of(to_width);
}

/// Reinterprets a normalized `width`-bit value as a signed 64-bit integer.
int64_t as_signed(uint64_t raw, uint32_t width) {
  if (width < kScalarWidth) {
    const uint64_t sign = uint64_t{1} << (width - 1);
    raw = (raw ^ sign) - sign;
  }
  return static_cast<int64_t>(raw);
}

/// Scalar (<= 64-bit) evaluation of one op, mirroring ir::eval_prim plus
/// the interpreted walk's width/extension rules. `raw` values are
/// normalized to their widths `w`. Returns false on a fault the
/// interpreted path would report by throwing (bad slice, zero-width pad).
bool eval_scalar(PrimOp op, const uint64_t* raw, const uint32_t* w,
                 const bool* signs, const uint32_t* params, uint32_t width,
                 uint64_t* out) {
  const bool is_signed = signs[0];
  switch (op) {
    case PrimOp::Add:
      *out = (extend_to(raw[0], w[0], signs[0], width) +
              extend_to(raw[1], w[1], signs[1], width)) &
             mask_of(width);
      return true;
    case PrimOp::Sub:
      *out = (extend_to(raw[0], w[0], signs[0], width) -
              extend_to(raw[1], w[1], signs[1], width)) &
             mask_of(width);
      return true;
    case PrimOp::Mul:
      *out = (extend_to(raw[0], w[0], signs[0], width) *
              extend_to(raw[1], w[1], signs[1], width)) &
             mask_of(width);
      return true;
    case PrimOp::Div: {
      const uint64_t a = extend_to(raw[0], w[0], signs[0], width);
      const uint64_t b = extend_to(raw[1], w[1], signs[1], width);
      if (b == 0) {
        *out = mask_of(width);
      } else if (is_signed) {
        const int64_t bs = as_signed(b, width);
        // bs == -1 would overflow INT64_MIN / -1; -a is always defined.
        *out = bs == -1 ? (uint64_t{0} - a) & mask_of(width)
                        : static_cast<uint64_t>(as_signed(a, width) / bs) &
                              mask_of(width);
      } else {
        *out = a / b;
      }
      return true;
    }
    case PrimOp::Rem: {
      const uint64_t a = extend_to(raw[0], w[0], signs[0], width);
      const uint64_t b = extend_to(raw[1], w[1], signs[1], width);
      if (b == 0) {
        *out = a;
      } else if (is_signed) {
        const int64_t bs = as_signed(b, width);
        *out = bs == -1 ? 0
                        : static_cast<uint64_t>(as_signed(a, width) % bs) &
                              mask_of(width);
      } else {
        *out = a % b;
      }
      return true;
    }
    case PrimOp::Lt: case PrimOp::Leq: case PrimOp::Gt: case PrimOp::Geq:
    case PrimOp::Eq: case PrimOp::Neq: {
      const uint32_t common = std::max(w[0], w[1]);
      const uint64_t a = extend_to(raw[0], w[0], signs[0], common);
      const uint64_t b = extend_to(raw[1], w[1], signs[1], common);
      bool result = false;
      switch (op) {
        case PrimOp::Lt:
          result = is_signed ? as_signed(a, common) < as_signed(b, common)
                             : a < b;
          break;
        case PrimOp::Leq:
          result = is_signed ? as_signed(a, common) <= as_signed(b, common)
                             : a <= b;
          break;
        case PrimOp::Gt:
          result = is_signed ? as_signed(a, common) > as_signed(b, common)
                             : a > b;
          break;
        case PrimOp::Geq:
          result = is_signed ? as_signed(a, common) >= as_signed(b, common)
                             : a >= b;
          break;
        case PrimOp::Eq: result = a == b; break;
        case PrimOp::Neq: result = a != b; break;
        default: break;
      }
      *out = result ? 1 : 0;
      return true;
    }
    case PrimOp::And:
      *out = extend_to(raw[0], w[0], signs[0], width) &
             extend_to(raw[1], w[1], signs[1], width);
      return true;
    case PrimOp::Or:
      *out = extend_to(raw[0], w[0], signs[0], width) |
             extend_to(raw[1], w[1], signs[1], width);
      return true;
    case PrimOp::Xor:
      *out = extend_to(raw[0], w[0], signs[0], width) ^
             extend_to(raw[1], w[1], signs[1], width);
      return true;
    case PrimOp::Not:
      *out = ~raw[0] & mask_of(w[0]);
      return true;
    case PrimOp::Neg:
      *out = (uint64_t{0} - raw[0]) & mask_of(w[0]);
      return true;
    case PrimOp::AndR:
      *out = raw[0] == mask_of(w[0]) ? 1 : 0;
      return true;
    case PrimOp::OrR:
      *out = raw[0] != 0 ? 1 : 0;
      return true;
    case PrimOp::XorR:
      *out = static_cast<uint64_t>(__builtin_popcountll(raw[0])) & 1u;
      return true;
    case PrimOp::Cat:
      *out = (raw[0] << w[1]) | raw[1];
      return true;
    case PrimOp::Bits:
      if (params[1] > params[0] || params[0] >= w[0]) return false;
      *out = (raw[0] >> params[1]) & mask_of(params[0] - params[1] + 1);
      return true;
    case PrimOp::Shl:
      *out = params[0] >= w[0] ? 0 : (raw[0] << params[0]) & mask_of(w[0]);
      return true;
    case PrimOp::Shr:
      if (params[0] >= w[0]) {
        *out = is_signed && ((raw[0] >> (w[0] - 1)) & 1u) ? mask_of(w[0]) : 0;
      } else if (is_signed) {
        *out = static_cast<uint64_t>(as_signed(raw[0], w[0]) >> params[0]) &
               mask_of(w[0]);
      } else {
        *out = raw[0] >> params[0];
      }
      return true;
    case PrimOp::Dshl:
      *out = raw[1] >= w[0] ? 0 : (raw[0] << raw[1]) & mask_of(w[0]);
      return true;
    case PrimOp::Dshr:
      if (raw[1] >= w[0]) {
        *out = is_signed && ((raw[0] >> (w[0] - 1)) & 1u) ? mask_of(w[0]) : 0;
      } else if (is_signed) {
        *out = static_cast<uint64_t>(as_signed(raw[0], w[0]) >>
                                     static_cast<uint32_t>(raw[1])) &
               mask_of(w[0]);
      } else {
        *out = raw[0] >> raw[1];
      }
      return true;
    case PrimOp::Pad:
      if (params[0] == 0) return false;
      *out = params[0] <= w[0] ? raw[0] & mask_of(params[0])
                               : extend_to(raw[0], w[0], is_signed, params[0]);
      return true;
    case PrimOp::AsUInt: case PrimOp::AsSInt: case PrimOp::AsClock:
      *out = raw[0];
      return true;
    case PrimOp::Mux: {
      const uint32_t arm = raw[0] != 0 ? 1 : 2;
      *out = extend_to(raw[arm], w[arm], signs[arm], width);
      return true;
    }
  }
  return false;
}

}  // namespace

const BitVector* CompiledExpression::evaluate(
    const common::BitVector* const* slots, Scratch& scratch) const {
  if (scratch.regs.size() < instrs_.size()) scratch.regs.resize(instrs_.size());

  // Resolving an encoded operand yields (bits, signedness).
  const auto view = [&](uint32_t operand) -> std::pair<const BitVector*, bool> {
    const uint32_t index = operand & kIndexMask;
    switch (static_cast<Src>(operand >> kSrcShift)) {
      case Src::Reg: {
        const Value& value = scratch.regs[index];
        return {&value.bits, value.is_signed};
      }
      case Src::Slot:
        return {slots[index], false};
      case Src::Literal: {
        const Value& value = literals_[index];
        return {&value.bits, value.is_signed};
      }
    }
    return {nullptr, false};
  };

  for (size_t pc = 0; pc < instrs_.size(); ++pc) {
    const Instr& instr = instrs_[pc];
    ++scratch.ops_executed;
    if (instr.kind == Instr::Kind::Branch) {
      // Logical short-circuit: when the left operand decides a && / ||,
      // write the verdict into the combine instruction's register and skip
      // the right-hand subprogram (operands[1] is the combine's pc).
      const auto [lhs_bits, lhs_signed] = view(instr.operands[0]);
      (void)lhs_signed;
      if (lhs_bits == nullptr) return nullptr;  // unavailable slot
      const bool lhs = lhs_bits->to_bool();
      const bool decisive = instr.op == PrimOp::And ? !lhs : lhs;
      if (decisive) {
        const size_t target = instr.operands[1];
        Value& reg = scratch.regs[target];
        reg.bits.reset(1, instr.op == PrimOp::Or ? 1 : 0);
        reg.is_signed = false;
        pc = target;  // loop increment moves past the combine
      }
      continue;
    }
    const BitVector* bits[3] = {nullptr, nullptr, nullptr};
    bool signs[3] = {false, false, false};
    uint64_t raw[3] = {0, 0, 0};
    uint32_t widths[3] = {1, 1, 1};
    bool scalar = true;
    for (uint8_t i = 0; i < instr.n_operands; ++i) {
      auto [operand_bits, operand_signed] = view(instr.operands[i]);
      if (operand_bits == nullptr) return nullptr;  // unavailable slot
      if (instr.logical) {
        // Logical ops see 1-bit booleans regardless of operand width.
        raw[i] = operand_bits->to_bool() ? 1 : 0;
        widths[i] = 1;
        signs[i] = false;
        continue;
      }
      bits[i] = operand_bits;
      signs[i] = operand_signed;
      widths[i] = operand_bits->width();
      if (widths[i] <= kScalarWidth) {
        raw[i] = operand_bits->to_uint64();
      } else {
        scalar = false;
      }
    }

    const uint32_t width = result_width_for(instr.op, widths, instr.params);
    Value& reg = scratch.regs[pc];

    if (scalar && width <= kScalarWidth) {
      uint64_t result = 0;
      if (!eval_scalar(instr.op, raw, widths, signs, instr.params, width,
                       &result)) {
        return nullptr;
      }
      reg.bits.reset(width, result);
      reg.is_signed = result_signed_for(instr.op, signs[0]);
      continue;
    }

    // Wide operands: route through the shared ir::eval_prim reference so
    // multi-word semantics are defined in exactly one place. Rare on the
    // hot path (conditions over >64-bit signals), so the copies and the
    // exception guard are acceptable here. Logical instrs never land
    // here: their operands coerce to 1-bit above, keeping them scalar.
    scratch.wide_bits.clear();
    scratch.wide_signs.clear();
    std::vector<uint32_t> int_params(instr.params,
                                     instr.params + instr.n_params);
    for (uint8_t i = 0; i < instr.n_operands; ++i) {
      scratch.wide_bits.push_back(*bits[i]);
      scratch.wide_signs.push_back(signs[i]);
    }
    try {
      if (instr.op == PrimOp::Mux) {
        scratch.wide_bits[1] = scratch.wide_bits[1].resize(width, signs[1]);
        scratch.wide_bits[2] = scratch.wide_bits[2].resize(width, signs[2]);
      }
      BitVector result = ir::eval_prim(instr.op, scratch.wide_bits,
                                       scratch.wide_signs, int_params, width);
      if (result.width() != width) result = result.resize(width);
      reg.bits = std::move(result);
      reg.is_signed = result_signed_for(instr.op, signs[0]);
    } catch (const std::exception&) {
      return nullptr;  // faults (bad slice, ...) degrade to "unavailable"
    }
  }

  return view(root_).first;
}

int CompiledExpression::evaluate_bool(const common::BitVector* const* slots,
                                      Scratch& scratch) const {
  const BitVector* result = evaluate(slots, scratch);
  if (result == nullptr) return -1;
  return result->to_bool() ? 1 : 0;
}

}  // namespace hgdb::runtime
