#ifndef HGDB_RUNTIME_RUNTIME_H
#define HGDB_RUNTIME_RUNTIME_H

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/checked_mutex.h"
#include "obs/metrics.h"
#include "rpc/channel.h"
#include "rpc/protocol.h"
#include "runtime/expression.h"
#include "runtime/thread_pool.h"
#include "symbols/symbol_table.h"
#include "vpi/hierarchy.h"
#include "vpi/sim_interface.h"

namespace hgdb::session {
class SessionManager;
}  // namespace hgdb::session

namespace hgdb::runtime {

struct RuntimeOptions {
  /// Threads used to evaluate a breakpoint batch in parallel (Fig. 2 step
  /// 2). 1 = sequential; 0 = a small automatic default.
  size_t eval_threads = 0;
  /// Collect per-edge statistics (cheap counters).
  bool collect_stats = true;
  /// Evaluate breakpoint/watchpoint conditions through the compiled
  /// expression engine: symbols slot-resolved at arm time, the union of
  /// referenced signals fetched once per edge through the backend's
  /// batched-read entry point, and members whose inputs did not change
  /// since the last edge skipped entirely. false falls back to the
  /// interpreted tree walk per member — kept as the reference
  /// implementation for differential testing and as the Fig. 5 bench
  /// baseline.
  bool compiled_eval = true;
  /// Accept limit for the session layer: debugger clients (native or DAP)
  /// beyond this count are rejected with a typed `too-many-sessions`
  /// error. 0 = unlimited.
  size_t max_sessions = 0;
  /// Registry the runtime's counters and latency histograms live in.
  /// nullptr = the runtime creates a private registry, so side-by-side
  /// runtimes (tests, bench A/B cells) never mix counts. The CLI passes
  /// &obs::MetricsRegistry::global() to unify runtime, session and
  /// waveform metrics on one exposition page.
  obs::MetricsRegistry* metrics = nullptr;
  /// Per-client outbound event-queue bound (frames) for binary-events
  /// clients. When a subscriber stops reading, its queue fills to this
  /// bound and further events are *dropped* (counted in
  /// `rpc.writer.events_dropped`) — the simulation thread never blocks on
  /// a slow socket. Responses bypass the bound (request-paced).
  size_t event_queue_frames = 1024;
  /// Companion byte bound for the same queue (whichever trips first).
  size_t event_queue_bytes = 8u << 20;
  /// Disconnect a binary-events client on queue overflow instead of
  /// thinning its event stream.
  bool disconnect_slow_clients = false;
};

/// The hgdb debugger runtime (the paper's central component, Fig. 1).
///
/// Sits between a simulator (via the unified vpi::SimulatorInterface) and a
/// symbol table (via symbols::SymbolTable), emulating source breakpoints
/// at clock edges with the Fig. 2 scheduling loop:
///
///   @(posedge clk): fetch the next batch of breakpoints sharing a source
///   location -> evaluate enable + user conditions in parallel -> if any
///   hit, reconstruct stack frames and notify the debugger -> wait for a
///   command -> repeat; exit the loop when no batch is left.
///
/// The fast path — no breakpoints or watchpoints inserted — returns
/// immediately, which is why the measured simulation overhead stays under
/// 5% (Fig. 5).
///
/// Two front-end attachment modes:
///  - direct: set_stop_handler() receives stop events synchronously and
///    returns the next command (tests, scripted debugging);
///  - RPC: serve()/serve_tcp() attach debugger clients through the
///    session::SessionManager, which speaks the versioned debug protocol
///    (v2 envelopes + v1 compat) over any rpc::Channel and hosts N
///    concurrent clients against this one runtime.
class Runtime {
 public:
  using Command = rpc::CommandRequest::Command;
  using StopHandler = std::function<Command(const rpc::StopEvent&)>;

  Runtime(vpi::SimulatorInterface& interface, const symbols::SymbolTable& table,
          RuntimeOptions options = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // -- lifecycle ---------------------------------------------------------------
  /// Precomputes the breakpoint ordering (Fig. 2), parses enable
  /// conditions, builds the hierarchy mapping, and registers the clock
  /// callback with the simulator.
  void attach();
  /// Unregisters the callback.
  void detach();
  [[nodiscard]] bool attached() const { return callback_handle_.has_value(); }

  // -- breakpoints ---------------------------------------------------------------
  /// Inserts every symbol breakpoint at filename:line (all instances — the
  /// paper's concurrent "threads"). `condition` is an optional user
  /// expression evaluated in the breakpoint scope. Returns the inserted
  /// breakpoint ids (empty if the location has no breakpoint).
  ///
  /// Conditions are *refcounted per (location, condition) arm* rather than
  /// last-insert-wins: each call adds one reference (empty condition = an
  /// unconditional arm), the breakpoint fires when any armed condition
  /// matches (or an unconditional arm exists), and each hit frame records
  /// which condition texts matched so the session layer can route the stop
  /// to exactly the sessions whose own condition fired.
  std::vector<int64_t> add_breakpoint(const std::string& filename, uint32_t line,
                                      const std::string& condition = "");
  /// Drops one reference from the (location, condition) arm added by
  /// add_breakpoint. Returns how many breakpoints became fully un-armed
  /// (their last reference died).
  size_t release_breakpoint(const std::string& filename, uint32_t line,
                            const std::string& condition = "");
  /// Force-removes every arm at a location regardless of refcounts
  /// (line 0 = whole file). Returns the number removed.
  size_t remove_breakpoint(const std::string& filename, uint32_t line);
  void clear_breakpoints();
  [[nodiscard]] size_t inserted_count() const;

  /// One currently-inserted breakpoint (`breakpoint-list` / `info`).
  struct InsertedBreakpoint {
    int64_t id = 0;
    std::string filename;
    uint32_t line = 0;
    std::string instance_name;
  };
  [[nodiscard]] std::vector<InsertedBreakpoint> inserted_breakpoints() const;

  // -- watchpoints -------------------------------------------------------------
  /// Arms a signal watchpoint: `expression` is re-evaluated on the batch
  /// path at every rising edge (in `instance_name`'s scope; empty = top)
  /// and a stop fires whenever its value changes. Returns the watch id.
  /// Throws std::invalid_argument on a malformed expression and
  /// std::out_of_range on an unknown instance.
  int64_t add_watchpoint(const std::string& expression,
                         const std::string& instance_name = "");
  bool remove_watchpoint(int64_t id);
  [[nodiscard]] size_t watchpoint_count() const;

  // -- value-change subscriptions ----------------------------------------------
  /// One signal's new value reported by a subscription: the name as the
  /// subscriber wrote it, plus the post-edge value.
  struct SignalChange {
    std::string name;
    common::BitVector value;
  };
  /// Called on the simulation thread once per rising edge and subscription
  /// with the signals that changed since the subscription's last report
  /// (change-serial driven — an edge where nothing changed emits nothing).
  using ChangeListener = std::function<void(
      int64_t subscription_id, uint64_t time,
      const std::vector<SignalChange>& changes)>;
  void set_change_listener(ChangeListener listener);
  /// Subscribes to value changes of `names` (resolved in `instance_name`'s
  /// scope; empty = top). The signals join the per-edge batched-fetch plan
  /// — no extra per-edge fetch round — and change detection rides the
  /// plan's change serials. The first edge after subscribing reports the
  /// then-current values as an initial snapshot. Returns the subscription
  /// id. Throws std::out_of_range on an unknown name or instance.
  int64_t add_signal_subscription(const std::vector<std::string>& names,
                                  const std::string& instance_name = "");
  bool remove_signal_subscription(int64_t id);
  [[nodiscard]] size_t subscription_count() const;

  // -- direct-mode control ---------------------------------------------------------
  void set_stop_handler(StopHandler handler);
  /// Requests a stop at the next statement boundary (protocol `pause`).
  void request_pause() { pause_pending_.store(true); }

  // -- RPC service -------------------------------------------------------------------
  /// Attaches one debugger client on `channel`. May be called repeatedly:
  /// every call adds a concurrent session (the session layer broadcasts
  /// stop events to all of them and tracks per-session ownership).
  void serve(std::unique_ptr<rpc::Channel> channel);
  /// Listens on loopback TCP (0 = ephemeral) and accepts any number of
  /// clients; returns the bound port.
  uint16_t serve_tcp(uint16_t port = 0);
  /// Listens for Debug Adapter Protocol clients (VSCode) on loopback TCP
  /// (0 = ephemeral); returns the bound port. DAP sessions share the same
  /// DebugService core as native-protocol clients.
  uint16_t serve_dap(uint16_t port = 0);
  /// Disconnects every client and stops the accept loop.
  void stop_service();
  /// The session layer, if serve()/serve_tcp() started it (else nullptr).
  [[nodiscard]] session::SessionManager* session_manager();

  // -- evaluation --------------------------------------------------------------------
  /// Evaluates an expression in a breakpoint's scope (locals, then
  /// generator variables, then raw RTL names) or, when `breakpoint_id` is
  /// nullopt, against `instance_name` (empty = top).
  [[nodiscard]] std::optional<common::BitVector> evaluate(
      const std::string& expression, std::optional<int64_t> breakpoint_id,
      const std::string& instance_name = "");
  /// Reads an instance-relative RTL path through the hierarchy mapping
  /// (variable browsing); nullopt when unresolvable.
  [[nodiscard]] std::optional<common::BitVector> read_instance_rtl(
      const std::string& instance_name, const std::string& rtl_path);
  /// Forces a signal value (protocol `set-value`); tries the name verbatim
  /// first, then mapped into the design hierarchy. False when the backend
  /// does not support set-value or the signal is unknown.
  bool set_signal_value(const std::string& hier_name,
                        const common::BitVector& value);

  // -- introspection -----------------------------------------------------------------
  struct Stats {
    uint64_t clock_edges = 0;       ///< callbacks received
    uint64_t fast_path_exits = 0;   ///< edges with no work (Fig. 2 early exit)
    uint64_t batches_evaluated = 0; ///< breakpoint batches condition-checked
    /// Breakpoint members whose expressions actually ran (members skipped
    /// because they are not inserted, or reused from the dirty-set cache,
    /// do not count).
    uint64_t conditions_evaluated = 0;
    uint64_t watchpoints_evaluated = 0;
    uint64_t stops = 0;             ///< stop events delivered
    /// Nanoseconds spent evaluating conditions/watchpoints (batch bodies).
    uint64_t eval_ns = 0;
    /// Members/watchpoints skipped because none of their input signals
    /// changed since their cached result (compiled mode only).
    uint64_t dirty_skips = 0;
    /// Batched signal-fetch rounds issued to the backend.
    uint64_t batch_fetches = 0;
    /// Signals read through the batched entry point, total.
    uint64_t batch_signals = 0;
    /// Expression programs actually lowered by compile().
    uint64_t programs_compiled = 0;
    /// Arms that reused a shared program from the normalized-AST cache
    /// instead of recompiling (CSE across instances/sessions).
    uint64_t program_cache_hits = 0;
  };
  [[nodiscard]] Stats stats() const;
  /// The registry backing stats(): all `runtime.*` counters plus the
  /// `runtime.batch_eval_ns` latency histogram. The session layer adds its
  /// `session.*` metrics here too, so one snapshot covers the stack.
  [[nodiscard]] obs::MetricsRegistry& metrics() const { return *metrics_; }
  [[nodiscard]] const RuntimeOptions& options() const { return options_; }
  [[nodiscard]] const vpi::HierarchyMapper* hierarchy_mapper() const {
    return mapper_ ? &*mapper_ : nullptr;
  }
  [[nodiscard]] vpi::SimulatorInterface& sim_interface() { return *interface_; }
  [[nodiscard]] const symbols::SymbolTable& symbol_table() const {
    return *table_;
  }
  /// Frames for an explicitly chosen breakpoint id at the current sim
  /// state (used by tests and the CLI's `frame` command).
  [[nodiscard]] rpc::Frame build_frame(int64_t breakpoint_id);

 private:
  /// How one expression symbol reads its value in steady state: either a
  /// constant resolved from the symbol table at arm time, or a slot in the
  /// per-edge fetched value plan. Neither set = unresolvable.
  struct SlotBinding {
    int32_t plan_slot = -1;
    bool is_constant = false;
    common::BitVector constant;
  };

  /// A compiled expression armed against the signal plan: symbols()[i]
  /// reads through bindings[i]. The *program* is shared: N instances
  /// arming the same condition text hold one CompiledExpression (CSE via
  /// the normalized-AST program cache) with per-instance slot maps
  /// (`bindings`). `ptrs` and `scratch` are per-predicate evaluation
  /// state — a batch member is evaluated by exactly one pool thread and
  /// CompiledExpression::evaluate is const over the program, so no further
  /// synchronization is needed.
  struct CompiledPredicate {
    std::shared_ptr<const CompiledExpression> expr;
    std::vector<SlotBinding> bindings;
    bool poisoned = false;  ///< some symbol unresolvable: evaluation fails
    std::vector<const common::BitVector*> ptrs;
    CompiledExpression::Scratch scratch;
  };

  /// One refcounted user-condition arm on a breakpoint. Different sessions
  /// can hold different conditions on the same source location; each arm
  /// keeps its own parsed/compiled expression and change-driven verdict
  /// cache, and a hit records which arms matched (stop routing).
  struct CondArm {
    std::string text;
    int refs = 0;
    std::optional<Expression> expr;
    std::optional<CompiledPredicate> compiled;
    uint8_t cached = 0;  ///< kArmHasVerdict | kArmTrue
  };

  /// One schedulable breakpoint (a symbol-table row + parsed expressions).
  struct Breakpoint {
    symbols::BreakpointRow row;
    std::optional<Expression> enable;  ///< nullopt = always enabled
    std::string instance_name;
    int uncond_refs = 0;          ///< unconditional arms (no user condition)
    std::vector<CondArm> conditions;
    bool inserted = false;        ///< any arm (uncond or conditional) held

    // Compiled-mode state (rebuilt by rebuild_plan_locked).
    std::optional<CompiledPredicate> compiled_enable;
    std::vector<uint32_t> dep_slots;  ///< plan slots feeding any expr
    // Change-driven cache: results computed at plan serial eval_serial
    // stay valid while no dep slot changed since.
    uint64_t eval_serial = 0;  ///< 0 = no cached result
    uint8_t cached = 0;        ///< kCacheHasEnable | kCacheEnableTrue
    /// Condition texts that matched at the last hit (scratch; written by
    /// the evaluating pool thread, read by make_frame on the sim thread).
    std::vector<std::string> matched;
  };

  static constexpr uint8_t kCacheHasEnable = 1;
  static constexpr uint8_t kCacheEnableTrue = 2;
  static constexpr uint8_t kArmHasVerdict = 1;
  static constexpr uint8_t kArmTrue = 2;

  /// The per-edge batched-fetch plan: the union of design signals
  /// referenced by armed breakpoints and watchpoints, each resolved to a
  /// backend handle once at arm time and fetched once per edge.
  struct EvalPlan {
    std::vector<std::string> names;    ///< design names (debug/tests)
    std::vector<uint64_t> handles;
    std::vector<common::BitVector> values;
    std::vector<uint8_t> present;
    std::vector<uint64_t> change_serial;  ///< fetch serial of last change
    // Reused fetch buffers (compare-and-commit against `values`).
    std::vector<common::BitVector> incoming;
    std::vector<uint8_t> incoming_present;
    /// Zero-copy fetch buffer: pointers into the backend's value store
    /// when it supports get_value_views (unchanged signals are compared in
    /// place, copied never).
    std::vector<const common::BitVector*> views;
    std::map<std::string, uint32_t> index;  ///< design name -> slot
    uint64_t serial = 0;  ///< bumped on every committed fetch
  };

  /// Breakpoints sharing one source location (evaluated as a batch).
  struct Batch {
    std::string filename;
    uint32_t line = 0;
    uint32_t column = 0;
    std::vector<size_t> members;  ///< indexes into breakpoints_
  };

  /// An armed watchpoint: parsed expression + the last observed value.
  struct Watchpoint {
    int64_t id = 0;
    std::string text;
    Expression expr;
    int64_t instance_id = 0;
    std::string instance_name;
    std::optional<common::BitVector> last;

    // Compiled-mode state (rebuilt by rebuild_plan_locked).
    std::optional<CompiledPredicate> compiled;
    std::vector<uint32_t> dep_slots;
    uint64_t eval_serial = 0;
  };

  /// An armed value-change subscription: requested names resolved to plan
  /// slots at subscribe time (re-resolved whenever the plan rebuilds), with
  /// the last reported fetch serial for change-driven emission.
  struct Subscription {
    int64_t id = 0;
    std::vector<std::string> names;  ///< as the subscriber wrote them
    int64_t instance_id = 0;
    std::string instance_name;
    std::vector<int32_t> slots;  ///< plan slot per name; -1 = constant
    uint64_t last_serial = 0;    ///< plan serial of the last report
    /// Last value reported per name; a plan rebuild (someone arming a
    /// breakpoint) resets the serials, and this keeps that from emitting
    /// spurious "changes" for signals whose value did not move. nullopt =
    /// not reported yet (the initial snapshot).
    std::vector<std::optional<common::BitVector>> last_values;
    /// Arm-time value per name for symbols that fold to constants
    /// (slot -1): emitted once as the initial snapshot, then silent.
    std::vector<std::optional<common::BitVector>> constants;
  };

  enum class Mode : uint8_t {
    Run,              ///< stop on inserted hits only
    Step,             ///< stop at the next enabled statement
    ReverseStep,      ///< stop at the previous enabled statement
    ReverseContinue,  ///< run backwards to the previous inserted hit
  };

  void on_clock_edge(vpi::ClockEdge edge, uint64_t time);
  /// Emits value-change events for every armed subscription whose plan
  /// slots changed since its last report (rides the same batched fetch and
  /// change serials as the breakpoint pipeline).
  void emit_subscription_events(uint64_t time);
  /// Scans batches in [start, end) in the given direction; returns true if
  /// the scan stopped (and the next scan position via *resume).
  bool scan_batches(uint64_t time, bool reverse, size_t start_index);
  /// Evaluates one batch; fills `hits` with member indexes that fired.
  void evaluate_batch(const Batch& batch, bool respect_inserted,
                      std::vector<size_t>& hits);
  /// Evaluates every armed watchpoint (batch path); appends change hits.
  void collect_watch_hits(std::vector<rpc::WatchHit>& hits);
  rpc::StopEvent make_stop_event(uint64_t time, const std::vector<size_t>& hits);
  rpc::Frame make_frame(const Breakpoint& bp);
  /// Blocks until the debugger answers the stop event; returns the command.
  Command deliver_stop(rpc::StopEvent event);
  /// Requests one cycle of reverse time travel; true on success.
  bool rewind_one_cycle(uint64_t time);

  Expression::Resolver breakpoint_resolver(const Breakpoint& bp) const;
  Expression::Resolver instance_resolver(int64_t instance_id,
                                         const std::string& instance_name) const;

  // -- compiled evaluation pipeline -------------------------------------------
  /// Arm-time symbol resolution: the slot analogue of the interpreted
  /// resolvers. Returns the binding (constant or design-signal name) for
  /// `name` in the given scope, or nullopt when unresolvable. `scope_bp`
  /// nullptr = instance scope.
  [[nodiscard]] std::optional<SlotBinding> resolve_binding(
      const Breakpoint* scope_bp, int64_t instance_id,
      const std::string& instance_name, const std::string& name,
      EvalPlan* plan) HGDB_REQUIRES(state_mutex_);
  /// Compiles `expr` and resolves every symbol against `plan` (growing
  /// it); appends the referenced plan slots to `deps`. When
  /// `require_resolved`, throws std::out_of_range naming the first
  /// unresolvable symbol (arm-time typed error); otherwise the predicate
  /// is returned poisoned and never fires — matching the interpreted
  /// behaviour for stale symbol-table enables.
  /// Program lookup for bind_predicate: one shared CompiledExpression per
  /// normalized AST (compiling on first sight). `persist` = false reuses a
  /// cached program but never inserts — one-off protocol evaluations must
  /// not grow the cache without bound.
  std::shared_ptr<const CompiledExpression> compile_shared(
      const Expression& expr, bool persist) HGDB_REQUIRES(state_mutex_);
  CompiledPredicate bind_predicate(const Expression& expr,
                                   const Breakpoint* scope_bp,
                                   int64_t instance_id,
                                   const std::string& instance_name,
                                   EvalPlan* plan, std::vector<uint32_t>* deps,
                                   bool require_resolved,
                                   bool persist_program = true)
      HGDB_REQUIRES(state_mutex_);
  /// Rebuilds the whole plan (all enables + inserted conditions +
  /// watchpoints) and resets the change-driven caches.
  void rebuild_plan_locked() HGDB_REQUIRES(state_mutex_);
  /// Fetches the plan's signals for this edge if not already fresh,
  /// committing changed values and bumping their change serial.
  void ensure_edge_values_locked() HGDB_REQUIRES(state_mutex_);
  /// Evaluates a predicate against a plan's current values: -1
  /// unavailable, 0 false, 1 true (non-const: uses per-predicate scratch).
  static int eval_predicate(CompiledPredicate& predicate, const EvalPlan& plan);
  /// Full value of a predicate (watchpoints); nullptr when unavailable.
  static const common::BitVector* eval_predicate_value(
      CompiledPredicate& predicate, const EvalPlan& plan);
  /// Latest change serial across a dependency set.
  [[nodiscard]] uint64_t deps_serial(const std::vector<uint32_t>& deps) const
      HGDB_REQUIRES(state_mutex_);
  /// One-off compiled evaluation used by evaluate(): binds against a
  /// throwaway plan and fetches its values immediately.
  [[nodiscard]] std::optional<common::BitVector> evaluate_compiled(
      const Expression& parsed, const Breakpoint* scope_bp,
      int64_t instance_id, const std::string& instance_name)
      HGDB_REQUIRES(state_mutex_);
  /// Resolves an instance scope: empty name = the top instance (the
  /// shortest hierarchical name). nullopt for an unknown name.
  [[nodiscard]] std::optional<std::pair<int64_t, std::string>>
  resolve_instance(const std::string& name) const;
  [[nodiscard]] std::string to_design_name(const std::string& symbol_name) const;
  session::SessionManager* ensure_service();

  vpi::SimulatorInterface* interface_;
  const symbols::SymbolTable* table_;
  RuntimeOptions options_;

  // Immutable after attach().
  std::vector<Breakpoint> breakpoints_;
  std::map<int64_t, size_t> by_id_;
  std::vector<Batch> batches_;
  std::map<int64_t, std::string> instance_names_;
  std::optional<vpi::HierarchyMapper> mapper_;
  std::optional<uint64_t> callback_handle_;
  std::unique_ptr<ThreadPool> pool_;

  // Scheduler state (sim thread + service threads). Pool workers inside
  // ThreadPool::parallel_for access the guarded members under the *parent*
  // thread's hold (fork/join: the parent blocks until the job drains) and
  // assert the capability via state_mutex_.assert_held().
  mutable common::StateMutex state_mutex_{"runtime::state"};
  std::atomic<bool> any_inserted_{false};
  std::atomic<bool> any_watch_{false};
  std::atomic<bool> any_subs_{false};
  std::atomic<bool> pause_pending_{false};
  std::atomic<Mode> mode_{Mode::Run};
  /// entered this cycle travelling backwards
  bool reverse_entry_ HGDB_GUARDED_BY(state_mutex_) = false;
  std::vector<Watchpoint> watchpoints_ HGDB_GUARDED_BY(state_mutex_);
  int64_t next_watch_id_ HGDB_GUARDED_BY(state_mutex_) = 1;
  std::vector<Subscription> subscriptions_ HGDB_GUARDED_BY(state_mutex_);
  int64_t next_subscription_id_ HGDB_GUARDED_BY(state_mutex_) = 1;

  // Value-change delivery (invoked outside state_mutex_ so a listener may
  // call back into the runtime).
  common::ListenerMutex listener_mutex_{"runtime::listener"};
  ChangeListener change_listener_ HGDB_GUARDED_BY(listener_mutex_);

  // Compiled-evaluation state.
  EvalPlan plan_ HGDB_GUARDED_BY(state_mutex_);
  /// Common-subexpression sharing: one compiled program per normalized
  /// AST, shared by every arm of that condition (per-instance state lives
  /// in the predicates, not the program). Keyed on Expression::cache_key()
  /// so textual variations of one expression unify. Persistent across plan
  /// rebuilds — programs depend only on the AST, never on bindings.
  std::map<std::string, std::shared_ptr<const CompiledExpression>>
      program_cache_ HGDB_GUARDED_BY(state_mutex_);
  /// Values already fetched for the current edge; cleared at edge entry.
  bool edge_values_fresh_ HGDB_GUARDED_BY(state_mutex_) = false;
  /// A stop was delivered or a mutator ran since the last fetch: the next
  /// ensure_edge_values_locked() must re-fetch (a debugger may have forced
  /// signals or travelled in time meanwhile).
  bool values_stale_ HGDB_GUARDED_BY(state_mutex_) = true;

  // Direct-mode stop delivery.
  common::ListenerMutex handler_mutex_{"runtime::handler"};
  StopHandler stop_handler_ HGDB_GUARDED_BY(handler_mutex_);

  // Multi-client session layer (created lazily by serve()/serve_tcp()).
  common::ServiceMutex service_mutex_{"runtime::service"};
  std::unique_ptr<session::SessionManager> service_
      HGDB_GUARDED_BY(service_mutex_);

  // Monotonic counters, written from the sim thread on the hot path. They
  // live in the obs::MetricsRegistry (relaxed atomics, never locks — the
  // fast path must stay allocation- and lock-free to keep Fig. 5's <5%
  // overhead) and are resolved once here at construction so the per-edge
  // cost is exactly what AtomicStats used to be: one relaxed fetch_add.
  struct RuntimeCounters {
    obs::Counter* clock_edges = nullptr;
    obs::Counter* fast_path_exits = nullptr;
    obs::Counter* batches_evaluated = nullptr;
    obs::Counter* conditions_evaluated = nullptr;
    obs::Counter* watchpoints_evaluated = nullptr;
    obs::Counter* stops = nullptr;
    obs::Counter* eval_ns = nullptr;
    obs::Counter* dirty_skips = nullptr;
    obs::Counter* batch_fetches = nullptr;
    obs::Counter* batch_signals = nullptr;
    obs::Counter* programs_compiled = nullptr;
    obs::Counter* program_cache_hits = nullptr;
    /// Per-batch evaluation latency (the same intervals eval_ns sums).
    obs::Histogram* batch_eval_ns = nullptr;
  };
  std::unique_ptr<obs::MetricsRegistry> metrics_owned_;
  obs::MetricsRegistry* metrics_ = nullptr;
  RuntimeCounters stats_;
};

}  // namespace hgdb::runtime

#endif  // HGDB_RUNTIME_RUNTIME_H
