#ifndef HGDB_RUNTIME_EXPRESSION_H
#define HGDB_RUNTIME_EXPRESSION_H

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "common/bitvector.h"

namespace hgdb::runtime {

/// A parsed debug-time expression.
///
/// Two expression sources flow through this class (paper Sec. 3.1/3.2):
///  - SSA *enable conditions* stored in the symbol table, written in the
///    IR printer's call syntax, e.g. "and(when_cond0, not(when_cond1))";
///  - *user conditions* on breakpoints, written C-style, e.g.
///    "data[0] % 2 == 1 && sum > 10".
/// One grammar covers both: C-style infix operators plus named calls for
/// every IR primitive, names with '.' and '[index]' path suffixes (matched
/// verbatim against symbol names), decimal/hex numbers, and typed literals
/// like UInt<8>(42).
///
/// Parsing happens once (at breakpoint insertion); evaluation runs on
/// every scheduler pass, resolving names through a caller-supplied
/// resolver so the same expression works against live simulation, traces,
/// or test fixtures.
class Expression {
 public:
  using Resolver =
      std::function<std::optional<common::BitVector>(const std::string&)>;

  /// Parses `text`; throws std::invalid_argument with a description on
  /// syntax errors.
  static Expression parse(const std::string& text);

  Expression(Expression&&) noexcept;
  Expression& operator=(Expression&&) noexcept;
  ~Expression();

  /// Evaluates against a resolver. Throws std::runtime_error if a name
  /// cannot be resolved.
  [[nodiscard]] common::BitVector evaluate(const Resolver& resolver) const;
  /// Convenience: evaluate and coerce to bool.
  [[nodiscard]] bool evaluate_bool(const Resolver& resolver) const;

  /// All symbol names referenced by the expression.
  [[nodiscard]] const std::set<std::string>& names() const { return names_; }

  [[nodiscard]] const std::string& text() const { return text_; }

  struct Node;  // implementation detail, defined in expression.cc

 private:
  explicit Expression(std::unique_ptr<Node> root, std::string text,
                      std::set<std::string> names);

  std::unique_ptr<Node> root_;
  std::string text_;
  std::set<std::string> names_;
};

}  // namespace hgdb::runtime

#endif  // HGDB_RUNTIME_EXPRESSION_H
