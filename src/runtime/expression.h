#ifndef HGDB_RUNTIME_EXPRESSION_H
#define HGDB_RUNTIME_EXPRESSION_H

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/bitvector.h"
#include "ir/expr.h"

namespace hgdb::runtime {

class CompiledExpression;

/// A parsed debug-time expression.
///
/// Two expression sources flow through this class (paper Sec. 3.1/3.2):
///  - SSA *enable conditions* stored in the symbol table, written in the
///    IR printer's call syntax, e.g. "and(when_cond0, not(when_cond1))";
///  - *user conditions* on breakpoints, written C-style, e.g.
///    "data[0] % 2 == 1 && sum > 10".
/// One grammar covers both: C-style infix operators plus named calls for
/// every IR primitive, names with '.' and '[index]' path suffixes (matched
/// verbatim against symbol names), decimal/hex numbers, and typed literals
/// like UInt<8>(42).
///
/// Parsing happens once (at breakpoint insertion). Two evaluators exist:
///  - evaluate(): the interpreted tree walk over a caller-supplied name
///    resolver — the *reference implementation*, used for one-off
///    evaluation and as the differential-testing oracle;
///  - compile(): lowers the AST into a CompiledExpression, the flat
///    register program the scheduler hot loop runs on every clock edge.
class Expression {
 public:
  using Resolver =
      std::function<std::optional<common::BitVector>(const std::string&)>;

  /// Parses `text`; throws std::invalid_argument with a description on
  /// syntax errors (including wrong primitive-call arity).
  static Expression parse(const std::string& text);

  Expression(Expression&&) noexcept;
  Expression& operator=(Expression&&) noexcept;
  ~Expression();

  /// Evaluates against a resolver. Throws std::runtime_error if a name
  /// cannot be resolved.
  [[nodiscard]] common::BitVector evaluate(const Resolver& resolver) const;
  /// Convenience: evaluate and coerce to bool.
  [[nodiscard]] bool evaluate_bool(const Resolver& resolver) const;

  /// Lowers the AST to a flat register-machine program whose name operands
  /// are integer slots (see CompiledExpression).
  [[nodiscard]] CompiledExpression compile() const;

  /// All symbol names referenced by the expression.
  [[nodiscard]] const std::set<std::string>& names() const { return names_; }

  [[nodiscard]] const std::string& text() const { return text_; }

  /// Canonical rendering of the parsed AST, stable across textual
  /// variations of one expression ("a&&b" == "a && b" == "and(a, b)" when
  /// they parse to the same tree). The runtime keys its shared-program
  /// cache on this, so N instances arming the same condition compile one
  /// CompiledExpression instead of N identical ones.
  [[nodiscard]] std::string cache_key() const;

  struct Node;  // implementation detail, defined in expression.cc

 private:
  explicit Expression(std::unique_ptr<Node> root, std::string text,
                      std::set<std::string> names);

  std::unique_ptr<Node> root_;
  std::string text_;
  std::set<std::string> names_;
};

/// A debug expression lowered to a flat register-machine program — the
/// compiled half of the breakpoint-evaluation pipeline:
///
///   parse (once)  ->  compile (once)  ->  slot resolution (at arm time)
///     ->  per edge: batched fetch + evaluate over a contiguous op array
///
/// Name operands become integer *slots*: symbols() lists the referenced
/// names in slot order, and the runtime resolves each to a design signal
/// (or a symbol-table constant) exactly once when the breakpoint or
/// watchpoint is armed. Steady-state evaluation is a loop over the
/// instruction array reading a caller-prefetched value vector: no string
/// lookups, no resolver indirection, and — for operand widths within the
/// BitVector small-buffer (<= 128 bits) — no heap allocation.
///
/// Operands <= 64 bits take a scalar uint64 fast path that mirrors
/// ir::eval_prim's semantics bit-for-bit; wider values fall back to the
/// shared ir::eval_prim routine itself, so compiled and interpreted
/// evaluation can never diverge (the differential fuzz suite in
/// tests/runtime/compiled_expression_test.cc enforces this).
class CompiledExpression {
 public:
  struct Value {
    common::BitVector bits{1, 0};
    bool is_signed = false;
  };

  /// Reusable evaluation state (one register per instruction plus
  /// slow-path operand buffers). One Scratch per concurrent evaluator;
  /// reusing it across evaluations keeps the steady state allocation-free.
  struct Scratch {
    std::vector<Value> regs;
    std::vector<common::BitVector> wide_bits;
    std::vector<bool> wide_signs;
    /// Instructions executed across all evaluate() calls with this
    /// scratch. Logical short-circuiting (&&/||) skips the dead operand's
    /// subprogram, which this counter makes observable (tests assert the
    /// skip; the bench reports it).
    uint64_t ops_executed = 0;
  };

  /// Referenced names in slot order: evaluate()'s slots[i] must point at
  /// the current value of symbols()[i], or be nullptr when unavailable.
  [[nodiscard]] const std::vector<std::string>& symbols() const {
    return symbols_;
  }
  [[nodiscard]] size_t instruction_count() const { return instrs_.size(); }

  /// Evaluates the program over the given slot values. Returns the result
  /// (a pointer into `scratch`, a literal, or one of `slots`; valid until
  /// the next evaluate with the same scratch), or nullptr when a needed
  /// slot is nullptr or the expression faults (e.g. an out-of-range bit
  /// slice). Never throws: the scheduler hot loop must not unwind.
  [[nodiscard]] const common::BitVector* evaluate(
      const common::BitVector* const* slots, Scratch& scratch) const;

  /// Boolean coercion of evaluate(): -1 unavailable/fault, 0 false, 1 true.
  [[nodiscard]] int evaluate_bool(const common::BitVector* const* slots,
                                  Scratch& scratch) const;

 private:
  friend class Expression;

  // Operand encoding: top 2 bits select the source, low 30 bits the index.
  enum : uint32_t { kSrcShift = 30u, kIndexMask = (1u << kSrcShift) - 1u };
  enum class Src : uint32_t { Reg = 0, Slot = 1, Literal = 2 };
  static uint32_t encode(Src src, size_t index) {
    return (static_cast<uint32_t>(src) << kSrcShift) |
           static_cast<uint32_t>(index);
  }

  struct Instr {
    /// Prim computes an IR primitive. Branch implements logical
    /// short-circuit: emitted between the two operand subprograms of a
    /// && / ||, it tests the left operand and — when the left side decides
    /// the result — writes the 1-bit verdict straight into the combine
    /// instruction's register (operands[1] names its pc) and jumps past
    /// it, so the dead right-hand subprogram never executes.
    enum class Kind : uint8_t { Prim, Branch };
    Kind kind = Kind::Prim;
    ir::PrimOp op = ir::PrimOp::Add;
    bool logical = false;  ///< coerce operands to booleans first (&&, ||, !)
    uint8_t n_operands = 0;
    uint8_t n_params = 0;
    uint32_t operands[3] = {0, 0, 0};
    uint32_t params[2] = {0, 0};  ///< bits(hi, lo) / pad / shl / shr amounts
  };

  std::vector<Instr> instrs_;
  std::vector<Value> literals_;
  std::vector<std::string> symbols_;
  uint32_t root_ = 0;  ///< encoded operand producing the final result
};

}  // namespace hgdb::runtime

#endif  // HGDB_RUNTIME_EXPRESSION_H
