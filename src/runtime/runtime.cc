#include "runtime/runtime.h"

#include <algorithm>

namespace hgdb::runtime {

using common::BitVector;
using rpc::Frame;
using rpc::StopEvent;

namespace {

constexpr size_t kDefaultEvalThreads = 4;

/// Renders a value the way the IDE variable pane shows it.
std::string render(const BitVector& value) { return value.to_string(10); }

}  // namespace

Runtime::Runtime(vpi::SimulatorInterface& interface,
                 const symbols::SymbolTable& table, RuntimeOptions options)
    : interface_(&interface), table_(&table), options_(options) {}

Runtime::~Runtime() {
  stop_service();
  detach();
}

// ---------------------------------------------------------------------------
// attach / detach
// ---------------------------------------------------------------------------

void Runtime::attach() {
  if (callback_handle_) return;

  // Precompute the absolute breakpoint ordering (Fig. 2: "Before the
  // simulation starts, we compute the absolute ordering of every potential
  // breakpoint based on the symbol table").
  breakpoints_.clear();
  batches_.clear();
  by_id_.clear();
  instance_names_.clear();

  for (const auto& instance : table_->instances()) {
    instance_names_[instance.id] = instance.name;
  }

  const auto rows = table_->all_breakpoints();
  breakpoints_.reserve(rows.size());
  for (const auto& row : rows) {
    Breakpoint bp;
    bp.row = row;
    if (!row.enable.empty()) bp.enable = Expression::parse(row.enable);
    auto name_it = instance_names_.find(row.instance_id);
    bp.instance_name =
        name_it != instance_names_.end() ? name_it->second : std::string{};
    by_id_[row.id] = breakpoints_.size();
    breakpoints_.push_back(std::move(bp));
  }
  for (size_t i = 0; i < breakpoints_.size(); ++i) {
    const auto& row = breakpoints_[i].row;
    if (batches_.empty() || batches_.back().filename != row.filename ||
        batches_.back().line != row.line_num ||
        batches_.back().column != row.column_num) {
      batches_.push_back(Batch{row.filename, row.line_num, row.column_num, {}});
    }
    batches_.back().members.push_back(i);
  }

  // Locate the generated design inside the simulated hierarchy (Sec. 3.4).
  std::string symbol_root;
  for (const auto& [id, name] : instance_names_) {
    if (symbol_root.empty() || name.size() < symbol_root.size()) {
      symbol_root = name;
    }
  }
  std::vector<std::string> symbol_names;
  for (const auto& [id, name] : instance_names_) {
    for (const auto& variable : table_->generator_variables(id)) {
      if (!variable.is_rtl) continue;
      symbol_names.push_back(name + "." + variable.value);
      if (symbol_names.size() >= 64) break;
    }
    if (symbol_names.size() >= 64) break;
  }
  mapper_.emplace(interface_->signal_names(), symbol_names, symbol_root);

  pool_ = std::make_unique<ThreadPool>(
      options_.eval_threads != 0 ? options_.eval_threads : kDefaultEvalThreads);

  callback_handle_ = interface_->add_clock_callback(
      [this](vpi::ClockEdge edge, uint64_t time) { on_clock_edge(edge, time); });
}

void Runtime::detach() {
  if (!callback_handle_) return;
  interface_->remove_clock_callback(*callback_handle_);
  callback_handle_.reset();
}

// ---------------------------------------------------------------------------
// breakpoints
// ---------------------------------------------------------------------------

std::vector<int64_t> Runtime::add_breakpoint(const std::string& filename,
                                             uint32_t line,
                                             const std::string& condition) {
  std::optional<Expression> parsed;
  if (!condition.empty()) parsed = Expression::parse(condition);

  std::lock_guard lock(state_mutex_);
  std::vector<int64_t> inserted;
  for (auto& bp : breakpoints_) {
    if (bp.row.filename != filename || bp.row.line_num != line) continue;
    bp.inserted = true;
    if (parsed) {
      bp.condition = Expression::parse(condition);
    } else {
      bp.condition.reset();
    }
    inserted.push_back(bp.row.id);
  }
  if (!inserted.empty()) any_inserted_.store(true, std::memory_order_release);
  return inserted;
}

size_t Runtime::remove_breakpoint(const std::string& filename, uint32_t line) {
  std::lock_guard lock(state_mutex_);
  size_t removed = 0;
  bool any = false;
  for (auto& bp : breakpoints_) {
    if (bp.row.filename == filename &&
        (line == 0 || bp.row.line_num == line)) {
      if (bp.inserted) ++removed;
      bp.inserted = false;
      bp.condition.reset();
    }
    any |= bp.inserted;
  }
  any_inserted_.store(any, std::memory_order_release);
  return removed;
}

void Runtime::clear_breakpoints() {
  std::lock_guard lock(state_mutex_);
  for (auto& bp : breakpoints_) {
    bp.inserted = false;
    bp.condition.reset();
  }
  any_inserted_.store(false, std::memory_order_release);
}

size_t Runtime::inserted_count() const {
  std::lock_guard lock(state_mutex_);
  return static_cast<size_t>(
      std::count_if(breakpoints_.begin(), breakpoints_.end(),
                    [](const Breakpoint& bp) { return bp.inserted; }));
}

void Runtime::set_stop_handler(StopHandler handler) {
  std::lock_guard lock(command_mutex_);
  stop_handler_ = std::move(handler);
}

// ---------------------------------------------------------------------------
// name resolution
// ---------------------------------------------------------------------------

std::string Runtime::to_design_name(const std::string& symbol_name) const {
  if (mapper_ && mapper_->valid()) return mapper_->to_design(symbol_name);
  return symbol_name;
}

Expression::Resolver Runtime::breakpoint_resolver(const Breakpoint& bp) const {
  return [this, &bp](const std::string& name) -> std::optional<BitVector> {
    // 1. frame locals (scope variables)
    if (auto variable = table_->resolve_scope_variable(bp.row.id, name)) {
      if (!variable->is_rtl) {
        return BitVector::from_string(variable->value);
      }
      return interface_->get_value(
          to_design_name(bp.instance_name + "." + variable->value));
    }
    // 2. generator (instance) variables
    if (auto variable =
            table_->resolve_generator_variable(bp.row.instance_id, name)) {
      if (!variable->is_rtl) return BitVector::from_string(variable->value);
      return interface_->get_value(
          to_design_name(bp.instance_name + "." + variable->value));
    }
    // 3. instance-relative RTL name (this is how SSA enable conditions
    //    resolve: they are written over instance-relative node names)
    if (auto value = interface_->get_value(
            to_design_name(bp.instance_name + "." + name))) {
      return value;
    }
    // 4. absolute hierarchical name
    return interface_->get_value(name);
  };
}

Expression::Resolver Runtime::instance_resolver(
    int64_t instance_id, const std::string& instance_name) const {
  return [this, instance_id,
          instance_name](const std::string& name) -> std::optional<BitVector> {
    if (auto variable =
            table_->resolve_generator_variable(instance_id, name)) {
      if (!variable->is_rtl) return BitVector::from_string(variable->value);
      return interface_->get_value(
          to_design_name(instance_name + "." + variable->value));
    }
    if (auto value = interface_->get_value(
            to_design_name(instance_name + "." + name))) {
      return value;
    }
    return interface_->get_value(name);
  };
}

// ---------------------------------------------------------------------------
// scheduler (Fig. 2)
// ---------------------------------------------------------------------------

void Runtime::on_clock_edge(vpi::ClockEdge edge, uint64_t time) {
  // All values are stable at both edges under zero-delay simulation; one
  // pass per cycle at the rising edge is sufficient (Sec. 3).
  if (edge != vpi::ClockEdge::Rising) return;
  stats_.clock_edges.fetch_add(1, std::memory_order_relaxed);

  // Fast path first: nothing inserted, no pause requested, plain run mode.
  // This branch is the entire per-cycle cost the paper measures in Fig. 5,
  // so it is lock- and allocation-free.
  if (mode_.load(std::memory_order_acquire) == Mode::Run &&
      !any_inserted_.load(std::memory_order_acquire) &&
      !pause_pending_.load(std::memory_order_acquire)) {
    stats_.fast_path_exits.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  if (pause_pending_.exchange(false)) {
    std::lock_guard lock(state_mutex_);
    mode_ = Mode::Step;
  }

  Mode mode;
  bool reverse_entry;
  {
    std::lock_guard lock(state_mutex_);
    mode = mode_;
    reverse_entry = reverse_entry_;
    reverse_entry_ = false;
  }

  bool reverse = mode == Mode::ReverseStep || mode == Mode::ReverseContinue;
  if (reverse && !reverse_entry) {
    // A reverse command always enters a cycle through time travel; if we
    // land here (e.g. rewind unsupported), degrade to forward stepping.
    reverse = false;
    std::lock_guard lock(state_mutex_);
    mode_ = mode = Mode::Step;
  }

  int64_t index = reverse ? static_cast<int64_t>(batches_.size()) - 1 : 0;
  std::vector<size_t> hits;
  while (index >= 0 && index < static_cast<int64_t>(batches_.size())) {
    mode = mode_.load(std::memory_order_acquire);
    const bool respect_inserted =
        mode == Mode::Run || mode == Mode::ReverseContinue;
    hits.clear();
    evaluate_batch(batches_[static_cast<size_t>(index)], respect_inserted, hits);
    if (hits.empty()) {
      index += reverse ? -1 : 1;
      continue;
    }

    const Command command = deliver_stop(make_stop_event(time, hits));
    std::lock_guard lock(state_mutex_);
    switch (command) {
      case Command::Continue:
        mode_ = Mode::Run;
        reverse = false;
        ++index;
        break;
      case Command::Pause:
      case Command::StepOver:
        mode_ = Mode::Step;
        reverse = false;
        ++index;
        break;
      case Command::StepBack:
        mode_ = Mode::ReverseStep;
        reverse = true;
        --index;
        break;
      case Command::ReverseContinue:
        mode_ = Mode::ReverseContinue;
        reverse = true;
        --index;
        break;
      case Command::Jump:
        // Handled by the service thread via set_time before resuming.
        mode_ = Mode::Step;
        return;
      case Command::Detach:
        for (auto& bp : breakpoints_) bp.inserted = false;
        any_inserted_.store(false, std::memory_order_release);
        mode_ = Mode::Run;
        return;
    }
  }

  if (!reverse) return;  // forward scan done; wait for the next edge

  // Reverse scan exhausted this cycle: hop to the previous cycle if the
  // backend supports time travel (Fig. 2 "*Reverse time").
  if (rewind_one_cycle(time)) {
    std::lock_guard lock(state_mutex_);
    reverse_entry_ = true;
    return;
  }
  // Beginning of recorded history: report an empty stop so the debugger
  // knows reverse execution bottomed out, then resume forward stepping.
  const Command command = deliver_stop(StopEvent{time, {}});
  std::lock_guard lock(state_mutex_);
  mode_ = command == Command::Continue ? Mode::Run : Mode::Step;
}

bool Runtime::rewind_one_cycle(uint64_t time) {
  if (!interface_->supports_time_travel()) return false;
  if (time < 3) return false;
  // The clock grid has a rising edge every 2 time units; landing 3 units
  // back puts the cursor strictly before the previous rising edge for the
  // replay backend and on the previous cycle for the native backend.
  return interface_->set_time(time - 3);
}

void Runtime::evaluate_batch(const Batch& batch, bool respect_inserted,
                             std::vector<size_t>& hits) {
  std::lock_guard lock(state_mutex_);
  std::vector<uint8_t> fired(batch.members.size(), 0);
  size_t evaluated = 0;

  auto evaluate_member = [&](size_t position) {
    const size_t member = batch.members[position];
    const Breakpoint& bp = breakpoints_[member];
    if (respect_inserted && !bp.inserted) return;
    const auto resolver = breakpoint_resolver(bp);
    try {
      if (bp.enable && !bp.enable->evaluate_bool(resolver)) return;
      if (respect_inserted && bp.condition &&
          !bp.condition->evaluate_bool(resolver)) {
        return;
      }
      fired[position] = 1;
    } catch (const std::exception&) {
      // Unresolvable symbols (optimized away, trace without the signal):
      // treat as not-hit, consistent with how debuggers degrade.
    }
  };

  // Fig. 2 step 2: evaluate the batch in parallel.
  evaluated = batch.members.size();
  pool_->parallel_for(batch.members.size(), evaluate_member);

  for (size_t position = 0; position < fired.size(); ++position) {
    if (fired[position]) hits.push_back(batch.members[position]);
  }
  stats_.batches_evaluated.fetch_add(1, std::memory_order_relaxed);
  stats_.conditions_evaluated.fetch_add(evaluated, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// frames
// ---------------------------------------------------------------------------

StopEvent Runtime::make_stop_event(uint64_t time,
                                   const std::vector<size_t>& hits) {
  StopEvent event;
  event.time = time;
  event.frames.reserve(hits.size());
  for (size_t member : hits) {
    event.frames.push_back(make_frame(breakpoints_[member]));
  }
  stats_.stops.fetch_add(1, std::memory_order_relaxed);
  return event;
}

Frame Runtime::make_frame(const Breakpoint& bp) {
  Frame frame;
  frame.breakpoint_id = bp.row.id;
  frame.instance_id = bp.row.instance_id;
  frame.instance_name = bp.instance_name;
  frame.filename = bp.row.filename;
  frame.line = bp.row.line_num;
  frame.column = bp.row.column_num;

  // Locals: the scope variables recorded by SSA for this statement,
  // re-aggregated into nested objects on dotted names.
  for (const auto& variable : table_->scope_variables(bp.row.id)) {
    std::string text;
    if (!variable.is_rtl) {
      text = variable.value;
    } else if (auto value = interface_->get_value(to_design_name(
                   bp.instance_name + "." + variable.value))) {
      text = render(*value);
    } else {
      text = "<unavailable>";
    }
    rpc::insert_nested(frame.locals, variable.name, common::Json(text));
  }
  // Generator variables of the owning instance (paper Fig. 4 A).
  for (const auto& variable :
       table_->generator_variables(bp.row.instance_id)) {
    std::string text;
    if (!variable.is_rtl) {
      text = variable.value;
    } else if (auto value = interface_->get_value(to_design_name(
                   bp.instance_name + "." + variable.value))) {
      text = render(*value);
    } else {
      text = "<unavailable>";
    }
    rpc::insert_nested(frame.generator, variable.name, common::Json(text));
  }
  return frame;
}

Frame Runtime::build_frame(int64_t breakpoint_id) {
  auto it = by_id_.find(breakpoint_id);
  if (it == by_id_.end()) {
    throw std::invalid_argument("unknown breakpoint id " +
                                std::to_string(breakpoint_id));
  }
  return make_frame(breakpoints_[it->second]);
}

// ---------------------------------------------------------------------------
// stop delivery / command handshake
// ---------------------------------------------------------------------------

Runtime::Command Runtime::deliver_stop(StopEvent event) {
  StopHandler handler;
  {
    std::lock_guard lock(command_mutex_);
    handler = stop_handler_;
  }
  if (handler) return handler(event);

  std::unique_lock lock(command_mutex_);
  if (!channel_) return Command::Continue;  // nobody is listening
  channel_->send(rpc::serialize_stop_event(event));
  waiting_for_command_ = true;
  command_ready_.wait(lock, [this] { return pending_command_.has_value(); });
  waiting_for_command_ = false;
  const Command command = *pending_command_;
  pending_command_.reset();
  return command;
}

// ---------------------------------------------------------------------------
// evaluation
// ---------------------------------------------------------------------------

std::optional<BitVector> Runtime::evaluate(const std::string& expression,
                                           std::optional<int64_t> breakpoint_id,
                                           const std::string& instance_name) {
  try {
    const Expression parsed = Expression::parse(expression);
    Expression::Resolver resolver;
    if (breakpoint_id) {
      auto it = by_id_.find(*breakpoint_id);
      if (it == by_id_.end()) return std::nullopt;
      resolver = breakpoint_resolver(breakpoints_[it->second]);
    } else {
      std::string name = instance_name;
      int64_t instance_id = 0;
      if (name.empty()) {
        // Top instance: the shortest name.
        for (const auto& [id, instance] : instance_names_) {
          if (name.empty() || instance.size() < name.size()) {
            name = instance;
            instance_id = id;
          }
        }
      } else if (auto row = table_->instance_by_name(name)) {
        instance_id = row->id;
      } else {
        return std::nullopt;
      }
      resolver = instance_resolver(instance_id, name);
    }
    return parsed.evaluate(resolver);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

Runtime::Stats Runtime::stats() const {
  Stats out;
  out.clock_edges = stats_.clock_edges.load(std::memory_order_relaxed);
  out.fast_path_exits = stats_.fast_path_exits.load(std::memory_order_relaxed);
  out.batches_evaluated = stats_.batches_evaluated.load(std::memory_order_relaxed);
  out.conditions_evaluated =
      stats_.conditions_evaluated.load(std::memory_order_relaxed);
  out.stops = stats_.stops.load(std::memory_order_relaxed);
  return out;
}

// ---------------------------------------------------------------------------
// RPC service
// ---------------------------------------------------------------------------

void Runtime::serve(std::unique_ptr<rpc::Channel> channel) {
  stop_service();
  {
    std::lock_guard lock(command_mutex_);
    channel_ = std::move(channel);
  }
  service_thread_ = std::thread([this] { service_loop(channel_.get()); });
}

void Runtime::stop_service() {
  {
    std::lock_guard lock(command_mutex_);
    if (channel_) channel_->close();
  }
  if (service_thread_.joinable()) service_thread_.join();
  std::lock_guard lock(command_mutex_);
  channel_.reset();
}

void Runtime::service_loop(rpc::Channel* channel) {
  while (true) {
    auto message = channel->receive();
    if (!message) break;  // closed
    rpc::Request request;
    try {
      request = rpc::parse_request(*message);
    } catch (const std::exception& error) {
      rpc::GenericResponse response;
      response.success = false;
      response.reason = error.what();
      try {
        channel->send(rpc::serialize_response(response));
      } catch (const std::exception&) {
        break;
      }
      continue;
    }
    try {
      handle_request(request, channel);
    } catch (const std::exception& error) {
      rpc::GenericResponse response;
      response.token = request.token;
      response.success = false;
      response.reason = error.what();
      try {
        channel->send(rpc::serialize_response(response));
      } catch (const std::exception&) {
        break;
      }
    }
  }
  // Client is gone: release the simulation if it is waiting on us.
  std::lock_guard lock(command_mutex_);
  if (waiting_for_command_) {
    pending_command_ = Command::Continue;
    command_ready_.notify_all();
  }
}

void Runtime::handle_request(const rpc::Request& request,
                             rpc::Channel* channel) {
  using common::Json;
  rpc::GenericResponse response;
  response.token = request.token;

  switch (request.kind) {
    case rpc::Request::Kind::Breakpoint: {
      if (request.breakpoint.action == rpc::BreakpointRequest::Action::Add) {
        const auto inserted =
            add_breakpoint(request.breakpoint.filename, request.breakpoint.line,
                           request.breakpoint.condition);
        if (inserted.empty()) {
          response.success = false;
          response.reason = "no breakpoint at " + request.breakpoint.filename +
                            ":" + std::to_string(request.breakpoint.line);
        } else {
          Json ids = Json::array();
          for (int64_t id : inserted) ids.push_back(Json(id));
          response.payload["ids"] = std::move(ids);
        }
      } else {
        const size_t removed = remove_breakpoint(request.breakpoint.filename,
                                                 request.breakpoint.line);
        response.payload["removed"] = Json(static_cast<int64_t>(removed));
      }
      break;
    }
    case rpc::Request::Kind::BpLocation: {
      const auto rows = table_->breakpoints_at(request.bp_location.filename,
                                               request.bp_location.line);
      Json list = Json::array();
      for (const auto& row : rows) {
        Json entry = Json::object();
        entry["id"] = Json(row.id);
        entry["filename"] = Json(row.filename);
        entry["line"] = Json(static_cast<int64_t>(row.line_num));
        entry["column"] = Json(static_cast<int64_t>(row.column_num));
        auto it = instance_names_.find(row.instance_id);
        entry["instance"] =
            Json(it != instance_names_.end() ? it->second : "");
        list.push_back(std::move(entry));
      }
      response.payload["breakpoints"] = std::move(list);
      break;
    }
    case rpc::Request::Kind::Command: {
      std::lock_guard lock(command_mutex_);
      if (waiting_for_command_) {
        if (request.command.command == Command::Jump) {
          if (!interface_->set_time(request.command.time)) {
            response.success = false;
            response.reason = "time travel unsupported or out of range";
            break;
          }
        }
        pending_command_ = request.command.command;
        command_ready_.notify_all();
      } else if (request.command.command == Command::Pause) {
        pause_pending_.store(true);
      } else if (request.command.command == Command::Detach) {
        clear_breakpoints();
      } else {
        response.success = false;
        response.reason = "simulation is not stopped";
      }
      break;
    }
    case rpc::Request::Kind::Evaluation: {
      auto value = evaluate(request.evaluation.expression,
                            request.evaluation.breakpoint_id,
                            request.evaluation.instance_name);
      if (!value) {
        response.success = false;
        response.reason = "cannot evaluate '" +
                          request.evaluation.expression + "'";
      } else {
        response.payload["result"] = Json(render(*value));
        response.payload["width"] =
            Json(static_cast<int64_t>(value->width()));
      }
      break;
    }
    case rpc::Request::Kind::DebuggerInfo: {
      Json inserted = Json::array();
      {
        std::lock_guard lock(state_mutex_);
        for (const auto& bp : breakpoints_) {
          if (!bp.inserted) continue;
          Json entry = Json::object();
          entry["id"] = Json(bp.row.id);
          entry["filename"] = Json(bp.row.filename);
          entry["line"] = Json(static_cast<int64_t>(bp.row.line_num));
          entry["instance"] = Json(bp.instance_name);
          inserted.push_back(std::move(entry));
        }
      }
      response.payload["breakpoints"] = std::move(inserted);
      response.payload["time"] =
          Json(static_cast<int64_t>(interface_->get_time()));
      Json files = Json::array();
      for (const auto& file : table_->files()) files.push_back(Json(file));
      response.payload["files"] = std::move(files);
      break;
    }
  }
  channel->send(rpc::serialize_response(response));
}

}  // namespace hgdb::runtime
