#include "runtime/runtime.h"

#include <algorithm>

#include "session/session_manager.h"

namespace hgdb::runtime {

using common::BitVector;
using rpc::Frame;
using rpc::StopEvent;

namespace {

constexpr size_t kDefaultEvalThreads = 4;

/// Renders a value the way the IDE variable pane shows it.
std::string render(const BitVector& value) { return value.to_string(10); }

}  // namespace

Runtime::Runtime(vpi::SimulatorInterface& interface,
                 const symbols::SymbolTable& table, RuntimeOptions options)
    : interface_(&interface), table_(&table), options_(options) {}

Runtime::~Runtime() {
  stop_service();
  detach();
}

// ---------------------------------------------------------------------------
// attach / detach
// ---------------------------------------------------------------------------

void Runtime::attach() {
  if (callback_handle_) return;

  // Precompute the absolute breakpoint ordering (Fig. 2: "Before the
  // simulation starts, we compute the absolute ordering of every potential
  // breakpoint based on the symbol table").
  breakpoints_.clear();
  batches_.clear();
  by_id_.clear();
  instance_names_.clear();

  for (const auto& instance : table_->instances()) {
    instance_names_[instance.id] = instance.name;
  }

  const auto rows = table_->all_breakpoints();
  breakpoints_.reserve(rows.size());
  for (const auto& row : rows) {
    Breakpoint bp;
    bp.row = row;
    if (!row.enable.empty()) bp.enable = Expression::parse(row.enable);
    auto name_it = instance_names_.find(row.instance_id);
    bp.instance_name =
        name_it != instance_names_.end() ? name_it->second : std::string{};
    by_id_[row.id] = breakpoints_.size();
    breakpoints_.push_back(std::move(bp));
  }
  for (size_t i = 0; i < breakpoints_.size(); ++i) {
    const auto& row = breakpoints_[i].row;
    if (batches_.empty() || batches_.back().filename != row.filename ||
        batches_.back().line != row.line_num ||
        batches_.back().column != row.column_num) {
      batches_.push_back(Batch{row.filename, row.line_num, row.column_num, {}});
    }
    batches_.back().members.push_back(i);
  }

  // Locate the generated design inside the simulated hierarchy (Sec. 3.4).
  std::string symbol_root;
  for (const auto& [id, name] : instance_names_) {
    if (symbol_root.empty() || name.size() < symbol_root.size()) {
      symbol_root = name;
    }
  }
  std::vector<std::string> symbol_names;
  for (const auto& [id, name] : instance_names_) {
    for (const auto& variable : table_->generator_variables(id)) {
      if (!variable.is_rtl) continue;
      symbol_names.push_back(name + "." + variable.value);
      if (symbol_names.size() >= 64) break;
    }
    if (symbol_names.size() >= 64) break;
  }
  mapper_.emplace(interface_->signal_names(), symbol_names, symbol_root);

  pool_ = std::make_unique<ThreadPool>(
      options_.eval_threads != 0 ? options_.eval_threads : kDefaultEvalThreads);

  callback_handle_ = interface_->add_clock_callback(
      [this](vpi::ClockEdge edge, uint64_t time) { on_clock_edge(edge, time); });
}

void Runtime::detach() {
  if (!callback_handle_) return;
  interface_->remove_clock_callback(*callback_handle_);
  callback_handle_.reset();
}

// ---------------------------------------------------------------------------
// breakpoints
// ---------------------------------------------------------------------------

std::vector<int64_t> Runtime::add_breakpoint(const std::string& filename,
                                             uint32_t line,
                                             const std::string& condition) {
  std::optional<Expression> parsed;
  if (!condition.empty()) parsed = Expression::parse(condition);

  std::lock_guard lock(state_mutex_);
  std::vector<int64_t> inserted;
  for (auto& bp : breakpoints_) {
    if (bp.row.filename != filename || bp.row.line_num != line) continue;
    bp.inserted = true;
    if (parsed) {
      bp.condition = Expression::parse(condition);
    } else {
      bp.condition.reset();
    }
    inserted.push_back(bp.row.id);
  }
  if (!inserted.empty()) any_inserted_.store(true, std::memory_order_release);
  return inserted;
}

size_t Runtime::remove_breakpoint(const std::string& filename, uint32_t line) {
  std::lock_guard lock(state_mutex_);
  size_t removed = 0;
  bool any = false;
  for (auto& bp : breakpoints_) {
    if (bp.row.filename == filename &&
        (line == 0 || bp.row.line_num == line)) {
      if (bp.inserted) ++removed;
      bp.inserted = false;
      bp.condition.reset();
    }
    any |= bp.inserted;
  }
  any_inserted_.store(any, std::memory_order_release);
  return removed;
}

void Runtime::clear_breakpoints() {
  std::lock_guard lock(state_mutex_);
  for (auto& bp : breakpoints_) {
    bp.inserted = false;
    bp.condition.reset();
  }
  any_inserted_.store(false, std::memory_order_release);
}

size_t Runtime::inserted_count() const {
  std::lock_guard lock(state_mutex_);
  return static_cast<size_t>(
      std::count_if(breakpoints_.begin(), breakpoints_.end(),
                    [](const Breakpoint& bp) { return bp.inserted; }));
}

std::vector<Runtime::InsertedBreakpoint> Runtime::inserted_breakpoints() const {
  std::lock_guard lock(state_mutex_);
  std::vector<InsertedBreakpoint> out;
  for (const auto& bp : breakpoints_) {
    if (!bp.inserted) continue;
    out.push_back(InsertedBreakpoint{bp.row.id, bp.row.filename,
                                     bp.row.line_num, bp.instance_name});
  }
  return out;
}

// ---------------------------------------------------------------------------
// watchpoints
// ---------------------------------------------------------------------------

int64_t Runtime::add_watchpoint(const std::string& expression,
                                const std::string& instance_name) {
  Expression parsed = Expression::parse(expression);  // std::invalid_argument

  const auto instance = resolve_instance(instance_name);
  if (!instance) {
    throw std::out_of_range("unknown instance '" + instance_name + "'");
  }
  const auto& [instance_id, name] = *instance;

  Watchpoint wp{0, expression, std::move(parsed), instance_id, name,
                std::nullopt};
  // Baseline: the current value, so the watch fires on the next change
  // rather than immediately. Unresolvable-now expressions baseline on the
  // first successful evaluation instead.
  try {
    wp.last = wp.expr.evaluate(instance_resolver(instance_id, name));
  } catch (const std::exception&) {
  }

  std::lock_guard lock(state_mutex_);
  wp.id = next_watch_id_++;
  const int64_t id = wp.id;
  watchpoints_.push_back(std::move(wp));
  any_watch_.store(true, std::memory_order_release);
  return id;
}

bool Runtime::remove_watchpoint(int64_t id) {
  std::lock_guard lock(state_mutex_);
  const size_t before = watchpoints_.size();
  watchpoints_.erase(
      std::remove_if(watchpoints_.begin(), watchpoints_.end(),
                     [id](const Watchpoint& wp) { return wp.id == id; }),
      watchpoints_.end());
  any_watch_.store(!watchpoints_.empty(), std::memory_order_release);
  return watchpoints_.size() != before;
}

size_t Runtime::watchpoint_count() const {
  std::lock_guard lock(state_mutex_);
  return watchpoints_.size();
}

void Runtime::collect_watch_hits(std::vector<rpc::WatchHit>& hits) {
  std::lock_guard lock(state_mutex_);
  if (watchpoints_.empty()) return;

  // Same batch path as breakpoint conditions: one parallel_for per edge.
  std::vector<std::optional<BitVector>> current(watchpoints_.size());
  pool_->parallel_for(watchpoints_.size(), [&](size_t i) {
    auto& wp = watchpoints_[i];
    try {
      current[i] =
          wp.expr.evaluate(instance_resolver(wp.instance_id, wp.instance_name));
    } catch (const std::exception&) {
      current[i] = std::nullopt;
    }
  });
  for (size_t i = 0; i < watchpoints_.size(); ++i) {
    if (!current[i]) continue;
    auto& wp = watchpoints_[i];
    if (wp.last && *wp.last != *current[i]) {
      hits.push_back(rpc::WatchHit{wp.id, wp.text, render(*wp.last),
                                   render(*current[i])});
    }
    wp.last = std::move(current[i]);
  }
  stats_.watchpoints_evaluated.fetch_add(watchpoints_.size(),
                                         std::memory_order_relaxed);
}

void Runtime::set_stop_handler(StopHandler handler) {
  std::lock_guard lock(handler_mutex_);
  stop_handler_ = std::move(handler);
}

// ---------------------------------------------------------------------------
// name resolution
// ---------------------------------------------------------------------------

std::string Runtime::to_design_name(const std::string& symbol_name) const {
  if (mapper_ && mapper_->valid()) return mapper_->to_design(symbol_name);
  return symbol_name;
}

Expression::Resolver Runtime::breakpoint_resolver(const Breakpoint& bp) const {
  return [this, &bp](const std::string& name) -> std::optional<BitVector> {
    // 1. frame locals (scope variables)
    if (auto variable = table_->resolve_scope_variable(bp.row.id, name)) {
      if (!variable->is_rtl) {
        return BitVector::from_string(variable->value);
      }
      return interface_->get_value(
          to_design_name(bp.instance_name + "." + variable->value));
    }
    // 2. generator (instance) variables
    if (auto variable =
            table_->resolve_generator_variable(bp.row.instance_id, name)) {
      if (!variable->is_rtl) return BitVector::from_string(variable->value);
      return interface_->get_value(
          to_design_name(bp.instance_name + "." + variable->value));
    }
    // 3. instance-relative RTL name (this is how SSA enable conditions
    //    resolve: they are written over instance-relative node names)
    if (auto value = interface_->get_value(
            to_design_name(bp.instance_name + "." + name))) {
      return value;
    }
    // 4. absolute hierarchical name
    return interface_->get_value(name);
  };
}

std::optional<std::pair<int64_t, std::string>> Runtime::resolve_instance(
    const std::string& name) const {
  if (name.empty()) {
    // Top instance: the shortest name.
    int64_t top_id = 0;
    std::string top_name;
    for (const auto& [id, instance] : instance_names_) {
      if (top_name.empty() || instance.size() < top_name.size()) {
        top_name = instance;
        top_id = id;
      }
    }
    return std::make_pair(top_id, top_name);
  }
  if (auto row = table_->instance_by_name(name)) {
    return std::make_pair(row->id, name);
  }
  return std::nullopt;
}

Expression::Resolver Runtime::instance_resolver(
    int64_t instance_id, const std::string& instance_name) const {
  return [this, instance_id,
          instance_name](const std::string& name) -> std::optional<BitVector> {
    if (auto variable =
            table_->resolve_generator_variable(instance_id, name)) {
      if (!variable->is_rtl) return BitVector::from_string(variable->value);
      return interface_->get_value(
          to_design_name(instance_name + "." + variable->value));
    }
    if (auto value = interface_->get_value(
            to_design_name(instance_name + "." + name))) {
      return value;
    }
    return interface_->get_value(name);
  };
}

// ---------------------------------------------------------------------------
// scheduler (Fig. 2)
// ---------------------------------------------------------------------------

void Runtime::on_clock_edge(vpi::ClockEdge edge, uint64_t time) {
  // All values are stable at both edges under zero-delay simulation; one
  // pass per cycle at the rising edge is sufficient (Sec. 3).
  if (edge != vpi::ClockEdge::Rising) return;
  stats_.clock_edges.fetch_add(1, std::memory_order_relaxed);

  // Fast path first: nothing inserted, nothing watched, no pause requested,
  // plain run mode. This branch is the entire per-cycle cost the paper
  // measures in Fig. 5, so it is lock- and allocation-free.
  if (mode_.load(std::memory_order_acquire) == Mode::Run &&
      !any_inserted_.load(std::memory_order_acquire) &&
      !any_watch_.load(std::memory_order_acquire) &&
      !pause_pending_.load(std::memory_order_acquire)) {
    stats_.fast_path_exits.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  if (pause_pending_.exchange(false)) {
    std::lock_guard lock(state_mutex_);
    mode_ = Mode::Step;
  }

  // Watchpoints fire before the batch scan (forward execution only: a
  // reverse traversal re-visits old values and would re-trigger them).
  {
    const Mode current = mode_.load(std::memory_order_acquire);
    if (current != Mode::ReverseStep && current != Mode::ReverseContinue &&
        any_watch_.load(std::memory_order_acquire)) {
      std::vector<rpc::WatchHit> watch_hits;
      collect_watch_hits(watch_hits);
      if (!watch_hits.empty()) {
        StopEvent event;
        event.time = time;
        event.watch_hits = std::move(watch_hits);
        stats_.stops.fetch_add(1, std::memory_order_relaxed);
        const Command command = deliver_stop(std::move(event));
        std::lock_guard lock(state_mutex_);
        switch (command) {
          case Command::Continue:
            mode_ = Mode::Run;
            break;
          case Command::Pause:
          case Command::StepOver:
          case Command::StepBack:
          case Command::ReverseContinue:
            // Reverse from a watch stop degrades to a forward step (watch
            // stops only exist on the forward path).
            mode_ = Mode::Step;
            break;
          case Command::Jump:
            // Handled by the session layer via set_time before resuming.
            mode_ = Mode::Step;
            return;
          case Command::Detach:
            mode_ = Mode::Run;
            return;
        }
      }
    }
  }

  Mode mode;
  bool reverse_entry;
  {
    std::lock_guard lock(state_mutex_);
    mode = mode_;
    reverse_entry = reverse_entry_;
    reverse_entry_ = false;
  }

  bool reverse = mode == Mode::ReverseStep || mode == Mode::ReverseContinue;
  if (reverse && !reverse_entry) {
    // A reverse command always enters a cycle through time travel; if we
    // land here (e.g. rewind unsupported), degrade to forward stepping.
    reverse = false;
    std::lock_guard lock(state_mutex_);
    mode_ = mode = Mode::Step;
  }

  int64_t index = reverse ? static_cast<int64_t>(batches_.size()) - 1 : 0;
  std::vector<size_t> hits;
  while (index >= 0 && index < static_cast<int64_t>(batches_.size())) {
    mode = mode_.load(std::memory_order_acquire);
    const bool respect_inserted =
        mode == Mode::Run || mode == Mode::ReverseContinue;
    hits.clear();
    evaluate_batch(batches_[static_cast<size_t>(index)], respect_inserted, hits);
    if (hits.empty()) {
      index += reverse ? -1 : 1;
      continue;
    }

    const Command command = deliver_stop(make_stop_event(time, hits));
    std::lock_guard lock(state_mutex_);
    switch (command) {
      case Command::Continue:
        mode_ = Mode::Run;
        reverse = false;
        ++index;
        break;
      case Command::Pause:
      case Command::StepOver:
        mode_ = Mode::Step;
        reverse = false;
        ++index;
        break;
      case Command::StepBack:
        mode_ = Mode::ReverseStep;
        reverse = true;
        --index;
        break;
      case Command::ReverseContinue:
        mode_ = Mode::ReverseContinue;
        reverse = true;
        --index;
        break;
      case Command::Jump:
        // Handled by the session layer via set_time before resuming.
        mode_ = Mode::Step;
        return;
      case Command::Detach:
        for (auto& bp : breakpoints_) bp.inserted = false;
        any_inserted_.store(false, std::memory_order_release);
        mode_ = Mode::Run;
        return;
    }
  }

  if (!reverse) return;  // forward scan done; wait for the next edge

  // Reverse scan exhausted this cycle: hop to the previous cycle if the
  // backend supports time travel (Fig. 2 "*Reverse time").
  if (rewind_one_cycle(time)) {
    std::lock_guard lock(state_mutex_);
    reverse_entry_ = true;
    return;
  }
  // Beginning of recorded history: report an empty stop so the debugger
  // knows reverse execution bottomed out, then resume forward stepping.
  const Command command = deliver_stop(StopEvent{time, {}, {}});
  std::lock_guard lock(state_mutex_);
  mode_ = command == Command::Continue ? Mode::Run : Mode::Step;
}

bool Runtime::rewind_one_cycle(uint64_t time) {
  if (!interface_->supports_time_travel()) return false;
  if (time < 3) return false;
  // The clock grid has a rising edge every 2 time units; landing 3 units
  // back puts the cursor strictly before the previous rising edge for the
  // replay backend and on the previous cycle for the native backend.
  return interface_->set_time(time - 3);
}

void Runtime::evaluate_batch(const Batch& batch, bool respect_inserted,
                             std::vector<size_t>& hits) {
  std::lock_guard lock(state_mutex_);
  std::vector<uint8_t> fired(batch.members.size(), 0);
  size_t evaluated = 0;

  auto evaluate_member = [&](size_t position) {
    const size_t member = batch.members[position];
    const Breakpoint& bp = breakpoints_[member];
    if (respect_inserted && !bp.inserted) return;
    const auto resolver = breakpoint_resolver(bp);
    try {
      if (bp.enable && !bp.enable->evaluate_bool(resolver)) return;
      if (respect_inserted && bp.condition &&
          !bp.condition->evaluate_bool(resolver)) {
        return;
      }
      fired[position] = 1;
    } catch (const std::exception&) {
      // Unresolvable symbols (optimized away, trace without the signal):
      // treat as not-hit, consistent with how debuggers degrade.
    }
  };

  // Fig. 2 step 2: evaluate the batch in parallel.
  evaluated = batch.members.size();
  pool_->parallel_for(batch.members.size(), evaluate_member);

  for (size_t position = 0; position < fired.size(); ++position) {
    if (fired[position]) hits.push_back(batch.members[position]);
  }
  stats_.batches_evaluated.fetch_add(1, std::memory_order_relaxed);
  stats_.conditions_evaluated.fetch_add(evaluated, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// frames
// ---------------------------------------------------------------------------

StopEvent Runtime::make_stop_event(uint64_t time,
                                   const std::vector<size_t>& hits) {
  StopEvent event;
  event.time = time;
  event.frames.reserve(hits.size());
  for (size_t member : hits) {
    event.frames.push_back(make_frame(breakpoints_[member]));
  }
  stats_.stops.fetch_add(1, std::memory_order_relaxed);
  return event;
}

Frame Runtime::make_frame(const Breakpoint& bp) {
  Frame frame;
  frame.breakpoint_id = bp.row.id;
  frame.instance_id = bp.row.instance_id;
  frame.instance_name = bp.instance_name;
  frame.filename = bp.row.filename;
  frame.line = bp.row.line_num;
  frame.column = bp.row.column_num;

  // Locals: the scope variables recorded by SSA for this statement,
  // re-aggregated into nested objects on dotted names.
  for (const auto& variable : table_->scope_variables(bp.row.id)) {
    std::string text;
    if (!variable.is_rtl) {
      text = variable.value;
    } else if (auto value = interface_->get_value(to_design_name(
                   bp.instance_name + "." + variable.value))) {
      text = render(*value);
    } else {
      text = "<unavailable>";
    }
    rpc::insert_nested(frame.locals, variable.name, common::Json(text));
  }
  // Generator variables of the owning instance (paper Fig. 4 A).
  for (const auto& variable :
       table_->generator_variables(bp.row.instance_id)) {
    std::string text;
    if (!variable.is_rtl) {
      text = variable.value;
    } else if (auto value = interface_->get_value(to_design_name(
                   bp.instance_name + "." + variable.value))) {
      text = render(*value);
    } else {
      text = "<unavailable>";
    }
    rpc::insert_nested(frame.generator, variable.name, common::Json(text));
  }
  return frame;
}

Frame Runtime::build_frame(int64_t breakpoint_id) {
  auto it = by_id_.find(breakpoint_id);
  if (it == by_id_.end()) {
    throw std::invalid_argument("unknown breakpoint id " +
                                std::to_string(breakpoint_id));
  }
  return make_frame(breakpoints_[it->second]);
}

// ---------------------------------------------------------------------------
// stop delivery
// ---------------------------------------------------------------------------

Runtime::Command Runtime::deliver_stop(StopEvent event) {
  StopHandler handler;
  {
    std::lock_guard lock(handler_mutex_);
    handler = stop_handler_;
  }
  if (handler) return handler(event);

  session::SessionManager* service = nullptr;
  {
    std::lock_guard lock(service_mutex_);
    service = service_.get();
  }
  if (service) return service->deliver_stop(std::move(event));
  return Command::Continue;  // nobody is listening
}

// ---------------------------------------------------------------------------
// evaluation
// ---------------------------------------------------------------------------

std::optional<BitVector> Runtime::evaluate(const std::string& expression,
                                           std::optional<int64_t> breakpoint_id,
                                           const std::string& instance_name) {
  try {
    const Expression parsed = Expression::parse(expression);
    Expression::Resolver resolver;
    if (breakpoint_id) {
      auto it = by_id_.find(*breakpoint_id);
      if (it == by_id_.end()) return std::nullopt;
      resolver = breakpoint_resolver(breakpoints_[it->second]);
    } else {
      const auto instance = resolve_instance(instance_name);
      if (!instance) return std::nullopt;
      resolver = instance_resolver(instance->first, instance->second);
    }
    return parsed.evaluate(resolver);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<BitVector> Runtime::read_instance_rtl(
    const std::string& instance_name, const std::string& rtl_path) {
  if (auto value = interface_->get_value(
          to_design_name(instance_name + "." + rtl_path))) {
    return value;
  }
  return interface_->get_value(rtl_path);
}

bool Runtime::set_signal_value(const std::string& hier_name,
                               const BitVector& value) {
  auto try_name = [&](const std::string& name) {
    // Match the target's width when it is known, so "42" forces cleanly
    // into an 8-bit register.
    if (auto current = interface_->get_value(name)) {
      return interface_->set_value(name, value.resize(current->width()));
    }
    return interface_->set_value(name, value);
  };
  if (try_name(hier_name)) return true;
  const std::string mapped = to_design_name(hier_name);
  return mapped != hier_name && try_name(mapped);
}

Runtime::Stats Runtime::stats() const {
  Stats out;
  out.clock_edges = stats_.clock_edges.load(std::memory_order_relaxed);
  out.fast_path_exits = stats_.fast_path_exits.load(std::memory_order_relaxed);
  out.batches_evaluated = stats_.batches_evaluated.load(std::memory_order_relaxed);
  out.conditions_evaluated =
      stats_.conditions_evaluated.load(std::memory_order_relaxed);
  out.watchpoints_evaluated =
      stats_.watchpoints_evaluated.load(std::memory_order_relaxed);
  out.stops = stats_.stops.load(std::memory_order_relaxed);
  return out;
}

// ---------------------------------------------------------------------------
// RPC service (delegated to the session layer)
// ---------------------------------------------------------------------------

session::SessionManager* Runtime::ensure_service() {
  std::lock_guard lock(service_mutex_);
  if (!service_) service_ = std::make_unique<session::SessionManager>(*this);
  return service_.get();
}

void Runtime::serve(std::unique_ptr<rpc::Channel> channel) {
  ensure_service()->add_client(std::move(channel));
}

uint16_t Runtime::serve_tcp(uint16_t port) {
  return ensure_service()->listen_tcp(port);
}

void Runtime::stop_service() {
  session::SessionManager* service = nullptr;
  {
    std::lock_guard lock(service_mutex_);
    service = service_.get();
  }
  if (service) service->shutdown();
}

session::SessionManager* Runtime::session_manager() {
  std::lock_guard lock(service_mutex_);
  return service_.get();
}

}  // namespace hgdb::runtime
