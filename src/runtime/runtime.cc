#include "runtime/runtime.h"

#include <algorithm>
#include <chrono>

#include "obs/trace.h"
#include "session/session_manager.h"

namespace hgdb::runtime {

using common::BitVector;
using rpc::Frame;
using rpc::StopEvent;

namespace {

constexpr size_t kDefaultEvalThreads = 4;

/// Renders a value the way the IDE variable pane shows it.
std::string render(const BitVector& value) { return value.to_string(10); }

uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

Runtime::Runtime(vpi::SimulatorInterface& interface,
                 const symbols::SymbolTable& table, RuntimeOptions options)
    : interface_(&interface), table_(&table), options_(options) {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    metrics_owned_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = metrics_owned_.get();
  }
  // Resolve every hot-path counter once; after this the per-edge cost is a
  // relaxed fetch_add, identical to the pre-registry AtomicStats.
  stats_.clock_edges = &metrics_->counter("runtime.clock_edges");
  stats_.fast_path_exits = &metrics_->counter("runtime.fast_path_exits");
  stats_.batches_evaluated = &metrics_->counter("runtime.batches_evaluated");
  stats_.conditions_evaluated =
      &metrics_->counter("runtime.conditions_evaluated");
  stats_.watchpoints_evaluated =
      &metrics_->counter("runtime.watchpoints_evaluated");
  stats_.stops = &metrics_->counter("runtime.stops");
  stats_.eval_ns = &metrics_->counter("runtime.eval_ns");
  stats_.dirty_skips = &metrics_->counter("runtime.dirty_skips");
  stats_.batch_fetches = &metrics_->counter("runtime.batch_fetches");
  stats_.batch_signals = &metrics_->counter("runtime.batch_signals");
  stats_.programs_compiled = &metrics_->counter("runtime.programs_compiled");
  stats_.program_cache_hits =
      &metrics_->counter("runtime.program_cache_hits");
  stats_.batch_eval_ns = &metrics_->histogram("runtime.batch_eval_ns");
}

Runtime::~Runtime() {
  stop_service();
  detach();
}

// ---------------------------------------------------------------------------
// attach / detach
// ---------------------------------------------------------------------------

void Runtime::attach() {
  if (callback_handle_) return;

  // Precompute the absolute breakpoint ordering (Fig. 2: "Before the
  // simulation starts, we compute the absolute ordering of every potential
  // breakpoint based on the symbol table").
  breakpoints_.clear();
  batches_.clear();
  by_id_.clear();
  instance_names_.clear();

  for (const auto& instance : table_->instances()) {
    instance_names_[instance.id] = instance.name;
  }

  const auto rows = table_->all_breakpoints();
  breakpoints_.reserve(rows.size());
  for (const auto& row : rows) {
    Breakpoint bp;
    bp.row = row;
    if (!row.enable.empty()) bp.enable = Expression::parse(row.enable);
    auto name_it = instance_names_.find(row.instance_id);
    bp.instance_name =
        name_it != instance_names_.end() ? name_it->second : std::string{};
    by_id_[row.id] = breakpoints_.size();
    breakpoints_.push_back(std::move(bp));
  }
  for (size_t i = 0; i < breakpoints_.size(); ++i) {
    const auto& row = breakpoints_[i].row;
    if (batches_.empty() || batches_.back().filename != row.filename ||
        batches_.back().line != row.line_num ||
        batches_.back().column != row.column_num) {
      batches_.push_back(Batch{row.filename, row.line_num, row.column_num, {}});
    }
    batches_.back().members.push_back(i);
  }

  // Locate the generated design inside the simulated hierarchy (Sec. 3.4).
  std::string symbol_root;
  for (const auto& [id, name] : instance_names_) {
    if (symbol_root.empty() || name.size() < symbol_root.size()) {
      symbol_root = name;
    }
  }
  std::vector<std::string> symbol_names;
  for (const auto& [id, name] : instance_names_) {
    for (const auto& variable : table_->generator_variables(id)) {
      if (!variable.is_rtl) continue;
      symbol_names.push_back(name + "." + variable.value);
      if (symbol_names.size() >= 64) break;
    }
    if (symbol_names.size() >= 64) break;
  }
  mapper_.emplace(interface_->signal_names(), symbol_names, symbol_root);

  pool_ = std::make_unique<ThreadPool>(
      options_.eval_threads != 0 ? options_.eval_threads : kDefaultEvalThreads);

  {
    // Arm time for every symbol-table enable condition: compile and
    // slot-resolve them once, so the per-edge path never sees a string.
    common::LockGuard lock(state_mutex_);
    rebuild_plan_locked();
  }

  callback_handle_ = interface_->add_clock_callback(
      [this](vpi::ClockEdge edge, uint64_t time) { on_clock_edge(edge, time); });
}

void Runtime::detach() {
  if (!callback_handle_) return;
  interface_->remove_clock_callback(*callback_handle_);
  callback_handle_.reset();
}

// ---------------------------------------------------------------------------
// breakpoints
// ---------------------------------------------------------------------------

std::vector<int64_t> Runtime::add_breakpoint(const std::string& filename,
                                             uint32_t line,
                                             const std::string& condition) {
  std::optional<Expression> parsed;
  if (!condition.empty()) parsed = Expression::parse(condition);

  common::LockGuard lock(state_mutex_);
  if (parsed) {
    // Arm-time symbol validation: an unknown name in a user condition is a
    // typed error now, not a silent never-fires (or a throw from inside
    // the scheduler) later. Checked for every matching instance before any
    // state changes so a failure arms nothing.
    for (auto& bp : breakpoints_) {
      if (bp.row.filename != filename || bp.row.line_num != line) continue;
      for (const auto& name : parsed->names()) {
        if (!resolve_binding(&bp, bp.row.instance_id, bp.instance_name, name,
                             nullptr)) {
          throw std::out_of_range("cannot resolve symbol '" + name +
                                  "' in condition for " + filename + ":" +
                                  std::to_string(line) + " (instance '" +
                                  bp.instance_name + "')");
        }
      }
    }
  }
  std::vector<int64_t> inserted;
  for (auto& bp : breakpoints_) {
    if (bp.row.filename != filename || bp.row.line_num != line) continue;
    if (parsed) {
      // One refcounted arm per distinct condition text: two sessions with
      // different conditions on the same location coexist, and each hit
      // records which conditions matched (stop routing).
      auto it = std::find_if(bp.conditions.begin(), bp.conditions.end(),
                             [&](const CondArm& arm) {
                               return arm.text == condition;
                             });
      if (it == bp.conditions.end()) {
        CondArm arm;
        arm.text = condition;
        arm.refs = 1;
        arm.expr = Expression::parse(condition);
        bp.conditions.push_back(std::move(arm));
      } else {
        ++it->refs;
      }
    } else {
      ++bp.uncond_refs;
    }
    bp.inserted = true;
    inserted.push_back(bp.row.id);
  }
  if (!inserted.empty()) {
    any_inserted_.store(true, std::memory_order_release);
    rebuild_plan_locked();
  }
  return inserted;
}

size_t Runtime::release_breakpoint(const std::string& filename, uint32_t line,
                                   const std::string& condition) {
  common::LockGuard lock(state_mutex_);
  size_t died = 0;
  bool any = false;
  bool changed = false;
  for (auto& bp : breakpoints_) {
    if (bp.row.filename == filename && bp.row.line_num == line &&
        bp.inserted) {
      if (condition.empty()) {
        if (bp.uncond_refs > 0) {
          --bp.uncond_refs;
          changed = true;
        }
      } else {
        auto it = std::find_if(bp.conditions.begin(), bp.conditions.end(),
                               [&](const CondArm& arm) {
                                 return arm.text == condition;
                               });
        if (it != bp.conditions.end() && --it->refs <= 0) {
          bp.conditions.erase(it);
          changed = true;
        }
      }
      const bool still = bp.uncond_refs > 0 || !bp.conditions.empty();
      if (!still) {
        bp.inserted = false;
        ++died;
      }
    }
    any |= bp.inserted;
  }
  any_inserted_.store(any, std::memory_order_release);
  if (changed || died != 0) rebuild_plan_locked();
  return died;
}

size_t Runtime::remove_breakpoint(const std::string& filename, uint32_t line) {
  common::LockGuard lock(state_mutex_);
  size_t removed = 0;
  bool any = false;
  for (auto& bp : breakpoints_) {
    if (bp.row.filename == filename &&
        (line == 0 || bp.row.line_num == line)) {
      if (bp.inserted) ++removed;
      bp.inserted = false;
      bp.uncond_refs = 0;
      bp.conditions.clear();
    }
    any |= bp.inserted;
  }
  any_inserted_.store(any, std::memory_order_release);
  if (removed != 0) rebuild_plan_locked();
  return removed;
}

void Runtime::clear_breakpoints() {
  common::LockGuard lock(state_mutex_);
  for (auto& bp : breakpoints_) {
    bp.inserted = false;
    bp.uncond_refs = 0;
    bp.conditions.clear();
  }
  any_inserted_.store(false, std::memory_order_release);
  rebuild_plan_locked();
}

size_t Runtime::inserted_count() const {
  common::LockGuard lock(state_mutex_);
  return static_cast<size_t>(
      std::count_if(breakpoints_.begin(), breakpoints_.end(),
                    [](const Breakpoint& bp) { return bp.inserted; }));
}

std::vector<Runtime::InsertedBreakpoint> Runtime::inserted_breakpoints() const {
  common::LockGuard lock(state_mutex_);
  std::vector<InsertedBreakpoint> out;
  for (const auto& bp : breakpoints_) {
    if (!bp.inserted) continue;
    out.push_back(InsertedBreakpoint{bp.row.id, bp.row.filename,
                                     bp.row.line_num, bp.instance_name});
  }
  return out;
}

// ---------------------------------------------------------------------------
// watchpoints
// ---------------------------------------------------------------------------

int64_t Runtime::add_watchpoint(const std::string& expression,
                                const std::string& instance_name) {
  Expression parsed = Expression::parse(expression);  // std::invalid_argument

  const auto instance = resolve_instance(instance_name);
  if (!instance) {
    throw std::out_of_range("unknown instance '" + instance_name + "'");
  }
  const auto& [instance_id, name] = *instance;

  Watchpoint wp{0, expression, std::move(parsed), instance_id, name,
                std::nullopt};
  // Everything below runs under state_mutex_: arm-time resolution talks to
  // the backend's handle table, which the simulation thread reads through
  // get_values() while evaluating batches.
  common::LockGuard lock(state_mutex_);
  // Arm-time symbol validation, same contract as conditional breakpoints:
  // unknown names are a typed error at arm time, never a scheduler throw.
  for (const auto& symbol : wp.expr.names()) {
    if (!resolve_binding(nullptr, instance_id, name, symbol, nullptr)) {
      throw std::out_of_range("cannot resolve symbol '" + symbol +
                              "' in watch expression (instance '" + name +
                              "')");
    }
  }
  // Baseline: the current value, so the watch fires on the next change
  // rather than immediately. Expressions that fault now (e.g. a bad bit
  // slice) baseline on the first successful evaluation instead.
  try {
    wp.last = wp.expr.evaluate(instance_resolver(instance_id, name));
  } catch (const std::exception&) {
  }

  wp.id = next_watch_id_++;
  const int64_t id = wp.id;
  watchpoints_.push_back(std::move(wp));
  any_watch_.store(true, std::memory_order_release);
  rebuild_plan_locked();
  return id;
}

bool Runtime::remove_watchpoint(int64_t id) {
  common::LockGuard lock(state_mutex_);
  const size_t before = watchpoints_.size();
  watchpoints_.erase(
      std::remove_if(watchpoints_.begin(), watchpoints_.end(),
                     [id](const Watchpoint& wp) { return wp.id == id; }),
      watchpoints_.end());
  any_watch_.store(!watchpoints_.empty(), std::memory_order_release);
  if (watchpoints_.size() != before) rebuild_plan_locked();
  return watchpoints_.size() != before;
}

size_t Runtime::watchpoint_count() const {
  common::LockGuard lock(state_mutex_);
  return watchpoints_.size();
}

void Runtime::collect_watch_hits(std::vector<rpc::WatchHit>& hits) {
  common::LockGuard lock(state_mutex_);
  if (watchpoints_.empty()) return;
  // Timestamp only when stats are on: clock reads are not free on the
  // per-edge path the Fig. 5 overhead budget protects.
  const auto t0 = options_.collect_stats
                      ? std::chrono::steady_clock::now()
                      : std::chrono::steady_clock::time_point{};

  const bool compiled = options_.compiled_eval;
  if (compiled) ensure_edge_values_locked();

  // Same batch path as breakpoint conditions: one parallel_for per edge.
  // In compiled mode a watchpoint none of whose input signals changed
  // since its last evaluation is skipped outright — its value cannot have
  // changed, so it cannot fire.
  const size_t count = watchpoints_.size();
  std::vector<std::optional<BitVector>> current(count);
  std::vector<uint8_t> evaluated(count, 0);
  std::vector<uint8_t> skipped(count, 0);
  pool_->parallel_for(count, [&](size_t i) {
    // Fork/join: the sim thread holds state_mutex_ until the job drains.
    state_mutex_.assert_held();
    auto& wp = watchpoints_[i];
    if (compiled && wp.compiled) {
      if (wp.eval_serial != 0 && deps_serial(wp.dep_slots) <= wp.eval_serial) {
        skipped[i] = 1;
        return;
      }
      const BitVector* value = eval_predicate_value(*wp.compiled, plan_);
      if (value != nullptr) current[i] = *value;
      wp.eval_serial = plan_.serial;
      evaluated[i] = 1;
      return;
    }
    try {
      current[i] =
          wp.expr.evaluate(instance_resolver(wp.instance_id, wp.instance_name));
    } catch (const std::exception&) {
      current[i] = std::nullopt;
    }
    evaluated[i] = 1;
  });
  uint64_t evaluated_count = 0;
  uint64_t skipped_count = 0;
  for (size_t i = 0; i < count; ++i) {
    evaluated_count += evaluated[i];
    skipped_count += skipped[i];
    if (!current[i]) continue;
    auto& wp = watchpoints_[i];
    if (wp.last && *wp.last != *current[i]) {
      hits.push_back(rpc::WatchHit{wp.id, wp.text, render(*wp.last),
                                   render(*current[i])});
    }
    wp.last = std::move(current[i]);
  }
  stats_.watchpoints_evaluated->add(evaluated_count);
  stats_.dirty_skips->add(skipped_count);
  if (skipped_count != 0) {
    HGDB_TRACE_INSTANT("runtime", "dirty_skips", skipped_count);
  }
  if (options_.collect_stats) {
    const uint64_t elapsed = elapsed_ns(t0);
    stats_.eval_ns->add(elapsed);
    stats_.batch_eval_ns->record(elapsed);
  }
}

void Runtime::set_stop_handler(StopHandler handler) {
  StopHandler retired;
  {
    common::LockGuard lock(handler_mutex_);
    retired = std::move(stop_handler_);
    stop_handler_ = std::move(handler);
  }
  // `retired` (and everything it captured) dies here, outside
  // handler_mutex_: a handler owning resources whose teardown re-enters
  // the runtime must not deadlock against the slot lock.
}

// ---------------------------------------------------------------------------
// value-change subscriptions (push event streams)
// ---------------------------------------------------------------------------

void Runtime::set_change_listener(ChangeListener listener) {
  ChangeListener retired;
  {
    common::LockGuard lock(listener_mutex_);
    retired = std::move(change_listener_);
    change_listener_ = std::move(listener);
  }
  // As in set_stop_handler: the replaced listener's destructor runs with
  // listener_mutex_ released, so a capture that re-enters the runtime
  // (DebugService resetting the listener in its own teardown) is safe.
}

int64_t Runtime::add_signal_subscription(const std::vector<std::string>& names,
                                         const std::string& instance_name) {
  if (names.empty()) {
    throw std::invalid_argument("subscription needs at least one signal");
  }
  const auto instance = resolve_instance(instance_name);
  if (!instance) {
    throw std::out_of_range("unknown instance '" + instance_name + "'");
  }
  Subscription sub;
  sub.names = names;
  sub.instance_id = instance->first;
  sub.instance_name = instance->second;

  common::LockGuard lock(state_mutex_);
  // Arm-time validation, same contract as conditions/watches: an unknown
  // name is a typed error now, never a silent dead stream.
  for (const auto& name : sub.names) {
    if (!resolve_binding(nullptr, sub.instance_id, sub.instance_name, name,
                         nullptr)) {
      throw std::out_of_range("cannot resolve signal '" + name +
                              "' (instance '" + sub.instance_name + "')");
    }
  }
  sub.id = next_subscription_id_++;
  const int64_t id = sub.id;
  subscriptions_.push_back(std::move(sub));
  any_subs_.store(true, std::memory_order_release);
  rebuild_plan_locked();
  return id;
}

bool Runtime::remove_signal_subscription(int64_t id) {
  common::LockGuard lock(state_mutex_);
  const size_t before = subscriptions_.size();
  subscriptions_.erase(
      std::remove_if(subscriptions_.begin(), subscriptions_.end(),
                     [id](const Subscription& sub) { return sub.id == id; }),
      subscriptions_.end());
  any_subs_.store(!subscriptions_.empty(), std::memory_order_release);
  if (subscriptions_.size() != before) rebuild_plan_locked();
  return subscriptions_.size() != before;
}

size_t Runtime::subscription_count() const {
  common::LockGuard lock(state_mutex_);
  return subscriptions_.size();
}

void Runtime::emit_subscription_events(uint64_t time) {
  // Collect under the state lock, deliver outside it: the listener sends
  // on client transports and may call back into the runtime.
  struct Pending {
    int64_t id;
    std::vector<SignalChange> changes;
  };
  std::vector<Pending> pending;
  {
    common::LockGuard lock(state_mutex_);
    if (subscriptions_.empty()) return;
    ensure_edge_values_locked();
    for (auto& sub : subscriptions_) {
      std::vector<SignalChange> changes;
      sub.last_values.resize(sub.names.size());
      for (size_t i = 0; i < sub.names.size(); ++i) {
        const int32_t slot = sub.slots.empty() ? -1 : sub.slots[i];
        if (slot < 0) {
          // Constant-folded symbol: the snapshot contract still holds —
          // its (only) value is emitted once, then the entry stays silent.
          if (!sub.last_values[i] && i < sub.constants.size() &&
              sub.constants[i]) {
            sub.last_values[i] = sub.constants[i];
            changes.push_back(SignalChange{sub.names[i], *sub.constants[i]});
          }
          continue;
        }
        const auto index = static_cast<size_t>(slot);
        if (plan_.present[index] == 0) continue;
        if (plan_.change_serial[index] <= sub.last_serial) continue;
        // The serial gate is the cheap filter; the value compare makes it
        // exact across plan rebuilds (which reset the serials): only a
        // signal whose value actually differs from the last report — or
        // was never reported (the initial snapshot) — is emitted.
        if (sub.last_values[i] &&
            *sub.last_values[i] == plan_.values[index]) {
          continue;
        }
        sub.last_values[i] = plan_.values[index];
        changes.push_back(SignalChange{sub.names[i], plan_.values[index]});
      }
      sub.last_serial = plan_.serial;
      if (!changes.empty()) {
        pending.push_back(Pending{sub.id, std::move(changes)});
      }
    }
  }
  if (pending.empty()) return;
  ChangeListener listener;
  {
    common::LockGuard lock(listener_mutex_);
    listener = change_listener_;
  }
  if (!listener) return;
  for (auto& entry : pending) {
    listener(entry.id, time, entry.changes);
  }
}

// ---------------------------------------------------------------------------
// name resolution
// ---------------------------------------------------------------------------

std::string Runtime::to_design_name(const std::string& symbol_name) const {
  if (mapper_ && mapper_->valid()) return mapper_->to_design(symbol_name);
  return symbol_name;
}

Expression::Resolver Runtime::breakpoint_resolver(const Breakpoint& bp) const {
  return [this, &bp](const std::string& name) -> std::optional<BitVector> {
    // 1. frame locals (scope variables)
    if (auto variable = table_->resolve_scope_variable(bp.row.id, name)) {
      if (!variable->is_rtl) {
        return BitVector::from_string(variable->value);
      }
      return interface_->get_value(
          to_design_name(bp.instance_name + "." + variable->value));
    }
    // 2. generator (instance) variables
    if (auto variable =
            table_->resolve_generator_variable(bp.row.instance_id, name)) {
      if (!variable->is_rtl) return BitVector::from_string(variable->value);
      return interface_->get_value(
          to_design_name(bp.instance_name + "." + variable->value));
    }
    // 3. instance-relative RTL name (this is how SSA enable conditions
    //    resolve: they are written over instance-relative node names)
    if (auto value = interface_->get_value(
            to_design_name(bp.instance_name + "." + name))) {
      return value;
    }
    // 4. absolute hierarchical name
    return interface_->get_value(name);
  };
}

std::optional<std::pair<int64_t, std::string>> Runtime::resolve_instance(
    const std::string& name) const {
  if (name.empty()) {
    // Top instance: the shortest name.
    int64_t top_id = 0;
    std::string top_name;
    for (const auto& [id, instance] : instance_names_) {
      if (top_name.empty() || instance.size() < top_name.size()) {
        top_name = instance;
        top_id = id;
      }
    }
    return std::make_pair(top_id, top_name);
  }
  if (auto row = table_->instance_by_name(name)) {
    return std::make_pair(row->id, name);
  }
  return std::nullopt;
}

Expression::Resolver Runtime::instance_resolver(
    int64_t instance_id, const std::string& instance_name) const {
  return [this, instance_id,
          instance_name](const std::string& name) -> std::optional<BitVector> {
    if (auto variable =
            table_->resolve_generator_variable(instance_id, name)) {
      if (!variable->is_rtl) return BitVector::from_string(variable->value);
      return interface_->get_value(
          to_design_name(instance_name + "." + variable->value));
    }
    if (auto value = interface_->get_value(
            to_design_name(instance_name + "." + name))) {
      return value;
    }
    return interface_->get_value(name);
  };
}

// ---------------------------------------------------------------------------
// compiled evaluation pipeline (parse -> compile -> slot resolution ->
// batched fetch -> change-driven evaluation)
// ---------------------------------------------------------------------------

std::optional<Runtime::SlotBinding> Runtime::resolve_binding(
    const Breakpoint* scope_bp, int64_t instance_id,
    const std::string& instance_name, const std::string& name,
    EvalPlan* plan) {
  // A design signal becomes a plan slot (deduplicated by design name).
  // With plan == nullptr only resolvability is checked.
  auto design_slot = [&](const std::string& design_name)
      -> std::optional<SlotBinding> {
    auto handle = interface_->lookup_signal(design_name);
    if (!handle) return std::nullopt;
    SlotBinding binding;
    if (plan != nullptr) {
      auto [it, inserted] = plan->index.try_emplace(
          design_name, static_cast<uint32_t>(plan->names.size()));
      if (inserted) {
        plan->names.push_back(design_name);
        plan->handles.push_back(*handle);
        plan->values.emplace_back();
        plan->present.push_back(0);
        plan->change_serial.push_back(0);
      }
      binding.plan_slot = static_cast<int32_t>(it->second);
    } else {
      binding.plan_slot = 0;  // placeholder: existence is all that matters
    }
    return binding;
  };
  // Non-RTL symbol-table variables are static strings: they fold to
  // constants at arm time.
  auto constant_of =
      [](const std::string& text) -> std::optional<SlotBinding> {
    try {
      SlotBinding binding;
      binding.is_constant = true;
      binding.constant = BitVector::from_string(text);
      return binding;
    } catch (const std::exception&) {
      return std::nullopt;  // malformed table entry: unresolvable
    }
  };

  // Resolution order mirrors the interpreted resolvers exactly:
  // 1. frame locals (breakpoint scope only)
  if (scope_bp != nullptr) {
    if (auto variable =
            table_->resolve_scope_variable(scope_bp->row.id, name)) {
      if (!variable->is_rtl) return constant_of(variable->value);
      return design_slot(
          to_design_name(instance_name + "." + variable->value));
    }
  }
  // 2. generator (instance) variables
  if (auto variable = table_->resolve_generator_variable(instance_id, name)) {
    if (!variable->is_rtl) return constant_of(variable->value);
    return design_slot(to_design_name(instance_name + "." + variable->value));
  }
  // 3. instance-relative RTL name
  if (auto binding = design_slot(to_design_name(instance_name + "." + name))) {
    return binding;
  }
  // 4. absolute hierarchical name
  return design_slot(name);
}

std::shared_ptr<const CompiledExpression> Runtime::compile_shared(
    const Expression& expr, bool persist) {
  // CSE across arms: N instances (or N sessions) arming the same condition
  // share one flat program; only the slot maps are per-instance. The key
  // is the normalized AST, so "a&&b" and "a && b" unify too. Only armed
  // predicates persist: caching throwaway one-off evaluations would let a
  // long-lived debug server grow the map without bound.
  std::string key = expr.cache_key();
  auto it = program_cache_.find(key);
  if (it != program_cache_.end()) {
    if (options_.collect_stats) {
      stats_.program_cache_hits->add(1);
    }
    return it->second;
  }
  auto program = std::make_shared<const CompiledExpression>(expr.compile());
  if (options_.collect_stats) {
    stats_.programs_compiled->add(1);
  }
  if (persist) program_cache_.emplace(std::move(key), program);
  return program;
}

Runtime::CompiledPredicate Runtime::bind_predicate(
    const Expression& expr, const Breakpoint* scope_bp, int64_t instance_id,
    const std::string& instance_name, EvalPlan* plan,
    std::vector<uint32_t>* deps, bool require_resolved, bool persist_program) {
  CompiledPredicate predicate;
  predicate.expr = compile_shared(expr, persist_program);
  const auto& symbols = predicate.expr->symbols();
  predicate.bindings.reserve(symbols.size());
  for (const auto& symbol : symbols) {
    auto binding =
        resolve_binding(scope_bp, instance_id, instance_name, symbol, plan);
    if (!binding) {
      if (require_resolved) {
        throw std::out_of_range("cannot resolve symbol '" + symbol + "'");
      }
      predicate.poisoned = true;
      predicate.bindings.emplace_back();
      continue;
    }
    if (!binding->is_constant && deps != nullptr) {
      deps->push_back(static_cast<uint32_t>(binding->plan_slot));
    }
    predicate.bindings.push_back(std::move(*binding));
  }
  predicate.ptrs.resize(predicate.bindings.size());
  return predicate;
}

void Runtime::rebuild_plan_locked() {
  plan_ = EvalPlan{};
  for (auto& bp : breakpoints_) {
    bp.compiled_enable.reset();
    bp.dep_slots.clear();
    bp.eval_serial = 0;
    bp.cached = 0;
    for (auto& arm : bp.conditions) {
      arm.compiled.reset();
      arm.cached = 0;
    }
    if (!options_.compiled_eval) continue;
    if (bp.enable) {
      // Enables come from the symbol table; one referencing an
      // optimized-away signal poisons the predicate (never hits), exactly
      // like the interpreted resolver's unresolved-name exception did.
      bp.compiled_enable =
          bind_predicate(*bp.enable, &bp, bp.row.instance_id,
                         bp.instance_name, &plan_, &bp.dep_slots, false);
    }
    if (bp.inserted) {
      for (auto& arm : bp.conditions) {
        arm.compiled =
            bind_predicate(*arm.expr, &bp, bp.row.instance_id,
                           bp.instance_name, &plan_, &bp.dep_slots, false);
      }
    }
    std::sort(bp.dep_slots.begin(), bp.dep_slots.end());
    bp.dep_slots.erase(std::unique(bp.dep_slots.begin(), bp.dep_slots.end()),
                       bp.dep_slots.end());
  }
  for (auto& wp : watchpoints_) {
    wp.compiled.reset();
    wp.dep_slots.clear();
    wp.eval_serial = 0;
    if (!options_.compiled_eval) continue;
    wp.compiled = bind_predicate(wp.expr, nullptr, wp.instance_id,
                                 wp.instance_name, &plan_, &wp.dep_slots,
                                 false);
    std::sort(wp.dep_slots.begin(), wp.dep_slots.end());
    wp.dep_slots.erase(std::unique(wp.dep_slots.begin(), wp.dep_slots.end()),
                       wp.dep_slots.end());
  }
  // Subscribed signals join the same plan (and the same batched fetch) in
  // either evaluation mode; their change events ride the plan serials.
  for (auto& sub : subscriptions_) {
    sub.slots.assign(sub.names.size(), -1);
    sub.constants.assign(sub.names.size(), std::nullopt);
    for (size_t i = 0; i < sub.names.size(); ++i) {
      auto binding = resolve_binding(nullptr, sub.instance_id,
                                     sub.instance_name, sub.names[i], &plan_);
      if (!binding) continue;
      if (binding->is_constant) {
        sub.constants[i] = binding->constant;
      } else {
        sub.slots[i] = binding->plan_slot;
      }
    }
    sub.last_serial = 0;  // next edge re-checks against last_values
  }
  // Drop programs no live predicate references (use_count 1 = only the
  // cache holds it): arm/disarm churn on a long-lived server must not
  // grow the cache monotonically. Everything above rebound first, so
  // shared programs still in use survive the sweep.
  for (auto it = program_cache_.begin(); it != program_cache_.end();) {
    it = it->second.use_count() == 1 ? program_cache_.erase(it)
                                     : std::next(it);
  }
  values_stale_ = true;
}

void Runtime::ensure_edge_values_locked() {
  if (edge_values_fresh_ && !values_stale_) return;
  const size_t count = plan_.handles.size();
  ++plan_.serial;  // even an empty fetch round advances the cache epoch
  if (count != 0) {
    HGDB_TRACE_SPAN_VAR(fetch_span, "runtime", "batch_fetch");
    fetch_span.set_arg(count);
    // Zero-copy fast path: backends with stable storage (the native
    // simulator's value array) hand back pointers; unchanged signals are
    // compared in place and copied never, changed ones copy-assign into
    // the plan (reusing capacity). The copying get_values() path remains
    // for backends that must marshal (replay seeks, RPC).
    plan_.views.resize(count);
    if (interface_->get_value_views(plan_.handles.data(), count,
                                    plan_.views.data())) {
      for (size_t i = 0; i < count; ++i) {
        const bool was_present = plan_.present[i] != 0;
        const bool now_present = plan_.views[i] != nullptr;
        if (was_present != now_present ||
            (now_present && plan_.values[i] != *plan_.views[i])) {
          plan_.change_serial[i] = plan_.serial;
          plan_.present[i] = now_present ? 1 : 0;
          if (now_present) plan_.values[i] = *plan_.views[i];
        }
      }
    } else {
      plan_.incoming.resize(count);
      plan_.incoming_present.assign(count, 0);
      interface_->get_values(plan_.handles.data(), count, plan_.incoming.data(),
                             plan_.incoming_present.data());
      for (size_t i = 0; i < count; ++i) {
        const bool was_present = plan_.present[i] != 0;
        const bool now_present = plan_.incoming_present[i] != 0;
        if (was_present != now_present ||
            (now_present && plan_.values[i] != plan_.incoming[i])) {
          plan_.change_serial[i] = plan_.serial;
          plan_.present[i] = plan_.incoming_present[i];
          if (now_present) std::swap(plan_.values[i], plan_.incoming[i]);
        }
      }
    }
    if (options_.collect_stats) {
      stats_.batch_fetches->add(1);
      stats_.batch_signals->add(count);
    }
  }
  edge_values_fresh_ = true;
  values_stale_ = false;
}

const BitVector* Runtime::eval_predicate_value(CompiledPredicate& predicate,
                                               const EvalPlan& plan) {
  if (predicate.poisoned) return nullptr;
  for (size_t i = 0; i < predicate.bindings.size(); ++i) {
    const SlotBinding& binding = predicate.bindings[i];
    if (binding.is_constant) {
      predicate.ptrs[i] = &binding.constant;
    } else {
      const auto slot = static_cast<size_t>(binding.plan_slot);
      predicate.ptrs[i] =
          plan.present[slot] != 0 ? &plan.values[slot] : nullptr;
    }
  }
  return predicate.expr->evaluate(predicate.ptrs.data(), predicate.scratch);
}

int Runtime::eval_predicate(CompiledPredicate& predicate,
                            const EvalPlan& plan) {
  const BitVector* value = eval_predicate_value(predicate, plan);
  if (value == nullptr) return -1;
  return value->to_bool() ? 1 : 0;
}

uint64_t Runtime::deps_serial(const std::vector<uint32_t>& deps) const {
  uint64_t serial = 0;
  for (uint32_t slot : deps) {
    serial = std::max(serial, plan_.change_serial[slot]);
  }
  return serial;
}

std::optional<BitVector> Runtime::evaluate_compiled(
    const Expression& parsed, const Breakpoint* scope_bp, int64_t instance_id,
    const std::string& instance_name) {
  // One-off evaluation (protocol `evaluate`/`evaluate-batch`): same
  // compile + slot-resolve + fetch pipeline as the scheduler, against a
  // throwaway plan.
  EvalPlan local;
  CompiledPredicate predicate;
  try {
    predicate = bind_predicate(parsed, scope_bp, instance_id, instance_name,
                               &local, nullptr, true,
                               /*persist_program=*/false);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  const size_t count = local.handles.size();
  if (count != 0) {
    interface_->get_values(local.handles.data(), count, local.values.data(),
                           local.present.data());
  }
  const BitVector* value = eval_predicate_value(predicate, local);
  if (value == nullptr) return std::nullopt;
  return *value;
}

// ---------------------------------------------------------------------------
// scheduler (Fig. 2)
// ---------------------------------------------------------------------------

void Runtime::on_clock_edge(vpi::ClockEdge edge, uint64_t time) {
  // All values are stable at both edges under zero-delay simulation; one
  // pass per cycle at the rising edge is sufficient (Sec. 3).
  if (edge != vpi::ClockEdge::Rising) return;
  stats_.clock_edges->add(1);

  // Fast path first: nothing inserted, nothing watched, nothing
  // subscribed, no pause requested, plain run mode. This branch is the
  // entire per-cycle cost the paper measures in Fig. 5, so it is lock- and
  // allocation-free.
  if (mode_.load(std::memory_order_acquire) == Mode::Run &&
      !any_inserted_.load(std::memory_order_acquire) &&
      !any_watch_.load(std::memory_order_acquire) &&
      !any_subs_.load(std::memory_order_acquire) &&
      !pause_pending_.load(std::memory_order_acquire)) {
    stats_.fast_path_exits->add(1);
    return;
  }

  // Everything below is the non-fast-path edge work (Fig. 2 steps 1-4);
  // one span brackets the whole dispatch when tracing is on.
  HGDB_TRACE_SPAN("runtime", "edge_dispatch");

  if (pause_pending_.exchange(false)) {
    common::LockGuard lock(state_mutex_);
    mode_ = Mode::Step;
  }

  {
    // A new edge invalidates the previous edge's fetched values; the first
    // batch (or watchpoint sweep) that needs them re-fetches once.
    common::LockGuard lock(state_mutex_);
    edge_values_fresh_ = false;
  }

  // Subscribed value-change streams push before anything can stop the
  // cycle (forward execution only, like watchpoints): the events ride the
  // same batched fetch the condition pipeline is about to reuse.
  {
    const Mode current = mode_.load(std::memory_order_acquire);
    if (current != Mode::ReverseStep && current != Mode::ReverseContinue &&
        any_subs_.load(std::memory_order_acquire)) {
      emit_subscription_events(time);
    }
  }

  // Watchpoints fire before the batch scan (forward execution only: a
  // reverse traversal re-visits old values and would re-trigger them).
  {
    const Mode current = mode_.load(std::memory_order_acquire);
    if (current != Mode::ReverseStep && current != Mode::ReverseContinue &&
        any_watch_.load(std::memory_order_acquire)) {
      std::vector<rpc::WatchHit> watch_hits;
      collect_watch_hits(watch_hits);
      if (!watch_hits.empty()) {
        StopEvent event;
        event.time = time;
        event.watch_hits = std::move(watch_hits);
        stats_.stops->add(1);
        const Command command = deliver_stop(std::move(event));
        common::LockGuard lock(state_mutex_);
        switch (command) {
          case Command::Continue:
            mode_ = Mode::Run;
            break;
          case Command::Pause:
          case Command::StepOver:
          case Command::StepBack:
          case Command::ReverseContinue:
            // Reverse from a watch stop degrades to a forward step (watch
            // stops only exist on the forward path).
            mode_ = Mode::Step;
            break;
          case Command::Jump:
            // Handled by the session layer via set_time before resuming.
            mode_ = Mode::Step;
            return;
          case Command::Detach:
            mode_ = Mode::Run;
            return;
        }
      }
    }
  }

  Mode mode;
  bool reverse_entry;
  {
    common::LockGuard lock(state_mutex_);
    mode = mode_;
    reverse_entry = reverse_entry_;
    reverse_entry_ = false;
  }

  // Run mode with no inserted breakpoints can only have been reached for
  // watchpoints or subscriptions — both already handled. Skip the batch
  // scan outright: subscribed-only edges cost one batched fetch, nothing
  // more.
  if (mode == Mode::Run && !any_inserted_.load(std::memory_order_acquire)) {
    return;
  }

  bool reverse = mode == Mode::ReverseStep || mode == Mode::ReverseContinue;
  if (reverse && !reverse_entry) {
    // A reverse command always enters a cycle through time travel; if we
    // land here (e.g. rewind unsupported), degrade to forward stepping.
    reverse = false;
    common::LockGuard lock(state_mutex_);
    mode_ = mode = Mode::Step;
  }

  int64_t index = reverse ? static_cast<int64_t>(batches_.size()) - 1 : 0;
  std::vector<size_t> hits;
  while (index >= 0 && index < static_cast<int64_t>(batches_.size())) {
    mode = mode_.load(std::memory_order_acquire);
    const bool respect_inserted =
        mode == Mode::Run || mode == Mode::ReverseContinue;
    hits.clear();
    evaluate_batch(batches_[static_cast<size_t>(index)], respect_inserted, hits);
    if (hits.empty()) {
      index += reverse ? -1 : 1;
      continue;
    }

    StopEvent stop = make_stop_event(time, hits);
    // Inserted-breakpoint hits evaluated their condition arms: the session
    // layer may route the stop by matched condition. Step stops broadcast.
    stop.condition_routed = respect_inserted;
    const Command command = deliver_stop(std::move(stop));
    common::LockGuard lock(state_mutex_);
    switch (command) {
      case Command::Continue:
        mode_ = Mode::Run;
        reverse = false;
        ++index;
        break;
      case Command::Pause:
      case Command::StepOver:
        mode_ = Mode::Step;
        reverse = false;
        ++index;
        break;
      case Command::StepBack:
        mode_ = Mode::ReverseStep;
        reverse = true;
        --index;
        break;
      case Command::ReverseContinue:
        mode_ = Mode::ReverseContinue;
        reverse = true;
        --index;
        break;
      case Command::Jump:
        // Handled by the session layer via set_time before resuming.
        mode_ = Mode::Step;
        return;
      case Command::Detach:
        for (auto& bp : breakpoints_) {
          bp.inserted = false;
          bp.uncond_refs = 0;
          bp.conditions.clear();
        }
        any_inserted_.store(false, std::memory_order_release);
        rebuild_plan_locked();
        mode_ = Mode::Run;
        return;
    }
  }

  if (!reverse) return;  // forward scan done; wait for the next edge

  // Reverse scan exhausted this cycle: hop to the previous cycle if the
  // backend supports time travel (Fig. 2 "*Reverse time").
  if (rewind_one_cycle(time)) {
    common::LockGuard lock(state_mutex_);
    reverse_entry_ = true;
    return;
  }
  // Beginning of recorded history: report an empty stop so the debugger
  // knows reverse execution bottomed out, then resume forward stepping.
  const Command command = deliver_stop(StopEvent{time, {}, {}});
  common::LockGuard lock(state_mutex_);
  mode_ = command == Command::Continue ? Mode::Run : Mode::Step;
}

bool Runtime::rewind_one_cycle(uint64_t time) {
  if (!interface_->supports_time_travel()) return false;
  if (time < 3) return false;
  // The clock grid has a rising edge every 2 time units; landing 3 units
  // back puts the cursor strictly before the previous rising edge for the
  // replay backend and on the previous cycle for the native backend.
  return interface_->set_time(time - 3);
}

void Runtime::evaluate_batch(const Batch& batch, bool respect_inserted,
                             std::vector<size_t>& hits) {
  common::LockGuard lock(state_mutex_);
  HGDB_TRACE_SPAN_VAR(eval_span, "runtime", "evaluate_batch");
  eval_span.set_arg(batch.members.size());
  const auto t0 = options_.collect_stats
                      ? std::chrono::steady_clock::now()
                      : std::chrono::steady_clock::time_point{};
  const bool compiled = options_.compiled_eval;
  if (compiled) ensure_edge_values_locked();

  const size_t count = batch.members.size();
  std::vector<uint8_t> fired(count, 0);
  std::vector<uint8_t> evaluated(count, 0);
  std::vector<uint8_t> skipped(count, 0);

  // Compiled fast path: flat programs over the pre-fetched value plan,
  // with a change-driven cache — a member none of whose input signals
  // changed since its last evaluation reuses the cached verdicts (the
  // enable's and every condition arm's).
  auto evaluate_member_compiled = [&](size_t position) {
    // Fork/join: the sim thread holds state_mutex_ until the job drains.
    state_mutex_.assert_held();
    const size_t member = batch.members[position];
    Breakpoint& bp = breakpoints_[member];
    if (respect_inserted && !bp.inserted) return;
    const bool need_cond = respect_inserted && !bp.conditions.empty();
    const bool has_work = bp.compiled_enable.has_value() || need_cond;
    if (bp.eval_serial == 0 || deps_serial(bp.dep_slots) > bp.eval_serial) {
      // Inputs changed: every cached verdict is stale.
      bp.cached = 0;
      for (auto& arm : bp.conditions) arm.cached = 0;
    }
    bool did_eval = false;
    if ((bp.cached & kCacheHasEnable) == 0) {
      // A faulting predicate (-1) behaves like the interpreted path's
      // caught exception: the member does not hit.
      const bool enable_true =
          !bp.compiled_enable ||
          eval_predicate(*bp.compiled_enable, plan_) == 1;
      bp.cached |= kCacheHasEnable;
      if (enable_true) bp.cached |= kCacheEnableTrue;
      did_eval = bp.compiled_enable.has_value();
    }
    const bool enable_true = (bp.cached & kCacheEnableTrue) != 0;
    bool hit = enable_true;
    if (enable_true && need_cond) {
      // Every arm is evaluated (no early exit): the matched set routes the
      // stop to exactly the sessions whose own condition fired.
      bp.matched.clear();
      bool any = bp.uncond_refs > 0;
      for (auto& arm : bp.conditions) {
        if ((arm.cached & kArmHasVerdict) == 0) {
          const bool value =
              arm.compiled && eval_predicate(*arm.compiled, plan_) == 1;
          arm.cached = kArmHasVerdict;
          if (value) arm.cached |= kArmTrue;
          did_eval = true;
        }
        if ((arm.cached & kArmTrue) != 0) {
          any = true;
          bp.matched.push_back(arm.text);
        }
      }
      hit = any;
    }
    bp.eval_serial = plan_.serial;
    if (did_eval) {
      evaluated[position] = 1;
    } else if (has_work) {
      skipped[position] = 1;
    }
    // Step-mode hits bypass conditions: never leave a stale matched set
    // behind for make_frame to pick up.
    if (!need_cond) bp.matched.clear();
    if (hit) fired[position] = 1;
  };

  // Interpreted reference path: tree walk per member through the
  // string-keyed resolver.
  auto evaluate_member_interpreted = [&](size_t position) {
    state_mutex_.assert_held();
    const size_t member = batch.members[position];
    Breakpoint& bp = breakpoints_[member];
    if (respect_inserted && !bp.inserted) return;
    const bool need_cond = respect_inserted && !bp.conditions.empty();
    if (bp.enable || need_cond) {
      evaluated[position] = 1;
    }
    const auto resolver = breakpoint_resolver(bp);
    if (!need_cond) bp.matched.clear();
    try {
      if (bp.enable && !bp.enable->evaluate_bool(resolver)) return;
      if (need_cond) {
        bp.matched.clear();
        bool any = bp.uncond_refs > 0;
        for (const auto& arm : bp.conditions) {
          bool value = false;
          try {
            value = arm.expr && arm.expr->evaluate_bool(resolver);
          } catch (const std::exception&) {
            // This arm faults; other sessions' arms still decide.
          }
          if (value) {
            any = true;
            bp.matched.push_back(arm.text);
          }
        }
        if (!any) return;
      }
      fired[position] = 1;
    } catch (const std::exception&) {
      // Unresolvable symbols (optimized away, trace without the signal):
      // treat as not-hit, consistent with how debuggers degrade.
    }
  };

  // Fig. 2 step 2: evaluate the batch in parallel.
  if (compiled) {
    pool_->parallel_for(count, evaluate_member_compiled);
  } else {
    pool_->parallel_for(count, evaluate_member_interpreted);
  }

  uint64_t evaluated_count = 0;
  uint64_t skipped_count = 0;
  for (size_t position = 0; position < count; ++position) {
    evaluated_count += evaluated[position];
    skipped_count += skipped[position];
    if (fired[position]) hits.push_back(batch.members[position]);
  }
  stats_.batches_evaluated->add(1);
  stats_.conditions_evaluated->add(evaluated_count);
  stats_.dirty_skips->add(skipped_count);
  if (skipped_count != 0) {
    HGDB_TRACE_INSTANT("runtime", "dirty_skips", skipped_count);
  }
  if (options_.collect_stats) {
    const uint64_t elapsed = elapsed_ns(t0);
    stats_.eval_ns->add(elapsed);
    stats_.batch_eval_ns->record(elapsed);
  }
}

// ---------------------------------------------------------------------------
// frames
// ---------------------------------------------------------------------------

StopEvent Runtime::make_stop_event(uint64_t time,
                                   const std::vector<size_t>& hits) {
  StopEvent event;
  event.time = time;
  event.frames.reserve(hits.size());
  for (size_t member : hits) {
    event.frames.push_back(make_frame(breakpoints_[member]));
  }
  stats_.stops->add(1);
  return event;
}

Frame Runtime::make_frame(const Breakpoint& bp) {
  Frame frame;
  frame.breakpoint_id = bp.row.id;
  frame.instance_id = bp.row.instance_id;
  frame.instance_name = bp.instance_name;
  frame.filename = bp.row.filename;
  frame.line = bp.row.line_num;
  frame.column = bp.row.column_num;
  // Which user conditions fired at this hit (set by evaluate_batch just
  // before the stop): the session layer routes the stop to the sessions
  // holding these arms.
  if (!bp.conditions.empty()) frame.matched_conditions = bp.matched;

  // Locals: the scope variables recorded by SSA for this statement,
  // re-aggregated into nested objects on dotted names.
  for (const auto& variable : table_->scope_variables(bp.row.id)) {
    std::string text;
    if (!variable.is_rtl) {
      text = variable.value;
    } else if (auto value = interface_->get_value(to_design_name(
                   bp.instance_name + "." + variable.value))) {
      text = render(*value);
    } else {
      text = "<unavailable>";
    }
    rpc::insert_nested(frame.locals, variable.name, common::Json(text));
  }
  // Generator variables of the owning instance (paper Fig. 4 A).
  for (const auto& variable :
       table_->generator_variables(bp.row.instance_id)) {
    std::string text;
    if (!variable.is_rtl) {
      text = variable.value;
    } else if (auto value = interface_->get_value(to_design_name(
                   bp.instance_name + "." + variable.value))) {
      text = render(*value);
    } else {
      text = "<unavailable>";
    }
    rpc::insert_nested(frame.generator, variable.name, common::Json(text));
  }
  return frame;
}

Frame Runtime::build_frame(int64_t breakpoint_id) {
  auto it = by_id_.find(breakpoint_id);
  if (it == by_id_.end()) {
    throw std::invalid_argument("unknown breakpoint id " +
                                std::to_string(breakpoint_id));
  }
  return make_frame(breakpoints_[it->second]);
}

// ---------------------------------------------------------------------------
// stop delivery
// ---------------------------------------------------------------------------

Runtime::Command Runtime::deliver_stop(StopEvent event) {
  StopHandler handler;
  {
    common::LockGuard lock(handler_mutex_);
    handler = stop_handler_;
  }
  Command command = Command::Continue;  // nobody is listening
  bool delivered = false;
  if (handler) {
    command = handler(event);
    delivered = true;
  } else {
    session::SessionManager* service = nullptr;
    {
      common::LockGuard lock(service_mutex_);
      service = service_.get();
    }
    if (service) {
      command = service->deliver_stop(std::move(event));
      delivered = true;
    }
  }
  if (delivered) {
    // The debugger may have forced signals or travelled in time while
    // stopped; the pre-fetched edge values can no longer be trusted.
    common::LockGuard lock(state_mutex_);
    values_stale_ = true;
  }
  return command;
}

// ---------------------------------------------------------------------------
// evaluation
// ---------------------------------------------------------------------------

std::optional<BitVector> Runtime::evaluate(const std::string& expression,
                                           std::optional<int64_t> breakpoint_id,
                                           const std::string& instance_name) {
  try {
    const Expression parsed = Expression::parse(expression);
    // Serialized with the scheduler: compiled one-off evaluation resolves
    // names through the backend's handle table, which the simulation
    // thread reads concurrently. Never held while blocked on a stop
    // (deliver_stop runs lock-free), so client evaluates during a stop
    // cannot deadlock.
    common::LockGuard lock(state_mutex_);
    const Breakpoint* scope_bp = nullptr;
    int64_t instance_id = 0;
    std::string scope_instance;
    if (breakpoint_id) {
      auto it = by_id_.find(*breakpoint_id);
      if (it == by_id_.end()) return std::nullopt;
      scope_bp = &breakpoints_[it->second];
      instance_id = scope_bp->row.instance_id;
      scope_instance = scope_bp->instance_name;
    } else {
      const auto instance = resolve_instance(instance_name);
      if (!instance) return std::nullopt;
      instance_id = instance->first;
      scope_instance = instance->second;
    }
    if (options_.compiled_eval) {
      // One-off `evaluate`/`evaluate-batch` requests ride the same
      // compiled pipeline the scheduler runs, so the protocol exercises
      // exactly the code the hot loop trusts.
      return evaluate_compiled(parsed, scope_bp, instance_id, scope_instance);
    }
    const Expression::Resolver resolver =
        scope_bp != nullptr ? breakpoint_resolver(*scope_bp)
                            : instance_resolver(instance_id, scope_instance);
    return parsed.evaluate(resolver);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<BitVector> Runtime::read_instance_rtl(
    const std::string& instance_name, const std::string& rtl_path) {
  if (auto value = interface_->get_value(
          to_design_name(instance_name + "." + rtl_path))) {
    return value;
  }
  return interface_->get_value(rtl_path);
}

bool Runtime::set_signal_value(const std::string& hier_name,
                               const BitVector& value) {
  auto try_name = [&](const std::string& name) {
    // Match the target's width when it is known, so "42" forces cleanly
    // into an 8-bit register.
    if (auto current = interface_->get_value(name)) {
      return interface_->set_value(name, value.resize(current->width()));
    }
    return interface_->set_value(name, value);
  };
  bool forced = try_name(hier_name);
  if (!forced) {
    const std::string mapped = to_design_name(hier_name);
    forced = mapped != hier_name && try_name(mapped);
  }
  if (forced) {
    // Invalidate the edge's pre-fetched values: the forced signal may feed
    // an armed condition.
    common::LockGuard lock(state_mutex_);
    values_stale_ = true;
  }
  return forced;
}

Runtime::Stats Runtime::stats() const {
  Stats out;
  out.clock_edges = stats_.clock_edges->value();
  out.fast_path_exits = stats_.fast_path_exits->value();
  out.batches_evaluated = stats_.batches_evaluated->value();
  out.conditions_evaluated = stats_.conditions_evaluated->value();
  out.watchpoints_evaluated = stats_.watchpoints_evaluated->value();
  out.stops = stats_.stops->value();
  out.eval_ns = stats_.eval_ns->value();
  out.dirty_skips = stats_.dirty_skips->value();
  out.batch_fetches = stats_.batch_fetches->value();
  out.batch_signals = stats_.batch_signals->value();
  out.programs_compiled = stats_.programs_compiled->value();
  out.program_cache_hits = stats_.program_cache_hits->value();
  return out;
}

// ---------------------------------------------------------------------------
// RPC service (delegated to the session layer)
// ---------------------------------------------------------------------------

session::SessionManager* Runtime::ensure_service() {
  common::LockGuard lock(service_mutex_);
  if (!service_) service_ = std::make_unique<session::SessionManager>(*this);
  return service_.get();
}

void Runtime::serve(std::unique_ptr<rpc::Channel> channel) {
  ensure_service()->add_client(std::move(channel));
}

uint16_t Runtime::serve_tcp(uint16_t port) {
  return ensure_service()->listen_tcp(port);
}

uint16_t Runtime::serve_dap(uint16_t port) {
  return ensure_service()->listen_dap(port);
}

void Runtime::stop_service() {
  session::SessionManager* service = nullptr;
  {
    common::LockGuard lock(service_mutex_);
    service = service_.get();
  }
  if (service) service->shutdown();
}

session::SessionManager* Runtime::session_manager() {
  common::LockGuard lock(service_mutex_);
  return service_.get();
}

}  // namespace hgdb::runtime
