#include "runtime/thread_pool.h"

namespace hgdb::runtime {

ThreadPool::ThreadPool(size_t threads, size_t serial_cutoff)
    : serial_cutoff_(serial_cutoff) {
  if (threads == 0) threads = 1;
  // The caller is one of the threads; spawn the rest.
  workers_.reserve(threads - 1);
  for (size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    common::LockGuard lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(size_t)>* job = nullptr;
    size_t job_size = 0;
    {
      common::UniqueLock lock(mutex_);
      while (!shutdown_ && generation_ == seen_generation) {
        work_ready_.wait(lock);
      }
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
      job_size = job_size_;
    }
    while (true) {
      const size_t index = next_index_.fetch_add(1, std::memory_order_relaxed);
      if (index >= job_size) break;
      (*job)(index);
    }
    if (active_workers_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Notify under the mutex: otherwise the caller can check the
      // predicate (active == 1), lose this notify before blocking, and
      // sleep forever — the textbook lost-wakeup race.
      common::LockGuard lock(mutex_);
      work_done_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n <= serial_cutoff_) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    common::LockGuard lock(mutex_);
    job_ = &fn;
    job_size_ = n;
    next_index_.store(0, std::memory_order_relaxed);
    active_workers_.store(workers_.size(), std::memory_order_relaxed);
    ++generation_;
  }
  work_ready_.notify_all();
  // The caller shares the work.
  while (true) {
    const size_t index = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (index >= n) break;
    fn(index);
  }
  common::UniqueLock lock(mutex_);
  while (active_workers_.load(std::memory_order_acquire) != 0) {
    work_done_.wait(lock);
  }
  job_ = nullptr;
}

}  // namespace hgdb::runtime
