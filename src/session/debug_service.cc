#include "session/debug_service.h"

#include <algorithm>
#include <chrono>

#include "obs/trace.h"
#include "runtime/runtime.h"

namespace hgdb::session {

using common::BitVector;
using rpc::ErrorCode;

namespace {

std::string render(const BitVector& value) { return value.to_string(10); }

}  // namespace

DebugService::DebugService(runtime::Runtime& runtime) : runtime_(&runtime) {
  auto& registry = runtime_->metrics();
  requests_ = &registry.counter("session.requests");
  protocol_errors_ = &registry.counter("session.protocol_errors");
  stops_broadcast_ = &registry.counter("session.stops_broadcast");
  events_delivered_ = &registry.counter("session.events_delivered");
  events_decimated_ = &registry.counter("session.events_decimated");
  events_dropped_ = &registry.counter("session.events_dropped");
  breakpoint_changes_ = &registry.counter("session.breakpoint_changes");
  stop_handshake_ns_ = &registry.histogram("session.stop_handshake_ns");
  runtime_->set_change_listener(
      [this](int64_t subscription_id, uint64_t time,
             const std::vector<runtime::Runtime::SignalChange>& changes) {
        std::vector<ServiceEvent::ValueChange::Change> rendered;
        rendered.reserve(changes.size());
        for (const auto& change : changes) {
          rendered.push_back(ServiceEvent::ValueChange::Change{
              change.name, render(change.value), change.value.width()});
        }
        handle_value_changes(subscription_id, time, std::move(rendered));
      });
}

DebugService::~DebugService() { runtime_->set_change_listener(nullptr); }

// ---------------------------------------------------------------------------
// clients
// ---------------------------------------------------------------------------

ClientId DebugService::register_client(const std::string& name,
                                       EventSink* sink, int protocol) {
  common::LockGuard lock(clients_mutex_);
  const size_t limit = runtime_->options().max_sessions;
  if (limit != 0 && clients_.size() >= limit) {
    throw ServiceError(ErrorCode::TooManySessions,
                       "session limit reached (" + std::to_string(limit) +
                           " attached)");
  }
  const ClientId id = next_client_id_++;
  ClientState state;
  state.id = id;
  state.name = name;
  state.protocol = protocol;
  state.sink = sink;
  clients_.emplace(id, std::move(state));
  return id;
}

size_t DebugService::unregister_client(ClientId id) {
  size_t removed = 0;
  {
    // delivery_mutex_ first: wait out any sink delivery in flight, so the
    // caller may destroy the sink the moment this returns.
    common::LockGuard delivery(delivery_mutex_);
    common::LockGuard lock(clients_mutex_);
    auto it = clients_.find(id);
    if (it == clients_.end()) return 0;
    removed = release_client_state_locked(it->second);
    clients_.erase(it);
  }
  // The departing client stops counting toward the current stop's expected
  // responders: the simulation resumes once every engaged recipient has
  // answered or left, and never sooner — so a crash can't hang a stop, and
  // a remaining client's stop is never yanked away.
  resign_from_stop(id);
  return removed;
}

DebugService::ClientState& DebugService::client_at(ClientId id) {
  auto it = clients_.find(id);
  if (it == clients_.end()) {
    throw ServiceError(ErrorCode::NoSuchEntity,
                       "unknown client " + std::to_string(id));
  }
  return it->second;
}

void DebugService::set_client_name(ClientId id, const std::string& name) {
  common::LockGuard lock(clients_mutex_);
  client_at(id).name = name;
}

void DebugService::set_client_protocol(ClientId id, int protocol) {
  common::LockGuard lock(clients_mutex_);
  client_at(id).protocol = protocol;
}

void DebugService::set_client_sink(ClientId id, EventSink* sink) {
  // Swapping the sink must also wait out an in-flight delivery to the old
  // one (same lifetime contract as unregister_client).
  common::LockGuard delivery(delivery_mutex_);
  common::LockGuard lock(clients_mutex_);
  client_at(id).sink = sink;
}

void DebugService::set_client_binary(ClientId id, bool binary) {
  // delivery_mutex_ first, like set_client_sink: a fan-out snapshotting
  // binary flags must not race the switch mid-delivery.
  common::LockGuard delivery(delivery_mutex_);
  common::LockGuard lock(clients_mutex_);
  client_at(id).binary = binary;
}

size_t DebugService::client_count() const {
  common::LockGuard lock(clients_mutex_);
  return clients_.size();
}

std::vector<ClientView> DebugService::clients() const {
  common::LockGuard lock(clients_mutex_);
  std::vector<ClientView> views;
  views.reserve(clients_.size());
  for (const auto& [id, client] : clients_) {
    views.push_back(ClientView{id, client.name, client.protocol});
  }
  return views;
}

rpc::Capabilities DebugService::capabilities() const {
  rpc::Capabilities caps;
  auto& interface = runtime_->sim_interface();
  caps.backend = interface.backend_kind();
  caps.time_travel = interface.supports_time_travel();
  caps.set_value = interface.supports_set_value();
  return caps;
}

// ---------------------------------------------------------------------------
// breakpoints
// ---------------------------------------------------------------------------

std::vector<int64_t> DebugService::arm_breakpoint(ClientId id,
                                                  const BreakpointSpec& spec) {
  std::vector<int64_t> ids;
  try {
    ids = runtime_->add_breakpoint(spec.filename, spec.line, spec.condition);
  } catch (const std::invalid_argument& error) {
    throw ServiceError(ErrorCode::InvalidPayload, error.what());
  } catch (const std::out_of_range& error) {
    throw ServiceError(ErrorCode::NoSuchEntity, error.what());
  }
  if (ids.empty()) {
    throw ServiceError(ErrorCode::NoSuchLocation,
                       "no breakpoint at " + spec.filename + ":" +
                           std::to_string(spec.line));
  }
  const auto key =
      std::make_pair(Location{spec.filename, spec.line}, spec.condition);
  bool fresh_arm = false;
  {
    common::LockGuard lock(clients_mutex_);
    ClientState& client = client_at(id);
    engage_locked(client);  // armed a breakpoint: expected to answer stops
    fresh_arm = client.arms.insert(key).second;
    if (!fresh_arm) {
      // The client already held this exact arm; undo the duplicate runtime
      // reference so its ref count stays one-per-owner.
      runtime_->release_breakpoint(spec.filename, spec.line, spec.condition);
    }
  }
  // Outside the client table lock: the fan-out takes delivery_mutex_ and
  // re-enters clients_mutex_ itself. A re-arm of an already-held location
  // changes nothing, so the other sessions hear nothing.
  if (fresh_arm) {
    notify_breakpoint_change(id, "armed", key.first, key.second);
  }
  return ids;
}

size_t DebugService::disarm_breakpoint(ClientId id,
                                       const std::string& filename,
                                       uint32_t line) {
  std::vector<std::pair<Location, std::string>> taken;
  {
    common::LockGuard lock(clients_mutex_);
    ClientState& client = client_at(id);
    for (auto it = client.arms.begin(); it != client.arms.end();) {
      const auto& [location, condition] = *it;
      if (location.first == filename && (line == 0 || location.second == line)) {
        taken.push_back(*it);
        it = client.arms.erase(it);
      } else {
        ++it;
      }
    }
  }
  size_t removed = 0;
  for (const auto& [location, condition] : taken) {
    removed +=
        runtime_->release_breakpoint(location.first, location.second, condition);
    notify_breakpoint_change(id, "disarmed", location, condition);
  }
  return removed;
}

std::vector<BreakpointView> DebugService::list_breakpoints(ClientId id) const {
  std::vector<BreakpointView> views;
  const auto inserted = runtime_->inserted_breakpoints();
  common::LockGuard lock(clients_mutex_);
  auto it = clients_.find(id);
  for (const auto& bp : inserted) {
    bool owned = false;
    if (it != clients_.end()) {
      const Location location{bp.filename, bp.line};
      for (const auto& [armed, condition] : it->second.arms) {
        if (armed == location) {
          owned = true;
          break;
        }
      }
    }
    views.push_back(
        BreakpointView{bp.id, bp.filename, bp.line, bp.instance_name, owned});
  }
  return views;
}

std::vector<LocationView> DebugService::breakpoint_locations(
    const std::string& filename, uint32_t line) const {
  std::vector<LocationView> views;
  const auto& table = runtime_->symbol_table();
  for (const auto& row : table.breakpoints_at(filename, line)) {
    LocationView view;
    view.id = row.id;
    view.filename = row.filename;
    view.line = row.line_num;
    view.column = row.column_num;
    auto instance = table.instance(row.instance_id);
    view.instance = instance ? instance->name : "";
    views.push_back(std::move(view));
  }
  return views;
}

// ---------------------------------------------------------------------------
// execution
// ---------------------------------------------------------------------------

void DebugService::execute(ClientId id, Command command,
                           std::optional<uint64_t> time) {
  {
    common::LockGuard lock(clients_mutex_);
    engage_locked(client_at(id));
  }
  common::UniqueLock lock(command_mutex_);
  if (waiting_for_command_) {
    if (pending_command_.has_value()) {
      // Another client already answered this stop; first command wins
      // rather than being silently overwritten.
      throw ServiceError(ErrorCode::InvalidState,
                         "a resume command is already pending for this stop");
    }
    if (command == Command::Jump) {
      if (!time) {
        throw ServiceError(ErrorCode::InvalidPayload,
                           "payload missing 'time'");
      }
      if (!runtime_->sim_interface().set_time(*time)) {
        throw ServiceError(ErrorCode::InvalidPayload,
                           "time travel target out of range");
      }
    }
    pending_command_ = command;
    command_ready_.notify_all();
    return;
  }
  lock.unlock();
  if (command == Command::Pause) {
    runtime_->request_pause();
    return;
  }
  throw ServiceError(ErrorCode::InvalidState, "simulation is not stopped");
}

size_t DebugService::detach(ClientId id) {
  size_t removed = 0;
  {
    common::LockGuard lock(clients_mutex_);
    removed = release_client_state_locked(client_at(id));
  }
  resign_from_stop(id);
  return removed;
}

size_t DebugService::release_client_state_locked(ClientState& client) {
  size_t removed = 0;
  for (const auto& [location, condition] : client.arms) {
    removed +=
        runtime_->release_breakpoint(location.first, location.second, condition);
  }
  client.arms.clear();
  for (int64_t watch : client.watches) {
    runtime_->remove_watchpoint(watch);
  }
  client.watches.clear();
  for (uint64_t subscription : client.subscriptions) {
    runtime_->remove_signal_subscription(static_cast<int64_t>(subscription));
    if (auto sub = subscriptions_.find(subscription);
        sub != subscriptions_.end()) {
      remove_subscription_metric_locked(sub->second);
      subscriptions_.erase(sub);
    }
  }
  client.subscriptions.clear();
  client.engaged = false;
  return removed;
}

// ---------------------------------------------------------------------------
// evaluation
// ---------------------------------------------------------------------------

EvaluateResult DebugService::evaluate(const EvaluateSpec& spec) {
  auto value = runtime_->evaluate(spec.expression, spec.breakpoint_id,
                                  spec.instance_name);
  if (!value) {
    throw ServiceError(ErrorCode::EvaluationFailed,
                       "cannot evaluate '" + spec.expression + "'");
  }
  return EvaluateResult{render(*value), value->width()};
}

int64_t DebugService::arm_watch(ClientId id, const WatchSpec& spec) {
  int64_t watch_id = 0;
  try {
    watch_id = runtime_->add_watchpoint(spec.expression, spec.instance_name);
  } catch (const std::invalid_argument& error) {
    throw ServiceError(ErrorCode::InvalidPayload, error.what());
  } catch (const std::out_of_range& error) {
    throw ServiceError(ErrorCode::NoSuchEntity, error.what());
  }
  common::LockGuard lock(clients_mutex_);
  ClientState& client = client_at(id);
  engage_locked(client);  // armed a watchpoint: expected to answer stops
  client.watches.insert(watch_id);
  return watch_id;
}

void DebugService::disarm_watch(ClientId id, int64_t watch_id) {
  {
    common::LockGuard lock(clients_mutex_);
    ClientState& client = client_at(id);
    if (client.watches.erase(watch_id) == 0) {
      throw ServiceError(ErrorCode::NoSuchEntity,
                         "watchpoint " + std::to_string(watch_id) +
                             " is not owned by this session");
    }
  }
  runtime_->remove_watchpoint(watch_id);
}

// ---------------------------------------------------------------------------
// hierarchy / symbol browsing
// ---------------------------------------------------------------------------

std::vector<InstanceView> DebugService::instances() const {
  std::vector<InstanceView> views;
  for (const auto& row : runtime_->symbol_table().instances()) {
    views.push_back(InstanceView{row.id, row.name});
  }
  return views;
}

std::vector<VariableView> DebugService::variables(
    const std::string& instance_name) const {
  const auto& table = runtime_->symbol_table();
  auto row = table.instance_by_name(instance_name);
  if (!row) {
    throw ServiceError(ErrorCode::NoSuchEntity,
                       "unknown instance '" + instance_name + "'");
  }
  std::vector<VariableView> views;
  for (const auto& variable : table.generator_variables(row->id)) {
    VariableView view;
    view.name = variable.name;
    view.is_rtl = variable.is_rtl;
    if (!variable.is_rtl) {
      view.value = variable.value;
    } else if (auto value =
                   runtime_->read_instance_rtl(instance_name, variable.value)) {
      view.value = render(*value);
      view.width = value->width();
    } else {
      view.value = "<unavailable>";
    }
    views.push_back(std::move(view));
  }
  return views;
}

rpc::Frame DebugService::frame_variables(int64_t breakpoint_id) const {
  try {
    return runtime_->build_frame(breakpoint_id);
  } catch (const std::invalid_argument& error) {
    throw ServiceError(ErrorCode::NoSuchEntity, error.what());
  }
}

std::vector<std::string> DebugService::files() const {
  return runtime_->symbol_table().files();
}

// ---------------------------------------------------------------------------
// signal forcing
// ---------------------------------------------------------------------------

void DebugService::set_value(const std::string& name,
                             const std::string& value) {
  BitVector bits;
  try {
    bits = BitVector::from_string(value);
  } catch (const std::exception& error) {
    throw ServiceError(ErrorCode::InvalidPayload, error.what());
  }
  if (!runtime_->set_signal_value(name, bits)) {
    throw ServiceError(ErrorCode::NoSuchEntity, "cannot set '" + name + "'");
  }
}

// ---------------------------------------------------------------------------
// subscriptions
// ---------------------------------------------------------------------------

uint64_t DebugService::subscribe(ClientId id, const SubscribeSpec& spec) {
  // The runtime registration happens under clients_mutex_ so the first
  // change event — possibly the only one, the initial snapshot — cannot
  // fire before the SubscriptionState exists: the sim thread's listener
  // callback blocks on this mutex until the state is recorded. Safe
  // lock-order-wise because the runtime never holds its state mutex while
  // invoking the listener.
  common::LockGuard lock(clients_mutex_);
  ClientState& client = client_at(id);
  int64_t subscription_id = 0;
  try {
    subscription_id =
        runtime_->add_signal_subscription(spec.signals, spec.instance_name);
  } catch (const std::invalid_argument& error) {
    throw ServiceError(ErrorCode::InvalidPayload, error.what());
  } catch (const std::out_of_range& error) {
    throw ServiceError(ErrorCode::NoSuchEntity, error.what());
  }
  const auto key = static_cast<uint64_t>(subscription_id);
  client.subscriptions.insert(key);
  SubscriptionState state;
  state.id = key;
  state.client = id;
  state.decimation = std::max<uint32_t>(1, spec.decimation);
  state.min_interval = spec.min_interval;
  if (state.min_interval != 0) {
    state.dropped = &metrics().counter("session.subscription." +
                                       std::to_string(key) +
                                       ".events_dropped");
  }
  subscriptions_.emplace(key, state);
  return key;
}

void DebugService::unsubscribe(ClientId id, uint64_t subscription_id) {
  {
    common::LockGuard lock(clients_mutex_);
    ClientState& client = client_at(id);
    if (client.subscriptions.erase(subscription_id) == 0) {
      throw ServiceError(ErrorCode::NoSuchEntity,
                         "subscription " + std::to_string(subscription_id) +
                             " is not owned by this session");
    }
    if (auto sub = subscriptions_.find(subscription_id);
        sub != subscriptions_.end()) {
      remove_subscription_metric_locked(sub->second);
      subscriptions_.erase(sub);
    }
  }
  runtime_->remove_signal_subscription(static_cast<int64_t>(subscription_id));
}

size_t DebugService::subscription_count() const {
  common::LockGuard lock(clients_mutex_);
  return subscriptions_.size();
}

void DebugService::handle_value_changes(
    int64_t subscription_id, uint64_t time,
    std::vector<ServiceEvent::ValueChange::Change> changes) {
  const uint64_t key = static_cast<uint64_t>(subscription_id);
  // delivery_mutex_ — not clients_mutex_ — brackets the sink call: the
  // sink stays alive because unregister_client waits on delivery_mutex_
  // before letting the front end destroy it, while clients_mutex_ stays
  // free so a slow (or re-entrant) sink cannot block service traffic.
  common::LockGuard delivery(delivery_mutex_);
  EventSink* sink = nullptr;
  bool binary = false;
  {
    common::LockGuard lock(clients_mutex_);
    auto it = subscriptions_.find(key);
    if (it == subscriptions_.end()) return;
    SubscriptionState& state = it->second;
    // Client-chosen decimation: the first event (the initial snapshot) is
    // always delivered, then every Nth change event — a client at
    // decimation N receives ~1/N of the stream regardless of burstiness,
    // but never misses the snapshot of a mostly-static signal.
    const uint64_t seen = state.events_seen++;
    if (seen % state.decimation != 0) {
      events_decimated_->add(1);
      return;
    }
    // Server-side min-interval throttle, applied after decimation: a burst
    // of changes inside the window collapses to the first one. The initial
    // snapshot always passes (a mostly-static signal must still surface).
    if (state.min_interval != 0 && state.delivered_any &&
        time < state.last_delivered_time + state.min_interval) {
      events_dropped_->add(1);
      if (state.dropped != nullptr) state.dropped->add(1);
      return;
    }
    auto client = clients_.find(state.client);
    if (client == clients_.end() || client->second.sink == nullptr) return;
    sink = client->second.sink;
    binary = client->second.binary;
  }
  HGDB_TRACE_SPAN("session", "event_fanout");
  ServiceEvent event;
  event.kind = ServiceEvent::Kind::ValueChange;
  event.value_change.subscription = key;
  event.value_change.time = time;
  event.value_change.changes = std::move(changes);
  if (binary) {
    event.binary_body =
        rpc::encode_value_change_body(time, event.value_change.changes);
  }
  if (sink->deliver(event)) {
    events_delivered_->add(1);
    // Re-find under the lock: the subscription may have been dropped
    // while the sink ran.
    common::LockGuard lock(clients_mutex_);
    if (auto it = subscriptions_.find(key); it != subscriptions_.end()) {
      it->second.delivered_any = true;
      it->second.last_delivered_time = time;
    }
  }
}

void DebugService::remove_subscription_metric_locked(
    const SubscriptionState& state) {
  if (state.dropped == nullptr) return;
  metrics().remove("session.subscription." + std::to_string(state.id) +
                   ".events_dropped");
}

// ---------------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------------

DebugService::ServiceStats DebugService::service_stats() const {
  ServiceStats stats;
  stats.requests = requests_->value();
  stats.protocol_errors = protocol_errors_->value();
  stats.stops_broadcast = stops_broadcast_->value();
  stats.events_delivered = events_delivered_->value();
  stats.events_decimated = events_decimated_->value();
  stats.events_dropped = events_dropped_->value();
  return stats;
}

obs::MetricsRegistry& DebugService::metrics() const {
  return runtime_->metrics();
}

// ---------------------------------------------------------------------------
// cross-client notifications
// ---------------------------------------------------------------------------

void DebugService::notify_breakpoint_change(ClientId actor,
                                            const std::string& action,
                                            const Location& location,
                                            const std::string& condition) {
  // Same bracket discipline as the other fan-outs: snapshot the recipients
  // under clients_mutex_, deliver under delivery_mutex_ only.
  common::LockGuard delivery(delivery_mutex_);
  struct Target {
    EventSink* sink = nullptr;
    bool binary = false;
  };
  std::vector<Target> targets;
  bool any_binary = false;
  {
    common::LockGuard lock(clients_mutex_);
    for (auto& [id, client] : clients_) {
      // The editing session already knows; v1 clients have no event
      // vocabulary for this (the v1 wire only carries stops).
      if (id == actor || client.sink == nullptr || client.protocol < 2) {
        continue;
      }
      targets.push_back(Target{client.sink, client.binary});
      any_binary |= client.binary;
    }
  }
  if (targets.empty()) return;
  ServiceEvent event;
  event.kind = ServiceEvent::Kind::BreakpointChanged;
  event.breakpoint_change.action = action;
  event.breakpoint_change.filename = location.first;
  event.breakpoint_change.line = location.second;
  event.breakpoint_change.condition = condition;
  event.breakpoint_change.client = actor;
  if (any_binary) {
    event.binary_body = rpc::encode_breakpoint_change_body(event.breakpoint_change);
  }
  for (const auto& target : targets) {
    if (target.sink->deliver(event)) breakpoint_changes_->add(1);
  }
}

// ---------------------------------------------------------------------------
// stop delivery
// ---------------------------------------------------------------------------

bool DebugService::stop_relevant(const ClientState& client,
                                 const rpc::StopEvent& event) {
  // Watch stops, step/pause stops, and reverse bottom-outs broadcast; only
  // run-mode inserted hits are condition-routed.
  if (!event.condition_routed || event.frames.empty()) return true;
  bool owns_any = false;
  for (const auto& frame : event.frames) {
    const Location location{frame.filename, frame.line};
    bool owner_here = false;
    for (const auto& [armed, condition] : client.arms) {
      if (armed != location) continue;
      owner_here = true;
      if (condition.empty()) return true;  // unconditional arm: always hit
      if (std::find(frame.matched_conditions.begin(),
                    frame.matched_conditions.end(),
                    condition) != frame.matched_conditions.end()) {
        return true;  // this client's own condition fired
      }
    }
    owns_any |= owner_here;
  }
  // Owners whose conditions all missed are skipped ("each session stops
  // only on its own condition"); pure observers keep the broadcast.
  return !owns_any;
}

DebugService::Command DebugService::deliver_stop(rpc::StopEvent event) {
  if (shutting_down_.load()) return Command::Continue;
  // The stop handshake is the paper's interactive-latency path: broadcast
  // to the relevant sinks, park the sim thread, wake on the first
  // execution command. Span + histogram measure exactly that interval.
  HGDB_TRACE_SPAN("session", "stop_handshake");
  const auto handshake_t0 = std::chrono::steady_clock::now();

  ServiceEvent service_event;
  service_event.kind = ServiceEvent::Kind::Stop;
  service_event.stop = std::move(event);

  // waiting_for_command_ must be visible before any client can answer, so
  // the broadcast happens under command_mutex_ — held without release all
  // the way into the wait, which is what closes the window between a
  // client seeing the event and the handshake being armed.
  common::UniqueLock lock(command_mutex_);
  pending_command_.reset();
  pending_responders_.clear();
  size_t delivered = 0;
  {
    // Snapshot the relevant sinks under clients_mutex_, then deliver with
    // only command_mutex_ + delivery_mutex_ held: a slow or re-entrant
    // sink must not block the client table (and may query the service).
    // delivery_mutex_ keeps every snapshotted sink alive through the loop
    // (unregister_client waits on it) and is released before parking, so
    // a departing client can still resign from the stop.
    common::LockGuard delivery(delivery_mutex_);
    struct Target {
      ClientId id = 0;
      EventSink* sink = nullptr;
      bool engaged = false;
      bool binary = false;
    };
    std::vector<Target> targets;
    bool any_binary = false;
    {
      common::LockGuard clients_lock(clients_mutex_);
      targets.reserve(clients_.size());
      for (auto& [id, client] : clients_) {
        if (client.sink == nullptr) continue;
        if (!stop_relevant(client, service_event.stop)) continue;
        targets.push_back(Target{id, client.sink, client.engaged, client.binary});
        any_binary |= client.binary;
      }
    }
    // Serialize once: every binary subscriber shares this encoding (its
    // sink enqueues a refcount bump, not a render). JSON clients keep the
    // per-client render path inside their sinks.
    if (any_binary) {
      service_event.binary_body = rpc::encode_stop_body(service_event.stop);
    }
    for (const auto& target : targets) {
      if (target.sink->deliver(service_event)) {
        ++delivered;
        // Only engaged clients owe an answer; passive observers receive
        // the event but must not be able to park the simulation.
        if (target.engaged) pending_responders_.insert(target.id);
      }
    }
  }
  if (delivered == 0 || pending_responders_.empty()) {
    return Command::Continue;  // nobody is expected to answer
  }
  stops_broadcast_->add(1);

  waiting_for_command_ = true;
  while (!pending_command_.has_value() && !shutting_down_.load()) {
    command_ready_.wait(lock);
  }
  waiting_for_command_ = false;
  const Command command = pending_command_.value_or(Command::Continue);
  pending_command_.reset();
  pending_responders_.clear();
  // Wake a finish_shutdown() waiting for the sim thread to leave the
  // handshake.
  command_ready_.notify_all();
  stop_handshake_ns_->record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - handshake_t0)
          .count()));
  return command;
}

void DebugService::resign_from_stop(ClientId id) {
  common::LockGuard lock(command_mutex_);
  pending_responders_.erase(id);
  if (waiting_for_command_ && !pending_command_ &&
      pending_responders_.empty()) {
    pending_command_ = Command::Continue;
    command_ready_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// shutdown bracket
// ---------------------------------------------------------------------------

void DebugService::begin_shutdown() {
  shutting_down_.store(true);
  common::LockGuard lock(command_mutex_);
  command_ready_.notify_all();
}

void DebugService::finish_shutdown() {
  {
    // The sim thread may still be parked inside deliver_stop():
    // shutting_down_ satisfies its wake predicate, but it has to actually
    // run and leave the handshake before the shared state is reset —
    // resetting first would swallow its wakeup and park it forever.
    common::UniqueLock lock(command_mutex_);
    command_ready_.notify_all();
    while (waiting_for_command_) command_ready_.wait(lock);
    pending_command_.reset();
    pending_responders_.clear();
  }
  {
    // delivery_mutex_ too: a value-change delivery racing the shutdown
    // must fully drain before the client table (and the sinks' owners)
    // are torn down.
    common::LockGuard delivery(delivery_mutex_);
    common::LockGuard lock(clients_mutex_);
    for (auto& [id, client] : clients_) {
      release_client_state_locked(client);
    }
    clients_.clear();
    subscriptions_.clear();
  }
  shutting_down_.store(false);  // service is reusable
}

}  // namespace hgdb::session
