#include "session/session_manager.h"

#include <stdexcept>

#include "rpc/tcp.h"
#include "runtime/runtime.h"

namespace hgdb::session {

using common::BitVector;
using common::Json;
using rpc::ErrorCode;
using rpc::RequestV2;
using rpc::ResponseV2;

namespace {

std::string render(const BitVector& value) { return value.to_string(10); }

// -- payload accessors --------------------------------------------------------
// Throw std::invalid_argument, which execute() maps to invalid-payload; the
// message names the offending field so clients can fix the request.

const Json& payload_field(const Json& payload, const char* key) {
  auto field = payload.get(key);
  if (!field) {
    throw std::invalid_argument(std::string("payload missing '") + key + "'");
  }
  return field->get();
}

std::string want_string(const Json& payload, const char* key) {
  const Json& field = payload_field(payload, key);
  if (!field.is_string()) {
    throw std::invalid_argument(std::string("payload field '") + key +
                                "' must be a string");
  }
  return field.as_string();
}

int64_t want_int(const Json& payload, const char* key) {
  const Json& field = payload_field(payload, key);
  if (!field.is_number()) {
    throw std::invalid_argument(std::string("payload field '") + key +
                                "' must be a number");
  }
  return field.as_int();
}

std::string opt_string(const Json& payload, const char* key,
                       std::string fallback = "") {
  auto field = payload.get(key);
  if (!field) return fallback;
  if (!field->get().is_string()) {
    throw std::invalid_argument(std::string("payload field '") + key +
                                "' must be a string");
  }
  return field->get().as_string();
}

int64_t opt_int(const Json& payload, const char* key, int64_t fallback = 0) {
  auto field = payload.get(key);
  if (!field) return fallback;
  if (!field->get().is_number()) {
    throw std::invalid_argument(std::string("payload field '") + key +
                                "' must be a number");
  }
  return field->get().as_int();
}

}  // namespace

SessionManager::SessionManager(runtime::Runtime& runtime) : runtime_(&runtime) {
  register_builtins();
}

SessionManager::~SessionManager() { shutdown(); }

// ---------------------------------------------------------------------------
// clients
// ---------------------------------------------------------------------------

uint64_t SessionManager::add_client(std::unique_ptr<rpc::Channel> channel) {
  if (shutting_down_.load()) {
    channel->close();
    return 0;
  }
  std::lock_guard lock(sessions_mutex_);
  // Reap sessions whose reader thread has fully finished (reapable() is
  // the thread's final statement, so this join cannot block on our locks).
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->session->reapable()) {
      if (it->thread.joinable()) it->thread.join();
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  const uint64_t id = next_session_id_++;
  entries_.push_back(Entry{
      std::make_unique<DebugSession>(id, std::move(channel)), std::thread{}});
  DebugSession* session = entries_.back().session.get();
  entries_.back().thread = std::thread([this, session] { session_loop(session); });
  return id;
}

uint16_t SessionManager::listen_tcp(uint16_t port) {
  std::lock_guard lock(sessions_mutex_);
  if (tcp_server_) return tcp_server_->port();
  tcp_server_ = std::make_unique<rpc::TcpServer>(port);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return tcp_server_->port();
}

void SessionManager::accept_loop() {
  // tcp_server_ stays valid for the thread's lifetime: shutdown() joins
  // this thread before resetting it.
  while (!shutting_down_.load()) {
    auto channel = tcp_server_->accept();
    if (!channel) break;
    add_client(std::move(channel));
  }
}

void SessionManager::shutdown() {
  static std::mutex shutdown_mutex;
  std::lock_guard shutdown_lock(shutdown_mutex);
  shutting_down_.store(true);
  {
    std::lock_guard lock(sessions_mutex_);
    if (tcp_server_) tcp_server_->close();
    for (auto& entry : entries_) entry.session->close();
  }
  {
    // Wake a deliver_stop() waiting for a command: it sees shutting_down_
    // and releases the simulation with Continue.
    std::lock_guard lock(command_mutex_);
    command_ready_.notify_all();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Entry addresses are stable (unique_ptr) and the vector cannot grow
  // (add_client rejects while shutting_down_), so join index-wise without
  // holding sessions_mutex_ — the exiting threads need it for cleanup.
  size_t count = 0;
  {
    std::lock_guard lock(sessions_mutex_);
    count = entries_.size();
  }
  for (size_t i = 0; i < count; ++i) {
    std::thread* thread = nullptr;
    {
      std::lock_guard lock(sessions_mutex_);
      thread = &entries_[i].thread;
    }
    if (thread->joinable()) thread->join();
  }
  {
    std::lock_guard lock(sessions_mutex_);
    entries_.clear();
    tcp_server_.reset();
  }
  {
    std::lock_guard lock(refs_mutex_);
    location_refs_.clear();
  }
  {
    // The sim thread may still be parked inside deliver_stop():
    // shutting_down_ satisfies its wake predicate, but it has to actually
    // run and leave the handshake before the shared state is reset —
    // resetting first would swallow its wakeup and park it forever.
    std::unique_lock lock(command_mutex_);
    command_ready_.notify_all();
    command_ready_.wait(lock, [this] { return !waiting_for_command_; });
    pending_command_.reset();
    pending_responders_.clear();
  }
  shutting_down_.store(false);  // manager is reusable
}

size_t SessionManager::session_count() const {
  std::lock_guard lock(sessions_mutex_);
  size_t alive = 0;
  for (const auto& entry : entries_) {
    if (entry.session->alive()) ++alive;
  }
  return alive;
}

// ---------------------------------------------------------------------------
// per-session service loop
// ---------------------------------------------------------------------------

void SessionManager::session_loop(DebugSession* session) {
  while (!shutting_down_.load()) {
    auto message = session->receive();
    if (!message) break;  // peer closed
    dispatch(*session, *message);
    if (session->close_requested.load()) break;
  }
  cleanup_session(*session);
  session->set_reapable();
}

void SessionManager::cleanup_session(DebugSession& session) {
  session.mark_dead();
  session.close();
  release_session_state(session);
}

size_t SessionManager::release_session_state(DebugSession& session) {
  const size_t removed = release_locations(session.take_all_locations());
  for (int64_t watch : session.take_watches()) {
    runtime_->remove_watchpoint(watch);
  }
  // The departing client stops counting toward the current stop's
  // expected responders: the simulation resumes once every engaged
  // recipient has answered or left, and never sooner — so a crash can't
  // hang a stop, and a remaining client's stop is never yanked away.
  session.disengage();
  resign_from_stop(session.id());
  return removed;
}

size_t SessionManager::release_locations(const std::vector<Location>& locations) {
  size_t removed = 0;
  for (const auto& location : locations) {
    bool remove_now = false;
    {
      std::lock_guard lock(refs_mutex_);
      auto it = location_refs_.find(location);
      if (it != location_refs_.end() && --it->second <= 0) {
        location_refs_.erase(it);
        remove_now = true;
      }
    }
    if (remove_now) {
      removed += runtime_->remove_breakpoint(location.first, location.second);
    }
  }
  return removed;
}

// ---------------------------------------------------------------------------
// dispatch
// ---------------------------------------------------------------------------

void SessionManager::dispatch(DebugSession& session, const std::string& text) {
  requests_.fetch_add(1, std::memory_order_relaxed);

  Json json;
  try {
    json = Json::parse(text);
  } catch (const std::exception& error) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    ResponseV2 response;
    response.fail(ErrorCode::MalformedRequest,
                  std::string("malformed request: ") + error.what());
    session.send(session.protocol_version() >= 2
                     ? rpc::serialize_response_v2(response)
                     : rpc::serialize_response_as_v1(response));
    return;
  }

  if (rpc::is_v2_envelope(json)) {
    session.promote_to_v2();
    auto decoded = rpc::decode_request_v2(json);
    if (!decoded.ok()) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      ResponseV2 response;
      response.token = decoded.request.token;
      response.command = decoded.request.command;
      response.fail(decoded.error, decoded.reason);
      session.send(rpc::serialize_response_v2(response));
      return;
    }
    ResponseV2 response = execute(session, decoded.request);
    session.send(rpc::serialize_response_v2(response));
    return;
  }

  // v1 message: translate through the compat shim and answer in the v1
  // wire format.
  rpc::Request v1;
  try {
    v1 = rpc::parse_request(text);
  } catch (const std::exception& error) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    ResponseV2 response;
    response.token = json.is_object() ? json.get_int("token") : 0;
    response.fail(ErrorCode::MalformedRequest, error.what());
    session.send(rpc::serialize_response_as_v1(response));
    return;
  }
  ResponseV2 response = execute(session, rpc::v2_from_v1(v1));
  session.send(rpc::serialize_response_as_v1(response));
}

ResponseV2 SessionManager::execute(DebugSession& session,
                                   const RequestV2& request) {
  ResponseV2 response;
  response.command = request.command;
  response.token = request.token;

  auto it = commands_.find(request.command);
  if (it == commands_.end()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    response.fail(ErrorCode::UnknownCommand,
                  "unknown command '" + request.command + "'");
    return response;
  }

  if (it->second.gate != Gate::None) {
    const auto caps = capabilities();
    if (it->second.gate == Gate::TimeTravel && !caps.time_travel) {
      response.fail(ErrorCode::UnsupportedCapability,
                    "backend ('" + caps.backend +
                        "') does not support time travel");
      return response;
    }
    if (it->second.gate == Gate::SetValue && !caps.set_value) {
      response.fail(ErrorCode::UnsupportedCapability,
                    "backend ('" + caps.backend +
                        "') does not support set-value");
      return response;
    }
  }

  try {
    it->second.handler(session, request, response);
  } catch (const std::invalid_argument& error) {
    response.fail(ErrorCode::InvalidPayload, error.what());
  } catch (const std::out_of_range& error) {
    response.fail(ErrorCode::NoSuchEntity, error.what());
  } catch (const std::exception& error) {
    response.fail(ErrorCode::InternalError, error.what());
  }
  return response;
}

// ---------------------------------------------------------------------------
// stop delivery
// ---------------------------------------------------------------------------

SessionManager::Command SessionManager::deliver_stop(rpc::StopEvent event) {
  if (shutting_down_.load()) return Command::Continue;

  // Serialize once per wire format; sessions pick theirs by negotiated
  // version.
  const std::string v1_text = rpc::serialize_stop_event(event);
  const std::string v2_text = rpc::serialize_event_v2(
      rpc::EventV2{"stop", rpc::stop_event_payload(event)});

  // waiting_for_command_ must be visible before any client can answer, so
  // the broadcast happens under command_mutex_.
  std::unique_lock lock(command_mutex_);
  pending_command_.reset();
  pending_responders_.clear();
  size_t delivered = 0;
  {
    std::lock_guard sessions_lock(sessions_mutex_);
    for (auto& entry : entries_) {
      auto& session = *entry.session;
      if (!session.alive()) continue;
      if (session.send(session.protocol_version() >= 2 ? v2_text : v1_text)) {
        ++delivered;
        // Only engaged clients owe an answer; passive observers receive
        // the event but must not be able to park the simulation.
        if (session.engaged()) pending_responders_.insert(session.id());
      }
    }
  }
  if (delivered == 0 || pending_responders_.empty()) {
    return Command::Continue;  // nobody is expected to answer
  }
  stops_broadcast_.fetch_add(1, std::memory_order_relaxed);

  waiting_for_command_ = true;
  command_ready_.wait(lock, [this] {
    return pending_command_.has_value() || shutting_down_.load();
  });
  waiting_for_command_ = false;
  const Command command = pending_command_.value_or(Command::Continue);
  pending_command_.reset();
  pending_responders_.clear();
  // Wake a shutdown() waiting for the sim thread to leave the handshake.
  command_ready_.notify_all();
  return command;
}

void SessionManager::resign_from_stop(uint64_t session_id) {
  std::lock_guard lock(command_mutex_);
  pending_responders_.erase(session_id);
  if (waiting_for_command_ && !pending_command_ &&
      pending_responders_.empty()) {
    pending_command_ = Command::Continue;
    command_ready_.notify_all();
  }
}

void SessionManager::handle_execution(DebugSession& session,
                                      const RequestV2& request,
                                      ResponseV2& response, Command command) {
  session.engage();
  std::unique_lock lock(command_mutex_);
  if (waiting_for_command_) {
    if (pending_command_.has_value()) {
      // Another client already answered this stop; first command wins
      // rather than being silently overwritten.
      response.fail(ErrorCode::InvalidState,
                    "a resume command is already pending for this stop");
      return;
    }
    if (command == Command::Jump) {
      const auto time = static_cast<uint64_t>(want_int(request.payload, "time"));
      if (!runtime_->sim_interface().set_time(time)) {
        response.fail(ErrorCode::InvalidPayload,
                      "time travel target out of range");
        return;
      }
    }
    pending_command_ = command;
    command_ready_.notify_all();
    return;
  }
  lock.unlock();
  if (command == Command::Pause) {
    runtime_->request_pause();
    return;
  }
  response.fail(ErrorCode::InvalidState, "simulation is not stopped");
}

// ---------------------------------------------------------------------------
// protocol surface
// ---------------------------------------------------------------------------

rpc::Capabilities SessionManager::capabilities() const {
  rpc::Capabilities caps;
  auto& interface = runtime_->sim_interface();
  caps.backend = interface.backend_kind();
  caps.time_travel = interface.supports_time_travel();
  caps.set_value = interface.supports_set_value();
  return caps;
}

std::vector<std::string> SessionManager::command_names() const {
  std::vector<std::string> names;
  names.reserve(commands_.size());
  for (const auto& [name, spec] : commands_) names.push_back(name);
  return names;
}

void SessionManager::register_command(const std::string& name, Handler handler,
                                      Gate gate) {
  commands_[name] = CommandSpec{std::move(handler), gate};
}

SessionManager::ServiceStats SessionManager::service_stats() const {
  ServiceStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  stats.stops_broadcast = stops_broadcast_.load(std::memory_order_relaxed);
  return stats;
}

// ---------------------------------------------------------------------------
// built-in command catalogue
// ---------------------------------------------------------------------------

void SessionManager::register_builtins() {
  // -- handshake --------------------------------------------------------------
  register_command("connect", [this](DebugSession& session,
                                     const RequestV2& request,
                                     ResponseV2& response) {
    session.set_client_name(opt_string(request.payload, "client", "client"));
    response.payload["session_id"] = Json(static_cast<int64_t>(session.id()));
    response.payload["server"] = Json("hgdb");
    response.payload["capabilities"] = capabilities().to_json();
    Json commands = Json::array();
    for (const auto& name : command_names()) commands.push_back(Json(name));
    response.payload["commands"] = std::move(commands);
  });

  register_command("disconnect", [this](DebugSession& session,
                                        const RequestV2&,
                                        ResponseV2& response) {
    release_session_state(session);
    session.close_requested.store(true);
    response.payload["disconnected"] = Json(true);
  });

  // -- breakpoints ------------------------------------------------------------
  register_command("breakpoint-add", [this](DebugSession& session,
                                            const RequestV2& request,
                                            ResponseV2& response) {
    const std::string filename = want_string(request.payload, "filename");
    const auto line = static_cast<uint32_t>(want_int(request.payload, "line"));
    const std::string condition = opt_string(request.payload, "condition");
    const auto ids = runtime_->add_breakpoint(filename, line, condition);
    if (ids.empty()) {
      response.fail(ErrorCode::NoSuchLocation, "no breakpoint at " + filename +
                                                   ":" + std::to_string(line));
      return;
    }
    Json json_ids = Json::array();
    for (int64_t id : ids) json_ids.push_back(Json(id));
    response.payload["ids"] = std::move(json_ids);
    session.engage();  // armed a breakpoint: expected to answer stops
    const Location location{filename, line};
    if (!session.owns_location(location)) {
      session.own_location(location);
      std::lock_guard lock(refs_mutex_);
      ++location_refs_[location];
    }
  });

  register_command("breakpoint-remove", [this](DebugSession& session,
                                               const RequestV2& request,
                                               ResponseV2& response) {
    const std::string filename = want_string(request.payload, "filename");
    const auto line =
        static_cast<uint32_t>(opt_int(request.payload, "line", 0));
    const auto taken = session.take_locations(filename, line);
    const size_t removed = release_locations(taken);
    response.payload["removed"] = Json(static_cast<int64_t>(removed));
  });

  register_command("breakpoint-list", [this](DebugSession& session,
                                             const RequestV2&,
                                             ResponseV2& response) {
    Json list = Json::array();
    for (const auto& bp : runtime_->inserted_breakpoints()) {
      Json entry = Json::object();
      entry["id"] = Json(bp.id);
      entry["filename"] = Json(bp.filename);
      entry["line"] = Json(static_cast<int64_t>(bp.line));
      entry["instance"] = Json(bp.instance_name);
      entry["owned"] = Json(session.owns_location({bp.filename, bp.line}));
      list.push_back(std::move(entry));
    }
    response.payload["breakpoints"] = std::move(list);
  });

  register_command("bp-location", [this](DebugSession&,
                                         const RequestV2& request,
                                         ResponseV2& response) {
    const std::string filename = want_string(request.payload, "filename");
    const auto line =
        static_cast<uint32_t>(opt_int(request.payload, "line", 0));
    const auto& table = runtime_->symbol_table();
    Json list = Json::array();
    for (const auto& row : table.breakpoints_at(filename, line)) {
      Json entry = Json::object();
      entry["id"] = Json(row.id);
      entry["filename"] = Json(row.filename);
      entry["line"] = Json(static_cast<int64_t>(row.line_num));
      entry["column"] = Json(static_cast<int64_t>(row.column_num));
      auto instance = table.instance(row.instance_id);
      entry["instance"] = Json(instance ? instance->name : "");
      list.push_back(std::move(entry));
    }
    response.payload["breakpoints"] = std::move(list);
  });

  // -- execution --------------------------------------------------------------
  struct ExecutionCommand {
    const char* name;
    Command command;
    Gate gate;
  };
  const ExecutionCommand executions[] = {
      {"continue", Command::Continue, Gate::None},
      {"pause", Command::Pause, Gate::None},
      {"step-over", Command::StepOver, Gate::None},
      // step-back / reverse-continue intentionally ungated: without time
      // travel the scheduler degrades them to forward stepping, which is
      // still useful. jump has no degraded meaning, so it is gated.
      {"step-back", Command::StepBack, Gate::None},
      {"reverse-continue", Command::ReverseContinue, Gate::None},
      {"jump", Command::Jump, Gate::TimeTravel},
  };
  for (const auto& execution : executions) {
    register_command(
        execution.name,
        [this, command = execution.command](DebugSession& session,
                                            const RequestV2& request,
                                            ResponseV2& response) {
          handle_execution(session, request, response, command);
        },
        execution.gate);
  }

  register_command("detach", [this](DebugSession& session, const RequestV2&,
                                    ResponseV2& response) {
    const size_t removed = release_session_state(session);
    response.payload["removed"] = Json(static_cast<int64_t>(removed));
  });

  // -- evaluation -------------------------------------------------------------
  register_command("evaluate", [this](DebugSession&, const RequestV2& request,
                                      ResponseV2& response) {
    const std::string expression = want_string(request.payload, "expression");
    std::optional<int64_t> breakpoint_id;
    if (request.payload.contains("breakpoint_id")) {
      breakpoint_id = want_int(request.payload, "breakpoint_id");
    }
    const std::string instance =
        opt_string(request.payload, "instance_name");
    auto value = runtime_->evaluate(expression, breakpoint_id, instance);
    if (!value) {
      response.fail(ErrorCode::EvaluationFailed,
                    "cannot evaluate '" + expression + "'");
      return;
    }
    response.payload["result"] = Json(render(*value));
    response.payload["width"] = Json(static_cast<int64_t>(value->width()));
  });

  register_command("evaluate-batch", [this](DebugSession&,
                                            const RequestV2& request,
                                            ResponseV2& response) {
    const Json& expressions = payload_field(request.payload, "expressions");
    if (!expressions.is_array()) {
      throw std::invalid_argument("payload field 'expressions' must be an array");
    }
    std::optional<int64_t> breakpoint_id;
    if (request.payload.contains("breakpoint_id")) {
      breakpoint_id = want_int(request.payload, "breakpoint_id");
    }
    const std::string instance =
        opt_string(request.payload, "instance_name");
    Json results = Json::array();
    int64_t errors = 0;
    for (const auto& item : expressions.as_array()) {
      if (!item.is_string()) {
        throw std::invalid_argument("'expressions' entries must be strings");
      }
      Json result = Json::object();
      result["expression"] = item;
      auto value = runtime_->evaluate(item.as_string(), breakpoint_id, instance);
      if (value) {
        result["status"] = Json("success");
        result["value"] = Json(render(*value));
        result["width"] = Json(static_cast<int64_t>(value->width()));
      } else {
        result["status"] = Json("error");
        result["reason"] =
            Json("cannot evaluate '" + item.as_string() + "'");
        ++errors;
      }
      results.push_back(std::move(result));
    }
    response.payload["results"] = std::move(results);
    response.payload["errors"] = Json(errors);
  });

  // -- watchpoints ------------------------------------------------------------
  register_command("watch", [this](DebugSession& session,
                                   const RequestV2& request,
                                   ResponseV2& response) {
    const std::string expression = want_string(request.payload, "expression");
    const std::string instance =
        opt_string(request.payload, "instance_name");
    const int64_t id = runtime_->add_watchpoint(expression, instance);
    session.engage();  // armed a watchpoint: expected to answer stops
    session.own_watch(id);
    response.payload["id"] = Json(id);
  });

  register_command("unwatch", [this](DebugSession& session,
                                     const RequestV2& request,
                                     ResponseV2& response) {
    const int64_t id = want_int(request.payload, "id");
    if (!session.owns_watch(id)) {
      response.fail(ErrorCode::NoSuchEntity,
                    "watchpoint " + std::to_string(id) +
                        " is not owned by this session");
      return;
    }
    session.disown_watch(id);
    runtime_->remove_watchpoint(id);
    response.payload["removed"] = Json(true);
  });

  // -- hierarchy / symbol browsing --------------------------------------------
  register_command("list-instances", [this](DebugSession&, const RequestV2&,
                                            ResponseV2& response) {
    Json list = Json::array();
    for (const auto& row : runtime_->symbol_table().instances()) {
      Json entry = Json::object();
      entry["id"] = Json(row.id);
      entry["name"] = Json(row.name);
      list.push_back(std::move(entry));
    }
    response.payload["instances"] = std::move(list);
  });

  register_command("list-variables", [this](DebugSession&,
                                            const RequestV2& request,
                                            ResponseV2& response) {
    if (request.payload.contains("breakpoint_id")) {
      const int64_t id = want_int(request.payload, "breakpoint_id");
      rpc::Frame frame;
      try {
        frame = runtime_->build_frame(id);
      } catch (const std::invalid_argument& error) {
        response.fail(ErrorCode::NoSuchEntity, error.what());
        return;
      }
      response.payload["locals"] = frame.locals;
      response.payload["generator"] = frame.generator;
      return;
    }
    const std::string instance =
        want_string(request.payload, "instance_name");
    const auto& table = runtime_->symbol_table();
    auto row = table.instance_by_name(instance);
    if (!row) {
      response.fail(ErrorCode::NoSuchEntity,
                    "unknown instance '" + instance + "'");
      return;
    }
    Json list = Json::array();
    for (const auto& variable : table.generator_variables(row->id)) {
      Json entry = Json::object();
      entry["name"] = Json(variable.name);
      entry["rtl"] = Json(variable.is_rtl);
      if (!variable.is_rtl) {
        entry["value"] = Json(variable.value);
      } else if (auto value =
                     runtime_->read_instance_rtl(instance, variable.value)) {
        entry["value"] = Json(render(*value));
        entry["width"] = Json(static_cast<int64_t>(value->width()));
      } else {
        entry["value"] = Json("<unavailable>");
      }
      list.push_back(std::move(entry));
    }
    response.payload["variables"] = std::move(list);
  });

  register_command("list-files", [this](DebugSession&, const RequestV2&,
                                        ResponseV2& response) {
    Json files = Json::array();
    for (const auto& file : runtime_->symbol_table().files()) {
      files.push_back(Json(file));
    }
    response.payload["files"] = std::move(files);
  });

  // -- introspection ----------------------------------------------------------
  register_command("info", [this](DebugSession&, const RequestV2&,
                                  ResponseV2& response) {
    Json inserted = Json::array();
    for (const auto& bp : runtime_->inserted_breakpoints()) {
      Json entry = Json::object();
      entry["id"] = Json(bp.id);
      entry["filename"] = Json(bp.filename);
      entry["line"] = Json(static_cast<int64_t>(bp.line));
      entry["instance"] = Json(bp.instance_name);
      inserted.push_back(std::move(entry));
    }
    response.payload["breakpoints"] = std::move(inserted);
    response.payload["time"] =
        Json(static_cast<int64_t>(runtime_->sim_interface().get_time()));
    Json files = Json::array();
    for (const auto& file : runtime_->symbol_table().files()) {
      files.push_back(Json(file));
    }
    response.payload["files"] = std::move(files);
    response.payload["protocol_version"] = Json(rpc::kProtocolV2);
    response.payload["backend"] =
        Json(runtime_->sim_interface().backend_kind());
    Json sessions = Json::array();
    {
      std::lock_guard lock(sessions_mutex_);
      for (const auto& entry : entries_) {
        if (!entry.session->alive()) continue;
        Json item = Json::object();
        item["id"] = Json(static_cast<int64_t>(entry.session->id()));
        item["client"] = Json(entry.session->client_name());
        item["protocol"] =
            Json(static_cast<int64_t>(entry.session->protocol_version()));
        sessions.push_back(std::move(item));
      }
    }
    response.payload["sessions"] = std::move(sessions);
  });

  register_command("stats", [this](DebugSession&, const RequestV2&,
                                   ResponseV2& response) {
    const auto stats = runtime_->stats();
    response.payload["clock_edges"] = Json(stats.clock_edges);
    response.payload["fast_path_exits"] = Json(stats.fast_path_exits);
    response.payload["batches_evaluated"] = Json(stats.batches_evaluated);
    response.payload["conditions_evaluated"] = Json(stats.conditions_evaluated);
    response.payload["watchpoints_evaluated"] =
        Json(stats.watchpoints_evaluated);
    response.payload["stops"] = Json(stats.stops);
    // Compiled-evaluation pipeline counters: time spent in condition
    // evaluation, members skipped by the change-driven cache, and batched
    // signal-fetch traffic.
    response.payload["eval_ns"] = Json(stats.eval_ns);
    response.payload["dirty_skips"] = Json(stats.dirty_skips);
    response.payload["batch_fetches"] = Json(stats.batch_fetches);
    response.payload["batch_signals"] = Json(stats.batch_signals);
    response.payload["sessions"] = Json(static_cast<int64_t>(session_count()));
    response.payload["watchpoints"] =
        Json(static_cast<int64_t>(runtime_->watchpoint_count()));
    const auto service = service_stats();
    response.payload["requests"] = Json(service.requests);
    response.payload["protocol_errors"] = Json(service.protocol_errors);
    response.payload["stops_broadcast"] = Json(service.stops_broadcast);
  });

  // -- signal forcing ---------------------------------------------------------
  register_command(
      "set-value",
      [this](DebugSession&, const RequestV2& request, ResponseV2& response) {
        const std::string name = want_string(request.payload, "name");
        const Json& raw = payload_field(request.payload, "value");
        BitVector value;
        if (raw.is_string()) {
          value = BitVector::from_string(raw.as_string());
        } else if (raw.is_number()) {
          value = BitVector::from_string(std::to_string(raw.as_int()));
        } else {
          throw std::invalid_argument(
              "payload field 'value' must be a string or number");
        }
        if (!runtime_->set_signal_value(name, value)) {
          response.fail(ErrorCode::NoSuchEntity,
                        "cannot set '" + name + "'");
          return;
        }
        response.payload["set"] = Json(true);
      },
      Gate::SetValue);
}

}  // namespace hgdb::session
