#include "session/session_manager.h"

#include <stdexcept>

#include "obs/trace.h"
#include "rpc/tcp.h"
#include "runtime/runtime.h"
#include "session/dap_server.h"

namespace hgdb::session {

using common::Json;
using rpc::ErrorCode;
using rpc::RequestV2;
using rpc::ResponseV2;

namespace {

// -- payload accessors --------------------------------------------------------
// Throw std::invalid_argument, which execute() maps to invalid-payload; the
// message names the offending field so clients can fix the request.

const Json& payload_field(const Json& payload, const char* key) {
  auto field = payload.get(key);
  if (!field) {
    throw std::invalid_argument(std::string("payload missing '") + key + "'");
  }
  return field->get();
}

std::string want_string(const Json& payload, const char* key) {
  const Json& field = payload_field(payload, key);
  if (!field.is_string()) {
    throw std::invalid_argument(std::string("payload field '") + key +
                                "' must be a string");
  }
  return field.as_string();
}

int64_t want_int(const Json& payload, const char* key) {
  const Json& field = payload_field(payload, key);
  if (!field.is_number()) {
    throw std::invalid_argument(std::string("payload field '") + key +
                                "' must be a number");
  }
  return field.as_int();
}

std::string opt_string(const Json& payload, const char* key,
                       std::string fallback = "") {
  auto field = payload.get(key);
  if (!field) return fallback;
  if (!field->get().is_string()) {
    throw std::invalid_argument(std::string("payload field '") + key +
                                "' must be a string");
  }
  return field->get().as_string();
}

int64_t opt_int(const Json& payload, const char* key, int64_t fallback = 0) {
  auto field = payload.get(key);
  if (!field) return fallback;
  if (!field->get().is_number()) {
    throw std::invalid_argument(std::string("payload field '") + key +
                                "' must be a number");
  }
  return field->get().as_int();
}

bool opt_bool(const Json& payload, const char* key, bool fallback = false) {
  auto field = payload.get(key);
  if (!field) return fallback;
  if (!field->get().is_bool()) {
    throw std::invalid_argument(std::string("payload field '") + key +
                                "' must be a boolean");
  }
  return field->get().as_bool();
}

}  // namespace

SessionManager::SessionManager(runtime::Runtime& runtime)
    : runtime_(&runtime), service_(std::make_unique<DebugService>(runtime)) {
  rpc::EventWriter::Options writer_options;
  writer_options.max_queue_frames = runtime.options().event_queue_frames;
  writer_options.max_queue_bytes = runtime.options().event_queue_bytes;
  writer_options.disconnect_on_overflow =
      runtime.options().disconnect_slow_clients;
  writer_options.metrics = &runtime.metrics();
  event_writer_ = std::make_unique<rpc::EventWriter>(writer_options);
  native_bytes_sent_ = &runtime.metrics().counter("session.native.bytes_sent");
  register_builtins();
}

SessionManager::~SessionManager() { shutdown(); }

// ---------------------------------------------------------------------------
// clients
// ---------------------------------------------------------------------------

uint64_t SessionManager::add_client(std::unique_ptr<rpc::Channel> channel) {
  if (shutting_down_.load()) {
    channel->close();
    return 0;
  }
  // Register with the typed core first: the session limit is enforced
  // there, across native and DAP clients alike. A rejected client still
  // gets a session whose first request is answered with the typed
  // too-many-sessions error before the transport closes.
  ClientId id = 0;
  bool rejected = false;
  try {
    id = service_->register_client("client", nullptr, 1);
  } catch (const ServiceError&) {
    rejected = true;
  }
  common::LockGuard lock(sessions_mutex_);
  // Reap sessions whose reader thread has fully finished (reapable() is
  // the thread's final statement, so this join cannot block on our locks).
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->session->reapable()) {
      if (it->thread.joinable()) it->thread.join();
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  entries_.push_back(
      Entry{std::make_unique<DebugSession>(id, std::move(channel)),
            std::thread{}});
  DebugSession* session = entries_.back().session.get();
  session->set_bytes_counter(native_bytes_sent_);
  // Writer before sink: the first delivered event must already see the
  // async path, or it would fall back to a blocking channel send.
  attach_writer(*session);
  if (rejected) {
    session->mark_rejected();
  } else {
    service_->set_client_sink(id, session);
  }
  entries_.back().thread = std::thread([this, session] { session_loop(session); });
  return id;
}

uint16_t SessionManager::listen_tcp(uint16_t port) {
  common::LockGuard lock(sessions_mutex_);
  if (tcp_server_) return tcp_server_->port();
  tcp_server_ = std::make_unique<rpc::TcpServer>(port);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return tcp_server_->port();
}

uint16_t SessionManager::listen_dap(uint16_t port) {
  common::LockGuard lock(sessions_mutex_);
  if (!dap_server_) {
    dap_server_ = std::make_unique<DapServer>(*service_, *event_writer_);
  }
  return dap_server_->listen(port);
}

void SessionManager::accept_loop() {
  // tcp_server_ stays valid for the thread's lifetime: shutdown() joins
  // this thread before resetting it.
  while (!shutting_down_.load()) {
    auto channel = tcp_server_->accept();
    if (!channel) break;
    add_client(std::move(channel));
  }
}

void SessionManager::shutdown() {
  // Serializes overlapping shutdown() calls (e.g. an explicit stop racing
  // the destructor); outermost rank in the hierarchy.
  static common::LifecycleMutex shutdown_mutex{"session::lifecycle"};
  common::LockGuard shutdown_lock(shutdown_mutex);
  shutting_down_.store(true);
  // Wake a deliver_stop() waiting for a command: it sees the shutdown and
  // releases the simulation with Continue.
  service_->begin_shutdown();
  std::unique_ptr<DapServer> dap;
  {
    common::LockGuard lock(sessions_mutex_);
    if (tcp_server_) tcp_server_->close();
    for (auto& entry : entries_) entry.session->close();
    dap = std::move(dap_server_);
  }
  if (dap) dap->shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Entry addresses are stable (unique_ptr) and the vector cannot grow
  // (add_client rejects while shutting_down_), so join index-wise without
  // holding sessions_mutex_ — the exiting threads need it for cleanup.
  size_t count = 0;
  {
    common::LockGuard lock(sessions_mutex_);
    count = entries_.size();
  }
  for (size_t i = 0; i < count; ++i) {
    std::thread* thread = nullptr;
    {
      common::LockGuard lock(sessions_mutex_);
      thread = &entries_[i].thread;
    }
    if (thread->joinable()) thread->join();
  }
  {
    common::LockGuard lock(sessions_mutex_);
    entries_.clear();
    tcp_server_.reset();
  }
  // Waits for the sim thread to actually leave the stop handshake, then
  // clears the shared state and re-arms the service for reuse.
  service_->finish_shutdown();
  shutting_down_.store(false);  // manager is reusable
}

size_t SessionManager::session_count() const {
  common::LockGuard lock(sessions_mutex_);
  size_t alive = 0;
  for (const auto& entry : entries_) {
    if (entry.session->alive()) ++alive;
  }
  return alive;
}

// ---------------------------------------------------------------------------
// per-session service loop
// ---------------------------------------------------------------------------

void SessionManager::session_loop(DebugSession* session) {
  while (!shutting_down_.load()) {
    auto message = session->receive();
    if (!message) break;  // peer closed
    dispatch(*session, *message);
    if (session->close_requested.load()) break;
  }
  cleanup_session(*session);
  session->set_reapable();
}

void SessionManager::cleanup_session(DebugSession& session) {
  // The session's final response (disconnect ack, limit rejection) may
  // still sit in the writer queue; give it a bounded chance to flush
  // before the close tears the transport down.
  if (session.has_writer()) {
    event_writer_->drain(session.writer_target(),
                         std::chrono::milliseconds(1000));
  }
  session.mark_dead();
  session.close();
  // Unhook the writer target before the service forgets the client: once
  // remove_target returns, the writer holds no reference to this session's
  // fd or callbacks, so the Entry can be reaped safely.
  if (session.has_writer()) {
    event_writer_->remove_target(session.writer_target());
  }
  if (!session.rejected()) service_->unregister_client(session.id());
}

void SessionManager::attach_writer(DebugSession& session) {
  rpc::EventWriter::Target target;
  target.fd = session.native_handle();
  DebugSession* raw = &session;
  if (target.fd < 0) {
    // In-process channel: no socket to scatter-write, flush through the
    // channel's (fast, non-blocking) queue push instead.
    target.send = [raw](std::string_view message) {
      return raw->send_on_channel(std::string(message));
    };
  }
  // Keep this minimal and service-free: mark the session dead and close
  // its channel — the shutdown() wakes the blocked reader thread, which
  // runs cleanup_session (unregistering the client) on its own stack.
  target.on_dead = [raw] {
    raw->mark_dead();
    raw->close();
  };
  // fd targets account bytes in the writer; channel targets already count
  // inside send_on_channel — setting both would double-count.
  if (target.fd >= 0) target.bytes_sent = native_bytes_sent_;
  const uint64_t writer_id = event_writer_->add_target(std::move(target));
  session.attach_writer(event_writer_.get(), writer_id);
}

void SessionManager::enable_binary_events(DebugSession& session) {
  session.enable_binary_events();
  service_->set_client_binary(session.id(), true);
}

// ---------------------------------------------------------------------------
// dispatch
// ---------------------------------------------------------------------------

void SessionManager::dispatch(DebugSession& session, const std::string& text) {
  service_->count_request();

  Json json;
  try {
    json = Json::parse(text);
  } catch (const std::exception& error) {
    service_->count_protocol_error();
    ResponseV2 response;
    response.fail(ErrorCode::MalformedRequest,
                  std::string("malformed request: ") + error.what());
    session.send(session.protocol_version() >= 2
                     ? rpc::serialize_response_v2(response)
                     : rpc::serialize_response_as_v1(response));
    return;
  }

  if (rpc::is_v2_envelope(json)) {
    session.promote_to_v2();
    if (!session.rejected()) {
      service_->set_client_protocol(session.id(), 2);
    }
    auto decoded = rpc::decode_request_v2(json);
    if (!decoded.ok()) {
      service_->count_protocol_error();
      ResponseV2 response;
      response.token = decoded.request.token;
      response.command = decoded.request.command;
      response.fail(decoded.error, decoded.reason);
      session.send(rpc::serialize_response_v2(response));
      return;
    }
    ResponseV2 response = execute(session, decoded.request);
    session.send(rpc::serialize_response_v2(response));
    return;
  }

  // v1 message: translate through the compat shim and answer in the v1
  // wire format.
  rpc::Request v1;
  try {
    v1 = rpc::parse_request(text);
  } catch (const std::exception& error) {
    service_->count_protocol_error();
    ResponseV2 response;
    response.token = json.is_object() ? json.get_int("token") : 0;
    response.fail(ErrorCode::MalformedRequest, error.what());
    session.send(rpc::serialize_response_as_v1(response));
    return;
  }
  ResponseV2 response = execute(session, rpc::v2_from_v1(v1));
  session.send(rpc::serialize_response_as_v1(response));
}

ResponseV2 SessionManager::execute(DebugSession& session,
                                   const RequestV2& request) {
  ResponseV2 response;
  response.command = request.command;
  response.token = request.token;

  // A limit-rejected session answers everything with the typed error and
  // closes; it owns nothing, so there is nothing to clean up.
  if (session.rejected()) {
    response.fail(ErrorCode::TooManySessions,
                  "session limit reached; connection refused");
    session.close_requested.store(true);
    return response;
  }

  auto it = commands_.find(request.command);
  if (it == commands_.end()) {
    service_->count_protocol_error();
    response.fail(ErrorCode::UnknownCommand,
                  "unknown command '" + request.command + "'");
    return response;
  }
  if (it->second.count != nullptr) it->second.count->add(1);
#if HGDB_OBS_SPANS_ENABLED
  // Span named after the command itself (interned: the catalogue is a
  // small fixed set). Brackets gating + handler, i.e. the whole dispatch.
  auto& trace_recorder = obs::TraceRecorder::global();
  obs::TraceSpan dispatch_span(
      trace_recorder,
      "session",
      trace_recorder.enabled() ? trace_recorder.intern(request.command)
                               : "dispatch");
#endif

  if (it->second.gate != Gate::None) {
    const auto caps = capabilities();
    if (it->second.gate == Gate::TimeTravel && !caps.time_travel) {
      response.fail(ErrorCode::UnsupportedCapability,
                    "backend ('" + caps.backend +
                        "') does not support time travel");
      return response;
    }
    if (it->second.gate == Gate::SetValue && !caps.set_value) {
      response.fail(ErrorCode::UnsupportedCapability,
                    "backend ('" + caps.backend +
                        "') does not support set-value");
      return response;
    }
  }

  try {
    it->second.handler(session, request, response);
  } catch (const ServiceError& error) {
    response.fail(error.code(), error.what());
  } catch (const std::invalid_argument& error) {
    response.fail(ErrorCode::InvalidPayload, error.what());
  } catch (const std::out_of_range& error) {
    response.fail(ErrorCode::NoSuchEntity, error.what());
  } catch (const std::exception& error) {
    response.fail(ErrorCode::InternalError, error.what());
  }
  return response;
}

// ---------------------------------------------------------------------------
// stop delivery / execution commands
// ---------------------------------------------------------------------------

SessionManager::Command SessionManager::deliver_stop(rpc::StopEvent event) {
  return service_->deliver_stop(std::move(event));
}

void SessionManager::handle_execution(DebugSession& session,
                                      const RequestV2& request,
                                      ResponseV2& response, Command command) {
  (void)response;
  std::optional<uint64_t> time;
  if (command == Command::Jump && request.payload.contains("time")) {
    time = static_cast<uint64_t>(want_int(request.payload, "time"));
  }
  service_->execute(session.id(), command, time);
}

// ---------------------------------------------------------------------------
// protocol surface
// ---------------------------------------------------------------------------

rpc::Capabilities SessionManager::capabilities() const {
  return service_->capabilities();
}

std::vector<std::string> SessionManager::command_names() const {
  std::vector<std::string> names;
  names.reserve(commands_.size());
  for (const auto& [name, spec] : commands_) names.push_back(name);
  return names;
}

void SessionManager::register_command(const std::string& name, Handler handler,
                                      Gate gate) {
  commands_[name] = CommandSpec{
      std::move(handler), gate,
      &service_->metrics().counter("session.command." + name)};
}

SessionManager::ServiceStats SessionManager::service_stats() const {
  const auto stats = service_->service_stats();
  ServiceStats out;
  out.requests = stats.requests;
  out.protocol_errors = stats.protocol_errors;
  out.stops_broadcast = stats.stops_broadcast;
  return out;
}

// ---------------------------------------------------------------------------
// built-in command catalogue (the native v2 front end: each handler
// decodes the JSON payload, calls the typed DebugService core, and renders
// the result — byte-compatible with the pre-DebugService wire format)
// ---------------------------------------------------------------------------

void SessionManager::register_builtins() {
  // -- handshake --------------------------------------------------------------
  register_command("connect", [this](DebugSession& session,
                                     const RequestV2& request,
                                     ResponseV2& response) {
    service_->set_client_name(
        session.id(), opt_string(request.payload, "client", "client"));
    // Capability opt-in: after this response, pushed events arrive as
    // binary frames (the command channel stays JSON v2). Idempotent on
    // reconnect-style repeated `connect`s.
    if (opt_bool(request.payload, "binary_events") &&
        !session.binary_events()) {
      enable_binary_events(session);
    }
    response.payload["session_id"] = Json(static_cast<int64_t>(session.id()));
    response.payload["server"] = Json("hgdb");
    response.payload["binary_events"] = Json(session.binary_events());
    response.payload["capabilities"] = capabilities().to_json();
    Json commands = Json::array();
    for (const auto& name : command_names()) commands.push_back(Json(name));
    response.payload["commands"] = std::move(commands);
  });

  register_command("disconnect", [this](DebugSession& session,
                                        const RequestV2&,
                                        ResponseV2& response) {
    service_->detach(session.id());
    session.close_requested.store(true);
    response.payload["disconnected"] = Json(true);
  });

  // -- breakpoints ------------------------------------------------------------
  register_command("breakpoint-add", [this](DebugSession& session,
                                            const RequestV2& request,
                                            ResponseV2& response) {
    BreakpointSpec spec;
    spec.filename = want_string(request.payload, "filename");
    spec.line = static_cast<uint32_t>(want_int(request.payload, "line"));
    spec.condition = opt_string(request.payload, "condition");
    const auto ids = service_->arm_breakpoint(session.id(), spec);
    Json json_ids = Json::array();
    for (int64_t id : ids) json_ids.push_back(Json(id));
    response.payload["ids"] = std::move(json_ids);
  });

  register_command("breakpoint-remove", [this](DebugSession& session,
                                               const RequestV2& request,
                                               ResponseV2& response) {
    const std::string filename = want_string(request.payload, "filename");
    const auto line =
        static_cast<uint32_t>(opt_int(request.payload, "line", 0));
    const size_t removed =
        service_->disarm_breakpoint(session.id(), filename, line);
    response.payload["removed"] = Json(static_cast<int64_t>(removed));
  });

  register_command("breakpoint-list", [this](DebugSession& session,
                                             const RequestV2&,
                                             ResponseV2& response) {
    Json list = Json::array();
    for (const auto& bp : service_->list_breakpoints(session.id())) {
      Json entry = Json::object();
      entry["id"] = Json(bp.id);
      entry["filename"] = Json(bp.filename);
      entry["line"] = Json(static_cast<int64_t>(bp.line));
      entry["instance"] = Json(bp.instance);
      entry["owned"] = Json(bp.owned);
      list.push_back(std::move(entry));
    }
    response.payload["breakpoints"] = std::move(list);
  });

  register_command("bp-location", [this](DebugSession&,
                                         const RequestV2& request,
                                         ResponseV2& response) {
    const std::string filename = want_string(request.payload, "filename");
    const auto line =
        static_cast<uint32_t>(opt_int(request.payload, "line", 0));
    Json list = Json::array();
    for (const auto& row : service_->breakpoint_locations(filename, line)) {
      Json entry = Json::object();
      entry["id"] = Json(row.id);
      entry["filename"] = Json(row.filename);
      entry["line"] = Json(static_cast<int64_t>(row.line));
      entry["column"] = Json(static_cast<int64_t>(row.column));
      entry["instance"] = Json(row.instance);
      list.push_back(std::move(entry));
    }
    response.payload["breakpoints"] = std::move(list);
  });

  // -- execution --------------------------------------------------------------
  struct ExecutionCommand {
    const char* name;
    Command command;
    Gate gate;
  };
  const ExecutionCommand executions[] = {
      {"continue", Command::Continue, Gate::None},
      {"pause", Command::Pause, Gate::None},
      {"step-over", Command::StepOver, Gate::None},
      // step-back / reverse-continue intentionally ungated: without time
      // travel the scheduler degrades them to forward stepping, which is
      // still useful. jump has no degraded meaning, so it is gated.
      {"step-back", Command::StepBack, Gate::None},
      {"reverse-continue", Command::ReverseContinue, Gate::None},
      {"jump", Command::Jump, Gate::TimeTravel},
  };
  for (const auto& execution : executions) {
    register_command(
        execution.name,
        [this, command = execution.command](DebugSession& session,
                                            const RequestV2& request,
                                            ResponseV2& response) {
          handle_execution(session, request, response, command);
        },
        execution.gate);
  }

  register_command("detach", [this](DebugSession& session, const RequestV2&,
                                    ResponseV2& response) {
    const size_t removed = service_->detach(session.id());
    response.payload["removed"] = Json(static_cast<int64_t>(removed));
  });

  // -- evaluation -------------------------------------------------------------
  register_command("evaluate", [this](DebugSession&, const RequestV2& request,
                                      ResponseV2& response) {
    EvaluateSpec spec;
    spec.expression = want_string(request.payload, "expression");
    if (request.payload.contains("breakpoint_id")) {
      spec.breakpoint_id = want_int(request.payload, "breakpoint_id");
    }
    spec.instance_name = opt_string(request.payload, "instance_name");
    const auto result = service_->evaluate(spec);
    response.payload["result"] = Json(result.value);
    response.payload["width"] = Json(static_cast<int64_t>(result.width));
  });

  register_command("evaluate-batch", [this](DebugSession&,
                                            const RequestV2& request,
                                            ResponseV2& response) {
    const Json& expressions = payload_field(request.payload, "expressions");
    if (!expressions.is_array()) {
      throw std::invalid_argument("payload field 'expressions' must be an array");
    }
    EvaluateSpec spec;
    if (request.payload.contains("breakpoint_id")) {
      spec.breakpoint_id = want_int(request.payload, "breakpoint_id");
    }
    spec.instance_name = opt_string(request.payload, "instance_name");
    Json results = Json::array();
    int64_t errors = 0;
    for (const auto& item : expressions.as_array()) {
      if (!item.is_string()) {
        throw std::invalid_argument("'expressions' entries must be strings");
      }
      Json result = Json::object();
      result["expression"] = item;
      spec.expression = item.as_string();
      try {
        const auto value = service_->evaluate(spec);
        result["status"] = Json("success");
        result["value"] = Json(value.value);
        result["width"] = Json(static_cast<int64_t>(value.width));
      } catch (const ServiceError& error) {
        result["status"] = Json("error");
        result["reason"] = Json(error.what());
        ++errors;
      }
      results.push_back(std::move(result));
    }
    response.payload["results"] = std::move(results);
    response.payload["errors"] = Json(errors);
  });

  // -- watchpoints ------------------------------------------------------------
  register_command("watch", [this](DebugSession& session,
                                   const RequestV2& request,
                                   ResponseV2& response) {
    WatchSpec spec;
    spec.expression = want_string(request.payload, "expression");
    spec.instance_name = opt_string(request.payload, "instance_name");
    const int64_t id = service_->arm_watch(session.id(), spec);
    response.payload["id"] = Json(id);
  });

  register_command("unwatch", [this](DebugSession& session,
                                     const RequestV2& request,
                                     ResponseV2& response) {
    const int64_t id = want_int(request.payload, "id");
    service_->disarm_watch(session.id(), id);
    response.payload["removed"] = Json(true);
  });

  // -- subscriptions (push value-change streams) ------------------------------
  register_command("subscribe", [this](DebugSession& session,
                                       const RequestV2& request,
                                       ResponseV2& response) {
    SubscribeSpec spec;
    const Json& signals = payload_field(request.payload, "signals");
    if (!signals.is_array()) {
      throw std::invalid_argument("payload field 'signals' must be an array");
    }
    for (const auto& signal : signals.as_array()) {
      if (!signal.is_string()) {
        throw std::invalid_argument("'signals' entries must be strings");
      }
      spec.signals.push_back(signal.as_string());
    }
    spec.instance_name = opt_string(request.payload, "instance_name");
    spec.decimation =
        static_cast<uint32_t>(opt_int(request.payload, "decimation", 1));
    // Server-side rate limit (sim-time units), applied after decimation.
    spec.min_interval =
        static_cast<uint64_t>(opt_int(request.payload, "min_interval", 0));
    const uint64_t id = service_->subscribe(session.id(), spec);
    response.payload["id"] = Json(static_cast<int64_t>(id));
    response.payload["decimation"] =
        Json(static_cast<int64_t>(std::max<uint32_t>(1, spec.decimation)));
    response.payload["min_interval"] = Json(spec.min_interval);
  });

  register_command("unsubscribe", [this](DebugSession& session,
                                         const RequestV2& request,
                                         ResponseV2& response) {
    const int64_t id = want_int(request.payload, "id");
    service_->unsubscribe(session.id(), static_cast<uint64_t>(id));
    response.payload["removed"] = Json(true);
  });

  // -- hierarchy / symbol browsing --------------------------------------------
  register_command("list-instances", [this](DebugSession&, const RequestV2&,
                                            ResponseV2& response) {
    Json list = Json::array();
    for (const auto& row : service_->instances()) {
      Json entry = Json::object();
      entry["id"] = Json(row.id);
      entry["name"] = Json(row.name);
      list.push_back(std::move(entry));
    }
    response.payload["instances"] = std::move(list);
  });

  register_command("list-variables", [this](DebugSession&,
                                            const RequestV2& request,
                                            ResponseV2& response) {
    if (request.payload.contains("breakpoint_id")) {
      const int64_t id = want_int(request.payload, "breakpoint_id");
      const rpc::Frame frame = service_->frame_variables(id);
      response.payload["locals"] = frame.locals;
      response.payload["generator"] = frame.generator;
      return;
    }
    const std::string instance =
        want_string(request.payload, "instance_name");
    Json list = Json::array();
    for (const auto& variable : service_->variables(instance)) {
      Json entry = Json::object();
      entry["name"] = Json(variable.name);
      entry["rtl"] = Json(variable.is_rtl);
      entry["value"] = Json(variable.value);
      if (variable.width) {
        entry["width"] = Json(static_cast<int64_t>(*variable.width));
      }
      list.push_back(std::move(entry));
    }
    response.payload["variables"] = std::move(list);
  });

  register_command("list-files", [this](DebugSession&, const RequestV2&,
                                        ResponseV2& response) {
    Json files = Json::array();
    for (const auto& file : service_->files()) {
      files.push_back(Json(file));
    }
    response.payload["files"] = std::move(files);
  });

  // -- introspection ----------------------------------------------------------
  register_command("info", [this](DebugSession&, const RequestV2&,
                                  ResponseV2& response) {
    Json inserted = Json::array();
    for (const auto& bp : runtime_->inserted_breakpoints()) {
      Json entry = Json::object();
      entry["id"] = Json(bp.id);
      entry["filename"] = Json(bp.filename);
      entry["line"] = Json(static_cast<int64_t>(bp.line));
      entry["instance"] = Json(bp.instance_name);
      inserted.push_back(std::move(entry));
    }
    response.payload["breakpoints"] = std::move(inserted);
    response.payload["time"] =
        Json(static_cast<int64_t>(runtime_->sim_interface().get_time()));
    Json files = Json::array();
    for (const auto& file : service_->files()) {
      files.push_back(Json(file));
    }
    response.payload["files"] = std::move(files);
    response.payload["protocol_version"] = Json(rpc::kProtocolV2);
    response.payload["backend"] =
        Json(runtime_->sim_interface().backend_kind());
    Json sessions = Json::array();
    for (const auto& client : service_->clients()) {
      Json item = Json::object();
      item["id"] = Json(static_cast<int64_t>(client.id));
      item["client"] = Json(client.name);
      item["protocol"] = Json(static_cast<int64_t>(client.protocol));
      sessions.push_back(std::move(item));
    }
    response.payload["sessions"] = std::move(sessions);
  });

  register_command("stats", [this](DebugSession&, const RequestV2&,
                                   ResponseV2& response) {
    const auto stats = runtime_->stats();
    response.payload["clock_edges"] = Json(stats.clock_edges);
    response.payload["fast_path_exits"] = Json(stats.fast_path_exits);
    response.payload["batches_evaluated"] = Json(stats.batches_evaluated);
    response.payload["conditions_evaluated"] = Json(stats.conditions_evaluated);
    response.payload["watchpoints_evaluated"] =
        Json(stats.watchpoints_evaluated);
    response.payload["stops"] = Json(stats.stops);
    // Compiled-evaluation pipeline counters: time spent in condition
    // evaluation, members skipped by the change-driven cache, and batched
    // signal-fetch traffic.
    response.payload["eval_ns"] = Json(stats.eval_ns);
    response.payload["dirty_skips"] = Json(stats.dirty_skips);
    response.payload["batch_fetches"] = Json(stats.batch_fetches);
    response.payload["batch_signals"] = Json(stats.batch_signals);
    response.payload["programs_compiled"] = Json(stats.programs_compiled);
    response.payload["program_cache_hits"] = Json(stats.program_cache_hits);
    response.payload["sessions"] =
        Json(static_cast<int64_t>(service_->client_count()));
    response.payload["watchpoints"] =
        Json(static_cast<int64_t>(runtime_->watchpoint_count()));
    response.payload["subscriptions"] =
        Json(static_cast<int64_t>(service_->subscription_count()));
    const auto service = service_->service_stats();
    response.payload["requests"] = Json(service.requests);
    response.payload["protocol_errors"] = Json(service.protocol_errors);
    response.payload["stops_broadcast"] = Json(service.stops_broadcast);
    response.payload["events_delivered"] = Json(service.events_delivered);
    response.payload["events_decimated"] = Json(service.events_decimated);
    response.payload["events_dropped"] = Json(service.events_dropped);
    // Latency quantiles from the registry histograms (power-of-two bucket
    // upper bounds, see obs::Histogram).
    auto& registry = service_->metrics();
    Json latency = Json::object();
    for (const char* name :
         {"runtime.batch_eval_ns", "session.stop_handshake_ns"}) {
      const auto snap = registry.histogram(name).snapshot();
      Json entry = Json::object();
      entry["count"] = Json(snap.count);
      entry["p50"] = Json(snap.p50);
      entry["p95"] = Json(snap.p95);
      entry["p99"] = Json(snap.p99);
      latency[name] = std::move(entry);
    }
    response.payload["latency"] = std::move(latency);
  });

  // -- observability ----------------------------------------------------------
  register_command("metrics", [this](DebugSession&, const RequestV2& request,
                                     ResponseV2& response) {
    // Prometheus text exposition by default; format=json returns the
    // structured snapshot (counters/gauges/histogram quantiles).
    const std::string format =
        opt_string(request.payload, "format", "prometheus");
    auto& registry = service_->metrics();
    if (format == "json") {
      response.payload["metrics"] = registry.snapshot_json();
    } else if (format == "prometheus") {
      response.payload["text"] = Json(registry.render_prometheus());
    } else {
      throw std::invalid_argument(
          "payload field 'format' must be 'prometheus' or 'json'");
    }
  });

  register_command("trace", [](DebugSession&, const RequestV2& request,
                               ResponseV2& response) {
    auto& recorder = obs::TraceRecorder::global();
    const std::string action = want_string(request.payload, "action");
    if (action == "start") {
      recorder.start();
    } else if (action == "stop") {
      recorder.stop();
    } else if (action == "clear") {
      recorder.clear();
    } else if (action == "dump") {
      // chrome://tracing / Perfetto JSON as a string payload; the client
      // writes it to a file.
      response.payload["json"] = Json(recorder.export_chrome_json());
    } else if (action != "status") {
      throw std::invalid_argument(
          "payload field 'action' must be start|stop|clear|status|dump");
    }
    response.payload["enabled"] = Json(recorder.enabled());
    response.payload["recorded"] = Json(recorder.recorded());
    response.payload["dropped"] = Json(recorder.dropped());
    response.payload["capacity"] =
        Json(static_cast<int64_t>(recorder.capacity()));
#if HGDB_OBS_SPANS_ENABLED
    response.payload["spans_compiled"] = Json(true);
#else
    response.payload["spans_compiled"] = Json(false);
#endif
  });

  // -- signal forcing ---------------------------------------------------------
  register_command(
      "set-value",
      [this](DebugSession&, const RequestV2& request, ResponseV2& response) {
        const std::string name = want_string(request.payload, "name");
        const Json& raw = payload_field(request.payload, "value");
        std::string value;
        if (raw.is_string()) {
          value = raw.as_string();
        } else if (raw.is_number()) {
          value = std::to_string(raw.as_int());
        } else {
          throw std::invalid_argument(
              "payload field 'value' must be a string or number");
        }
        service_->set_value(name, value);
        response.payload["set"] = Json(true);
      },
      Gate::SetValue);
}

}  // namespace hgdb::session
