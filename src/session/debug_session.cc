#include "session/debug_session.h"

namespace hgdb::session {

DebugSession::DebugSession(uint64_t id, std::unique_ptr<rpc::Channel> channel)
    : id_(id), channel_(std::move(channel)) {}

std::string DebugSession::client_name() const {
  std::lock_guard lock(mutex_);
  return client_name_;
}

void DebugSession::set_client_name(std::string name) {
  std::lock_guard lock(mutex_);
  client_name_ = std::move(name);
}

bool DebugSession::send(const std::string& text) {
  if (!alive()) return false;
  try {
    channel_->send(text);
    return true;
  } catch (const std::exception&) {
    mark_dead();
    return false;
  }
}

void DebugSession::own_location(const Location& location) {
  std::lock_guard lock(mutex_);
  locations_.insert(location);
}

bool DebugSession::owns_location(const Location& location) const {
  std::lock_guard lock(mutex_);
  return locations_.count(location) != 0;
}

std::vector<Location> DebugSession::take_locations(const std::string& filename,
                                                   uint32_t line) {
  std::lock_guard lock(mutex_);
  std::vector<Location> taken;
  for (auto it = locations_.begin(); it != locations_.end();) {
    if (it->first == filename && (line == 0 || it->second == line)) {
      taken.push_back(*it);
      it = locations_.erase(it);
    } else {
      ++it;
    }
  }
  return taken;
}

std::vector<Location> DebugSession::take_all_locations() {
  std::lock_guard lock(mutex_);
  std::vector<Location> taken(locations_.begin(), locations_.end());
  locations_.clear();
  return taken;
}

size_t DebugSession::owned_location_count() const {
  std::lock_guard lock(mutex_);
  return locations_.size();
}

void DebugSession::own_watch(int64_t id) {
  std::lock_guard lock(mutex_);
  watches_.insert(id);
}

bool DebugSession::owns_watch(int64_t id) const {
  std::lock_guard lock(mutex_);
  return watches_.count(id) != 0;
}

bool DebugSession::disown_watch(int64_t id) {
  std::lock_guard lock(mutex_);
  return watches_.erase(id) != 0;
}

std::vector<int64_t> DebugSession::take_watches() {
  std::lock_guard lock(mutex_);
  std::vector<int64_t> taken(watches_.begin(), watches_.end());
  watches_.clear();
  return taken;
}

}  // namespace hgdb::session
