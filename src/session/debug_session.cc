#include "session/debug_session.h"

#include "common/json.h"
#include "rpc/event_frame.h"
#include "rpc/protocol.h"
#include "rpc/protocol_v2.h"

namespace hgdb::session {

using common::Json;

DebugSession::DebugSession(ClientId id, std::unique_ptr<rpc::Channel> channel)
    : id_(id), channel_(std::move(channel)) {}

bool DebugSession::send_on_channel(const std::string& text) {
  if (!alive()) return false;
  try {
    channel_->send(text);
    if (bytes_sent_ != nullptr) bytes_sent_->add(text.size());
    return true;
  } catch (const std::exception&) {
    mark_dead();
    return false;
  }
}

bool DebugSession::send(const std::string& text) {
  if (has_writer()) {
    // force: responses are request-paced, they bypass the event-queue
    // bound rather than vanish mid-handshake.
    return enqueue(rpc::make_text_frame(text), /*force=*/true);
  }
  return send_on_channel(text);
}

bool DebugSession::send_event(const std::string& text) {
  if (has_writer()) {
    return enqueue(rpc::make_text_frame(text), /*force=*/false);
  }
  // No writer target means no bounded queue to absorb back-pressure, and a
  // synchronous channel send here would stall the fan-out loop (sinks run
  // under the service's delivery lock). Shed the event instead — the
  // SessionManager attaches the writer before the sink is registered, so
  // this branch is unreachable in production wiring.
  return false;
}

bool DebugSession::enqueue(rpc::OutboundFrame frame, bool force) {
  if (!alive()) return false;
  switch (writer_->enqueue(writer_target(), std::move(frame), force)) {
    case rpc::EventWriter::Enqueue::Queued:
      return true;
    case rpc::EventWriter::Enqueue::Dropped:
      // Slow-client policy fired: the event is gone (and counted in
      // rpc.writer.events_dropped) but the client stays attached.
      return true;
    case rpc::EventWriter::Enqueue::Dead:
      mark_dead();
      return false;
  }
  return false;
}

bool DebugSession::deliver(const ServiceEvent& event) {
  const bool binary = binary_events();
  switch (event.kind) {
    case ServiceEvent::Kind::Stop: {
      if (binary) {
        // The fan-out normally pre-encodes once for all binary clients;
        // a direct deliver (tests) encodes on demand.
        rpc::SharedFrame body = event.binary_body
                                    ? event.binary_body
                                    : rpc::encode_stop_body(event.stop);
        return enqueue(
            rpc::make_event_frame(rpc::FrameKind::Stop, std::move(body)),
            /*force=*/false);
      }
      const std::string text =
          protocol_version() >= 2
              ? rpc::serialize_event_v2(rpc::EventV2{
                    "stop", rpc::stop_event_payload(event.stop)})
              : rpc::serialize_stop_event(event.stop);
      return send_event(text);
    }
    case ServiceEvent::Kind::ValueChange: {
      // v1 clients cannot subscribe, so nothing can reach them here; keep
      // the guard anyway so a v1 session is never sent bytes it cannot
      // parse.
      if (protocol_version() < 2) return true;
      if (binary) {
        rpc::SharedFrame body =
            event.binary_body
                ? event.binary_body
                : rpc::encode_value_change_body(event.value_change.time,
                                                event.value_change.changes);
        return enqueue(
            rpc::make_value_change_frame(event.value_change.subscription,
                                         std::move(body)),
            /*force=*/false);
      }
      Json payload = Json::object();
      payload["subscription"] =
          Json(static_cast<int64_t>(event.value_change.subscription));
      payload["time"] = Json(static_cast<int64_t>(event.value_change.time));
      Json changes = Json::array();
      for (const auto& change : event.value_change.changes) {
        Json entry = Json::object();
        entry["signal"] = Json(change.signal);
        entry["value"] = Json(change.value);
        entry["width"] = Json(static_cast<int64_t>(change.width));
        changes.push_back(std::move(entry));
      }
      payload["changes"] = std::move(changes);
      return send_event(
          rpc::serialize_event_v2(rpc::EventV2{"values", std::move(payload)}));
    }
    case ServiceEvent::Kind::Lifecycle:
      if (binary) {
        return enqueue(
            rpc::make_event_frame(rpc::FrameKind::Lifecycle,
                                  rpc::encode_lifecycle_body(event.lifecycle)),
            /*force=*/false);
      }
      return true;  // not part of the native JSON wire format
    case ServiceEvent::Kind::BreakpointChanged: {
      if (binary) {
        rpc::SharedFrame body =
            event.binary_body
                ? event.binary_body
                : rpc::encode_breakpoint_change_body(event.breakpoint_change);
        return enqueue(rpc::make_event_frame(rpc::FrameKind::BreakpointChanged,
                                             std::move(body)),
                       /*force=*/false);
      }
      if (protocol_version() < 2) return true;  // no v1 vocabulary for this
      Json payload = Json::object();
      payload["action"] = Json(event.breakpoint_change.action);
      payload["filename"] = Json(event.breakpoint_change.filename);
      payload["line"] =
          Json(static_cast<int64_t>(event.breakpoint_change.line));
      payload["condition"] = Json(event.breakpoint_change.condition);
      payload["client"] =
          Json(static_cast<int64_t>(event.breakpoint_change.client));
      return send_event(rpc::serialize_event_v2(
          rpc::EventV2{"breakpoint-changed", std::move(payload)}));
    }
  }
  return true;
}

}  // namespace hgdb::session
