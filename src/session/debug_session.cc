#include "session/debug_session.h"

#include "common/json.h"
#include "rpc/protocol.h"
#include "rpc/protocol_v2.h"

namespace hgdb::session {

using common::Json;

DebugSession::DebugSession(ClientId id, std::unique_ptr<rpc::Channel> channel)
    : id_(id), channel_(std::move(channel)) {}

bool DebugSession::send(const std::string& text) {
  if (!alive()) return false;
  try {
    channel_->send(text);
    return true;
  } catch (const std::exception&) {
    mark_dead();
    return false;
  }
}

bool DebugSession::deliver(const ServiceEvent& event) {
  switch (event.kind) {
    case ServiceEvent::Kind::Stop: {
      const std::string text =
          protocol_version() >= 2
              ? rpc::serialize_event_v2(rpc::EventV2{
                    "stop", rpc::stop_event_payload(event.stop)})
              : rpc::serialize_stop_event(event.stop);
      return send(text);
    }
    case ServiceEvent::Kind::ValueChange: {
      // v1 clients cannot subscribe, so nothing can reach them here; keep
      // the guard anyway so a v1 session is never sent bytes it cannot
      // parse.
      if (protocol_version() < 2) return true;
      Json payload = Json::object();
      payload["subscription"] =
          Json(static_cast<int64_t>(event.value_change.subscription));
      payload["time"] = Json(static_cast<int64_t>(event.value_change.time));
      Json changes = Json::array();
      for (const auto& change : event.value_change.changes) {
        Json entry = Json::object();
        entry["signal"] = Json(change.signal);
        entry["value"] = Json(change.value);
        entry["width"] = Json(static_cast<int64_t>(change.width));
        changes.push_back(std::move(entry));
      }
      payload["changes"] = std::move(changes);
      return send(
          rpc::serialize_event_v2(rpc::EventV2{"values", std::move(payload)}));
    }
    case ServiceEvent::Kind::Lifecycle:
      return true;  // not part of the native wire format
  }
  return true;
}

}  // namespace hgdb::session
