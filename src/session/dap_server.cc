#include "session/dap_server.h"

#include <chrono>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "obs/trace.h"
#include "rpc/tcp.h"
#include "session/dap_protocol.h"

namespace hgdb::session {

using common::Json;

// ---------------------------------------------------------------------------
// connection state
// ---------------------------------------------------------------------------

/// One DAP connection: the raw byte stream, the framing codec, and the
/// stop-state tables that back stackTrace/scopes/variables. Registered as
/// a DebugService client; deliver() renders pushed events as DAP events.
struct DapServer::Connection final : public EventSink {
  DapServer* server = nullptr;
  DebugService* service = nullptr;
  std::unique_ptr<rpc::ByteStream> stream;
  /// The shared async writer; every outbound byte of this connection
  /// enqueues on `writer_target` (the socket fd registered at accept), so
  /// the reader and simulation threads never write the socket directly.
  rpc::EventWriter* writer = nullptr;
  uint64_t writer_target = 0;
  ClientId client = 0;
  bool rejected = false;  ///< session limit reached at accept time
  std::thread thread;
  std::atomic<bool> reapable{false};
  bool close_requested = false;  ///< reader-thread only (disconnect)

  // Sending: responses from the reader thread, events from the simulation
  // thread; one mutex serializes seq allocation + enqueue so server seq
  // stays monotonically increasing on the wire (the enqueue itself is a
  // bounded non-blocking push at a lower lock rank).
  common::TransportMutex send_mutex{"dap::connection_send"};
  int64_t next_seq HGDB_GUARDED_BY(send_mutex) = 1;

  // The last stop, flattened into DAP reference tables (written by
  // deliver() on the sim thread, read by stackTrace/scopes/variables on
  // the reader thread).
  common::TransportMutex state_mutex{"dap::connection_state"};
  std::optional<rpc::StopEvent> last_stop HGDB_GUARDED_BY(state_mutex);
  struct FrameEntry {
    rpc::Frame frame;
    int64_t locals_ref = 0;
    int64_t generator_ref = 0;
  };
  /// frameId -> entry
  std::map<int64_t, FrameEntry> frames HGDB_GUARDED_BY(state_mutex);
  /// variablesReference -> object
  std::map<int64_t, Json> variable_refs HGDB_GUARDED_BY(state_mutex);
  int64_t next_ref HGDB_GUARDED_BY(state_mutex) = 1;

  // seq allocation and the enqueue happen under one send_mutex hold: DAP
  // requires server seq to be monotonically increasing on the wire, and
  // the sim thread (events) races the reader thread (responses). A
  // dropped event leaves a seq gap, which DAP clients tolerate (seq is
  // unique/increasing, not dense).
  bool send_response(const dap::Request& request, bool success, Json body,
                     const std::string& message = "") {
    common::LockGuard lock(send_mutex);
    const Json response = dap::make_response(next_seq++, request, success,
                                             std::move(body), message);
    // force: responses are request-paced, they bypass the event bound.
    return send_encoded(dap::FrameCodec::encode(response.dump()),
                        /*force=*/true);
  }

  bool send_event(const std::string& event, Json body) {
    common::LockGuard lock(send_mutex);
    const Json message = dap::make_event(next_seq++, event, std::move(body));
    return send_encoded(dap::FrameCodec::encode(message.dump()),
                        /*force=*/false);
  }

  bool send_encoded(const std::string& encoded, bool force)
      HGDB_REQUIRES(send_mutex) {
    // The Content-Length message carries its own framing, so it rides the
    // writer as a raw frame; byte accounting lives in the writer target.
    switch (writer->enqueue(writer_target, rpc::make_raw_frame(encoded),
                            force)) {
      case rpc::EventWriter::Enqueue::Queued:
        return true;
      case rpc::EventWriter::Enqueue::Dropped:
        // Slow-client policy: the event is sacrificed (and counted), the
        // connection stays attached.
        return true;
      case rpc::EventWriter::Enqueue::Dead:
        return false;
    }
    return false;
  }

  int64_t register_object(Json object) HGDB_REQUIRES(state_mutex) {
    const int64_t ref = next_ref++;
    variable_refs.emplace(ref, std::move(object));
    return ref;
  }

  void index_stop(const rpc::StopEvent& stop) {
    common::LockGuard lock(state_mutex);
    last_stop = stop;
    frames.clear();
    variable_refs.clear();
    next_ref = 1;
    int64_t frame_id = 1;
    for (const auto& frame : stop.frames) {
      FrameEntry entry;
      entry.frame = frame;
      entry.locals_ref = register_object(frame.locals);
      entry.generator_ref = register_object(frame.generator);
      frames.emplace(frame_id++, std::move(entry));
    }
  }

  bool deliver(const ServiceEvent& event) override {
    switch (event.kind) {
      case ServiceEvent::Kind::Stop: {
        index_stop(event.stop);
        Json body = Json::object();
        // condition_routed marks run-mode inserted-breakpoint hits; step
        // and pause stops carry frames too but must not claim to be
        // breakpoints.
        const char* reason = "step";
        if (event.stop.condition_routed && !event.stop.frames.empty()) {
          reason = "breakpoint";
        } else if (!event.stop.watch_hits.empty()) {
          reason = "data breakpoint";
        }
        body["reason"] = Json(reason);
        body["allThreadsStopped"] = Json(true);
        body["threadId"] =
            Json(event.stop.frames.empty()
                     ? int64_t{1}
                     : event.stop.frames.front().instance_id + 1);
        body["description"] =
            Json("stopped at time " + std::to_string(event.stop.time));
        return send_event("stopped", std::move(body));
      }
      case ServiceEvent::Kind::ValueChange: {
        // Not part of the DAP standard; surfaced as a custom event so a
        // VSCode extension can stream values without polling.
        Json body = Json::object();
        body["subscription"] =
            Json(static_cast<int64_t>(event.value_change.subscription));
        body["time"] = Json(static_cast<int64_t>(event.value_change.time));
        Json changes = Json::array();
        for (const auto& change : event.value_change.changes) {
          Json entry = Json::object();
          entry["signal"] = Json(change.signal);
          entry["value"] = Json(change.value);
          entry["width"] = Json(static_cast<int64_t>(change.width));
          changes.push_back(std::move(entry));
        }
        body["changes"] = std::move(changes);
        return send_event("hgdbValues", std::move(body));
      }
      case ServiceEvent::Kind::Lifecycle:
        if (event.lifecycle == "shutdown") {
          send_event("terminated", Json::object());
        }
        return true;
      case ServiceEvent::Kind::BreakpointChanged: {
        // Another attached session armed or disarmed a shared location;
        // surfaced as a custom event so the IDE can refresh its gutter.
        Json body = Json::object();
        body["action"] = Json(event.breakpoint_change.action);
        body["filename"] = Json(event.breakpoint_change.filename);
        body["line"] =
            Json(static_cast<int64_t>(event.breakpoint_change.line));
        body["condition"] = Json(event.breakpoint_change.condition);
        body["client"] =
            Json(static_cast<int64_t>(event.breakpoint_change.client));
        return send_event("hgdbBreakpointChanged", std::move(body));
      }
    }
    return true;
  }
};

namespace {

/// DAP line/column numbers are 1-based; the symbol table's columns may be
/// 0 (unknown).
int64_t dap_column(uint32_t column) { return column == 0 ? 1 : column; }

}  // namespace

// ---------------------------------------------------------------------------
// server lifecycle
// ---------------------------------------------------------------------------

DapServer::DapServer(DebugService& service, rpc::EventWriter& writer)
    : service_(&service), writer_(&writer) {}

DapServer::~DapServer() { shutdown(); }

uint16_t DapServer::listen(uint16_t port) {
  common::LockGuard lock(connections_mutex_);
  if (server_) return server_->port();
  server_ = std::make_unique<rpc::TcpServer>(port);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return server_->port();
}

void DapServer::accept_loop() {
  // server_ stays valid for the thread's lifetime: shutdown() joins this
  // thread before resetting it.
  while (!shutting_down_.load()) {
    auto stream = server_->accept_stream();
    if (!stream) break;
    auto connection = std::make_unique<Connection>();
    connection->server = this;
    connection->service = service_;
    connection->stream = std::move(stream);
    connection->writer = writer_;
    // Register the writer target before the service can deliver anything:
    // the sink attaches inside register_client below, and the first event
    // must already find the async path.
    {
      rpc::EventWriter::Target target;
      // accept_stream always hands back a socket, so the fd path carries
      // the bytes; there is no Target::send fallback here on purpose — a
      // ByteStream::send_bytes under the writer mutex would block, which
      // that callback's contract (and hgdb-analyze) forbids.
      target.fd = connection->stream->native_handle();
      Connection* raw = connection.get();
      // Minimal and service-free: closing the stream wakes the blocked
      // reader thread, which unregisters the client on its own stack.
      target.on_dead = [raw] { raw->stream->close(); };
      target.bytes_sent =
          &service_->metrics().counter("session.dap.bytes_sent");
      connection->writer_target = writer_->add_target(std::move(target));
    }
    try {
      connection->client = service_->register_client("dap", connection.get());
    } catch (const ServiceError&) {
      // Session limit: answer the first request with a failure, then drop.
      connection->rejected = true;
    }
    common::LockGuard lock(connections_mutex_);
    if (shutting_down_.load()) {
      if (!connection->rejected) {
        service_->unregister_client(connection->client);
      }
      writer_->remove_target(connection->writer_target);
      connection->stream->close();
      break;
    }
    // Reap connections whose thread has fully finished.
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->reapable.load()) {
        if ((*it)->thread.joinable()) (*it)->thread.join();
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
    connections_.push_back(std::move(connection));
    Connection* raw = connections_.back().get();
    raw->thread = std::thread([this, raw] { connection_loop(raw); });
  }
}

void DapServer::shutdown() {
  shutting_down_.store(true);
  {
    common::LockGuard lock(connections_mutex_);
    if (server_) server_->close();
    for (auto& connection : connections_) connection->stream->close();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Connection>> taken;
  {
    common::LockGuard lock(connections_mutex_);
    taken.swap(connections_);
    server_.reset();
  }
  for (auto& connection : taken) {
    if (connection->thread.joinable()) connection->thread.join();
  }
  shutting_down_.store(false);  // server object is reusable
}

size_t DapServer::connection_count() const {
  common::LockGuard lock(connections_mutex_);
  size_t alive = 0;
  for (const auto& connection : connections_) {
    if (!connection->reapable.load()) ++alive;
  }
  return alive;
}

// ---------------------------------------------------------------------------
// request dispatch
// ---------------------------------------------------------------------------

namespace {

/// Handles one DAP request against the service; returns the response body
/// (success path) or throws (ServiceError -> failure response with the
/// typed reason). `events` collects events to send after the response.
Json handle_request(DapServer::Connection& connection, DebugService& service,
                    const dap::Request& request,
                    std::vector<std::pair<std::string, Json>>& events) {
  using Command = DebugService::Command;
  const ClientId client = connection.client;
  const Json& args = request.arguments;
  Json body = Json::object();

  if (request.command == "initialize") {
    const auto caps = service.capabilities();
    body["supportsConfigurationDoneRequest"] = Json(true);
    body["supportsConditionalBreakpoints"] = Json(true);
    body["supportsEvaluateForHovers"] = Json(true);
    body["supportsStepBack"] = Json(caps.time_travel);
    // setVariable routes through DebugService::set_value, so advertise
    // exactly what the backend can do (replay backends cannot force
    // signals; a live simulator can).
    body["supportsSetVariable"] = Json(caps.set_value);
    events.emplace_back("initialized", Json::object());
    return body;
  }
  if (request.command == "launch" || request.command == "attach" ||
      request.command == "configurationDone") {
    // The simulation (or replay) is already running under the runtime;
    // both launch and attach mean "start debugging it".
    return body;
  }
  if (request.command == "setBreakpoints") {
    auto source = args.get("source");
    if (!source || !source->get().is_object()) {
      throw std::runtime_error("setBreakpoints needs a source");
    }
    std::string path = source->get().get_string("path");
    if (path.empty()) path = source->get().get_string("name");
    // DAP semantics: the request *replaces* all breakpoints in the source.
    service.disarm_breakpoint(client, path, 0);
    Json results = Json::array();
    if (auto requested = args.get("breakpoints")) {
      for (const auto& entry : requested->get().as_array()) {
        const auto line = static_cast<uint32_t>(entry.get_int("line"));
        const std::string condition = entry.get_string("condition");
        Json result = Json::object();
        result["line"] = Json(static_cast<int64_t>(line));
        try {
          const auto ids = service.arm_breakpoint(
              client, BreakpointSpec{path, line, condition});
          result["verified"] = Json(true);
          result["id"] = Json(ids.front());
        } catch (const ServiceError& error) {
          result["verified"] = Json(false);
          result["message"] = Json(error.what());
        }
        results.push_back(std::move(result));
      }
    }
    body["breakpoints"] = std::move(results);
    return body;
  }
  if (request.command == "threads") {
    Json threads = Json::array();
    for (const auto& instance : service.instances()) {
      Json thread = Json::object();
      // The paper's concurrent "hardware threads" are design instances;
      // DAP thread ids must be nonzero, hence the +1.
      thread["id"] = Json(instance.id + 1);
      thread["name"] = Json(instance.name);
      threads.push_back(std::move(thread));
    }
    body["threads"] = std::move(threads);
    return body;
  }
  if (request.command == "stackTrace") {
    const int64_t thread_id = args.get_int("threadId");
    Json stack = Json::array();
    common::LockGuard lock(connection.state_mutex);
    for (const auto& [frame_id, entry] : connection.frames) {
      if (thread_id != 0 && entry.frame.instance_id + 1 != thread_id) continue;
      Json frame = Json::object();
      frame["id"] = Json(frame_id);
      frame["name"] = Json(entry.frame.instance_name + " at " +
                           entry.frame.filename + ":" +
                           std::to_string(entry.frame.line));
      Json source = Json::object();
      source["name"] = Json(entry.frame.filename);
      source["path"] = Json(entry.frame.filename);
      frame["source"] = std::move(source);
      frame["line"] = Json(static_cast<int64_t>(entry.frame.line));
      frame["column"] = Json(dap_column(entry.frame.column));
      stack.push_back(std::move(frame));
    }
    body["totalFrames"] = Json(static_cast<int64_t>(stack.size()));
    body["stackFrames"] = std::move(stack);
    return body;
  }
  if (request.command == "scopes") {
    const int64_t frame_id = args.get_int("frameId");
    common::LockGuard lock(connection.state_mutex);
    auto it = connection.frames.find(frame_id);
    if (it == connection.frames.end()) {
      throw std::runtime_error("unknown frameId " + std::to_string(frame_id));
    }
    Json scopes = Json::array();
    const std::pair<const char*, int64_t> entries[] = {
        {"Locals", it->second.locals_ref},
        {"Generator", it->second.generator_ref},
    };
    for (const auto& [name, ref] : entries) {
      Json scope = Json::object();
      scope["name"] = Json(name);
      scope["variablesReference"] = Json(ref);
      scope["expensive"] = Json(false);
      scopes.push_back(std::move(scope));
    }
    body["scopes"] = std::move(scopes);
    return body;
  }
  if (request.command == "variables") {
    const int64_t ref = args.get_int("variablesReference");
    common::LockGuard lock(connection.state_mutex);
    auto it = connection.variable_refs.find(ref);
    if (it == connection.variable_refs.end()) {
      throw std::runtime_error("unknown variablesReference " +
                               std::to_string(ref));
    }
    Json variables = Json::array();
    // Copy: register_object below mutates the map we iterate.
    const Json object = it->second;
    for (const auto& [name, value] : object.as_object()) {
      Json variable = Json::object();
      variable["name"] = Json(name);
      if (value.is_object()) {
        // A reconstructed bundle: expandable via a child reference.
        variable["value"] = Json("{...}");
        variable["variablesReference"] =
            Json(connection.register_object(value));
      } else {
        variable["value"] =
            Json(value.is_string() ? value.as_string() : value.dump());
        variable["variablesReference"] = Json(int64_t{0});
      }
      variables.push_back(std::move(variable));
    }
    body["variables"] = std::move(variables);
    return body;
  }
  if (request.command == "evaluate") {
    EvaluateSpec spec;
    spec.expression = args.get_string("expression");
    const int64_t frame_id = args.get_int("frameId");
    if (frame_id != 0) {
      common::LockGuard lock(connection.state_mutex);
      auto it = connection.frames.find(frame_id);
      if (it != connection.frames.end()) {
        spec.breakpoint_id = it->second.frame.breakpoint_id;
      }
    }
    const auto result = service.evaluate(spec);
    body["result"] = Json(result.value);
    body["variablesReference"] = Json(int64_t{0});
    return body;
  }
  if (request.command == "continue") {
    service.execute(client, Command::Continue);
    body["allThreadsContinued"] = Json(true);
    return body;
  }
  if (request.command == "next" || request.command == "stepIn" ||
      request.command == "stepOut") {
    // One statement of the emulated source program; hardware has no call
    // stack to step into or out of, so all three map to step-over.
    service.execute(client, Command::StepOver);
    return body;
  }
  if (request.command == "stepBack") {
    service.execute(client, Command::StepBack);
    return body;
  }
  if (request.command == "reverseContinue") {
    service.execute(client, Command::ReverseContinue);
    return body;
  }
  if (request.command == "pause") {
    service.execute(client, Command::Pause);
    return body;
  }
  if (request.command == "setVariable") {
    if (!service.capabilities().set_value) {
      throw std::runtime_error("backend ('" + service.capabilities().backend +
                               "') does not support set-value");
    }
    const int64_t ref = args.get_int("variablesReference");
    const std::string name = args.get_string("name");
    const std::string value = args.get_string("value");
    if (name.empty()) throw std::runtime_error("setVariable needs a name");
    // Scope the variable through the frame owning this reference: scope
    // variables resolve as <instance>.<name> first, then as a bare
    // (absolute) hierarchical name.
    std::string instance;
    {
      common::LockGuard lock(connection.state_mutex);
      for (const auto& [frame_id, entry] : connection.frames) {
        if (entry.locals_ref == ref || entry.generator_ref == ref) {
          instance = entry.frame.instance_name;
          break;
        }
      }
    }
    bool set = false;
    if (!instance.empty()) {
      try {
        service.set_value(instance + "." + name, value);
        set = true;
      } catch (const ServiceError&) {
        // fall through to the bare name
      }
    }
    if (!set) service.set_value(name, value);
    // Read back through the evaluator so the IDE shows the value the
    // simulator actually took (width-truncated, base-normalized).
    std::string rendered = value;
    try {
      EvaluateSpec spec;
      spec.expression = name;
      spec.instance_name = instance;
      rendered = service.evaluate(spec).value;
    } catch (const std::exception&) {
      // echo the requested value when read-back is unavailable
    }
    {
      // Keep the cached stop tables coherent for later `variables`
      // requests against the same reference.
      common::LockGuard lock(connection.state_mutex);
      auto it = connection.variable_refs.find(ref);
      if (it != connection.variable_refs.end() && it->second.is_object()) {
        it->second[name] = Json(rendered);
      }
    }
    body["value"] = Json(rendered);
    body["variablesReference"] = Json(int64_t{0});
    return body;
  }
  if (request.command == "hgdbMetrics") {
    // Custom request: the unified registry snapshot plus the Prometheus
    // text page, so IDE extensions can render either.
    body["metrics"] = service.metrics().snapshot_json();
    body["prometheus"] = Json(service.metrics().render_prometheus());
    return body;
  }
  if (request.command == "disconnect") {
    connection.close_requested = true;
    return body;
  }
  throw std::runtime_error("unsupported command '" + request.command + "'");
}

}  // namespace

void DapServer::connection_loop(Connection* connection) {
  dap::FrameCodec codec;
  bool drop = false;
  while (!drop && !shutting_down_.load()) {
    auto chunk = connection->stream->receive_some();
    if (!chunk) break;  // peer closed (possibly mid-request)
    codec.feed(*chunk);
    while (true) {
      std::optional<std::string> payload;
      try {
        payload = codec.next();
      } catch (const std::exception&) {
        drop = true;  // framing violation: drop the connection
        break;
      }
      if (!payload) break;
      dap::Request request;
      try {
        request = dap::parse_request(Json::parse(*payload));
      } catch (const std::exception&) {
        drop = true;  // not a DAP request: drop the connection
        break;
      }
      bool sent = false;
      std::vector<std::pair<std::string, Json>> events;
      if (connection->rejected) {
        connection->close_requested = true;
        sent = connection->send_response(request, false, Json::object(),
                                         "too-many-sessions");
      } else {
        service_->count_request();
        service_->metrics()
            .counter("session.dap.command." + request.command)
            .add(1);
#if HGDB_OBS_SPANS_ENABLED
        auto& trace_recorder = obs::TraceRecorder::global();
        obs::TraceSpan dispatch_span(
            trace_recorder, "dap",
            trace_recorder.enabled() ? trace_recorder.intern(request.command)
                                     : "dispatch");
#endif
        try {
          Json body = handle_request(*connection, *service_, request, events);
          sent = connection->send_response(request, true, std::move(body));
        } catch (const std::exception& error) {
          service_->count_protocol_error();
          sent = connection->send_response(request, false, Json::object(),
                                           error.what());
        }
      }
      if (!sent) {
        drop = true;
        break;
      }
      for (auto& [event, event_body] : events) {
        connection->send_event(event, std::move(event_body));
      }
      if (connection->close_requested) {
        drop = true;
        break;
      }
    }
  }
  // The final response (disconnect ack, limit rejection) may still sit in
  // the writer queue; give it a bounded chance to flush, then unhook the
  // target so the writer holds no reference to this connection's fd.
  writer_->drain(connection->writer_target, std::chrono::milliseconds(1000));
  writer_->remove_target(connection->writer_target);
  // Abrupt disconnects (mid-request included) release everything the
  // client owned and resign it from a pending stop, so a vanished IDE can
  // never hang the scheduler.
  if (!connection->rejected) service_->unregister_client(connection->client);
  connection->stream->close();
  connection->reapable.store(true);
}

}  // namespace hgdb::session
