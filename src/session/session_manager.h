#ifndef HGDB_SESSION_SESSION_MANAGER_H
#define HGDB_SESSION_SESSION_MANAGER_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/checked_mutex.h"
#include "obs/metrics.h"
#include "rpc/event_writer.h"
#include "rpc/protocol.h"
#include "rpc/protocol_v2.h"
#include "session/debug_service.h"
#include "session/debug_session.h"

namespace hgdb::rpc {
class TcpServer;
}  // namespace hgdb::rpc

namespace hgdb::runtime {
class Runtime;
}  // namespace hgdb::runtime

namespace hgdb::session {

class DapServer;

/// The protocol front-end host between debugger transports and the
/// wire-format-free DebugService core (the "RPC-based debugging protocol"
/// of the paper's Sec. 3.5, grown into protocol v2 + DAP).
///
/// The manager owns:
///  - the DebugService — typed requests, push event sinks, per-client
///    ownership, the stop handshake (see debug_service.h);
///  - the *native* front end: N concurrent DebugSessions over any
///    rpc::Channel plus a TCP accept loop (listen_tcp), dispatching v2
///    JSON envelopes through a *command registry* whose handlers decode
///    payloads and call the typed core — adding a request family means
///    registering a handler, not editing the runtime core. v1 clients
///    keep working through the translate shim, answered in the v1 wire
///    format, byte-compatible with the pre-DebugService protocol;
///  - the *DAP* front end (listen_dap): VSCode attaches over Content-
///    Length framing, sharing the same core — breakpoint refcounts, stop
///    routing, and the session limit span both protocols.
class SessionManager {
 public:
  using Command = rpc::CommandRequest::Command;
  /// A command handler fills in `response` (already carrying the echoed
  /// command/token). Throwing ServiceError maps to its typed code;
  /// std::invalid_argument to invalid-payload, std::out_of_range to
  /// no-such-entity, anything else to internal-error.
  using Handler = std::function<void(DebugSession&, const rpc::RequestV2&,
                                     rpc::ResponseV2&)>;

  /// Capability a command requires; gated before the handler runs.
  enum class Gate : uint8_t { None, TimeTravel, SetValue };

  explicit SessionManager(runtime::Runtime& runtime);
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// The typed core shared by every front end.
  [[nodiscard]] DebugService& service() { return *service_; }

  // -- clients -----------------------------------------------------------------
  /// Attaches a native-protocol client and starts its reader thread;
  /// returns the session id (0 when the client was rejected by the
  /// session limit — it still receives a typed `too-many-sessions` answer
  /// to its first request before the session closes).
  uint64_t add_client(std::unique_ptr<rpc::Channel> channel);
  /// Binds loopback TCP (0 = ephemeral) and accepts native clients until
  /// shutdown; returns the bound port.
  uint16_t listen_tcp(uint16_t port = 0);
  /// Binds loopback TCP for Debug Adapter Protocol clients (VSCode);
  /// returns the bound port.
  uint16_t listen_dap(uint16_t port = 0);
  /// Closes every session (native and DAP) and the listeners; joins all
  /// threads. The manager is reusable afterwards.
  void shutdown();

  /// Attached native-protocol sessions (DAP connections excluded; the
  /// DebugService counts every client).
  [[nodiscard]] size_t session_count() const;

  // -- protocol ----------------------------------------------------------------
  /// What the runtime's backend supports, straight from
  /// vpi::SimulatorInterface.
  [[nodiscard]] rpc::Capabilities capabilities() const;
  /// Registered command names (the `connect` catalogue), sorted.
  [[nodiscard]] std::vector<std::string> command_names() const;
  /// Registers or overrides a command handler (extension point; the
  /// built-in catalogue is registered by the constructor).
  void register_command(const std::string& name, Handler handler,
                        Gate gate = Gate::None);

  // -- runtime hook ------------------------------------------------------------
  /// Called by the runtime's scheduler when a stop fires; forwards to
  /// DebugService::deliver_stop (routing + handshake).
  Command deliver_stop(rpc::StopEvent event);

  struct ServiceStats {
    uint64_t requests = 0;
    uint64_t protocol_errors = 0;
    uint64_t stops_broadcast = 0;
  };
  [[nodiscard]] ServiceStats service_stats() const;

 private:
  struct Entry {
    std::unique_ptr<DebugSession> session;
    std::thread thread;
  };
  struct CommandSpec {
    Handler handler;
    Gate gate = Gate::None;
    /// Per-command request count (`session.command.<name>` in the
    /// registry), resolved at registration.
    obs::Counter* count = nullptr;
  };

  void register_builtins();
  void accept_loop();
  void session_loop(DebugSession* session);
  void dispatch(DebugSession& session, const std::string& text);
  rpc::ResponseV2 execute(DebugSession& session, const rpc::RequestV2& request);
  /// Post-disconnect cleanup: unregisters the client from the service
  /// (releasing owned breakpoints/watches/subscriptions and resigning it
  /// from a pending stop).
  void cleanup_session(DebugSession& session);
  void handle_execution(DebugSession& session, const rpc::RequestV2& request,
                        rpc::ResponseV2& response, Command command);
  /// Registers the session's transport as an EventWriter target: every
  /// session — JSON and binary alike — sends through the async writer, so
  /// pushed events always ride the bounded-queue slow-client policy and
  /// no per-client blocking send remains on the event path. Called from
  /// add_client before the reader thread starts.
  void attach_writer(DebugSession& session);
  /// Flips the session + service to binary event frames (the `connect`
  /// capability opt-in). Runs on the session's own reader thread.
  void enable_binary_events(DebugSession& session);

  runtime::Runtime* runtime_;
  std::unique_ptr<DebugService> service_;
  /// Async event writer shared by every binary-events session. Declared
  /// before entries_ so it outlives the sessions during destruction
  /// (targets are removed in cleanup_session before a session dies).
  std::unique_ptr<rpc::EventWriter> event_writer_;
  /// `session.native.bytes_sent`: bytes written by the native front end
  /// (channel path and writer path both account here).
  obs::Counter* native_bytes_sent_ = nullptr;

  mutable common::SessionsMutex sessions_mutex_{"session::sessions"};
  std::vector<Entry> entries_ HGDB_GUARDED_BY(sessions_mutex_);

  std::map<std::string, CommandSpec> commands_;  // immutable after ctor

  std::atomic<bool> shutting_down_{false};
  std::unique_ptr<rpc::TcpServer> tcp_server_;
  std::thread accept_thread_;
  std::unique_ptr<DapServer> dap_server_;
};

}  // namespace hgdb::session

#endif  // HGDB_SESSION_SESSION_MANAGER_H
