#ifndef HGDB_SESSION_SESSION_MANAGER_H
#define HGDB_SESSION_SESSION_MANAGER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "rpc/protocol.h"
#include "rpc/protocol_v2.h"
#include "session/debug_session.h"

namespace hgdb::rpc {
class TcpServer;
}  // namespace hgdb::rpc

namespace hgdb::runtime {
class Runtime;
}  // namespace hgdb::runtime

namespace hgdb::session {

/// The multi-client service layer between debugger transports and the
/// runtime's breakpoint engine (the "RPC-based debugging protocol" of the
/// paper's Sec. 3.5, grown into protocol v2).
///
/// Responsibilities:
///  - hosts N concurrent DebugSessions over any rpc::Channel, plus a TCP
///    accept loop (listen_tcp) for out-of-process debuggers;
///  - dispatches requests through a *command registry*: adding a request
///    family means registering a handler, not editing the runtime core;
///  - gates commands on the backend's negotiated capabilities (`connect`
///    handshake) and answers failures with typed error codes;
///  - tracks breakpoint/watchpoint ownership per session (refcounted
///    across sessions), so one client detaching never tears down
///    another's breakpoints;
///  - broadcasts stop events to every attached client and funnels the
///    first resume command back to the waiting simulation thread;
///  - keeps v1 clients working: messages without a "version" field are
///    translated onto the v2 command namespace and answered in the v1
///    wire format.
class SessionManager {
 public:
  using Command = rpc::CommandRequest::Command;
  /// A command handler fills in `response` (already carrying the echoed
  /// command/token). Throwing std::invalid_argument maps to
  /// invalid-payload, std::out_of_range to no-such-entity, anything else
  /// to internal-error.
  using Handler = std::function<void(DebugSession&, const rpc::RequestV2&,
                                     rpc::ResponseV2&)>;

  /// Capability a command requires; gated before the handler runs.
  enum class Gate : uint8_t { None, TimeTravel, SetValue };

  explicit SessionManager(runtime::Runtime& runtime);
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  // -- clients -----------------------------------------------------------------
  /// Attaches a client and starts its reader thread; returns the session id.
  uint64_t add_client(std::unique_ptr<rpc::Channel> channel);
  /// Binds loopback TCP (0 = ephemeral) and accepts clients until
  /// shutdown; returns the bound port.
  uint16_t listen_tcp(uint16_t port = 0);
  /// Closes every session and the TCP listener; joins all threads. The
  /// manager is reusable afterwards.
  void shutdown();

  [[nodiscard]] size_t session_count() const;

  // -- protocol ----------------------------------------------------------------
  /// What the runtime's backend supports, straight from
  /// vpi::SimulatorInterface.
  [[nodiscard]] rpc::Capabilities capabilities() const;
  /// Registered command names (the `connect` catalogue), sorted.
  [[nodiscard]] std::vector<std::string> command_names() const;
  /// Registers or overrides a command handler (extension point; the
  /// built-in catalogue is registered by the constructor).
  void register_command(const std::string& name, Handler handler,
                        Gate gate = Gate::None);

  // -- runtime hook ------------------------------------------------------------
  /// Called by the runtime's scheduler when a stop fires: broadcasts the
  /// event to every attached client and blocks until one answers with an
  /// execution command (Continue when no client is attached or the
  /// manager is shutting down).
  Command deliver_stop(rpc::StopEvent event);

  struct ServiceStats {
    uint64_t requests = 0;
    uint64_t protocol_errors = 0;
    uint64_t stops_broadcast = 0;
  };
  [[nodiscard]] ServiceStats service_stats() const;

 private:
  struct Entry {
    std::unique_ptr<DebugSession> session;
    std::thread thread;
  };
  struct CommandSpec {
    Handler handler;
    Gate gate = Gate::None;
  };

  void register_builtins();
  void accept_loop();
  void session_loop(DebugSession* session);
  void dispatch(DebugSession& session, const std::string& text);
  rpc::ResponseV2 execute(DebugSession& session, const rpc::RequestV2& request);
  /// Post-disconnect cleanup: releases owned breakpoints/watches and frees
  /// the simulation if it was waiting on the last client.
  void cleanup_session(DebugSession& session);
  /// Drops ownership references; removes runtime breakpoints whose
  /// refcount reaches zero. Returns how many runtime breakpoints died.
  size_t release_locations(const std::vector<Location>& locations);
  /// Removes a session from the current stop's expected responders; once
  /// every engaged recipient has answered or resigned, the simulation
  /// auto-resumes with Continue (so a departed client can never hang a
  /// stop, and a live one never has its stop stolen).
  void resign_from_stop(uint64_t session_id);
  void handle_execution(DebugSession& session, const rpc::RequestV2& request,
                        rpc::ResponseV2& response, Command command);
  /// Detach bookkeeping shared by `detach`, `disconnect`, and reader-loop
  /// teardown.
  size_t release_session_state(DebugSession& session);

  runtime::Runtime* runtime_;

  mutable std::mutex sessions_mutex_;
  std::vector<Entry> entries_;
  uint64_t next_session_id_ = 1;

  std::map<std::string, CommandSpec> commands_;  // immutable after ctor

  // Cross-session breakpoint refcounts (guarded by refs_mutex_).
  std::mutex refs_mutex_;
  std::map<Location, int> location_refs_;

  // Stop/command handshake between the sim thread and session threads.
  // The first execution command wins; pending_responders_ tracks which
  // engaged sessions still owe an answer for the current stop.
  std::mutex command_mutex_;
  std::condition_variable command_ready_;
  std::optional<Command> pending_command_;
  bool waiting_for_command_ = false;
  std::set<uint64_t> pending_responders_;

  std::atomic<bool> shutting_down_{false};
  std::unique_ptr<rpc::TcpServer> tcp_server_;
  std::thread accept_thread_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> stops_broadcast_{0};
};

}  // namespace hgdb::session

#endif  // HGDB_SESSION_SESSION_MANAGER_H
