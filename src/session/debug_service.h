#ifndef HGDB_SESSION_DEBUG_SERVICE_H
#define HGDB_SESSION_DEBUG_SERVICE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/checked_mutex.h"
#include "obs/metrics.h"
#include "rpc/event_frame.h"
#include "rpc/protocol.h"
#include "rpc/protocol_v2.h"

namespace hgdb::runtime {
class Runtime;
}  // namespace hgdb::runtime

namespace hgdb::session {

/// A breakpoint source location (filename + line).
using Location = std::pair<std::string, uint32_t>;
using ClientId = uint64_t;

/// Typed failure from a DebugService call. Protocol front ends map the
/// code onto their wire format (the native v2 error field, a DAP error
/// response); the reason is a human-readable sentence.
class ServiceError : public std::runtime_error {
 public:
  ServiceError(rpc::ErrorCode code, const std::string& reason)
      : std::runtime_error(reason), code_(code) {}
  [[nodiscard]] rpc::ErrorCode code() const { return code_; }

 private:
  rpc::ErrorCode code_;
};

// -- typed requests / results -------------------------------------------------

struct BreakpointSpec {
  std::string filename;
  uint32_t line = 0;
  std::string condition;  ///< optional user expression
};

struct BreakpointView {
  int64_t id = 0;
  std::string filename;
  uint32_t line = 0;
  std::string instance;
  bool owned = false;  ///< the asking client holds an arm at this location
};

struct LocationView {
  int64_t id = 0;
  std::string filename;
  uint32_t line = 0;
  uint32_t column = 0;
  std::string instance;
};

struct EvaluateSpec {
  std::string expression;
  std::optional<int64_t> breakpoint_id;  ///< frame scope when set
  std::string instance_name;             ///< else instance scope ("" = top)
};

struct EvaluateResult {
  std::string value;  ///< decimal rendering
  uint32_t width = 0;
};

struct WatchSpec {
  std::string expression;
  std::string instance_name;
};

struct VariableView {
  std::string name;
  bool is_rtl = false;
  std::string value;
  std::optional<uint32_t> width;  ///< set for RTL-backed values
};

struct InstanceView {
  int64_t id = 0;
  std::string name;
};

struct ClientView {
  ClientId id = 0;
  std::string name;
  int protocol = 2;  ///< negotiated wire protocol (1/2 native, 2 for DAP)
};

struct SubscribeSpec {
  std::vector<std::string> signals;
  std::string instance_name;
  /// Deliver every Nth change event of this subscription (client-chosen
  /// decimation; 1 = every event). 0 is clamped to 1.
  uint32_t decimation = 1;
  /// Server-side rate limit in simulation-time units: after a delivered
  /// event at time T, events with time < T + min_interval are dropped
  /// (counted per subscription as events_dropped). 0 = no throttle.
  /// Applied after decimation; the initial snapshot always passes.
  uint64_t min_interval = 0;
};

// -- events pushed through the sink -------------------------------------------

/// One event pushed from the runtime to a client. Kind selects which
/// member is meaningful.
struct ServiceEvent {
  enum class Kind : uint8_t { Stop, ValueChange, Lifecycle, BreakpointChanged };

  struct ValueChange {
    uint64_t subscription = 0;
    uint64_t time = 0;
    struct Change {
      std::string signal;
      std::string value;  ///< decimal rendering
      uint32_t width = 0;
    };
    std::vector<Change> changes;
  };

  Kind kind = Kind::Stop;
  rpc::StopEvent stop;        ///< Kind::Stop
  ValueChange value_change;   ///< Kind::ValueChange
  std::string lifecycle;      ///< Kind::Lifecycle ("shutdown")
  /// Kind::BreakpointChanged: another client edited a shared location.
  rpc::BreakpointChangeEvent breakpoint_change;
  /// Serialize-once body for binary-events sinks: filled by the service
  /// before fan-out when any recipient is binary, so N binary subscribers
  /// share one encoding (a refcount bump each) instead of re-rendering.
  /// Unset when no binary recipient exists; a binary sink receiving an
  /// unset body (a direct deliver in tests) encodes on demand.
  rpc::SharedFrame binary_body;
};

/// The push half of the service API: the runtime delivers stop,
/// value-change, and lifecycle events through this interface. A front end
/// implements it per client and renders the typed event onto its wire.
/// deliver() may be called from the simulation thread and from service
/// threads concurrently; implementations must be thread-safe. Returning
/// false marks the client unreachable (the service stops expecting answers
/// from it).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual bool deliver(const ServiceEvent& event) = 0;
};

/// The wire-format-free debugging core: every protocol front end (the
/// native v2 JSON protocol, the DAP adapter, in-process test drivers)
/// calls these typed methods and receives pushed ServiceEvents through its
/// EventSink. The service owns all cross-client semantics:
///
///  - client registry with the RuntimeOptions::max_sessions accept limit
///    (typed `too-many-sessions` rejection);
///  - per-client breakpoint ownership with per-(location, condition)
///    refcounts — two clients can hold different conditions on one shared
///    location, and a stop is routed only to the clients whose own
///    condition matched;
///  - watchpoint ownership and value-change subscriptions with
///    per-subscription decimation (riding the runtime's change serials);
///  - the stop handshake between the simulation thread and however many
///    engaged clients owe an answer (first resume command wins; a departed
///    client can never hang a stop).
///
/// Every method may throw ServiceError with a typed rpc::ErrorCode.
class DebugService {
 public:
  using Command = rpc::CommandRequest::Command;

  explicit DebugService(runtime::Runtime& runtime);
  ~DebugService();

  DebugService(const DebugService&) = delete;
  DebugService& operator=(const DebugService&) = delete;

  // -- clients -----------------------------------------------------------------
  /// Registers a client and its event sink; returns the client id. Throws
  /// ServiceError(TooManySessions) beyond RuntimeOptions::max_sessions.
  /// The sink must outlive the registration.
  ClientId register_client(const std::string& name, EventSink* sink,
                           int protocol = 2);
  /// Releases everything the client owns (breakpoint arms, watches,
  /// subscriptions), resigns it from a pending stop, and forgets it.
  /// Returns how many runtime breakpoints died. Safe to call twice.
  size_t unregister_client(ClientId id);
  void set_client_name(ClientId id, const std::string& name);
  void set_client_protocol(ClientId id, int protocol);
  /// Attaches the sink after registration (front ends whose sink object
  /// needs the client id first). Events fired in between are dropped.
  void set_client_sink(ClientId id, EventSink* sink);
  /// Marks the client as a binary-events subscriber: fan-out serializes
  /// hot events once into ServiceEvent::binary_body for it (and every
  /// other binary client) instead of per-client JSON rendering.
  void set_client_binary(ClientId id, bool binary);
  [[nodiscard]] size_t client_count() const;
  [[nodiscard]] std::vector<ClientView> clients() const;

  /// What the runtime's backend supports (the `connect` handshake body).
  [[nodiscard]] rpc::Capabilities capabilities() const;

  // -- breakpoints -------------------------------------------------------------
  /// Arms filename:line (optionally with a condition) for this client and
  /// engages it. Returns the inserted breakpoint ids. Typed errors:
  /// NoSuchLocation (no symbol breakpoint there), NoSuchEntity (unknown
  /// condition symbol), InvalidPayload (malformed condition).
  std::vector<int64_t> arm_breakpoint(ClientId id, const BreakpointSpec& spec);
  /// Releases the client's arms at filename[:line] (line 0 = whole file).
  /// Returns how many runtime breakpoints died (shared arms survive).
  size_t disarm_breakpoint(ClientId id, const std::string& filename,
                           uint32_t line);
  [[nodiscard]] std::vector<BreakpointView> list_breakpoints(
      ClientId id) const;
  [[nodiscard]] std::vector<LocationView> breakpoint_locations(
      const std::string& filename, uint32_t line) const;

  // -- execution ---------------------------------------------------------------
  /// Answers the pending stop (or requests a pause while running). `time`
  /// is required for Jump. Typed errors: InvalidState when the simulation
  /// is not stopped / another client already answered, InvalidPayload for
  /// a missing or out-of-range jump target.
  void execute(ClientId id, Command command,
               std::optional<uint64_t> time = std::nullopt);
  /// Releases the client's owned state but keeps it attached (protocol
  /// `detach`). Returns how many runtime breakpoints died.
  size_t detach(ClientId id);

  // -- evaluation --------------------------------------------------------------
  EvaluateResult evaluate(const EvaluateSpec& spec);
  /// Arms a watchpoint owned by this client; returns the watch id.
  int64_t arm_watch(ClientId id, const WatchSpec& spec);
  /// Typed NoSuchEntity when the client does not own the watch.
  void disarm_watch(ClientId id, int64_t watch_id);

  // -- hierarchy / symbol browsing ---------------------------------------------
  [[nodiscard]] std::vector<InstanceView> instances() const;
  /// Generator variables of an instance with their current values.
  [[nodiscard]] std::vector<VariableView> variables(
      const std::string& instance_name) const;
  /// Frame locals + generator variables for a breakpoint id.
  [[nodiscard]] rpc::Frame frame_variables(int64_t breakpoint_id) const;
  [[nodiscard]] std::vector<std::string> files() const;

  // -- signal forcing ----------------------------------------------------------
  /// Forces a signal (`set-value`). Typed NoSuchEntity when unknown.
  void set_value(const std::string& name, const std::string& value);

  // -- subscriptions -----------------------------------------------------------
  /// Subscribes the client to value-change events for the given signals at
  /// the given decimation; events arrive through the client's sink as
  /// Kind::ValueChange. Returns the subscription id.
  uint64_t subscribe(ClientId id, const SubscribeSpec& spec);
  /// Typed NoSuchEntity when the client does not own the subscription.
  void unsubscribe(ClientId id, uint64_t subscription_id);
  [[nodiscard]] size_t subscription_count() const;

  // -- service counters --------------------------------------------------------
  struct ServiceStats {
    uint64_t requests = 0;
    uint64_t protocol_errors = 0;
    uint64_t stops_broadcast = 0;
    uint64_t events_delivered = 0;  ///< value-change events after filtering
    uint64_t events_decimated = 0;  ///< suppressed by decimation
    uint64_t events_dropped = 0;    ///< suppressed by min-interval throttling
  };
  void count_request() { requests_->add(1); }
  void count_protocol_error() { protocol_errors_->add(1); }
  [[nodiscard]] ServiceStats service_stats() const;
  /// The runtime's registry; all `session.*` metrics live here next to
  /// the `runtime.*` ones, so one exposition page covers the stack.
  [[nodiscard]] obs::MetricsRegistry& metrics() const;

  // -- cross-client notifications ----------------------------------------------
  /// Pushes a `breakpoint-changed` event to every *other* attached v2+
  /// session when `actor` arms or disarms a shared location (action
  /// "armed" / "disarmed"). Fired by arm_breakpoint/disarm_breakpoint for
  /// explicit protocol commands only — implicit releases at detach or
  /// disconnect do not notify. The caller must hold no service locks.
  void notify_breakpoint_change(ClientId actor, const std::string& action,
                                const Location& location,
                                const std::string& condition);

  // -- runtime hooks -----------------------------------------------------------
  /// Called by the runtime's scheduler when a stop fires: routes the event
  /// to the relevant clients' sinks (condition-routed stops reach only the
  /// sessions whose own condition matched) and blocks until one engaged
  /// recipient answers with an execution command. Continue when no client
  /// is expected to answer or the service is shutting down.
  Command deliver_stop(rpc::StopEvent event);

  /// Two-phase shutdown bracket used by the front-end host: begin_ wakes a
  /// simulation thread parked in deliver_stop (it resumes with Continue);
  /// finish_ waits for it to actually leave the handshake, then clears the
  /// shared stop state and re-arms the service for reuse.
  void begin_shutdown();
  void finish_shutdown();
  [[nodiscard]] bool shutting_down() const {
    return shutting_down_.load(std::memory_order_acquire);
  }

 private:
  struct ClientState {
    ClientId id = 0;
    std::string name;
    int protocol = 2;
    EventSink* sink = nullptr;
    bool engaged = false;  ///< expected to answer stops
    bool binary = false;   ///< receives events as binary frames
    /// Owned breakpoint arms: one entry per (location, condition) this
    /// client holds ("" = unconditional).
    std::set<std::pair<Location, std::string>> arms;
    std::set<int64_t> watches;
    std::set<uint64_t> subscriptions;
  };

  struct SubscriptionState {
    uint64_t id = 0;        ///< runtime subscription id (shared id space)
    ClientId client = 0;
    uint32_t decimation = 1;
    uint64_t events_seen = 0;
    /// Minimum sim-time gap between delivered events (0 = off).
    uint64_t min_interval = 0;
    uint64_t last_delivered_time = 0;
    bool delivered_any = false;
    /// Registry counter `session.subscription.<id>.events_dropped`
    /// (removed from the registry at unsubscribe/release). Null when
    /// min_interval is 0.
    obs::Counter* dropped = nullptr;
  };
  /// Drops the per-subscription registry counter.
  void remove_subscription_metric_locked(const SubscriptionState& state)
      HGDB_REQUIRES(clients_mutex_);

  /// True when `client` should receive this stop: non-owners and
  /// non-condition-routed stops broadcast; owners of a stopped location
  /// are filtered by their own condition's membership in the frame's
  /// matched set.
  static bool stop_relevant(const ClientState& client,
                            const rpc::StopEvent& event);
  void engage_locked(ClientState& client) HGDB_REQUIRES(clients_mutex_) {
    client.engaged = true;
  }
  /// Throws NoSuchEntity for unknown ids.
  ClientState& client_at(ClientId id) HGDB_REQUIRES(clients_mutex_);
  /// Removes a client from the current stop's expected responders; once
  /// every engaged recipient has answered or resigned, the simulation
  /// auto-resumes with Continue.
  void resign_from_stop(ClientId id);
  size_t release_client_state_locked(ClientState& client)
      HGDB_REQUIRES(clients_mutex_);
  /// Runtime change-listener callback (rendered): applies the
  /// per-subscription decimation and forwards to the owning client's sink.
  void handle_value_changes(
      int64_t subscription_id, uint64_t time,
      std::vector<ServiceEvent::ValueChange::Change> changes);

  runtime::Runtime* runtime_;

  // Brackets every sink->deliver() call. Sink callbacks run under this
  // mutex with clients_mutex_ *released*, so a slow or re-entrant sink
  // cannot block attach/arm/subscribe traffic — and may call back into
  // the service. Sink lifetime is still guaranteed: unregister_client
  // acquires delivery_mutex_ before removing the client, so once it
  // returns no deliver() can be in flight on the departing sink.
  common::DeliveryMutex delivery_mutex_{"session::delivery"};

  mutable common::ClientsMutex clients_mutex_{"session::clients"};
  std::map<ClientId, ClientState> clients_ HGDB_GUARDED_BY(clients_mutex_);
  ClientId next_client_id_ HGDB_GUARDED_BY(clients_mutex_) = 1;
  std::map<uint64_t, SubscriptionState> subscriptions_
      HGDB_GUARDED_BY(clients_mutex_);

  // Stop/command handshake between the sim thread and front-end threads.
  // The first execution command wins; pending_responders_ tracks which
  // engaged clients still owe an answer for the current stop.
  common::CommandMutex command_mutex_{"session::command"};
  std::condition_variable_any command_ready_;
  std::optional<Command> pending_command_ HGDB_GUARDED_BY(command_mutex_);
  bool waiting_for_command_ HGDB_GUARDED_BY(command_mutex_) = false;
  std::set<ClientId> pending_responders_ HGDB_GUARDED_BY(command_mutex_);

  std::atomic<bool> shutting_down_{false};

  // Service counters, resolved once from the runtime's MetricsRegistry
  // (relaxed-atomic adds; same hot-path discipline as the runtime's).
  obs::Counter* requests_ = nullptr;
  obs::Counter* protocol_errors_ = nullptr;
  obs::Counter* stops_broadcast_ = nullptr;
  obs::Counter* events_delivered_ = nullptr;
  obs::Counter* events_decimated_ = nullptr;
  obs::Counter* events_dropped_ = nullptr;
  /// `session.breakpoint_changes`: breakpoint-changed events delivered to
  /// non-actor sessions.
  obs::Counter* breakpoint_changes_ = nullptr;
  /// Stop-to-command-latency histogram (`session.stop_handshake_ns`).
  obs::Histogram* stop_handshake_ns_ = nullptr;
};

}  // namespace hgdb::session

#endif  // HGDB_SESSION_DEBUG_SERVICE_H
