#ifndef HGDB_SESSION_DAP_PROTOCOL_H
#define HGDB_SESSION_DAP_PROTOCOL_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/json.h"

namespace hgdb::session::dap {

/// Incremental decoder for the Debug Adapter Protocol's wire framing:
///
///   Content-Length: <bytes>\r\n
///   [other-header: value\r\n ...]
///   \r\n
///   <bytes of JSON payload>
///
/// TCP preserves no message boundaries, so feed() accepts whatever chunk
/// the socket delivered — half a header, three coalesced messages — and
/// next() yields complete payloads as they become available. Malformed
/// input (no Content-Length, a non-numeric length, an oversized header or
/// body) throws std::runtime_error; the connection is expected to drop.
class FrameCodec {
 public:
  /// Headers longer than this without a terminating blank line are a
  /// protocol error (DAP headers are tens of bytes; 8 KiB is generous).
  static constexpr size_t kMaxHeaderBytes = 8 * 1024;
  /// Bodies beyond this are rejected (matches the TCP channel's cap).
  static constexpr size_t kMaxBodyBytes = 64u << 20;

  /// Appends raw transport bytes to the reassembly buffer.
  void feed(std::string_view bytes) { buffer_.append(bytes); }

  /// Extracts the next complete message payload, or nullopt when the
  /// buffer holds only a partial message. Call repeatedly until nullopt —
  /// one feed() can complete several coalesced messages.
  std::optional<std::string> next();

  /// Wraps a payload in the Content-Length framing.
  static std::string encode(std::string_view payload);

  [[nodiscard]] size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// One decoded DAP request ({"type": "request", "seq": N, "command": ...,
/// "arguments": {...}}). Throws std::runtime_error on anything else.
struct Request {
  int64_t seq = 0;
  std::string command;
  common::Json arguments = common::Json::object();
};
Request parse_request(const common::Json& message);

/// Builders for the two runtime->client message kinds. `seq` is the
/// server-side sequence counter, owned by the connection.
common::Json make_response(int64_t seq, const Request& request, bool success,
                           common::Json body = common::Json::object(),
                           const std::string& message = "");
common::Json make_event(int64_t seq, const std::string& event,
                        common::Json body = common::Json::object());

}  // namespace hgdb::session::dap

#endif  // HGDB_SESSION_DAP_PROTOCOL_H
