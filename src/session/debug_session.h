#ifndef HGDB_SESSION_DEBUG_SESSION_H
#define HGDB_SESSION_DEBUG_SESSION_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "rpc/channel.h"
#include "session/debug_service.h"

namespace hgdb::session {

/// One attached native-protocol client: its transport endpoint and
/// negotiated protocol version. Created and driven by SessionManager,
/// which runs one reader thread per session; send() is safe from any
/// thread (responses from the session thread, pushed events from the
/// simulation thread).
///
/// All debugging state — breakpoint/watch ownership, engagement,
/// subscriptions — lives in the DebugService client registry; the session
/// is purely the transport + wire-format half, and receives pushed events
/// as the client's EventSink (rendering them in the negotiated v1/v2 wire
/// format).
class DebugSession final : public EventSink {
 public:
  DebugSession(ClientId id, std::unique_ptr<rpc::Channel> channel);

  DebugSession(const DebugSession&) = delete;
  DebugSession& operator=(const DebugSession&) = delete;

  [[nodiscard]] ClientId id() const { return id_; }

  /// 1 until the first v2 envelope arrives on this session, then latched
  /// to 2 — decides the wire format of responses and pushed events.
  [[nodiscard]] int protocol_version() const {
    return version_.load(std::memory_order_acquire);
  }
  void promote_to_v2() { version_.store(2, std::memory_order_release); }

  /// Set when the service rejected the client (session limit): the first
  /// request is answered with the stored error, then the session closes.
  [[nodiscard]] bool rejected() const { return rejected_; }
  void mark_rejected() { rejected_ = true; }

  // -- transport ---------------------------------------------------------------
  /// Thread-safe send; returns false (and marks the session dead) once the
  /// peer is gone.
  bool send(const std::string& text);
  /// Blocking receive on the session's reader thread.
  std::optional<std::string> receive() { return channel_->receive(); }
  void close() { channel_->close(); }

  [[nodiscard]] bool alive() const {
    return alive_.load(std::memory_order_acquire);
  }
  void mark_dead() { alive_.store(false, std::memory_order_release); }

  /// Set by the `disconnect` handler: the reader loop exits after the
  /// response is flushed.
  std::atomic<bool> close_requested{false};

  /// The reader thread sets this as its final statement: past this point
  /// it holds no locks, so joining the thread cannot deadlock.
  void set_reapable() { reapable_.store(true, std::memory_order_release); }
  [[nodiscard]] bool reapable() const {
    return reapable_.load(std::memory_order_acquire);
  }

  // -- EventSink ---------------------------------------------------------------
  /// Renders a pushed service event in this session's wire format and
  /// sends it. Value-change events exist in v2 only (a v1 client cannot
  /// subscribe); lifecycle events are not on the native wire.
  bool deliver(const ServiceEvent& event) override;

 private:
  const ClientId id_;
  std::unique_ptr<rpc::Channel> channel_;
  std::atomic<int> version_{1};
  std::atomic<bool> alive_{true};
  std::atomic<bool> reapable_{false};
  bool rejected_ = false;
};

}  // namespace hgdb::session

#endif  // HGDB_SESSION_DEBUG_SESSION_H
