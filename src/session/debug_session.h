#ifndef HGDB_SESSION_DEBUG_SESSION_H
#define HGDB_SESSION_DEBUG_SESSION_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "obs/metrics.h"
#include "rpc/channel.h"
#include "rpc/event_writer.h"
#include "session/debug_service.h"

namespace hgdb::session {

/// One attached native-protocol client: its transport endpoint and
/// negotiated protocol version. Created and driven by SessionManager,
/// which runs one reader thread per session; send() is safe from any
/// thread (responses from the session thread, pushed events from the
/// simulation thread).
///
/// All debugging state — breakpoint/watch ownership, engagement,
/// subscriptions — lives in the DebugService client registry; the session
/// is purely the transport + wire-format half, and receives pushed events
/// as the client's EventSink (rendering them in the negotiated v1/v2 wire
/// format, or enqueuing binary frames once the client opted in).
class DebugSession final : public EventSink {
 public:
  DebugSession(ClientId id, std::unique_ptr<rpc::Channel> channel);

  DebugSession(const DebugSession&) = delete;
  DebugSession& operator=(const DebugSession&) = delete;

  [[nodiscard]] ClientId id() const { return id_; }

  /// 1 until the first v2 envelope arrives on this session, then latched
  /// to 2 — decides the wire format of responses and pushed events.
  [[nodiscard]] int protocol_version() const {
    return version_.load(std::memory_order_acquire);
  }
  void promote_to_v2() { version_.store(2, std::memory_order_release); }

  /// Set when the service rejected the client (session limit): the first
  /// request is answered with the stored error, then the session closes.
  [[nodiscard]] bool rejected() const { return rejected_; }
  void mark_rejected() { rejected_ = true; }

  // -- transport ---------------------------------------------------------------
  /// Thread-safe send for responses; returns false (and marks the session
  /// dead) once the peer is gone. With a writer attached this enqueues
  /// with force=true (responses are request-paced, they must not vanish
  /// mid-handshake) — a second direct writer on the same fd would
  /// interleave with event frames and corrupt the framing.
  bool send(const std::string& text);
  /// Thread-safe send for pushed events: same routing as send() but
  /// subject to the bounded-queue slow-client policy (force=false), so a
  /// stalled JSON subscriber sheds events instead of blocking the
  /// delivery thread.
  bool send_event(const std::string& text);
  /// Blocking receive on the session's reader thread.
  std::optional<std::string> receive() { return channel_->receive(); }
  void close() { channel_->close(); }

  [[nodiscard]] bool alive() const {
    return alive_.load(std::memory_order_acquire);
  }
  void mark_dead() { alive_.store(false, std::memory_order_release); }

  /// Set by the `disconnect` handler: the reader loop exits after the
  /// response is flushed.
  std::atomic<bool> close_requested{false};

  /// The reader thread sets this as its final statement: past this point
  /// it holds no locks, so joining the thread cannot deadlock.
  void set_reapable() { reapable_.store(true, std::memory_order_release); }
  [[nodiscard]] bool reapable() const {
    return reapable_.load(std::memory_order_acquire);
  }

  // -- async writer / binary events --------------------------------------------
  /// Routes all outbound traffic through `writer` target `target`: events
  /// enqueue under the bounded slow-client policy, responses with force.
  /// Called once per session by the manager, before the reader thread
  /// starts and before the service sink is attached, so every send and
  /// every delivered event observes it.
  void attach_writer(rpc::EventWriter* writer, uint64_t target) {
    writer_ = writer;
    writer_target_.store(target, std::memory_order_release);
  }
  [[nodiscard]] bool has_writer() const {
    return writer_target_.load(std::memory_order_acquire) != 0;
  }
  /// Switches pushed events to the compact binary frame encoding (the
  /// `connect {"binary_events": true}` capability opt-in). Transport
  /// routing is unchanged — the writer carries JSON sessions too.
  void enable_binary_events() {
    binary_.store(true, std::memory_order_release);
  }
  [[nodiscard]] bool binary_events() const {
    return binary_.load(std::memory_order_acquire);
  }
  [[nodiscard]] uint64_t writer_target() const {
    return writer_target_.load(std::memory_order_acquire);
  }
  /// The channel's socket descriptor (-1 for in-process channels).
  [[nodiscard]] int native_handle() const { return channel_->native_handle(); }
  /// Direct channel send, bypassing the writer: the EventWriter's
  /// fallback flush path for in-process channels, and the send() body for
  /// sessions with no writer attached (direct-construction tests).
  /// Returns false once the peer is gone.
  bool send_on_channel(const std::string& text);
  /// Counter for bytes written on the channel path (socket-path bytes are
  /// accounted by the writer's Target). Optional.
  void set_bytes_counter(obs::Counter* counter) { bytes_sent_ = counter; }

  // -- EventSink ---------------------------------------------------------------
  /// Renders a pushed service event in this session's wire format and
  /// sends it. Value-change events exist in v2 only (a v1 client cannot
  /// subscribe); lifecycle events reach binary sessions as frames but are
  /// not on the native JSON wire.
  bool deliver(const ServiceEvent& event) override;

 private:
  /// Queues a frame on the writer; Dead marks the session dead. Dropped
  /// returns true — the client stays attached, the event was sacrificed
  /// by the slow-client policy (and counted).
  bool enqueue(rpc::OutboundFrame frame, bool force);

  const ClientId id_;
  std::unique_ptr<rpc::Channel> channel_;
  std::atomic<int> version_{1};
  std::atomic<bool> alive_{true};
  std::atomic<bool> reapable_{false};
  std::atomic<bool> binary_{false};
  bool rejected_ = false;
  /// Binary-events plumbing: writer_ is written before the release-store
  /// of writer_target_, and only ever read after an acquire-load sees the
  /// target — the usual publish pattern, no lock needed.
  rpc::EventWriter* writer_ = nullptr;
  std::atomic<uint64_t> writer_target_{0};
  obs::Counter* bytes_sent_ = nullptr;
};

}  // namespace hgdb::session

#endif  // HGDB_SESSION_DEBUG_SESSION_H
