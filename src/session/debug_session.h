#ifndef HGDB_SESSION_DEBUG_SESSION_H
#define HGDB_SESSION_DEBUG_SESSION_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "rpc/channel.h"

namespace hgdb::session {

/// A breakpoint source location owned by a session (filename + line).
using Location = std::pair<std::string, uint32_t>;

/// One attached debugger client: its transport endpoint, negotiated
/// protocol version, and the breakpoint/watchpoint state it owns. Created
/// and driven by SessionManager, which runs one reader thread per session;
/// send() is safe from any thread (responses from the session thread, stop
/// broadcasts from the simulation thread).
class DebugSession {
 public:
  DebugSession(uint64_t id, std::unique_ptr<rpc::Channel> channel);

  DebugSession(const DebugSession&) = delete;
  DebugSession& operator=(const DebugSession&) = delete;

  [[nodiscard]] uint64_t id() const { return id_; }

  /// 1 until the first v2 envelope arrives on this session, then latched
  /// to 2 — decides the wire format of responses and stop events.
  [[nodiscard]] int protocol_version() const {
    return version_.load(std::memory_order_acquire);
  }
  void promote_to_v2() { version_.store(2, std::memory_order_release); }

  [[nodiscard]] std::string client_name() const;
  void set_client_name(std::string name);

  // -- transport ---------------------------------------------------------------
  /// Thread-safe send; returns false (and marks the session dead) once the
  /// peer is gone.
  bool send(const std::string& text);
  /// Blocking receive on the session's reader thread.
  std::optional<std::string> receive() { return channel_->receive(); }
  void close() { channel_->close(); }

  [[nodiscard]] bool alive() const {
    return alive_.load(std::memory_order_acquire);
  }
  void mark_dead() { alive_.store(false, std::memory_order_release); }

  /// Engagement: whether this client is actively debugging (it armed a
  /// breakpoint/watchpoint or issued an execution command) as opposed to
  /// passively observing. Stop events broadcast to every session, but
  /// only engaged sessions are *expected* to answer — the scheduler
  /// auto-resumes once every engaged recipient has answered or departed,
  /// so an idle observer can never hang the simulation.
  [[nodiscard]] bool engaged() const {
    return engaged_.load(std::memory_order_acquire);
  }
  void engage() { engaged_.store(true, std::memory_order_release); }
  void disengage() { engaged_.store(false, std::memory_order_release); }

  /// Set by the `disconnect` handler: the reader loop exits after the
  /// response is flushed.
  std::atomic<bool> close_requested{false};

  /// The reader thread sets this as its final statement: past this point
  /// it holds no locks, so joining the thread cannot deadlock.
  void set_reapable() { reapable_.store(true, std::memory_order_release); }
  [[nodiscard]] bool reapable() const {
    return reapable_.load(std::memory_order_acquire);
  }

  // -- breakpoint ownership ------------------------------------------------------
  void own_location(const Location& location);
  [[nodiscard]] bool owns_location(const Location& location) const;
  /// Removes and returns the owned locations matching filename (+line;
  /// line 0 = every owned location in the file).
  std::vector<Location> take_locations(const std::string& filename,
                                       uint32_t line);
  /// Removes and returns every owned location.
  std::vector<Location> take_all_locations();
  [[nodiscard]] size_t owned_location_count() const;

  // -- watchpoint ownership ------------------------------------------------------
  void own_watch(int64_t id);
  [[nodiscard]] bool owns_watch(int64_t id) const;
  bool disown_watch(int64_t id);
  std::vector<int64_t> take_watches();

 private:
  const uint64_t id_;
  std::unique_ptr<rpc::Channel> channel_;
  std::atomic<int> version_{1};
  std::atomic<bool> alive_{true};
  std::atomic<bool> engaged_{false};
  std::atomic<bool> reapable_{false};

  mutable std::mutex mutex_;
  std::string client_name_;
  std::set<Location> locations_;
  std::set<int64_t> watches_;
};

}  // namespace hgdb::session

#endif  // HGDB_SESSION_DEBUG_SESSION_H
