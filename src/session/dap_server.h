#ifndef HGDB_SESSION_DAP_SERVER_H
#define HGDB_SESSION_DAP_SERVER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/checked_mutex.h"
#include "rpc/event_writer.h"
#include "session/debug_service.h"

namespace hgdb::rpc {
class TcpServer;
}  // namespace hgdb::rpc

namespace hgdb::session {

/// The Debug Adapter Protocol front end: accepts VSCode (or any DAP
/// client) over loopback TCP with `Content-Length` framing and adapts the
/// request set onto the DebugService core:
///
///   initialize            -> capability advertisement + `initialized`
///   launch / attach       -> no-op success (the simulation already runs)
///   setBreakpoints        -> disarm-then-arm per source, conditions kept
///   configurationDone     -> no-op success
///   threads               -> design instances (the paper's "hardware
///                            threads": same line, different instance)
///   stackTrace / scopes / variables
///                         -> frames of the last stop, locals + generator
///                            variables from the symbol table
///   continue / next / stepIn / stepOut / stepBack / reverseContinue /
///   pause                 -> execution commands through the stop handshake
///   evaluate              -> expression evaluation in frame scope
///   disconnect            -> releases the client's state
///
/// Stop events push as DAP `stopped` events through the client's
/// EventSink; subscriptions surface as custom `hgdbValues` events. Every
/// connection is one DebugService client, so DAP and native-protocol
/// debuggers share breakpoint refcounts, stop routing, and the session
/// limit.
class DapServer {
 public:
  /// `writer` carries every connection's outbound bytes: responses
  /// enqueue with force (request-paced), events under the bounded
  /// slow-client policy — the DAP twin of the native front end's
  /// single-writer invariant, so a stalled IDE can never block the
  /// delivery thread on a socket write. The writer must outlive the
  /// server (SessionManager declares it first).
  DapServer(DebugService& service, rpc::EventWriter& writer);
  ~DapServer();

  DapServer(const DapServer&) = delete;
  DapServer& operator=(const DapServer&) = delete;

  /// Binds loopback TCP (0 = ephemeral) and accepts clients until
  /// shutdown; returns the bound port.
  uint16_t listen(uint16_t port = 0);
  /// Closes the listener and every connection; joins all threads.
  void shutdown();

  [[nodiscard]] size_t connection_count() const;

  /// One DAP connection (implementation detail, defined in the .cc).
  struct Connection;

 private:
  void accept_loop();
  void connection_loop(Connection* connection);

  DebugService* service_;
  rpc::EventWriter* writer_;
  std::unique_ptr<rpc::TcpServer> server_;
  std::thread accept_thread_;
  mutable common::ConnectionsMutex connections_mutex_{"dap::connections"};
  std::vector<std::unique_ptr<Connection>> connections_
      HGDB_GUARDED_BY(connections_mutex_);
  std::atomic<bool> shutting_down_{false};
};

}  // namespace hgdb::session

#endif  // HGDB_SESSION_DAP_SERVER_H
