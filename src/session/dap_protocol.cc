#include "session/dap_protocol.h"

#include <cctype>
#include <stdexcept>

namespace hgdb::session::dap {

using common::Json;

std::optional<std::string> FrameCodec::next() {
  const size_t header_end = buffer_.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    if (buffer_.size() > kMaxHeaderBytes) {
      throw std::runtime_error("dap: oversized header (" +
                               std::to_string(buffer_.size()) +
                               " bytes without terminator)");
    }
    return std::nullopt;  // header still incomplete
  }
  if (header_end > kMaxHeaderBytes) {
    throw std::runtime_error("dap: oversized header");
  }

  // Parse the header block for Content-Length (other headers are legal and
  // ignored, per the DAP base-protocol spec).
  std::optional<size_t> content_length;
  size_t line_start = 0;
  while (line_start < header_end) {
    size_t line_end = buffer_.find("\r\n", line_start);
    if (line_end == std::string::npos || line_end > header_end) {
      line_end = header_end;
    }
    const std::string_view line =
        std::string_view(buffer_).substr(line_start, line_end - line_start);
    const size_t colon = line.find(':');
    if (colon != std::string_view::npos) {
      std::string key(line.substr(0, colon));
      for (auto& c : key) c = static_cast<char>(std::tolower(
          static_cast<unsigned char>(c)));
      if (key == "content-length") {
        std::string_view value = line.substr(colon + 1);
        while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
        while (!value.empty() && value.back() == ' ') value.remove_suffix(1);
        if (value.empty()) {
          throw std::runtime_error("dap: empty Content-Length");
        }
        size_t length = 0;
        for (const char c : value) {
          if (!std::isdigit(static_cast<unsigned char>(c))) {
            throw std::runtime_error("dap: non-numeric Content-Length '" +
                                     std::string(value) + "'");
          }
          length = length * 10 + static_cast<size_t>(c - '0');
          if (length > kMaxBodyBytes) {
            throw std::runtime_error("dap: Content-Length exceeds limit");
          }
        }
        content_length = length;
      }
    }
    line_start = line_end + 2;
  }
  if (!content_length) {
    throw std::runtime_error("dap: header missing Content-Length");
  }

  const size_t body_start = header_end + 4;
  if (buffer_.size() < body_start + *content_length) {
    return std::nullopt;  // body still incomplete
  }
  std::string payload = buffer_.substr(body_start, *content_length);
  buffer_.erase(0, body_start + *content_length);
  return payload;
}

std::string FrameCodec::encode(std::string_view payload) {
  std::string framed = "Content-Length: " + std::to_string(payload.size()) +
                       "\r\n\r\n";
  framed.append(payload);
  return framed;
}

Request parse_request(const Json& message) {
  if (!message.is_object()) {
    throw std::runtime_error("dap: message is not a JSON object");
  }
  if (message.get_string("type") != "request") {
    throw std::runtime_error("dap: expected a request message");
  }
  Request request;
  request.seq = message.get_int("seq");
  request.command = message.get_string("command");
  if (request.command.empty()) {
    throw std::runtime_error("dap: request missing 'command'");
  }
  if (auto arguments = message.get("arguments")) {
    if (arguments->get().is_object()) request.arguments = arguments->get();
  }
  return request;
}

Json make_response(int64_t seq, const Request& request, bool success,
                   Json body, const std::string& message) {
  Json response = Json::object();
  response["seq"] = Json(seq);
  response["type"] = Json("response");
  response["request_seq"] = Json(request.seq);
  response["command"] = Json(request.command);
  response["success"] = Json(success);
  if (!message.empty()) response["message"] = Json(message);
  response["body"] = std::move(body);
  return response;
}

Json make_event(int64_t seq, const std::string& event, Json body) {
  Json json = Json::object();
  json["seq"] = Json(seq);
  json["type"] = Json("event");
  json["event"] = Json(event);
  json["body"] = std::move(body);
  return json;
}

}  // namespace hgdb::session::dap
