#include "waveform/storage_backend.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/checked_mutex.h"
#include "waveform/index_format.h"

namespace hgdb::waveform {

const char* to_string(IoMode mode) {
  switch (mode) {
    case IoMode::kAuto: return "auto";
    case IoMode::kBuffered: return "buffered";
    case IoMode::kMmap: return "mmap";
  }
  return "unknown";
}

namespace {

[[noreturn]] void fail(WvxFault fault, const std::string& path,
                       const std::string& what) {
  throw WvxError(fault, "wvx: " + what + " '" + path + "'" +
                            (errno != 0 ? std::string(": ") + std::strerror(errno)
                                        : std::string()));
}

void check_range(uint64_t offset, size_t length, uint64_t file_size,
                 const std::string& path) {
  if (offset > file_size || length > file_size - offset) {
    throw WvxError(WvxFault::kTruncatedBlock,
                   "wvx: read of " + std::to_string(length) + " bytes at " +
                       std::to_string(offset) + " past end of '" + path +
                       "' (" + std::to_string(file_size) + " bytes)");
  }
}

/// Owns the descriptor; both backends read through it (mmap keeps it only
/// for the mapping's lifetime bookkeeping — the map survives a close, but
/// holding the fd keeps semantics obvious and cheap).
class FdOwner {
 public:
  explicit FdOwner(int fd) : fd_(fd) {}
  ~FdOwner() {
    if (fd_ >= 0) ::close(fd_);
  }
  FdOwner(const FdOwner&) = delete;
  FdOwner& operator=(const FdOwner&) = delete;
  [[nodiscard]] int get() const { return fd_; }
  /// Hands ownership back to the caller (finish() closes explicitly so a
  /// close error can be reported instead of swallowed by the destructor).
  [[nodiscard]] int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_;
};

class BufferedStorage final : public StorageBackend {
 public:
  BufferedStorage(int fd, uint64_t size, std::string path)
      : fd_(fd), size_(size), path_(std::move(path)) {}

  [[nodiscard]] const char* kind() const override { return "buffered"; }
  [[nodiscard]] uint64_t size() const override { return size_; }

  const char* view(uint64_t offset, size_t length,
                   std::string& scratch) override {
    check_range(offset, length, size_, path_);
    scratch.resize(length);
    size_t done = 0;
    while (done < length) {
      const ssize_t got =
          ::pread(fd_.get(), scratch.data() + done, length - done,
                  static_cast<off_t>(offset + done));
      if (got < 0) {
        if (errno == EINTR) continue;
        fail(WvxFault::kIo, path_, "read failed for");
      }
      if (got == 0) {  // file shrank underneath us
        errno = 0;
        fail(WvxFault::kTruncatedBlock, path_, "unexpected EOF in");
      }
      done += static_cast<size_t>(got);
    }
    return scratch.data();
  }

 private:
  FdOwner fd_;
  uint64_t size_;
  std::string path_;
};

class MmapStorage final : public StorageBackend {
 public:
  MmapStorage(int fd, uint64_t size, std::string path, const char* base)
      : fd_(fd), size_(size), path_(std::move(path)), base_(base) {}

  ~MmapStorage() override {
    ::munmap(const_cast<char*>(base_), static_cast<size_t>(size_));
  }

  [[nodiscard]] const char* kind() const override { return "mmap"; }
  [[nodiscard]] uint64_t size() const override { return size_; }

  const char* view(uint64_t offset, size_t length,
                   std::string& /*scratch*/) override {
    check_range(offset, length, size_, path_);
    return base_ + offset;
  }

 private:
  FdOwner fd_;
  uint64_t size_;
  std::string path_;
  const char* base_;
};

// ---------------------------------------------------------------------------
// write side
// ---------------------------------------------------------------------------

/// pwrite() per call; the append offset is plain bookkeeping.
class BufferedWriteStorage final : public WriteBackend {
 public:
  BufferedWriteStorage(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  [[nodiscard]] const char* kind() const override { return "buffered"; }

  [[nodiscard]] uint64_t offset() const override {
    common::LockGuard lock(mutex_);
    return logical_size_;
  }

  void append(const char* data, size_t length) override {
    common::LockGuard lock(mutex_);
    write_range_locked(logical_size_, data, length);
    logical_size_ += length;
  }

  void write_at(uint64_t offset, const char* data, size_t length) override {
    common::LockGuard lock(mutex_);
    if (offset > logical_size_ || length > logical_size_ - offset) {
      errno = 0;
      fail(WvxFault::kIo, path_, "patch past logical end of");
    }
    write_range_locked(offset, data, length);
  }

  void finish() override {
    common::LockGuard lock(mutex_);
    // pwrite is unbuffered; nothing to flush. Closing surfaces any
    // deferred error the filesystem still has for us.
    const int fd = fd_.release();
    if (fd >= 0 && ::close(fd) != 0) {
      fail(WvxFault::kIo, path_, "close failed for");
    }
  }

 private:
  void write_range_locked(uint64_t offset, const char* data, size_t length)
      HGDB_REQUIRES(mutex_) {
    size_t done = 0;
    while (done < length) {
      const ssize_t put =
          ::pwrite(fd_.get(), data + done, length - done,
                   static_cast<off_t>(offset + done));
      if (put < 0) {
        if (errno == EINTR) continue;
        fail(WvxFault::kIo, path_, "write failed for");
      }
      done += static_cast<size_t>(put);
    }
  }

  mutable common::WaveformMutex mutex_{"waveform::write_buffered"};
  FdOwner fd_ HGDB_GUARDED_BY(mutex_);
  uint64_t logical_size_ HGDB_GUARDED_BY(mutex_) = 0;
  std::string path_;
};

/// The file grown in chunks and mapped read-write: append is a memcpy
/// into the mapping, header patches never seek, finish() trims the chunk
/// slack back to the logical size.
class MmapWriteStorage final : public WriteBackend {
 public:
  /// Doubling from 1 MiB keeps remaps logarithmic in file size while the
  /// final ftruncate returns the slack, so small files stay small on disk.
  static constexpr uint64_t kInitialCapacity = 1ull << 20;

  MmapWriteStorage(int fd, std::string path, char* base, uint64_t capacity)
      : fd_(fd), path_(std::move(path)), base_(base), capacity_(capacity) {}

  ~MmapWriteStorage() override {
    common::LockGuard lock(mutex_);
    unmap_locked();
  }

  [[nodiscard]] const char* kind() const override { return "mmap"; }

  [[nodiscard]] uint64_t offset() const override {
    common::LockGuard lock(mutex_);
    return logical_size_;
  }

  void append(const char* data, size_t length) override {
    common::LockGuard lock(mutex_);
    reserve_locked(logical_size_ + length);
    std::memcpy(base_ + logical_size_, data, length);
    logical_size_ += length;
  }

  void write_at(uint64_t offset, const char* data, size_t length) override {
    common::LockGuard lock(mutex_);
    if (offset > logical_size_ || length > logical_size_ - offset) {
      errno = 0;
      fail(WvxFault::kIo, path_, "patch past logical end of");
    }
    std::memcpy(base_ + offset, data, length);
  }

  void finish() override {
    common::LockGuard lock(mutex_);
    unmap_locked();
    // Return the growth slack: readers must see exactly logical_size_
    // bytes, and a zero-padded tail would parse as a truncated block.
    if (::ftruncate(fd_.get(), static_cast<off_t>(logical_size_)) != 0) {
      fail(WvxFault::kIo, path_, "final truncate failed for");
    }
    const int fd = fd_.release();
    if (fd >= 0 && ::close(fd) != 0) {
      fail(WvxFault::kIo, path_, "close failed for");
    }
  }

 private:
  void reserve_locked(uint64_t needed) HGDB_REQUIRES(mutex_) {
    if (needed <= capacity_) return;
    uint64_t capacity = capacity_;
    while (capacity < needed) capacity *= 2;
    if (::ftruncate(fd_.get(), static_cast<off_t>(capacity)) != 0) {
      fail(WvxFault::kIo, path_, "grow failed for");
    }
    // Remap rather than map a second window: the directory write spans
    // block boundaries and must stay contiguous.
    ::munmap(base_, static_cast<size_t>(capacity_));
    void* base = ::mmap(nullptr, static_cast<size_t>(capacity),
                        PROT_READ | PROT_WRITE, MAP_SHARED, fd_.get(), 0);
    if (base == MAP_FAILED) {
      base_ = nullptr;
      capacity_ = 0;
      fail(WvxFault::kIo, path_, "remap failed for");
    }
    base_ = static_cast<char*>(base);
    capacity_ = capacity;
  }

  void unmap_locked() HGDB_REQUIRES(mutex_) {
    if (base_ != nullptr) {
      ::munmap(base_, static_cast<size_t>(capacity_));
      base_ = nullptr;
    }
  }

  mutable common::WaveformMutex mutex_{"waveform::write_mmap"};
  FdOwner fd_ HGDB_GUARDED_BY(mutex_);
  std::string path_;
  char* base_ HGDB_GUARDED_BY(mutex_);
  uint64_t capacity_ HGDB_GUARDED_BY(mutex_);
  uint64_t logical_size_ HGDB_GUARDED_BY(mutex_) = 0;
};

}  // namespace

std::unique_ptr<StorageBackend> open_storage(const std::string& path,
                                             IoMode mode) {
  errno = 0;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail(WvxFault::kNotFound, path, "cannot open index file");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail(WvxFault::kIo, path, "cannot stat");
  }
  const auto size = static_cast<uint64_t>(st.st_size);

  // An empty file cannot be mapped; the buffered backend reports the
  // truncation through the normal header-read path instead.
  if (mode != IoMode::kBuffered && size != 0) {
    void* base = ::mmap(nullptr, static_cast<size_t>(size), PROT_READ,
                        MAP_PRIVATE, fd, 0);
    if (base != MAP_FAILED) {
      return std::make_unique<MmapStorage>(fd, size, path,
                                           static_cast<const char*>(base));
    }
    if (mode == IoMode::kMmap) {
      ::close(fd);
      fail(WvxFault::kIo, path, "mmap failed for");
    }
    // kAuto: fall through to buffered.
  }
  errno = 0;
  return std::make_unique<BufferedStorage>(fd, size, path);
}

std::unique_ptr<WriteBackend> open_write_storage(const std::string& path,
                                                 IoMode mode) {
  errno = 0;
  const int fd =
      ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) fail(WvxFault::kIo, path, "cannot create index file");

  if (mode != IoMode::kBuffered) {
    const uint64_t capacity = MmapWriteStorage::kInitialCapacity;
    if (::ftruncate(fd, static_cast<off_t>(capacity)) == 0) {
      void* base = ::mmap(nullptr, static_cast<size_t>(capacity),
                          PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
      if (base != MAP_FAILED) {
        return std::make_unique<MmapWriteStorage>(
            fd, path, static_cast<char*>(base), capacity);
      }
    }
    if (mode == IoMode::kMmap) {
      ::close(fd);
      fail(WvxFault::kIo, path, "writable mmap failed for");
    }
    // kAuto: the file is still empty (or will be truncated by the first
    // pwrite bookkeeping); fall through to buffered.
    if (::ftruncate(fd, 0) != 0) {
      ::close(fd);
      fail(WvxFault::kIo, path, "truncate failed for");
    }
  }
  errno = 0;
  return std::make_unique<BufferedWriteStorage>(fd, path);
}

}  // namespace hgdb::waveform
