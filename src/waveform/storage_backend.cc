#include "waveform/storage_backend.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "waveform/index_format.h"

namespace hgdb::waveform {

const char* to_string(IoMode mode) {
  switch (mode) {
    case IoMode::kAuto: return "auto";
    case IoMode::kBuffered: return "buffered";
    case IoMode::kMmap: return "mmap";
  }
  return "unknown";
}

namespace {

[[noreturn]] void fail(WvxFault fault, const std::string& path,
                       const std::string& what) {
  throw WvxError(fault, "wvx: " + what + " '" + path + "'" +
                            (errno != 0 ? std::string(": ") + std::strerror(errno)
                                        : std::string()));
}

void check_range(uint64_t offset, size_t length, uint64_t file_size,
                 const std::string& path) {
  if (offset > file_size || length > file_size - offset) {
    throw WvxError(WvxFault::kTruncatedBlock,
                   "wvx: read of " + std::to_string(length) + " bytes at " +
                       std::to_string(offset) + " past end of '" + path +
                       "' (" + std::to_string(file_size) + " bytes)");
  }
}

/// Owns the descriptor; both backends read through it (mmap keeps it only
/// for the mapping's lifetime bookkeeping — the map survives a close, but
/// holding the fd keeps semantics obvious and cheap).
class FdOwner {
 public:
  explicit FdOwner(int fd) : fd_(fd) {}
  ~FdOwner() {
    if (fd_ >= 0) ::close(fd_);
  }
  FdOwner(const FdOwner&) = delete;
  FdOwner& operator=(const FdOwner&) = delete;
  [[nodiscard]] int get() const { return fd_; }

 private:
  int fd_;
};

class BufferedStorage final : public StorageBackend {
 public:
  BufferedStorage(int fd, uint64_t size, std::string path)
      : fd_(fd), size_(size), path_(std::move(path)) {}

  [[nodiscard]] const char* kind() const override { return "buffered"; }
  [[nodiscard]] uint64_t size() const override { return size_; }

  const char* view(uint64_t offset, size_t length,
                   std::string& scratch) override {
    check_range(offset, length, size_, path_);
    scratch.resize(length);
    size_t done = 0;
    while (done < length) {
      const ssize_t got =
          ::pread(fd_.get(), scratch.data() + done, length - done,
                  static_cast<off_t>(offset + done));
      if (got < 0) {
        if (errno == EINTR) continue;
        fail(WvxFault::kIo, path_, "read failed for");
      }
      if (got == 0) {  // file shrank underneath us
        errno = 0;
        fail(WvxFault::kTruncatedBlock, path_, "unexpected EOF in");
      }
      done += static_cast<size_t>(got);
    }
    return scratch.data();
  }

 private:
  FdOwner fd_;
  uint64_t size_;
  std::string path_;
};

class MmapStorage final : public StorageBackend {
 public:
  MmapStorage(int fd, uint64_t size, std::string path, const char* base)
      : fd_(fd), size_(size), path_(std::move(path)), base_(base) {}

  ~MmapStorage() override {
    ::munmap(const_cast<char*>(base_), static_cast<size_t>(size_));
  }

  [[nodiscard]] const char* kind() const override { return "mmap"; }
  [[nodiscard]] uint64_t size() const override { return size_; }

  const char* view(uint64_t offset, size_t length,
                   std::string& /*scratch*/) override {
    check_range(offset, length, size_, path_);
    return base_ + offset;
  }

 private:
  FdOwner fd_;
  uint64_t size_;
  std::string path_;
  const char* base_;
};

}  // namespace

std::unique_ptr<StorageBackend> open_storage(const std::string& path,
                                             IoMode mode) {
  errno = 0;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail(WvxFault::kNotFound, path, "cannot open index file");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail(WvxFault::kIo, path, "cannot stat");
  }
  const auto size = static_cast<uint64_t>(st.st_size);

  // An empty file cannot be mapped; the buffered backend reports the
  // truncation through the normal header-read path instead.
  if (mode != IoMode::kBuffered && size != 0) {
    void* base = ::mmap(nullptr, static_cast<size_t>(size), PROT_READ,
                        MAP_PRIVATE, fd, 0);
    if (base != MAP_FAILED) {
      return std::make_unique<MmapStorage>(fd, size, path,
                                           static_cast<const char*>(base));
    }
    if (mode == IoMode::kMmap) {
      ::close(fd);
      fail(WvxFault::kIo, path, "mmap failed for");
    }
    // kAuto: fall through to buffered.
  }
  errno = 0;
  return std::make_unique<BufferedStorage>(fd, size, path);
}

}  // namespace hgdb::waveform
