#include "waveform/waveform_source.h"

#include <cctype>
#include <stdexcept>

#include "common/strings.h"

namespace hgdb::waveform {

bool is_clock_leaf(std::string_view leaf) {
  std::string lower;
  lower.reserve(leaf.size());
  for (char c : leaf) {
    // unsigned char cast: passing negative bytes to tolower is UB.
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return lower == "clock" || lower == "clk";
}

namespace {

std::string leaf_of(const std::string& hier_name) {
  const size_t dot = hier_name.rfind('.');
  return dot == std::string::npos ? hier_name : hier_name.substr(dot + 1);
}

}  // namespace

std::vector<std::string> clock_signal_names(const WaveformSource& source) {
  std::vector<std::string> out;
  for (size_t i = 0; i < source.signal_count(); ++i) {
    const auto& info = source.signal(i);
    if (info.width == 1 && is_clock_leaf(leaf_of(info.hier_name))) {
      out.push_back(info.hier_name);
    }
  }
  return out;
}

size_t resolve_clock(const WaveformSource& source,
                     const std::string& clock_name) {
  if (!clock_name.empty()) {
    if (auto index = source.signal_index(clock_name)) return *index;
    // Dotted-suffix match: "clock" matches "Top.clock".
    for (size_t i = 0; i < source.signal_count(); ++i) {
      if (common::ends_with_path(source.signal(i).hier_name, clock_name)) {
        return i;
      }
    }
    throw std::runtime_error("replay: clock '" + clock_name +
                             "' not found in trace (" +
                             std::to_string(source.signal_count()) +
                             " signals searched)");
  }
  for (size_t i = 0; i < source.signal_count(); ++i) {
    const auto& info = source.signal(i);
    if (info.width == 1 && is_clock_leaf(leaf_of(info.hier_name))) return i;
  }
  throw std::runtime_error(
      "replay: no clock candidate in trace (no 1-bit signal with leaf "
      "'clock'/'clk', case-insensitive); pass clock_name explicitly");
}

}  // namespace hgdb::waveform
