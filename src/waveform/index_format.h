#ifndef HGDB_WAVEFORM_INDEX_FORMAT_H
#define HGDB_WAVEFORM_INDEX_FORMAT_H

#include <cstdint>

#include "waveform/waveform_source.h"

namespace hgdb::waveform {

/// The .wvx on-disk waveform index, version 1.
///
/// Layout (all integers little-endian, fixed width):
///
///   [header: 32 bytes]
///     u32 magic            "WVX1" (0x31585657)
///     u32 version          1
///     u64 footer_offset    patched after the block region is written
///     u64 max_time
///     u64 signal_count
///   [block region]
///     Per-signal columnar change blocks, interleaved in write order. One
///     block is `count` fixed-stride entries for a single signal:
///       u64 time, then ceil(width/8) value bytes (little-endian).
///   [footer: signal table + block directory]
///     per signal:
///       u32 name_len, name bytes
///       u32 width
///       u64 block_count
///       per block: u64 start_time, u64 end_time, u64 file_offset, u32 count
///
/// The footer is small (O(signals + blocks)) and is the only part an
/// IndexedWaveform keeps resident; block payloads load on demand through
/// the LRU cache. The directory per signal is sorted by start_time, so a
/// cycle seek is a binary search over the directory followed by a binary
/// search inside one block: O(log blocks + log block_capacity), no
/// full-trace parse.
constexpr uint32_t kWvxMagic = 0x31585657;  // "WVX1"
constexpr uint32_t kWvxVersion = 1;
constexpr size_t kWvxHeaderSize = 32;

/// Directory entry for one on-disk change block.
struct BlockInfo {
  uint64_t start_time = 0;  ///< time of the first entry
  uint64_t end_time = 0;    ///< time of the last entry
  uint64_t file_offset = 0; ///< absolute offset of the first entry
  uint32_t count = 0;       ///< number of entries
};

/// Resident metadata for one indexed signal.
struct IndexedSignal {
  SignalInfo info;
  uint32_t value_bytes = 0;  ///< ceil(width/8): per-entry value payload
  std::vector<BlockInfo> blocks;
};

/// Bytes of one on-disk entry for a signal of `width` bits.
constexpr uint32_t wvx_value_bytes(uint32_t width) { return (width + 7) / 8; }
constexpr uint64_t wvx_entry_stride(uint32_t width) {
  return 8 + wvx_value_bytes(width);
}

struct IndexWriterOptions {
  /// Changes per block. Smaller blocks seek faster and cache finer; larger
  /// blocks amortize directory size. 256 keeps a 32-bit signal's block
  /// at ~3 KiB.
  uint32_t block_capacity = 256;
};

}  // namespace hgdb::waveform

#endif  // HGDB_WAVEFORM_INDEX_FORMAT_H
