#ifndef HGDB_WAVEFORM_INDEX_FORMAT_H
#define HGDB_WAVEFORM_INDEX_FORMAT_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "waveform/storage_backend.h"
#include "waveform/waveform_source.h"

namespace hgdb::waveform {

/// The .wvx on-disk waveform index, version 4 (versions 1-3 remain
/// readable bit-identically).
///
/// Layout (all integers little-endian; "varint" = unsigned LEB128):
///
///   [header, 36 bytes (32 in v1, which has no flags word)]
///     u32 magic            "WVX1" (0x31585657; identifies the format, not
///                          the version)
///     u32 version          4 (3 / 2 / 1 for legacy files)
///     u32 flags            kWvxFlag* bits (v2+)
///     u64 footer_offset    patched after the block region is written
///     u64 max_time
///     u64 signal_count
///   [block region]
///     Per-signal change blocks, interleaved in write order, encoded by the
///     signal's block codec:
///       fixed codec (v1/v2, and v3+ without kWvxFlagDeltaCodec): `count`
///         fixed-stride entries — u64 time, then ceil(width/8) value bytes.
///       delta codec (v3+ with kWvxFlagDeltaCodec): `count` variable-size
///         entries — varint time delta (first entry: absolute time), then a
///         value tag byte (0 = repeat previous value, 1 = varint of
///         value XOR previous, 2 = raw ceil(width/8) bytes) and its
///         payload. "Previous value" starts at zero per block, so blocks
///         decode independently.
///       rle codec (v4, per-signal): toggle runs for clock-like 1-bit
///         signals; see rle_codec() in block_codec.h for the grouping.
///   [footer: signal table + block directory]
///     per signal:
///       u32 name_len, name bytes
///       u32 width
///       u32 canonical        [v3+] index of the signal owning the
///                            change stream; == own index when canonical.
///                            Aliased signals (canonical != self) carry no
///                            directory of their own.
///       u8 codec_id          [v4, canonical signals only] block codec of
///                            this signal's stream (0 fixed, 1 delta,
///                            2 rle), overriding the file-default flag —
///                            this is the per-signal codec-selection seam.
///       u64 block_count      [only when canonical]
///       per block: u64 start_time, u64 end_time, u64 file_offset,
///                  u32 count,
///                  [u32 payload_bytes in v3+ — variable-size codecs],
///                  [u32 crc32 when kWvxFlagBlockChecksums]
///
/// Sharded indexes (v4): a dump may instead be stored as a *manifest*
/// (magic "WVXM", see manifest.h) naming N shard files, each of which is
/// a complete single-file index holding a disjoint subset of the signals
/// (whole alias groups; split by top-level scope). Both spellings use the
/// .wvx extension — readers sniff the magic, so every open path accepts
/// either transparently.
///
/// The footer is small (O(signals + blocks)) and is the only part an
/// IndexedWaveform keeps resident; block payloads load on demand through
/// the LRU cache, served by a pluggable StorageBackend (buffered pread or
/// an mmap view). The directory per signal is sorted by start_time, so a
/// cycle seek is a binary search over the directory followed by a binary
/// search inside one decoded block: O(log blocks + log block_capacity),
/// no full-trace parse.
///
/// With kWvxFlagBlockChecksums set, every directory entry carries the
/// CRC-32 (IEEE) of its raw on-disk payload; readers verify it when the
/// block is first loaded (cache hits skip re-verification), so silent disk
/// corruption surfaces as a clean "checksum mismatch" error naming the
/// block instead of garbage waveform values.
constexpr uint32_t kWvxMagic = 0x31585657;  // "WVX1"
constexpr uint32_t kWvxVersion = 4;         ///< written by IndexWriter
constexpr uint32_t kWvxMinVersion = 1;      ///< oldest readable version
constexpr size_t kWvxHeaderSizeV1 = 32;
constexpr size_t kWvxHeaderSizeV2 = 36;  ///< also the v3 header size

/// Header flag bits (v2+).
constexpr uint32_t kWvxFlagBlockChecksums = 1u << 0;
/// Block payloads use the varint/delta codec (v3+; clear = fixed codec).
constexpr uint32_t kWvxFlagDeltaCodec = 1u << 1;

/// What went wrong with a .wvx file — every reader-side failure carries
/// one of these so tools (wvx-verify, the CLI) can report a typed message
/// instead of a generic parse error.
enum class WvxFault : uint8_t {
  kNotFound,        ///< file missing / unreadable
  kBadMagic,        ///< not a waveform index at all
  kBadVersion,      ///< version outside [kWvxMinVersion, kWvxVersion]
  kNeverFinalized,  ///< writer died before the footer (footer_offset == 0)
  kTruncatedDirectory,  ///< EOF inside the signal table / block directory
  kTruncatedBlock,      ///< EOF inside a block payload
  kCorrupt,             ///< implausible metadata (bounds, counts, widths)
  kChecksum,            ///< block CRC32 mismatch
  kIo,                  ///< read/map syscall failure
};

[[nodiscard]] const char* to_string(WvxFault fault);

/// True when `path` names a waveform index by extension — the one
/// dispatch rule shared by the readers (trace::open_waveform) and the
/// writers (sim::VcdWriter's direct-emission mode).
[[nodiscard]] inline bool is_wvx_path(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".wvx") == 0;
}

/// The exception every .wvx reader path throws: a std::runtime_error (so
/// existing catch sites keep working) that also carries the typed fault.
class WvxError : public std::runtime_error {
 public:
  WvxError(WvxFault fault, const std::string& message)
      : std::runtime_error(message), fault_(fault) {}
  [[nodiscard]] WvxFault fault() const { return fault_; }

 private:
  WvxFault fault_;
};

/// Directory entry for one on-disk change block.
struct BlockInfo {
  uint64_t start_time = 0;  ///< time of the first entry
  uint64_t end_time = 0;    ///< time of the last entry
  uint64_t file_offset = 0; ///< absolute offset of the encoded payload
  uint32_t count = 0;       ///< number of entries
  uint32_t payload_bytes = 0;  ///< encoded size (v3; derived for v1/v2)
  uint32_t crc32 = 0;       ///< payload checksum (kWvxFlagBlockChecksums)
};

class BlockCodec;

/// Resident metadata for one indexed signal.
struct IndexedSignal {
  SignalInfo info;
  uint32_t value_bytes = 0;  ///< ceil(width/8): per-entry value payload
  /// Index of the signal owning the change stream (alias dedup); equals
  /// the signal's own index when it is canonical.
  size_t canonical = 0;
  /// Block codec of this signal's stream (v4 per-signal selection; the
  /// file-default codec for v1-v3). nullptr until resolved.
  const BlockCodec* codec = nullptr;
  /// Which shard file holds the stream (0 for single-file indexes).
  uint32_t shard = 0;
  std::vector<BlockInfo> blocks;  ///< empty for aliased signals
};

/// Bytes of one on-disk entry for a signal of `width` bits (fixed codec).
constexpr uint32_t wvx_value_bytes(uint32_t width) { return (width + 7) / 8; }
constexpr uint64_t wvx_entry_stride(uint32_t width) {
  return 8 + wvx_value_bytes(width);
}

struct IndexWriterOptions {
  /// Changes per block. Smaller blocks seek faster and cache finer; larger
  /// blocks amortize directory size. 256 keeps a 32-bit signal's block
  /// at ~3 KiB.
  uint32_t block_capacity = 256;
  /// Write a CRC-32 per block (kWvxFlagBlockChecksums). ~4 bytes per
  /// block of overhead; on by default.
  bool block_checksums = true;
  /// On-disk format version to emit: 4 (default), or 3 / 2 for tooling
  /// that must interoperate with older readers.
  uint32_t version = kWvxVersion;
  /// v3+: encode blocks with the varint/delta codec by default. false
  /// falls back to the fixed-stride codec inside a v3/v4 container.
  bool delta_codec = true;
  /// v3+: store one change stream per id-code alias group and record
  /// the aliases in the signal table (canonical indirection). v2 files
  /// duplicate the stream per alias, as they always did.
  bool dedup_aliases = true;
  /// v4 only: pick each signal's codec from its data — a 1-bit signal
  /// whose first flushed block is toggle-dominated gets the rle codec,
  /// everything else keeps the file default. The choice depends only on
  /// the change stream, so identical input yields identical bytes
  /// regardless of how the conversion is parallelized.
  bool auto_codec = true;
  /// Write strategy (see WriteBackend): kAuto maps the output read-write
  /// where the platform allows — appends become memcpys and the header
  /// back-patch never seeks — and falls back to positional writes.
  IoMode io_mode = IoMode::kAuto;
};

}  // namespace hgdb::waveform

#endif  // HGDB_WAVEFORM_INDEX_FORMAT_H
