#ifndef HGDB_WAVEFORM_INDEX_FORMAT_H
#define HGDB_WAVEFORM_INDEX_FORMAT_H

#include <cstdint>

#include "waveform/waveform_source.h"

namespace hgdb::waveform {

/// The .wvx on-disk waveform index, version 2 (version-1 files remain
/// readable).
///
/// Layout (all integers little-endian, fixed width):
///
///   [header]
///     u32 magic            "WVX1" (0x31585657; identifies the format, not
///                          the version)
///     u32 version          2 (1 for legacy files)
///     u32 flags            v2 only: kWvxFlag* bits
///     u64 footer_offset    patched after the block region is written
///     u64 max_time
///     u64 signal_count
///   [block region]
///     Per-signal columnar change blocks, interleaved in write order. One
///     block is `count` fixed-stride entries for a single signal:
///       u64 time, then ceil(width/8) value bytes (little-endian).
///   [footer: signal table + block directory]
///     per signal:
///       u32 name_len, name bytes
///       u32 width
///       u64 block_count
///       per block: u64 start_time, u64 end_time, u64 file_offset, u32 count
///                  [u32 crc32 when kWvxFlagBlockChecksums]
///
/// The footer is small (O(signals + blocks)) and is the only part an
/// IndexedWaveform keeps resident; block payloads load on demand through
/// the LRU cache. The directory per signal is sorted by start_time, so a
/// cycle seek is a binary search over the directory followed by a binary
/// search inside one block: O(log blocks + log block_capacity), no
/// full-trace parse.
///
/// With kWvxFlagBlockChecksums set, every directory entry carries the
/// CRC-32 (IEEE) of its raw on-disk payload; readers verify it when the
/// block is first loaded (cache hits skip re-verification), so silent disk
/// corruption surfaces as a clean "checksum mismatch" error naming the
/// block instead of garbage waveform values.
constexpr uint32_t kWvxMagic = 0x31585657;  // "WVX1"
constexpr uint32_t kWvxVersion = 2;         ///< written by IndexWriter
constexpr uint32_t kWvxMinVersion = 1;      ///< oldest readable version
constexpr size_t kWvxHeaderSizeV1 = 32;
constexpr size_t kWvxHeaderSizeV2 = 36;

/// Header flag bits (v2+).
constexpr uint32_t kWvxFlagBlockChecksums = 1u << 0;

/// Directory entry for one on-disk change block.
struct BlockInfo {
  uint64_t start_time = 0;  ///< time of the first entry
  uint64_t end_time = 0;    ///< time of the last entry
  uint64_t file_offset = 0; ///< absolute offset of the first entry
  uint32_t count = 0;       ///< number of entries
  uint32_t crc32 = 0;       ///< payload checksum (kWvxFlagBlockChecksums)
};

/// Resident metadata for one indexed signal.
struct IndexedSignal {
  SignalInfo info;
  uint32_t value_bytes = 0;  ///< ceil(width/8): per-entry value payload
  std::vector<BlockInfo> blocks;
};

/// Bytes of one on-disk entry for a signal of `width` bits.
constexpr uint32_t wvx_value_bytes(uint32_t width) { return (width + 7) / 8; }
constexpr uint64_t wvx_entry_stride(uint32_t width) {
  return 8 + wvx_value_bytes(width);
}

struct IndexWriterOptions {
  /// Changes per block. Smaller blocks seek faster and cache finer; larger
  /// blocks amortize directory size. 256 keeps a 32-bit signal's block
  /// at ~3 KiB.
  uint32_t block_capacity = 256;
  /// Write a CRC-32 per block (kWvxFlagBlockChecksums). ~4 bytes per
  /// block of overhead; on by default.
  bool block_checksums = true;
};

}  // namespace hgdb::waveform

#endif  // HGDB_WAVEFORM_INDEX_FORMAT_H
