#ifndef HGDB_WAVEFORM_INDEXED_WAVEFORM_H
#define HGDB_WAVEFORM_INDEXED_WAVEFORM_H

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/checked_mutex.h"
#include "obs/metrics.h"
#include "waveform/block_cache.h"
#include "waveform/block_codec.h"
#include "waveform/index_format.h"
#include "waveform/storage_backend.h"
#include "waveform/waveform_source.h"

namespace hgdb::waveform {

/// Reader-side knobs: cache size and I/O strategy.
struct WaveformOpenOptions {
  size_t cache_blocks = kDefaultCacheBlocks;
  /// kAuto maps the file when the platform supports it (hot blocks skip
  /// the read syscall; the OS page cache evicts cold ones) and falls back
  /// to buffered positional reads otherwise.
  IoMode io_mode = IoMode::kAuto;
};

/// WaveformSource over a .wvx index file (v1, v2 or v3). Opening reads
/// only the header and the footer (signal table + block directory); change
/// payloads stream in on demand through an LRU block cache, fetched by a
/// pluggable StorageBackend and decoded by the file's BlockCodec. The
/// resident set is bounded by `cache_blocks` regardless of trace size. A
/// cycle seek is O(log blocks + log block_capacity).
///
/// v3 alias dedup: signals declared as id-code aliases share one change
/// stream on disk and one set of cache entries in memory — queries on any
/// aliased name are served through the canonical signal's directory.
///
/// Thread-safe for concurrent queries (one mutex around the cache + read
/// scratch; the debugger runtime evaluates breakpoint batches from a
/// pool).
class IndexedWaveform final : public WaveformSource {
 public:
  static constexpr size_t kDefaultCacheBlocks = waveform::kDefaultCacheBlocks;

  /// Throws WvxError (a std::runtime_error) on missing file, bad
  /// magic/version, a truncated (unfinished) index, or corrupt metadata.
  explicit IndexedWaveform(const std::string& path,
                           size_t cache_blocks = kDefaultCacheBlocks);
  IndexedWaveform(const std::string& path, const WaveformOpenOptions& options);

  // -- WaveformSource -----------------------------------------------------------
  [[nodiscard]] size_t signal_count() const override { return signals_.size(); }
  [[nodiscard]] const SignalInfo& signal(size_t index) const override {
    return signals_[index].info;
  }
  [[nodiscard]] std::optional<size_t> signal_index(
      const std::string& hier_name) const override;
  [[nodiscard]] size_t canonical_index(size_t index) const override {
    return signals_[index].canonical;
  }
  [[nodiscard]] uint64_t max_time() const override { return max_time_; }
  [[nodiscard]] common::BitVector value_at(size_t index,
                                           uint64_t time) const override;
  [[nodiscard]] std::vector<uint64_t> rising_edges(size_t index) const override;

  // -- introspection ------------------------------------------------------------
  [[nodiscard]] const std::string& path() const { return path_; }
  /// Directory of the signal's change stream (the canonical signal's, for
  /// aliases).
  [[nodiscard]] const std::vector<BlockInfo>& blocks(size_t index) const {
    return signals_[signals_[index].canonical].blocks;
  }
  [[nodiscard]] CacheStats cache_stats() const;
  [[nodiscard]] size_t cache_capacity() const { return cache_.capacity(); }
  [[nodiscard]] uint64_t total_blocks() const { return total_blocks_; }
  /// On-disk format version of the opened file (1, 2 or 3).
  [[nodiscard]] uint32_t version() const { return version_; }
  /// Block encoding in use ("fixed" / "delta").
  [[nodiscard]] const char* codec_name() const { return codec_->name(); }
  /// I/O strategy actually in use ("buffered" / "mmap").
  [[nodiscard]] const char* io_kind() const { return storage_->kind(); }
  /// Signals that are aliases of another signal's change stream.
  [[nodiscard]] size_t alias_count() const { return alias_count_; }
  /// True when the file carries per-block CRC32s (format v2+ flag).
  [[nodiscard]] bool has_block_checksums() const { return has_checksums_; }

  /// First unreadable/corrupt block, if any. Loads every block once
  /// (through the cache), verifying checksums when present.
  struct BlockFault {
    std::string signal;
    size_t block_index = 0;
    uint64_t file_offset = 0;
    WvxFault fault = WvxFault::kIo;
    std::string message;
  };
  [[nodiscard]] std::optional<BlockFault> verify_blocks() const;

 private:
  BlockCache::BlockPtr load_block(size_t signal_index, size_t block_index) const
      HGDB_REQUIRES(mutex_);

  /// Global-registry mirrors of the per-instance CacheStats, resolved
  /// once at open. Readers have no natural owner with a registry, so the
  /// `waveform.*` metrics aggregate across every open index in the
  /// process; per-instance numbers stay available via cache_stats().
  struct ObsMetrics {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Gauge* resident = nullptr;
    obs::Histogram* load_ns = nullptr;  ///< miss-path read+decode latency
  };

  std::string path_;
  std::vector<IndexedSignal> signals_;
  std::map<std::string, size_t> by_name_;
  uint64_t max_time_ = 0;
  uint64_t total_blocks_ = 0;
  uint32_t version_ = 0;
  size_t alias_count_ = 0;
  bool has_checksums_ = false;
  const BlockCodec* codec_ = nullptr;

  mutable common::WaveformMutex mutex_{"waveform::reader"};
  mutable std::unique_ptr<StorageBackend> storage_ HGDB_GUARDED_BY(mutex_);
  /// buffered-read landing zone
  mutable std::string scratch_ HGDB_GUARDED_BY(mutex_);
  mutable BlockCache cache_ HGDB_GUARDED_BY(mutex_);
  std::unique_ptr<ObsMetrics> obs_;
};

}  // namespace hgdb::waveform

#endif  // HGDB_WAVEFORM_INDEXED_WAVEFORM_H
