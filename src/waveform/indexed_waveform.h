#ifndef HGDB_WAVEFORM_INDEXED_WAVEFORM_H
#define HGDB_WAVEFORM_INDEXED_WAVEFORM_H

#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "waveform/block_cache.h"
#include "waveform/index_format.h"
#include "waveform/waveform_source.h"

namespace hgdb::waveform {

/// WaveformSource over a .wvx index file. Opening reads only the 32-byte
/// header and the footer (signal table + block directory); change payloads
/// stream in on demand through an LRU block cache, so the resident set is
/// bounded by `cache_blocks` regardless of trace size. A cycle seek is
/// O(log blocks + log block_capacity).
///
/// Thread-safe for concurrent queries (one mutex around the cache + file
/// handle; the debugger runtime evaluates breakpoint batches from a pool).
class IndexedWaveform final : public WaveformSource {
 public:
  static constexpr size_t kDefaultCacheBlocks = waveform::kDefaultCacheBlocks;

  /// Throws std::runtime_error on missing file, bad magic/version, or a
  /// truncated (unfinished) index.
  explicit IndexedWaveform(const std::string& path,
                           size_t cache_blocks = kDefaultCacheBlocks);

  // -- WaveformSource -----------------------------------------------------------
  [[nodiscard]] size_t signal_count() const override { return signals_.size(); }
  [[nodiscard]] const SignalInfo& signal(size_t index) const override {
    return signals_[index].info;
  }
  [[nodiscard]] std::optional<size_t> signal_index(
      const std::string& hier_name) const override;
  [[nodiscard]] uint64_t max_time() const override { return max_time_; }
  [[nodiscard]] common::BitVector value_at(size_t index,
                                           uint64_t time) const override;
  [[nodiscard]] std::vector<uint64_t> rising_edges(size_t index) const override;

  // -- introspection ------------------------------------------------------------
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const std::vector<BlockInfo>& blocks(size_t index) const {
    return signals_[index].blocks;
  }
  [[nodiscard]] CacheStats cache_stats() const;
  [[nodiscard]] size_t cache_capacity() const { return cache_.capacity(); }
  [[nodiscard]] uint64_t total_blocks() const { return total_blocks_; }
  /// True when the file carries per-block CRC32s (format v2 flag).
  [[nodiscard]] bool has_block_checksums() const { return has_checksums_; }

  /// First unreadable/corrupt block, if any. Loads every block once
  /// (through the cache), verifying checksums when present.
  struct BlockFault {
    std::string signal;
    size_t block_index = 0;
    uint64_t file_offset = 0;
    std::string message;
  };
  [[nodiscard]] std::optional<BlockFault> verify_blocks() const;

 private:
  BlockCache::BlockPtr load_block(size_t signal_index, size_t block_index) const;

  std::string path_;
  std::vector<IndexedSignal> signals_;
  std::map<std::string, size_t> by_name_;
  uint64_t max_time_ = 0;
  uint64_t total_blocks_ = 0;
  bool has_checksums_ = false;

  mutable std::mutex mutex_;
  mutable std::ifstream file_;
  mutable BlockCache cache_;
};

}  // namespace hgdb::waveform

#endif  // HGDB_WAVEFORM_INDEXED_WAVEFORM_H
